"""Command-line entry point: ``python -m repro <experiment>``.

Runs any of the paper-figure or extension experiments from a shell and
prints its table, so the evaluation is reproducible without writing a
line of Python.

    python -m repro list
    python -m repro fig10
    python -m repro fig13 --height 256 --width 256 --frames 2
    python -m repro all
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

from .experiments import (
    ExperimentConfig,
    fig02_ellipsoids,
    fig10_bandwidth,
    fig11_bits,
    fig12_cases,
    fig13_power,
    fig14_study,
    fig15_tilesize,
    sec61_hardware,
    sec63_psnr,
)
from .experiments.ablations import (
    run_axis_ablation,
    run_fovea_ablation,
    run_plane_ablation,
)
from .experiments.extensions import (
    run_dark_adaptation,
    run_gaze_latency,
    run_streaming,
    run_variable_bd,
)
from .experiments.quality import (
    run_flicker,
    run_foveation_comparison,
    run_rate_distortion,
)

__all__ = ["main", "EXPERIMENTS"]

#: name -> (runner taking a config, description).  The hardware model
#: runner ignores the config (it has no workload).
EXPERIMENTS: dict[str, tuple[Callable, str]] = {
    "fig02": (fig02_ellipsoids.run, "discrimination ellipsoids at 5 vs 25 deg"),
    "fig10": (fig10_bandwidth.run, "bandwidth reduction vs NoCom/SCC/BD/PNG"),
    "fig11": (fig11_bits.run, "bits/pixel decomposition"),
    "fig12": (fig12_cases.run, "case c1/c2 distribution"),
    "fig13": (fig13_power.run, "power saving over BD"),
    "fig14": (fig14_study.run, "simulated user study"),
    "fig15": (fig15_tilesize.run, "tile-size sensitivity"),
    "sec61": (lambda _config: sec61_hardware.run(), "CAU hardware constants"),
    "sec63": (sec63_psnr.run, "PSNR of adjusted frames"),
    "ablation-axis": (run_axis_ablation, "optimization-axis ablation"),
    "ablation-fovea": (run_fovea_ablation, "foveal-bypass-radius ablation"),
    "ablation-plane": (run_plane_ablation, "case-2 plane-placement ablation"),
    "ext-gaze": (run_gaze_latency, "artifact visibility vs gaze error"),
    "ext-dark": (run_dark_adaptation, "dark-adaptation compression gain"),
    "ext-varbd": (run_variable_bd, "variable-width BD (footnote 1)"),
    "ext-streaming": (run_streaming, "remote-rendering link study"),
    "ext-rd": (run_rate_distortion, "rate-distortion sweep"),
    "ext-flicker": (run_flicker, "temporal stability"),
    "ext-foveation": (run_foveation_comparison, "foveation comparison"),
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the paper's experiments from the command line.",
    )
    parser.add_argument(
        "experiment",
        help="experiment name, 'list' to enumerate, or 'all' to run everything",
    )
    parser.add_argument("--height", type=int, default=192, help="eval frame height")
    parser.add_argument("--width", type=int, default=192, help="eval frame width")
    parser.add_argument("--frames", type=int, default=2, help="animation frames per scene")
    parser.add_argument("--seed", type=int, default=7, help="master random seed")
    parser.add_argument(
        "--model", choices=("parametric", "rbf"), default="parametric",
        help="discrimination model implementation",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry; returns a process exit code."""
    args = _build_parser().parse_args(argv)

    if args.experiment == "list":
        width = max(len(name) for name in EXPERIMENTS)
        for name, (_, description) in EXPERIMENTS.items():
            print(f"{name:<{width}}  {description}")
        return 0

    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(
            f"unknown experiment {unknown[0]!r}; run 'python -m repro list'",
            file=sys.stderr,
        )
        return 2

    config = ExperimentConfig(
        height=args.height,
        width=args.width,
        n_frames=args.frames,
        seed=args.seed,
        model_kind=args.model,
    )
    for name in names:
        runner, description = EXPERIMENTS[name]
        print(f"== {name}: {description}")
        print(runner(config).table())
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
