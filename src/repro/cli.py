"""Command-line entry point: ``python -m repro <experiment>``.

Runs any of the paper-figure or extension experiments from a shell and
prints its table, so the evaluation is reproducible without writing a
line of Python.

    python -m repro list
    python -m repro fig10
    python -m repro fig10 --codecs bd,png
    python -m repro fig13 --height 256 --width 256 --frames 2
    python -m repro all

``all`` isolates failures: every experiment runs, a pass/fail summary
is printed at the end, and the exit code is nonzero only if something
failed.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

from .codecs.registry import available_codecs, resolve_codec_name, streaming_codec_names
from .experiments import (
    ExperimentConfig,
    adaptive as adaptive_experiment,
    fleet as fleet_experiment,
    fig02_ellipsoids,
    fig10_bandwidth,
    fig11_bits,
    fig12_cases,
    fig13_power,
    fig14_study,
    fig15_tilesize,
    sec61_hardware,
    sec63_psnr,
)
from .experiments.ablations import (
    run_axis_ablation,
    run_fovea_ablation,
    run_plane_ablation,
)
from .experiments.extensions import (
    run_dark_adaptation,
    run_gaze_latency,
    run_streaming,
    run_variable_bd,
)
from .experiments.quality import (
    run_flicker,
    run_foveation_comparison,
    run_rate_distortion,
)
from .streaming.adaptive import CONTROLLER_CHOICES
from .streaming.link import WIFI6_LINK, WirelessLink
from .streaming.loss import RECOVERY_CHOICES, parse_loss_spec
from .streaming.server import SCHEDULER_CHOICES
from .streaming.traces import parse_trace_spec
from .streaming.validation import PRICING_MODES

__all__ = ["main", "EXPERIMENTS"]

#: name -> (runner taking a config, description).  The hardware model
#: runner ignores the config (it has no workload).
EXPERIMENTS: dict[str, tuple[Callable, str]] = {
    "fig02": (fig02_ellipsoids.run, "discrimination ellipsoids at 5 vs 25 deg"),
    "fig10": (fig10_bandwidth.run, "bandwidth reduction vs NoCom/SCC/BD/PNG"),
    "fig11": (fig11_bits.run, "bits/pixel decomposition"),
    "fig12": (fig12_cases.run, "case c1/c2 distribution"),
    "fig13": (fig13_power.run, "power saving over BD"),
    "fig14": (fig14_study.run, "simulated user study"),
    "fig15": (fig15_tilesize.run, "tile-size sensitivity"),
    "sec61": (lambda _config: sec61_hardware.run(), "CAU hardware constants"),
    "sec63": (sec63_psnr.run, "PSNR of adjusted frames"),
    "ablation-axis": (run_axis_ablation, "optimization-axis ablation"),
    "ablation-fovea": (run_fovea_ablation, "foveal-bypass-radius ablation"),
    "ablation-plane": (run_plane_ablation, "case-2 plane-placement ablation"),
    "ext-gaze": (run_gaze_latency, "artifact visibility vs gaze error"),
    "ext-dark": (run_dark_adaptation, "dark-adaptation compression gain"),
    "ext-varbd": (run_variable_bd, "variable-width BD (footnote 1)"),
    "ext-streaming": (run_streaming, "remote-rendering link study"),
    "ext-rd": (run_rate_distortion, "rate-distortion sweep"),
    "ext-flicker": (run_flicker, "temporal stability"),
    "ext-foveation": (run_foveation_comparison, "foveation comparison"),
    "fleet": (fleet_experiment.run, "multi-client fleet contention study"),
    "adaptive": (adaptive_experiment.run, "fixed vs adaptive rate control on a fading link"),
}

#: Experiments whose runner reads ``ExperimentConfig.codec_names``;
#: ``--codecs`` is rejected when none of the selected experiments do.
CODEC_SWEEP_EXPERIMENTS = frozenset({"fig10", "fleet"})


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the paper's experiments from the command line.",
    )
    parser.add_argument(
        "experiment",
        help="experiment name, 'list' to enumerate, or 'all' to run everything",
    )
    parser.add_argument("--height", type=int, default=192, help="eval frame height")
    parser.add_argument("--width", type=int, default=192, help="eval frame width")
    parser.add_argument("--frames", type=int, default=2, help="animation frames per scene")
    parser.add_argument("--seed", type=int, default=7, help="master random seed")
    parser.add_argument(
        "--model", choices=("parametric", "rbf"), default="parametric",
        help="discrimination model implementation",
    )
    parser.add_argument(
        "--codecs", default=None, metavar="NAME[,NAME...]",
        help="comma-separated codec-registry filter for the sweep "
             "experiments (fig10's baseline roster, fleet's per-client "
             "cycle); see 'list' for names",
    )
    fleet_group = parser.add_argument_group("fleet options")
    fleet_group.add_argument(
        "--clients", type=int, default=None, metavar="N",
        help="fleet only: number of headset clients sharing the link (default 4)",
    )
    fleet_group.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="fleet only: process-pool width for per-client encoding (default 1)",
    )
    fleet_group.add_argument(
        "--scheduler", choices=SCHEDULER_CHOICES, default=None,
        help="fleet only: link scheduling discipline (default fair)",
    )
    fleet_group.add_argument(
        "--bandwidth", type=float, default=None, metavar="MBPS",
        help="fleet only: shared link bandwidth in Mbps (default WiFi6, 400)",
    )
    fleet_group.add_argument(
        "--trace", default=None, metavar="SPEC",
        help="fleet only: time-varying link bandwidth, e.g. step:400:100:5 "
             "(high:low Mbps, 5 s per phase), const:MBPS, "
             "markov:HIGH:LOW:P[:SEED], or file:PATH",
    )
    fleet_group.add_argument(
        "--loss", default=None, metavar="SPEC",
        help="fleet only: packet-loss model on the link — bern:P "
             "(Bernoulli) or ge:P_ENTER:MEAN_BURST[:P_LOSS_BAD[:P_LOSS_GOOD]] "
             "(Gilbert-Elliott burst loss)",
    )
    fleet_group.add_argument(
        "--recovery", choices=RECOVERY_CHOICES, default=None,
        help="fleet only, with --loss: loss-recovery policy — arq "
             "(retransmit under backoff; default), fec (fixed-overhead "
             "parity), or skip (drop and I-frame resync)",
    )
    fleet_group.add_argument(
        "--controller", choices=CONTROLLER_CHOICES, default=None,
        help="fleet only: per-client rate controller; clients then adapt "
             "their codec rung per frame (default: pinned codecs)",
    )
    fleet_group.add_argument(
        "--pricing", choices=PRICING_MODES, default=None,
        help="fleet only: transport pricing — 'backlog' queues each "
             "client's frames behind its own transmit backlog (default); "
             "'round' replays the legacy round-priced engine",
    )
    fleet_group.add_argument(
        "--cohorts", action="store_true", default=False,
        help="fleet only: mean-field fast path — fold statistically "
             "identical clients into cohorts and advance them in "
             "O(cohorts) work, with tracer clients proven bit-for-bit "
             "against the exact engine (enables million-client fleets)",
    )
    fleet_group.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="fleet only, with --cohorts: shard cohorts N ways over the "
             "process pool (results are byte-identical for any N; "
             "default 1)",
    )
    fleet_group.add_argument(
        "--tracers", type=int, default=None, metavar="N",
        help="fleet only, with --cohorts: fully-simulated tracer clients "
             "per cohort (default 1)",
    )
    return parser


def _parse_codecs(spec: str) -> tuple[str, ...]:
    """Canonicalize a comma-separated ``--codecs`` value (KeyError if unknown)."""
    names = tuple(token.strip() for token in spec.split(",") if token.strip())
    if not names:
        raise KeyError("--codecs needs at least one codec name")
    return tuple(resolve_codec_name(name) for name in names)


def _print_listing() -> None:
    width = max(len(name) for name in EXPERIMENTS)
    for name, (_, description) in EXPERIMENTS.items():
        print(f"{name:<{width}}  {description}")
    print()
    print(f"codecs    : {', '.join(available_codecs())}")
    print(f"streaming : {', '.join(streaming_codec_names())}")
    print("serving   : repro serve / repro loadgen (each has --help)")
    print("analysis  : repro lint (invariant linter; --list-rules for the catalog)")


def main(argv: list[str] | None = None) -> int:
    """CLI entry; returns a process exit code."""
    argv = sys.argv[1:] if argv is None else list(argv)
    # The serving stack and the linter have their own argument
    # surfaces; dispatch before the experiment parser sees (and
    # rejects) their flags.
    if argv and argv[0] in ("serve", "loadgen"):
        from .serving.cli import loadgen_main, serve_main

        runner = serve_main if argv[0] == "serve" else loadgen_main
        return runner(argv[1:])
    if argv and argv[0] == "lint":
        from .analysis.cli import main as lint_main

        return lint_main(argv[1:])
    args = _build_parser().parse_args(argv)

    if args.experiment == "list":
        _print_listing()
        return 0

    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(
            f"unknown experiment {unknown[0]!r}; run 'python -m repro list'",
            file=sys.stderr,
        )
        return 2

    codec_names = None
    if args.codecs:
        try:
            codec_names = _parse_codecs(args.codecs)
        except KeyError as exc:
            print(f"bad --codecs value: {exc.args[0]}", file=sys.stderr)
            return 2
        if not any(name in CODEC_SWEEP_EXPERIMENTS for name in names):
            print(
                f"--codecs only affects {', '.join(sorted(CODEC_SWEEP_EXPERIMENTS))}; "
                f"it would be ignored by {names[0]!r}",
                file=sys.stderr,
            )
            return 2
        if names == ["fleet"]:
            # Fail fast on codecs that cannot stream (png, scc, ...).
            # Multi-experiment runs (e.g. ``all``) keep the full roster
            # for the sweep experiments; the fleet cycles over the
            # streaming-capable subset (see ``run_fleet``).
            try:
                for codec_name in codec_names:
                    fleet_experiment.streaming_codec_name(codec_name)
            except ValueError as exc:
                print(f"bad --codecs value: {exc}", file=sys.stderr)
                return 2

    fleet_values = {
        "--clients": args.clients,
        "--jobs": args.jobs,
        "--scheduler": args.scheduler,
        "--bandwidth": args.bandwidth,
        "--trace": args.trace,
        "--loss": args.loss,
        "--recovery": args.recovery,
        "--controller": args.controller,
        "--pricing": args.pricing,
        "--cohorts": args.cohorts or None,
        "--shards": args.shards,
        "--tracers": args.tracers,
    }
    flags_set = [flag for flag, value in fleet_values.items() if value is not None]
    if flags_set and "fleet" not in names:
        print(
            f"{', '.join(flags_set)} only affect the fleet experiment; "
            f"ignored by {names[0]!r}",
            file=sys.stderr,
        )
        return 2
    if args.clients is not None and args.clients < 1:
        print("--clients must be >= 1", file=sys.stderr)
        return 2
    if args.jobs is not None and args.jobs < 1:
        print("--jobs must be >= 1", file=sys.stderr)
        return 2
    if args.bandwidth is not None and args.bandwidth <= 0:
        print("--bandwidth must be positive (Mbps)", file=sys.stderr)
        return 2
    if args.trace is not None and args.bandwidth is not None:
        print("--trace and --bandwidth are mutually exclusive", file=sys.stderr)
        return 2
    if (args.shards is not None or args.tracers is not None) and not args.cohorts:
        print("--shards and --tracers require --cohorts", file=sys.stderr)
        return 2
    if args.shards is not None and args.shards < 1:
        print("--shards must be >= 1", file=sys.stderr)
        return 2
    if args.tracers is not None and args.tracers < 0:
        print("--tracers must be >= 0", file=sys.stderr)
        return 2
    if args.cohorts and args.pricing is not None:
        print(
            "--pricing does not apply to --cohorts (contention is priced "
            "by analytic waterfilling)",
            file=sys.stderr,
        )
        return 2
    if args.recovery is not None and args.loss is None:
        print("--recovery requires --loss (a lossless link needs no recovery)",
              file=sys.stderr)
        return 2
    loss_trace = None
    if args.loss is not None:
        try:
            loss_trace = parse_loss_spec(args.loss)
        except ValueError as exc:
            print(f"bad --loss value: {exc}", file=sys.stderr)
            return 2
    if args.trace is not None:
        try:
            # Same propagation as the WiFi6 default so trace sweeps
            # change exactly one variable.
            fleet_link = WirelessLink.traced(
                parse_trace_spec(args.trace),
                propagation_ms=WIFI6_LINK.propagation_ms,
                loss=loss_trace,
            )
        except (ValueError, OSError) as exc:
            print(f"bad --trace value: {exc}", file=sys.stderr)
            return 2
    elif args.bandwidth is not None:
        # Same propagation as the WiFi6 default so bandwidth sweeps
        # change exactly one variable.
        fleet_link = WirelessLink(
            bandwidth_mbps=args.bandwidth,
            propagation_ms=WIFI6_LINK.propagation_ms,
            loss=loss_trace,
        )
    elif loss_trace is not None:
        fleet_link = WirelessLink(
            bandwidth_mbps=WIFI6_LINK.bandwidth_mbps,
            propagation_ms=WIFI6_LINK.propagation_ms,
            loss=loss_trace,
        )
    else:
        fleet_link = WIFI6_LINK
    fleet_kwargs = dict(
        n_clients=args.clients if args.clients is not None else 4,
        n_jobs=args.jobs if args.jobs is not None else 1,
        scheduler=args.scheduler if args.scheduler is not None else "fair",
        link=fleet_link,
        controller=args.controller,
        recovery=args.recovery,
        pricing=args.pricing if args.pricing is not None else "backlog",
        cohorts=args.cohorts,
        n_shards=args.shards if args.shards is not None else 1,
        tracers_per_cohort=args.tracers if args.tracers is not None else 1,
    )

    config = ExperimentConfig(
        height=args.height,
        width=args.width,
        n_frames=args.frames,
        seed=args.seed,
        model_kind=args.model,
        codec_names=codec_names,
    )
    def invoke(name: str, runner: Callable):
        # The fleet experiment has its own knobs beyond ExperimentConfig.
        # Multi-experiment runs share one --codecs filter, so the fleet
        # tolerates (skips) codecs that cannot stream; a sole fleet run
        # was already strictly validated above.
        if name == "fleet":
            return fleet_experiment.run_fleet(
                config, lenient_codecs=len(names) > 1, **fleet_kwargs
            )
        return runner(config)

    isolate = len(names) > 1
    failures: list[tuple[str, Exception]] = []
    for name in names:
        runner, description = EXPERIMENTS[name]
        print(f"== {name}: {description}")
        if not isolate:
            # Single-experiment runs propagate, keeping the full
            # traceback; only multi-runs trade it for isolation.
            print(invoke(name, runner).table())
            print()
            continue
        try:
            print(invoke(name, runner).table())
        except Exception as exc:  # noqa: BLE001 - isolate per-experiment failures
            failures.append((name, exc))
            print(f"!! {name} failed: {type(exc).__name__}: {exc}", file=sys.stderr)
        print()

    if isolate:
        passed = len(names) - len(failures)
        print(f"summary: {passed}/{len(names)} experiments passed")
        for name, exc in failures:
            print(f"  FAIL {name}: {type(exc).__name__}: {exc}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
