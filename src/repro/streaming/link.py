"""Wireless link model for remote VR rendering (paper Sec. 2.2, Fig. 3).

The paper's traffic taxonomy includes the wireless path between a
rendering server (cloud or nearby base station) and the headset, and
notes that its compression scheme also applies "in scenarios where
remotely rendered frames are transmitted one by one (rather than as a
video)".  This module models that link at frame granularity:

    transmit_time = payload_bits / bandwidth  +  propagation delay

with optional jitter, so the remote-rendering session simulator can
turn encoded-frame sizes into motion-to-photon latency and achievable
frame rates.

A link is constant-rate by default.  Attach a
:class:`~repro.streaming.traces.BandwidthTrace` (or build the link with
:meth:`WirelessLink.traced`) and it becomes time-varying: serialization
time then depends on *when* a payload starts transmitting, and
:meth:`WirelessLink.at` exposes the instantaneous rate — both cheap,
via the trace's precomputed cumulative-capacity arrays.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .loss import LossTrace
from .traces import BandwidthTrace

__all__ = ["WirelessLink", "WIFI6_LINK", "WIGIG_LINK", "HALF_NORMAL_MEAN_FACTOR"]

#: Mean of a standard half-normal distribution: ``E[|N(0, 1)|]``.
#: The jitter model draws ``abs(normal(0, jitter_ms))``, so the mean
#: added delay is ``jitter_ms * HALF_NORMAL_MEAN_FACTOR`` milliseconds.
HALF_NORMAL_MEAN_FACTOR = float(np.sqrt(2.0 / np.pi))


@dataclass(frozen=True)
class WirelessLink:
    """A point-to-point wireless link.

    Attributes
    ----------
    bandwidth_mbps:
        Effective (post-MAC) throughput in megabits per second.  For a
        traced link this is the *nominal* rate used for capacity
        bookkeeping (e.g. utilization); the instantaneous rate comes
        from the trace.
    propagation_ms:
        One-way propagation plus fixed protocol delay, milliseconds.
    jitter_ms:
        Scale parameter of a **half-normal** per-frame delay jitter:
        each frame adds ``abs(N(0, jitter_ms))`` milliseconds, so the
        mean added delay is ``jitter_ms * sqrt(2 / pi)`` (~0.80 x the
        scale).  Zero gives a deterministic link.
    trace:
        Optional :class:`~repro.streaming.traces.BandwidthTrace`
        making the link's rate time-varying.  ``None`` (default) keeps
        the constant-rate behavior.
    loss:
        Optional :class:`~repro.streaming.loss.LossTrace` making the
        link erase (and reorder) packets.  ``None`` (default) keeps
        the lossless behavior — the engine then makes no loss draws at
        all, so lossless runs stay bit-for-bit identical.
    """

    bandwidth_mbps: float
    propagation_ms: float = 2.0
    jitter_ms: float = 0.0
    trace: BandwidthTrace | None = None
    loss: LossTrace | None = None

    def __post_init__(self):
        if self.bandwidth_mbps <= 0:
            raise ValueError(f"bandwidth_mbps must be positive, got {self.bandwidth_mbps}")
        if self.propagation_ms < 0:
            raise ValueError(f"propagation_ms must be >= 0, got {self.propagation_ms}")
        if self.jitter_ms < 0:
            raise ValueError(f"jitter_ms must be >= 0, got {self.jitter_ms}")

    @classmethod
    def traced(
        cls,
        trace: BandwidthTrace,
        *,
        propagation_ms: float = 2.0,
        jitter_ms: float = 0.0,
        loss: LossTrace | None = None,
    ) -> "WirelessLink":
        """A time-varying link driven by a bandwidth trace.

        Parameters
        ----------
        trace:
            The bandwidth profile; the link's nominal
            ``bandwidth_mbps`` is set to the trace's time-averaged
            rate.
        propagation_ms, jitter_ms, loss:
            As on the constructor.

        Returns
        -------
        WirelessLink
            A link whose serialization times depend on send time.
        """
        return cls(
            bandwidth_mbps=trace.mean_mbps,
            propagation_ms=propagation_ms,
            jitter_ms=jitter_ms,
            trace=trace,
            loss=loss,
        )

    @property
    def rtt_s(self) -> float:
        """Round-trip propagation in seconds (no airtime, no jitter).

        What an ARQ retransmission round pays to learn which packets
        are missing — the :mod:`~repro.streaming.loss` policies charge
        one of these per round.
        """
        return 2.0 * self.propagation_ms * 1e-3

    def at(self, time_s: float = 0.0) -> float:
        """Instantaneous bandwidth in Mbps at a session time.

        Constant links return ``bandwidth_mbps`` for every time; traced
        links answer from the trace's precomputed segment arrays in
        O(log segments).

        Parameters
        ----------
        time_s:
            Session time in seconds (>= 0).
        """
        if self.trace is None:
            if time_s < 0:
                raise ValueError(f"time_s must be >= 0, got {time_s}")
            return self.bandwidth_mbps
        return self.trace.bandwidth_mbps_at(time_s)

    def capacity_bits(self, start_s: float, end_s: float) -> float:
        """Bits the link can deliver between two session times.

        The engine's fluid scheduler charges concurrent transmissions
        their share of exactly this capacity, so contended drains on a
        traced link integrate the same trace as dedicated ones.

        Parameters
        ----------
        start_s, end_s:
            Interval bounds in seconds, ``start_s <= end_s``.

        Returns
        -------
        float
            Deliverable capacity in bits over ``[start_s, end_s]``.
        """
        if end_s < start_s:
            raise ValueError(
                f"end_s must be >= start_s, got [{start_s}, {end_s}]"
            )
        if self.trace is None:
            return self.bandwidth_mbps * 1e6 * (end_s - start_s)
        return self.trace.capacity_bits(start_s, end_s)

    def serialization_time_s(self, payload_bits: int, *, start_s: float = 0.0) -> float:
        """Time to push a payload onto the air.

        Parameters
        ----------
        payload_bits:
            Payload size in bits.
        start_s:
            Session time the transmission starts.  Irrelevant for a
            constant link; on a traced link the payload drains through
            whatever rates the trace holds from ``start_s`` onward.

        Returns
        -------
        float
            Airtime in seconds.
        """
        if payload_bits < 0:
            raise ValueError(f"payload_bits must be >= 0, got {payload_bits}")
        if self.trace is None:
            return payload_bits / (self.bandwidth_mbps * 1e6)
        return self.trace.finish_time_s(start_s, payload_bits) - start_s

    def overhead_time_s(self, rng: np.random.Generator | None = None) -> float:
        """Propagation plus (optional) jitter — everything but airtime.

        The fleet engine adds this on top of scheduler-computed drain
        times, so contended and dedicated transmissions price the fixed
        per-frame overhead identically.

        Parameters
        ----------
        rng:
            Source for the half-normal jitter draw; without one (or
            with ``jitter_ms == 0``) the overhead is deterministic.

        Returns
        -------
        float
            Overhead in seconds: ``propagation_ms`` plus a half-normal
            jitter sample with scale ``jitter_ms`` (mean
            ``jitter_ms * sqrt(2 / pi)`` ms).
        """
        base = self.propagation_ms * 1e-3
        if self.jitter_ms > 0 and rng is not None:
            base += abs(float(rng.normal(0.0, self.jitter_ms))) * 1e-3
        return base

    def transmit_time_s(
        self,
        payload_bits: int,
        rng: np.random.Generator | None = None,
        *,
        start_s: float = 0.0,
    ) -> float:
        """Total one-way latency for a payload, with optional jitter.

        Parameters
        ----------
        payload_bits:
            Payload size in bits.
        rng:
            Jitter source, forwarded to :meth:`overhead_time_s`.
        start_s:
            Send time, forwarded to :meth:`serialization_time_s`
            (matters only for traced links).
        """
        return self.serialization_time_s(payload_bits, start_s=start_s) + self.overhead_time_s(rng)

    def sustainable_fps(self, payload_bits: int, *, at_s: float = 0.0) -> float:
        """Frame rate the link alone can sustain for this payload size.

        Serialization is the recurring cost; propagation pipelines
        away.  For traced links the rate is evaluated at ``at_s``.

        Parameters
        ----------
        payload_bits:
            Per-frame payload size in bits.
        at_s:
            Session time at which to evaluate a traced link's rate.
        """
        if payload_bits < 0:
            raise ValueError(f"payload_bits must be >= 0, got {payload_bits}")
        if payload_bits == 0:
            return float("inf")
        return self.at(at_s) * 1e6 / payload_bits


#: A realistic effective Wi-Fi 6 link for untethered streaming.
WIFI6_LINK = WirelessLink(bandwidth_mbps=400.0, propagation_ms=3.0)

#: A 60 GHz (WiGig-class) link, the tethered-quality wireless option.
WIGIG_LINK = WirelessLink(bandwidth_mbps=1800.0, propagation_ms=1.5)
