"""Wireless link model for remote VR rendering (paper Sec. 2.2, Fig. 3).

The paper's traffic taxonomy includes the wireless path between a
rendering server (cloud or nearby base station) and the headset, and
notes that its compression scheme also applies "in scenarios where
remotely rendered frames are transmitted one by one (rather than as a
video)".  This module models that link at frame granularity:

    transmit_time = payload_bits / bandwidth  +  propagation delay

with optional jitter, so the remote-rendering session simulator can
turn encoded-frame sizes into motion-to-photon latency and achievable
frame rates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["WirelessLink", "WIFI6_LINK", "WIGIG_LINK"]


@dataclass(frozen=True)
class WirelessLink:
    """A point-to-point wireless link.

    Attributes
    ----------
    bandwidth_mbps:
        Effective (post-MAC) throughput in megabits per second.
    propagation_ms:
        One-way propagation plus fixed protocol delay, milliseconds.
    jitter_ms:
        Standard deviation of a truncated-Gaussian per-frame delay
        jitter.  Zero gives a deterministic link.
    """

    bandwidth_mbps: float
    propagation_ms: float = 2.0
    jitter_ms: float = 0.0

    def __post_init__(self):
        if self.bandwidth_mbps <= 0:
            raise ValueError(f"bandwidth_mbps must be positive, got {self.bandwidth_mbps}")
        if self.propagation_ms < 0:
            raise ValueError(f"propagation_ms must be >= 0, got {self.propagation_ms}")
        if self.jitter_ms < 0:
            raise ValueError(f"jitter_ms must be >= 0, got {self.jitter_ms}")

    def serialization_time_s(self, payload_bits: int) -> float:
        """Time to push a payload onto the air."""
        if payload_bits < 0:
            raise ValueError(f"payload_bits must be >= 0, got {payload_bits}")
        return payload_bits / (self.bandwidth_mbps * 1e6)

    def overhead_time_s(self, rng: np.random.Generator | None = None) -> float:
        """Propagation plus (optional) jitter — everything but airtime.

        The fleet engine adds this on top of scheduler-computed drain
        times, so contended and dedicated transmissions price the fixed
        per-frame overhead identically.
        """
        base = self.propagation_ms * 1e-3
        if self.jitter_ms > 0 and rng is not None:
            base += abs(float(rng.normal(0.0, self.jitter_ms))) * 1e-3
        return base

    def transmit_time_s(
        self, payload_bits: int, rng: np.random.Generator | None = None
    ) -> float:
        """Total one-way latency for a payload, with optional jitter."""
        return self.serialization_time_s(payload_bits) + self.overhead_time_s(rng)

    def sustainable_fps(self, payload_bits: int) -> float:
        """Frame rate the link alone can sustain for this payload size.

        Serialization is the recurring cost; propagation pipelines away.
        """
        serialization = self.serialization_time_s(payload_bits)
        if serialization == 0:
            return float("inf")
        return 1.0 / serialization


#: A realistic effective Wi-Fi 6 link for untethered streaming.
WIFI6_LINK = WirelessLink(bandwidth_mbps=400.0, propagation_ms=3.0)

#: A 60 GHz (WiGig-class) link, the tethered-quality wireless option.
WIGIG_LINK = WirelessLink(bandwidth_mbps=1800.0, propagation_ms=1.5)
