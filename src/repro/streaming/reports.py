"""One JSON format for every streaming report, simulated or served.

The simulators (:mod:`repro.streaming.session`, ``adaptive``,
``server``) and the real serving path (:mod:`repro.serving`) all
describe their outcomes with the same vocabulary — per-frame
:class:`~repro.streaming.engine.FrameTiming` rows, per-stream
:class:`~repro.streaming.engine.AdaptiveStats`, per-client reports
rolling up into a fleet/server aggregate.  This module gives that
vocabulary one serialized form, so ``repro serve --report`` output and
``simulate_fleet`` results are *diffable with the same tooling*: load
either side with :func:`report_from_json` and compare attribute by
attribute, or diff the JSON directly.

Every payload carries a ``"report"`` type tag and a ``"version"``;
decoding dispatches on the tag through a registry that the serving
subsystem extends with its own report types
(:func:`register_report_type`), so one loader handles simulator and
server output alike.
"""

from __future__ import annotations

import json
from typing import Any, Callable

from .engine import AdaptiveStats, FrameTiming
from .link import WirelessLink
from .loss import LossStats, LossTrace
from .traces import BandwidthTrace

__all__ = [
    "REPORT_FORMAT_VERSION",
    "frame_timing_to_dict",
    "frame_timing_from_dict",
    "adaptive_stats_to_dict",
    "adaptive_stats_from_dict",
    "loss_stats_to_dict",
    "loss_stats_from_dict",
    "loss_trace_to_dict",
    "loss_trace_from_dict",
    "link_to_dict",
    "link_from_dict",
    "register_report_type",
    "report_to_dict",
    "report_from_dict",
    "report_to_json",
    "report_from_json",
]

#: Version stamped into every serialized report; bump on breaking
#: format changes so old payloads fail loudly instead of silently.
#: Version 2 added the ``cohort-fleet`` report type and its quantile-
#: sketch latency roll-up (see ``docs/fleet-scale.md``).  The lossy-
#: link fields (``"loss"`` on session bodies and link mappings) are
#: *conditional* additions — emitted only when a loss trace was
#: configured — so lossless version-2 payloads are byte-identical to
#: pre-loss ones and no version bump is warranted.
REPORT_FORMAT_VERSION = 2

#: Versions :func:`report_from_dict` accepts.  Version-1 payloads are
#: a strict subset of version 2 (no field changed shape), so old
#: reports keep loading.
_SUPPORTED_VERSIONS = frozenset({1, 2})


# -- leaf converters ----------------------------------------------------


def frame_timing_to_dict(timing: FrameTiming) -> dict[str, Any]:
    """One :class:`FrameTiming` as a plain JSON-ready mapping."""
    return {
        "frame_index": timing.frame_index,
        "payload_bits": timing.payload_bits,
        "encode_time_s": timing.encode_time_s,
        "serialization_time_s": timing.serialization_time_s,
        "transmit_time_s": timing.transmit_time_s,
        "rung": timing.rung,
    }


def frame_timing_from_dict(data: dict[str, Any]) -> FrameTiming:
    """Rebuild a :class:`FrameTiming` from its mapping form."""
    return FrameTiming(
        frame_index=int(data["frame_index"]),
        payload_bits=int(data["payload_bits"]),
        encode_time_s=float(data["encode_time_s"]),
        serialization_time_s=float(data["serialization_time_s"]),
        transmit_time_s=float(data["transmit_time_s"]),
        rung=str(data.get("rung", "")),
    )


def adaptive_stats_to_dict(stats: AdaptiveStats | None) -> dict[str, Any] | None:
    """Adaptation telemetry as a mapping (``None`` passes through)."""
    if stats is None:
        return None
    return {
        "controller": stats.controller,
        "rungs": list(stats.rungs),
        "rung_switches": stats.rung_switches,
        "time_in_rung": dict(stats.time_in_rung),
        "stall_time_s": stats.stall_time_s,
        "mean_quality": stats.mean_quality,
    }


def adaptive_stats_from_dict(data: dict[str, Any] | None) -> AdaptiveStats | None:
    """Rebuild :class:`AdaptiveStats` (``None`` passes through)."""
    if data is None:
        return None
    return AdaptiveStats(
        controller=str(data["controller"]),
        rungs=tuple(str(r) for r in data["rungs"]),
        rung_switches=int(data["rung_switches"]),
        time_in_rung={str(k): float(v) for k, v in data["time_in_rung"].items()},
        stall_time_s=float(data["stall_time_s"]),
        mean_quality=float(data["mean_quality"]),
    )


def loss_stats_to_dict(stats: LossStats | None) -> dict[str, Any] | None:
    """Loss/recovery telemetry as a mapping (``None`` passes through)."""
    if stats is None:
        return None
    return {
        "policy": stats.policy,
        "frames_displayed": stats.frames_displayed,
        "frames_lost": stats.frames_lost,
        "frames_poisoned": stats.frames_poisoned,
        "resyncs": stats.resyncs,
        "recovery_time_s": stats.recovery_time_s,
        "packets_sent": stats.packets_sent,
        "packets_lost": stats.packets_lost,
        "retransmits": stats.retransmits,
        "overhead_bits": stats.overhead_bits,
        "goodput_bits": stats.goodput_bits,
        "wasted_bits": stats.wasted_bits,
    }


def loss_stats_from_dict(data: dict[str, Any] | None) -> LossStats | None:
    """Rebuild :class:`LossStats` (``None`` passes through)."""
    if data is None:
        return None
    return LossStats(
        policy=str(data["policy"]),
        frames_displayed=int(data["frames_displayed"]),
        frames_lost=int(data["frames_lost"]),
        frames_poisoned=int(data["frames_poisoned"]),
        resyncs=int(data["resyncs"]),
        recovery_time_s=float(data["recovery_time_s"]),
        packets_sent=int(data["packets_sent"]),
        packets_lost=int(data["packets_lost"]),
        retransmits=int(data["retransmits"]),
        overhead_bits=float(data["overhead_bits"]),
        goodput_bits=float(data["goodput_bits"]),
        wasted_bits=float(data["wasted_bits"]),
    )


def loss_trace_to_dict(trace: LossTrace | None) -> dict[str, Any] | None:
    """A loss trace as a mapping (``None`` passes through)."""
    if trace is None:
        return None
    return {
        "p_loss_good": trace.p_loss_good,
        "p_loss_bad": trace.p_loss_bad,
        "p_good_to_bad": trace.p_good_to_bad,
        "p_bad_to_good": trace.p_bad_to_good,
        "packet_bits": trace.packet_bits,
        "reorder_prob": trace.reorder_prob,
        "reorder_depth": trace.reorder_depth,
    }


def loss_trace_from_dict(data: dict[str, Any] | None) -> LossTrace | None:
    """Rebuild a :class:`LossTrace` (``None`` passes through)."""
    if data is None:
        return None
    return LossTrace(
        p_loss_good=float(data["p_loss_good"]),
        p_loss_bad=float(data["p_loss_bad"]),
        p_good_to_bad=float(data["p_good_to_bad"]),
        p_bad_to_good=float(data["p_bad_to_good"]),
        packet_bits=int(data["packet_bits"]),
        reorder_prob=float(data["reorder_prob"]),
        reorder_depth=int(data["reorder_depth"]),
    )


def link_to_dict(link: WirelessLink) -> dict[str, Any]:
    """A link (and any attached traces) as a mapping.

    The ``"loss"`` key appears only for lossy links, keeping lossless
    payloads byte-identical to pre-loss serializations.
    """
    trace = None
    if link.trace is not None:
        trace = {
            "times_s": list(link.trace.times_s),
            "rates_mbps": list(link.trace.rates_mbps),
        }
    body = {
        "bandwidth_mbps": link.bandwidth_mbps,
        "propagation_ms": link.propagation_ms,
        "jitter_ms": link.jitter_ms,
        "trace": trace,
    }
    if link.loss is not None:
        body["loss"] = loss_trace_to_dict(link.loss)
    return body


def link_from_dict(data: dict[str, Any]) -> WirelessLink:
    """Rebuild a :class:`WirelessLink` (trace segments included)."""
    trace = None
    if data.get("trace") is not None:
        trace = BandwidthTrace(data["trace"]["times_s"], data["trace"]["rates_mbps"])
    return WirelessLink(
        bandwidth_mbps=float(data["bandwidth_mbps"]),
        propagation_ms=float(data["propagation_ms"]),
        jitter_ms=float(data["jitter_ms"]),
        trace=trace,
        loss=loss_trace_from_dict(data.get("loss")),
    )


# -- the report-type registry -------------------------------------------

#: tag -> (class, to_dict, from_dict).  Populated below for the
#: simulator reports; :mod:`repro.serving` registers its own.
_REPORT_TYPES: dict[str, tuple[type, Callable, Callable]] = {}


def register_report_type(
    tag: str,
    cls: type,
    to_dict: Callable[[Any], dict[str, Any]],
    from_dict: Callable[[dict[str, Any]], Any],
) -> None:
    """Teach the serializer a new report type.

    Parameters
    ----------
    tag:
        The payload's ``"report"`` value.  Must be unique.
    cls:
        The exact report class the tag stands for (dispatch is on
        ``type(report)``, so subclasses register their own tags).
    to_dict, from_dict:
        The body converters; the envelope (tag + version) is handled
        here.
    """
    if tag in _REPORT_TYPES:
        raise ValueError(f"report tag {tag!r} already registered")
    _REPORT_TYPES[tag] = (cls, to_dict, from_dict)


def report_to_dict(report: Any) -> dict[str, Any]:
    """Serialize any registered report to its tagged mapping form."""
    for tag, (cls, to_dict, _) in _REPORT_TYPES.items():
        if type(report) is cls:
            return {"report": tag, "version": REPORT_FORMAT_VERSION, **to_dict(report)}
    raise TypeError(
        f"no serializer registered for {type(report).__name__}; "
        f"known tags: {sorted(_REPORT_TYPES)}"
    )


def report_from_dict(data: dict[str, Any]) -> Any:
    """Rebuild a report from its tagged mapping form."""
    tag = data.get("report")
    if tag not in _REPORT_TYPES:
        raise ValueError(
            f"unknown report tag {tag!r}; known tags: {sorted(_REPORT_TYPES)}"
        )
    version = data.get("version")
    if version not in _SUPPORTED_VERSIONS:
        raise ValueError(
            f"report format version {version!r} not supported "
            f"(this build reads versions {sorted(_SUPPORTED_VERSIONS)})"
        )
    _, _, from_dict = _REPORT_TYPES[tag]
    return from_dict(data)


def report_to_json(report: Any, indent: int | None = 2) -> str:
    """Any registered report as a JSON document."""
    return json.dumps(report_to_dict(report), indent=indent)


def report_from_json(text: str) -> Any:
    """Load whichever report type a JSON document declares."""
    return report_from_dict(json.loads(text))


# -- simulator report types ---------------------------------------------


def _session_body(report) -> dict[str, Any]:
    body = {
        "encoder": report.encoder,
        "target_fps": report.target_fps,
        "frames": [frame_timing_to_dict(f) for f in report.frames],
    }
    # Conditional: lossless reports stay byte-identical to pre-loss
    # serializations (the bit-for-bit acceptance gate).
    if getattr(report, "loss", None) is not None:
        body["loss"] = loss_stats_to_dict(report.loss)
    return body


def _session_to_dict(report) -> dict[str, Any]:
    return _session_body(report)


def _session_from_dict(data: dict[str, Any]):
    from .session import SessionReport

    return SessionReport(
        encoder=str(data["encoder"]),
        target_fps=float(data["target_fps"]),
        frames=[frame_timing_from_dict(f) for f in data["frames"]],
        loss=loss_stats_from_dict(data.get("loss")),
    )


def _adaptive_session_to_dict(report) -> dict[str, Any]:
    return {
        **_session_body(report),
        "adaptive": adaptive_stats_to_dict(report.adaptive),
        "ladder": list(report.ladder),
    }


def _adaptive_session_from_dict(data: dict[str, Any]):
    from .adaptive import AdaptiveSessionReport

    return AdaptiveSessionReport(
        encoder=str(data["encoder"]),
        target_fps=float(data["target_fps"]),
        frames=[frame_timing_from_dict(f) for f in data["frames"]],
        loss=loss_stats_from_dict(data.get("loss")),
        adaptive=adaptive_stats_from_dict(data.get("adaptive")),
        ladder=tuple(str(name) for name in data.get("ladder", ())),
    )


def _client_to_dict(report) -> dict[str, Any]:
    return {
        **_session_body(report),
        "name": report.name,
        "scene": report.scene,
        "weight": report.weight,
        "adaptive": adaptive_stats_to_dict(report.adaptive),
        "start_s": report.start_s,
        "stop_s": report.stop_s,
    }


def _client_from_dict(data: dict[str, Any]):
    from .server import ClientReport

    return ClientReport(
        encoder=str(data["encoder"]),
        target_fps=float(data["target_fps"]),
        frames=[frame_timing_from_dict(f) for f in data["frames"]],
        loss=loss_stats_from_dict(data.get("loss")),
        name=str(data["name"]),
        scene=str(data["scene"]),
        weight=float(data["weight"]),
        adaptive=adaptive_stats_from_dict(data.get("adaptive")),
        start_s=float(data.get("start_s", 0.0)),
        stop_s=None if data.get("stop_s") is None else float(data["stop_s"]),
    )


def _fleet_to_dict(report) -> dict[str, Any]:
    return {
        "clients": [_client_to_dict(c) for c in report.clients],
        "link": link_to_dict(report.link),
        "scheduler": report.scheduler,
        "n_frames": report.n_frames,
        "controller": report.controller,
        "pricing": report.pricing,
    }


def _fleet_from_dict(data: dict[str, Any]):
    from .server import FleetReport

    return FleetReport(
        clients=tuple(_client_from_dict(c) for c in data["clients"]),
        link=link_from_dict(data["link"]),
        scheduler=str(data["scheduler"]),
        n_frames=int(data["n_frames"]),
        controller=(
            None if data.get("controller") is None else str(data["controller"])
        ),
        pricing=str(data.get("pricing", "backlog")),
    )


def _cohort_summary_to_dict(summary) -> dict[str, Any]:
    return {
        "name": summary.name,
        "scene": summary.scene,
        "codec": summary.codec,
        "n_members": summary.n_members,
        "n_tracers": summary.n_tracers,
        "weight": summary.weight,
        "target_fps": summary.target_fps,
        "start_s": summary.start_s,
        "stop_s": summary.stop_s,
        "frames_streamed": summary.frames_streamed,
        "member_payload_bits": summary.member_payload_bits,
        "mean_serialization_s": summary.mean_serialization_s,
        "encode_time_s": summary.encode_time_s,
        "member_link": link_to_dict(summary.member_link),
        "adaptive": adaptive_stats_to_dict(summary.adaptive),
    }


def _cohort_summary_from_dict(data: dict[str, Any]):
    from .cohort import CohortSummary

    return CohortSummary(
        name=str(data["name"]),
        scene=str(data["scene"]),
        codec=str(data["codec"]),
        n_members=int(data["n_members"]),
        n_tracers=int(data["n_tracers"]),
        weight=float(data["weight"]),
        target_fps=float(data["target_fps"]),
        start_s=float(data["start_s"]),
        stop_s=None if data.get("stop_s") is None else float(data["stop_s"]),
        frames_streamed=int(data["frames_streamed"]),
        member_payload_bits=int(data["member_payload_bits"]),
        mean_serialization_s=float(data["mean_serialization_s"]),
        encode_time_s=float(data["encode_time_s"]),
        member_link=link_from_dict(data["member_link"]),
        adaptive=adaptive_stats_from_dict(data.get("adaptive")),
    )


def _cohort_fleet_to_dict(report) -> dict[str, Any]:
    return {
        "cohorts": [_cohort_summary_to_dict(s) for s in report.cohorts],
        "tracers": [_client_to_dict(t) for t in report.tracers],
        "link": link_to_dict(report.link),
        "scheduler": report.scheduler,
        "seed": report.seed,
        "latency": report.latency.to_dict(),
        "controller": report.controller,
    }


def _cohort_fleet_from_dict(data: dict[str, Any]):
    from .cohort import CohortFleetReport
    from .sketch import QuantileSketch

    return CohortFleetReport(
        cohorts=tuple(_cohort_summary_from_dict(s) for s in data["cohorts"]),
        tracers=tuple(_client_from_dict(t) for t in data["tracers"]),
        link=link_from_dict(data["link"]),
        scheduler=str(data["scheduler"]),
        seed=int(data["seed"]),
        latency=QuantileSketch.from_dict(data["latency"]),
        controller=(
            None if data.get("controller") is None else str(data["controller"])
        ),
    )


def _register_builtin_types() -> None:
    """Register the simulator reports (deferred: import cycles)."""
    from .adaptive import AdaptiveSessionReport
    from .cohort import CohortFleetReport
    from .server import ClientReport, FleetReport
    from .session import SessionReport

    register_report_type("session", SessionReport, _session_to_dict, _session_from_dict)
    register_report_type(
        "adaptive-session",
        AdaptiveSessionReport,
        _adaptive_session_to_dict,
        _adaptive_session_from_dict,
    )
    register_report_type("client", ClientReport, _client_to_dict, _client_from_dict)
    register_report_type("fleet", FleetReport, _fleet_to_dict, _fleet_from_dict)
    register_report_type(
        "cohort-fleet",
        CohortFleetReport,
        _cohort_fleet_to_dict,
        _cohort_fleet_from_dict,
    )


_register_builtin_types()
