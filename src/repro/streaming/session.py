"""Frame-by-frame remote-rendering session simulator (paper Sec. 2.2).

Models the client-cloud split the paper situates itself next to
(Furion, EVR, and friends): a server renders each stereo frame,
compresses it, and ships it over a wireless link; the headset decodes
and displays.  The perceptual encoder slots in exactly where it does
on-device — in front of BD — and the simulator measures what that buys
end to end:

* per-frame payload and motion-to-photon latency,
* the frame rate the link can sustain,
* whether a target refresh rate is met.

Video codecs are out of scope by the paper's own argument (they buffer
frame sequences, violating the per-frame latency requirement), so the
comparison set is the registry's per-frame codecs: raw, BD, variable
BD, and perceptual+BD.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..codecs.registry import get_codec, streaming_codec_names
from ..core.pipeline import PerceptualEncoder
from ..scenes.display import QUEST2_DISPLAY, DisplayGeometry
from ..scenes.library import Scene
from .engine import CodecStreamSource, FrameTiming, StreamingEngine, StreamSpec
from .link import WirelessLink
from .loss import LossStats
from .validation import validate_stream_timing

__all__ = [
    "FrameTiming",
    "SessionReport",
    "simulate_session",
    "build_streaming_codec",
    "ENCODER_CHOICES",
]

#: Valid per-frame encoder choices for a session, derived from the
#: codec registry (every codec registered with a ``streaming`` name).
ENCODER_CHOICES = streaming_codec_names()


def build_streaming_codec(encoder: str, perceptual_encoder: PerceptualEncoder | None = None):
    """Instantiate a per-frame streaming codec by its streaming name.

    Session-level knobs are routed explicitly to the codecs that take
    them: the perceptual codec wraps ``perceptual_encoder`` (a default
    :class:`~repro.core.pipeline.PerceptualEncoder` if omitted), the BD
    variants inherit its tile size so every encoder in a comparison
    tiles identically.
    """
    if encoder not in ENCODER_CHOICES:
        raise ValueError(f"unknown encoder {encoder!r}; expected one of {ENCODER_CHOICES}")
    perceptual = perceptual_encoder if perceptual_encoder is not None else PerceptualEncoder()
    if encoder == "perceptual":
        return get_codec(encoder, encoder=perceptual)
    if encoder in ("bd", "variable-bd"):
        return get_codec(encoder, tile_size=perceptual.tile_size)
    return get_codec(encoder)


@dataclass(frozen=True)
class SessionReport:
    """Aggregate outcome of a simulated streaming session.

    ``loss`` carries the per-stream
    :class:`~repro.streaming.loss.LossStats` — resync counts, recovery
    latency, goodput versus delivered quality — and stays ``None`` on
    lossless links, so lossless reports serialize exactly as before.
    """

    encoder: str
    frames: list[FrameTiming]
    target_fps: float
    loss: LossStats | None = None

    @property
    def mean_payload_bits(self) -> float:
        """Mean encoded payload per stereo frame, in bits."""
        return float(np.mean([f.payload_bits for f in self.frames]))

    @property
    def mean_latency_s(self) -> float:
        """Mean per-frame motion-to-photon contribution, in seconds."""
        return float(np.mean([f.motion_to_photon_s for f in self.frames]))

    @property
    def mean_encode_time_s(self) -> float:
        """Mean server-side encode time per frame, in seconds."""
        return float(np.mean([f.encode_time_s for f in self.frames]))

    @property
    def mean_serialization_time_s(self) -> float:
        """Mean link airtime per frame, in seconds."""
        return float(np.mean([f.serialization_time_s for f in self.frames]))

    @property
    def sustainable_fps(self) -> float:
        """Rate limited by the slower pipeline stage: encode or link.

        Propagation delay pipelines away across frames, so the
        recurring per-frame costs are the time the encoder spends on a
        frame and the time its payload occupies the air.  The two
        stages overlap across frames, so the throughput bound is the
        *slower* of the two — a raw codec on a fat link is encode-bound
        and cannot exceed the encoder's frame rate.
        """
        bottleneck = max(self.mean_serialization_time_s, self.mean_encode_time_s)
        return 1.0 / bottleneck if bottleneck > 0 else float("inf")

    @property
    def meets_target(self) -> bool:
        """Whether the sustainable rate reaches the target refresh rate."""
        return self.sustainable_fps >= self.target_fps

    def to_json(self, indent: int | None = 2) -> str:
        """Serialize through :mod:`repro.streaming.reports`.

        The payload is type-tagged, so the generic
        :func:`~repro.streaming.reports.report_from_json` loader — and
        the ``from_json`` classmethod on any report class — can read
        it back.  Subclasses serialize with their own tag and extra
        fields automatically.
        """
        from .reports import report_to_json

        return report_to_json(self, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "SessionReport":
        """Load a report serialized by :meth:`to_json`.

        Decoding dispatches on the payload's type tag; the result must
        be an instance of ``cls`` (calling
        ``ClientReport.from_json`` on a fleet payload is an error, but
        ``SessionReport.from_json`` accepts any session subclass).
        """
        from .reports import report_from_json

        report = report_from_json(text)
        if not isinstance(report, cls):
            raise TypeError(
                f"payload decodes to {type(report).__name__}, "
                f"not {cls.__name__}"
            )
        return report


def simulate_session(
    scene: Scene,
    link: WirelessLink,
    encoder: str = "perceptual",
    n_frames: int = 4,
    height: int = 192,
    width: int = 192,
    target_fps: float = 72.0,
    display: DisplayGeometry = QUEST2_DISPLAY,
    perceptual_encoder: PerceptualEncoder | None = None,
    encode_throughput_mpixels_s: float = 500.0,
    seed: int = 0,
    controller=None,
    ladder=None,
    recovery=None,
) -> SessionReport:
    """Stream ``n_frames`` stereo frames of a scene over a link.

    ``encode_throughput_mpixels_s`` models the server-side encoder
    rate (a hardware CAU + BD block easily exceeds this; the value only
    matters relative to transmission).  Gaze is centered; per-eye
    sub-frames are encoded independently and share one transmission.

    The session dispatches through the
    :class:`~repro.streaming.engine.StreamingEngine` as a fleet of one:
    frames queue behind the stream's own transmit backlog (an
    oversubscribed link shows up as growing queue wait in
    ``transmit_time_s``, not as silently overlapping transmissions),
    and the jitter RNG is the stream's spawned child of ``seed`` — the
    same draws a one-client fleet sees.

    Parameters
    ----------
    scene:
        The scene to render.
    link:
        The wireless link; attach a
        :class:`~repro.streaming.traces.BandwidthTrace` for a fading
        channel (each frame then serializes at its own send time).
    encoder:
        Streaming codec name.  With a ``controller`` this becomes the
        *starting* rung on the ladder — so ``controller="fixed"``
        reproduces the pinned-codec session.
    n_frames, height, width, target_fps, display:
        Stream length, per-eye resolution, refresh target, and headset
        geometry.
    perceptual_encoder:
        Shared perceptual encoder; BD variants inherit its tile size.
    encode_throughput_mpixels_s:
        Server-side encoder rate in megapixels per second.
    seed:
        Seed for the link-jitter stream.
    controller:
        Optional rate-control policy (name or
        :class:`~repro.streaming.adaptive.RateController`).  When set,
        the session adapts its codec per frame over ``ladder`` and an
        :class:`~repro.streaming.adaptive.AdaptiveSessionReport` is
        returned instead.
    ladder:
        Optional :class:`~repro.codecs.ladder.QualityLadder` for the
        adaptive path; defaults to the registry-derived ladder.
    recovery:
        Loss recovery policy (name from
        :data:`~repro.streaming.loss.RECOVERY_CHOICES` or a
        :class:`~repro.streaming.loss.RecoveryPolicy`); only valid
        when ``link`` carries a loss trace.

    Returns
    -------
    SessionReport
        Per-frame timings and aggregate rates (an
        :class:`~repro.streaming.adaptive.AdaptiveSessionReport` when
        ``controller`` is given).
    """
    if controller is not None:
        from .adaptive import simulate_adaptive_session  # import cycle guard

        return simulate_adaptive_session(
            scene,
            link,
            controller=controller,
            ladder=ladder,
            start_rung=encoder,
            n_frames=n_frames,
            height=height,
            width=width,
            target_fps=target_fps,
            display=display,
            perceptual_encoder=perceptual_encoder,
            encode_throughput_mpixels_s=encode_throughput_mpixels_s,
            seed=seed,
            recovery=recovery,
        )
    if ladder is not None:
        raise ValueError("ladder only applies when a controller is given")
    validate_stream_timing(
        n_frames=n_frames,
        target_fps=target_fps,
        encode_throughput_mpixels_s=encode_throughput_mpixels_s,
    )

    codec = build_streaming_codec(encoder, perceptual_encoder)

    # A solo session is a fleet of one: a single engine stream under
    # backlog pricing (frames queue behind the stream's own transmit
    # backlog; on a traced link each payload drains through the trace
    # from its actual send time).
    spec = StreamSpec(
        name="session",
        source=CodecStreamSource(scene, [codec], height, width, display),
        n_frames=n_frames,
        target_fps=target_fps,
        encode_time_s=2 * height * width / (encode_throughput_mpixels_s * 1e6),
    )
    engine = StreamingEngine(link, pricing="backlog", recovery=recovery)
    outcome = engine.run([spec], seed=seed)[0]
    return SessionReport(
        encoder=encoder,
        frames=outcome.frames,
        target_fps=target_fps,
        loss=outcome.loss,
    )
