"""Remote-rendering streaming substrate (paper Sec. 2.2, Fig. 3).

Layers, bottom up: :mod:`~repro.streaming.traces` models time-varying
link capacity, :mod:`~repro.streaming.link` the wireless hop,
:mod:`~repro.streaming.engine` the discrete-event kernel every
simulator dispatches through (shared with
:mod:`~repro.streaming.validation` for parameter guards),
:mod:`~repro.streaming.session` a single client's stream,
:mod:`~repro.streaming.adaptive` per-frame rate control, and
:mod:`~repro.streaming.server` a fleet of clients contending for one
link.  A solo session is a fleet of one: all three public simulators
are thin wrappers over the same :class:`StreamingEngine`.

For fleets far beyond what per-frame events can carry,
:mod:`~repro.streaming.cohort` advances groups of statistically
identical clients in O(cohorts) work — proven against the exact engine
by tracer clients — with tail latencies rolled up through the
:mod:`~repro.streaming.sketch` quantile sketch.
"""

from .adaptive import (
    CONTROLLER_CHOICES,
    AdaptationState,
    AdaptiveSessionReport,
    AdaptiveStats,
    BufferController,
    ControllerContext,
    FixedController,
    RateController,
    ThroughputController,
    get_controller,
    simulate_adaptive_session,
)
from .engine import (
    FRAME_READY,
    PRICING_MODES,
    TRANSMIT_DONE,
    TRANSMIT_START,
    CodecStreamSource,
    Event,
    FrameSource,
    PrecomputedSource,
    StreamingEngine,
    StreamOutcome,
    StreamSpec,
)
from .cohort import (
    CohortFleetReport,
    CohortSpec,
    CohortSummary,
    plan_member_links,
    simulate_cohort_fleet,
    tracer_seed,
)
from .link import WIFI6_LINK, WIGIG_LINK, WirelessLink
from .loss import (
    LOSS_SPEC_KINDS,
    RECOVERY_CHOICES,
    ArqPolicy,
    Backoff,
    DropSkipPolicy,
    FecPolicy,
    LossStats,
    LossTrace,
    RecoveryPolicy,
    get_recovery_policy,
    parse_loss_spec,
)
from .reports import (
    REPORT_FORMAT_VERSION,
    register_report_type,
    report_from_json,
    report_to_json,
)
from .server import (
    SCHEDULER_CHOICES,
    ClientConfig,
    ClientReport,
    FairShareScheduler,
    FleetReport,
    LinkScheduler,
    PriorityScheduler,
    get_scheduler,
    simulate_fleet,
    solo_sustainable_fps,
)
from .session import (
    ENCODER_CHOICES,
    FrameTiming,
    SessionReport,
    build_streaming_codec,
    simulate_session,
)
from .sketch import QuantileSketch
from .traces import TRACE_SPEC_KINDS, BandwidthTrace, parse_trace_spec

__all__ = [
    "FRAME_READY",
    "TRANSMIT_START",
    "TRANSMIT_DONE",
    "PRICING_MODES",
    "Event",
    "FrameSource",
    "PrecomputedSource",
    "CodecStreamSource",
    "StreamSpec",
    "StreamOutcome",
    "StreamingEngine",
    "WIFI6_LINK",
    "WIGIG_LINK",
    "WirelessLink",
    "BandwidthTrace",
    "parse_trace_spec",
    "TRACE_SPEC_KINDS",
    "LossTrace",
    "parse_loss_spec",
    "LOSS_SPEC_KINDS",
    "RECOVERY_CHOICES",
    "Backoff",
    "RecoveryPolicy",
    "ArqPolicy",
    "FecPolicy",
    "DropSkipPolicy",
    "LossStats",
    "get_recovery_policy",
    "ENCODER_CHOICES",
    "FrameTiming",
    "SessionReport",
    "build_streaming_codec",
    "simulate_session",
    "CONTROLLER_CHOICES",
    "AdaptationState",
    "AdaptiveSessionReport",
    "AdaptiveStats",
    "BufferController",
    "ControllerContext",
    "FixedController",
    "RateController",
    "ThroughputController",
    "get_controller",
    "simulate_adaptive_session",
    "SCHEDULER_CHOICES",
    "ClientConfig",
    "ClientReport",
    "FairShareScheduler",
    "FleetReport",
    "LinkScheduler",
    "PriorityScheduler",
    "get_scheduler",
    "simulate_fleet",
    "solo_sustainable_fps",
    "REPORT_FORMAT_VERSION",
    "register_report_type",
    "report_to_json",
    "report_from_json",
    "QuantileSketch",
    "CohortSpec",
    "CohortSummary",
    "CohortFleetReport",
    "plan_member_links",
    "simulate_cohort_fleet",
    "tracer_seed",
]
