"""Remote-rendering streaming substrate (paper Sec. 2.2, Fig. 3)."""

from .link import WIFI6_LINK, WIGIG_LINK, WirelessLink
from .server import (
    SCHEDULER_CHOICES,
    ClientConfig,
    ClientReport,
    FairShareScheduler,
    FleetReport,
    LinkScheduler,
    PriorityScheduler,
    get_scheduler,
    simulate_fleet,
    solo_sustainable_fps,
)
from .session import (
    ENCODER_CHOICES,
    FrameTiming,
    SessionReport,
    build_streaming_codec,
    simulate_session,
)

__all__ = [
    "WIFI6_LINK",
    "WIGIG_LINK",
    "WirelessLink",
    "ENCODER_CHOICES",
    "FrameTiming",
    "SessionReport",
    "build_streaming_codec",
    "simulate_session",
    "SCHEDULER_CHOICES",
    "ClientConfig",
    "ClientReport",
    "FairShareScheduler",
    "FleetReport",
    "LinkScheduler",
    "PriorityScheduler",
    "get_scheduler",
    "simulate_fleet",
    "solo_sustainable_fps",
]
