"""Remote-rendering streaming substrate (paper Sec. 2.2, Fig. 3)."""

from .link import WIFI6_LINK, WIGIG_LINK, WirelessLink
from .session import ENCODER_CHOICES, FrameTiming, SessionReport, simulate_session

__all__ = [
    "WIFI6_LINK",
    "WIGIG_LINK",
    "WirelessLink",
    "ENCODER_CHOICES",
    "FrameTiming",
    "SessionReport",
    "simulate_session",
]
