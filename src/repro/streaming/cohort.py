"""Mean-field cohort engine: million-client fleets in O(cohorts) work.

The exact engine (:mod:`repro.streaming.engine`) pushes three heap
events per frame per stream, so a million-client fleet means hundreds
of millions of interpreted Python events — the classic interpreted-
inner-loop bottleneck.  This module replaces that loop with a
**cohort/mean-field fast path** for fleets of statistically identical
clients, proven against the exact engine by *tracer clients*:

* Clients with the same scene, codec/ladder rung, refresh rate,
  scheduling weight, and join/leave window form one
  :class:`CohortSpec`.  A cohort's members share one deterministic
  trajectory; only per-member jitter differs.
* Link contention is resolved **between scheduler-relevant events
  only**: cohort joins/leaves and bandwidth-trace boundaries cut the
  session into segments, and inside each segment a vectorized
  waterfilling pass (weighted max-min for ``fair``, strict order for
  ``priority``) splits capacity among cohorts.  Each cohort's share
  becomes an *effective member link* — constant, or a
  :class:`~repro.streaming.traces.BandwidthTrace` when the share
  changes across segments.
* Per-cohort state (backlog, adaptation rung, goodput EWMA) then
  advances through the **same recurrence** the exact engine's solo
  path uses, frame by frame on the effective member link — O(cohorts
  x frames) work, independent of member count.  Member jitter is
  drawn as vectorized matrices; on jitter-free links all members are
  bit-identical and aggregate as one weighted add per frame.
* The first ``n_tracers`` members of each cohort are **tracers**:
  their :class:`~repro.streaming.server.ClientReport` is produced by
  this module *and* reproducible by running
  :class:`~repro.streaming.engine.StreamingEngine` on the cohort's
  effective member link with :func:`tracer_seed` — bit for bit,
  jitter included, because the tracer RNG replicates the engine's
  ``SeedSequence.spawn`` construction exactly.  The equivalence suite
  (``tests/streaming/test_cohort_equivalence.py``) property-tests
  this.

Fleets shard over :func:`repro.parallel.worker_pool`: cohorts hash to
shards by name (CRC-32), every per-cohort computation is independent
of the shard layout (member links are planned globally, RNG streams
key on the *global* cohort index), and results merge in global cohort
order — so report JSON is byte-identical for any shard or job count.

Tail latency rolls up through a mergeable
:class:`~repro.streaming.sketch.QuantileSketch` instead of millions of
retained samples.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..parallel import gather, worker_pool
from .adaptive import RateController, get_controller
from .engine import (
    AdaptationState,
    AdaptiveStats,
    FrameTiming,
    frames_within_window,
    get_scheduler,
)
from .link import WIFI6_LINK, WirelessLink
from .loss import LossRuntime, RecoveryPolicy, get_recovery_policy
from .server import ClientReport
from .sketch import QuantileSketch
from .traces import BandwidthTrace
from .validation import validate_stream_timing, validate_stream_window

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..codecs.ladder import QualityLadder

__all__ = [
    "CohortSpec",
    "CohortSummary",
    "CohortFleetReport",
    "tracer_seed",
    "plan_member_links",
    "simulate_cohort_fleet",
]

#: Floor for an effective member link's rate: a fully starved cohort
#: (strict priority under overload) still needs a positive-bandwidth
#: link object; 1e-6 Mbps makes its backlog growth visibly pathological
#: without dividing by zero.
_MIN_MEMBER_RATE_MBPS = 1e-6

#: Member rows drawn per vectorized jitter batch, bounding peak memory
#: at ``chunk x frames`` doubles however large the cohort is.
_JITTER_CHUNK_MEMBERS = 65536


# -- cohort specification -----------------------------------------------


@dataclass(frozen=True)
class CohortSpec:
    """A group of statistically identical clients, advanced as one.

    Attributes
    ----------
    name:
        Unique cohort label; also the shard hash key.
    n_members:
        How many clients this cohort stands for.
    payloads:
        Per-frame encoded sizes of the shared representative stream:
        one tuple of rung payload bits per frame (best rung first),
        cycled when shorter than ``n_frames`` — the cohort analogue of
        :class:`~repro.streaming.engine.PrecomputedSource`.
    n_frames:
        Frames each member streams.
    target_fps:
        The members' shared display refresh rate.
    weight:
        Per-member scheduling weight; the cohort contends with
        aggregate weight ``weight * n_members``.
    encode_time_s:
        Server-side encode time charged to every frame.
    scene, codec:
        Labels carried into reports (not interpreted here).
    start_s:
        Session time the cohort's members join.
    stop_s:
        Session time they depart, or ``None`` to stream all frames.
    n_tracers:
        Members fully simulated as tracer clients (at most
        ``n_members``); their reports are bit-for-bit reproducible on
        the exact engine via :func:`tracer_seed`.
    rung_map:
        Ladder indices available in ``payloads``, in payload order
        (``None`` = identity) — same contract as
        :attr:`~repro.streaming.engine.StreamSpec.rung_map`.
    start_rung:
        Ladder index in effect before the first frame (adaptive runs).
    """

    name: str
    n_members: int
    payloads: tuple[tuple[int, ...], ...]
    n_frames: int
    target_fps: float = 72.0
    weight: float = 1.0
    encode_time_s: float = 0.0
    scene: str = ""
    codec: str = ""
    start_s: float = 0.0
    stop_s: float | None = None
    n_tracers: int = 1
    rung_map: tuple[int, ...] | None = None
    start_rung: int = 0

    def __post_init__(self):
        if not self.name:
            raise ValueError("cohort name must be non-empty")
        if self.n_members < 1:
            raise ValueError(
                f"cohort {self.name!r}: n_members must be >= 1, got {self.n_members}"
            )
        frames = tuple(
            tuple(int(bits) for bits in frame) for frame in self.payloads
        )
        if not frames:
            raise ValueError(f"cohort {self.name!r}: payloads must hold >= 1 frame")
        widths = {len(frame) for frame in frames}
        if len(widths) != 1:
            raise ValueError(
                f"cohort {self.name!r}: every frame must list the same number "
                f"of rungs, got {sorted(widths)}"
            )
        if any(bits < 0 for frame in frames for bits in frame):
            raise ValueError(f"cohort {self.name!r}: payload bits must be >= 0")
        object.__setattr__(self, "payloads", frames)
        validate_stream_timing(n_frames=self.n_frames, target_fps=self.target_fps)
        if self.weight <= 0:
            raise ValueError(f"cohort {self.name!r}: weight must be positive")
        if self.encode_time_s < 0:
            raise ValueError(
                f"cohort {self.name!r}: encode_time_s must be >= 0, "
                f"got {self.encode_time_s}"
            )
        if self.start_s < 0:
            raise ValueError(
                f"cohort {self.name!r}: start_s must be >= 0, got {self.start_s}"
            )
        validate_stream_window(self.start_s, self.stop_s, name=self.name)
        if not 0 <= self.n_tracers <= self.n_members:
            raise ValueError(
                f"cohort {self.name!r}: n_tracers must be in [0, n_members], "
                f"got {self.n_tracers}"
            )
        if self.rung_map is not None:
            object.__setattr__(
                self, "rung_map", tuple(int(i) for i in self.rung_map)
            )

    @property
    def interval_s(self) -> float:
        """The members' frame interval in seconds."""
        return 1.0 / self.target_fps

    @property
    def frames_to_stream(self) -> int:
        """Frames actually produced, after any ``stop_s`` departure."""
        return frames_within_window(
            self.n_frames, self.target_fps, self.start_s, self.stop_s
        )

    @property
    def end_s(self) -> float:
        """When the cohort's last frame is ready plus one interval.

        The cohort occupies the scheduler from ``start_s`` until the
        display-clock end of its final frame interval; this is the
        segment boundary its departure contributes.
        """
        return self.start_s + self.frames_to_stream * self.interval_s

    def pinned_mean_payload_bits(self) -> float:
        """Mean streamed payload at the starting rung, in bits.

        The demand estimate waterfilling charges the cohort with:
        adaptive cohorts may move off the starting rung, but demand
        only shapes *capacity shares*; correctness against the
        effective member link never depends on it.
        """
        width = len(self.payloads[0])
        rung_map = (
            self.rung_map if self.rung_map is not None else tuple(range(width))
        )
        local = (
            rung_map.index(self.start_rung) if self.start_rung in rung_map else 0
        )
        total_bits = sum(
            self.payloads[k % len(self.payloads)][local]
            for k in range(self.frames_to_stream)
        )
        return total_bits / self.frames_to_stream


def tracer_seed(seed: int, cohort_index: int, tracer_index: int) -> int:
    """Engine seed that reproduces one tracer on the exact engine.

    Running ``StreamingEngine(member_link).run([tracer_spec],
    seed=tracer_seed(seed, ci, ti))`` yields the identical
    :class:`~repro.streaming.engine.FrameTiming` rows (jitter draws
    included) as the cohort engine's tracer ``ti`` of cohort ``ci`` —
    the contract the equivalence suite checks.  Seeds are derived
    through ``SeedSequence`` entropy mixing, so they are deterministic,
    well spread, and independent of sharding.

    Parameters
    ----------
    seed:
        The fleet's master seed (>= 0).
    cohort_index:
        Global index of the cohort in the fleet's cohort order.
    tracer_index:
        Tracer slot within the cohort, ``0 <= tracer_index``.
    """
    if seed < 0 or cohort_index < 0 or tracer_index < 0:
        raise ValueError(
            f"seed components must be >= 0, got "
            f"({seed}, {cohort_index}, {tracer_index})"
        )
    entropy = np.random.SeedSequence([seed, cohort_index, tracer_index])
    return int(entropy.generate_state(1)[0])


# -- capacity planning: segments + waterfilling -------------------------


def _segment_bounds_s(cohorts: Sequence[CohortSpec], link: WirelessLink) -> np.ndarray:
    """Sorted segment boundaries: joins, departures, trace changes.

    These are exactly the scheduler-relevant events — between two
    consecutive boundaries the active set and the link rate are both
    constant, so one waterfilling pass prices the whole segment.
    """
    horizon_s = max(spec.end_s for spec in cohorts)
    bounds = {0.0, horizon_s}
    for spec in cohorts:
        bounds.add(spec.start_s)
        bounds.add(min(spec.end_s, horizon_s))
    if link.trace is not None:
        for time_s in link.trace.times_s:
            if 0.0 < float(time_s) < horizon_s:
                bounds.add(float(time_s))
    return np.asarray(sorted(bounds), dtype=np.float64)


def _fair_fill_bps(
    capacity_bps: float, demands_bps: np.ndarray, weights: np.ndarray
) -> tuple[np.ndarray, float]:
    """Weighted max-min (progressive filling) capped by demand.

    Returns the allocation and the leftover capacity once every
    cohort's demand is met (both in bits/second).
    """
    alloc = np.zeros_like(demands_bps)
    remaining_bps = float(capacity_bps)
    unsat = demands_bps > 0.0
    while np.any(unsat) and remaining_bps > 0.0:
        share = remaining_bps * weights[unsat] / float(np.sum(weights[unsat]))
        need = demands_bps[unsat] - alloc[unsat]
        grant = np.minimum(share, need)
        alloc[unsat] += grant
        remaining_bps -= float(np.sum(grant))
        satisfied = (demands_bps - alloc) <= 1e-9 * np.maximum(demands_bps, 1.0)
        newly = unsat & satisfied
        if not np.any(newly):
            break  # nobody capped: shares consumed all remaining capacity
        unsat = unsat & ~satisfied
    return alloc, max(0.0, remaining_bps)


def _priority_fill_bps(
    capacity_bps: float,
    demands_bps: np.ndarray,
    member_weights: np.ndarray,
) -> tuple[np.ndarray, float]:
    """Strict priority: heavier cohorts drink first, ties in order."""
    order = sorted(
        range(len(demands_bps)), key=lambda i: (-member_weights[i], i)
    )
    alloc = np.zeros_like(demands_bps)
    remaining_bps = float(capacity_bps)
    for i in order:
        grant = min(float(demands_bps[i]), remaining_bps)
        alloc[i] = grant
        remaining_bps -= grant
    return alloc, max(0.0, remaining_bps)


def plan_member_links(
    cohorts: Sequence[CohortSpec],
    link: WirelessLink,
    scheduler: str = "fair",
) -> list[WirelessLink]:
    """Effective per-member link of every cohort under contention.

    For each segment between scheduler-relevant events the shared
    link's capacity is waterfilled across the cohorts active in it
    (aggregate weight ``weight * n_members``, demand ``members x fps x
    mean payload``; leftover capacity redistributes weight-
    proportionally as burst headroom so an uncongested fleet is not
    artificially throttled to its mean demand).  A cohort's member then
    sees ``allocation / n_members`` bits per second — as a constant
    link when its share never changes, else as a traced link whose
    boundaries are the segment boundaries.

    Propagation and jitter carry over from the shared link unchanged:
    they are per-frame overheads, not contended resources.

    Parameters
    ----------
    cohorts:
        The fleet's cohorts, in global order.
    link:
        The shared (possibly traced) wireless link.
    scheduler:
        ``"fair"`` or ``"priority"`` — the cohort engine waterfills
        analytically, so only the built-in disciplines are supported.

    Returns
    -------
    list of WirelessLink
        One effective member link per cohort, in input order.
    """
    scheduler_name = get_scheduler(scheduler).name
    bounds_s = _segment_bounds_s(cohorts, link)
    n_segments = len(bounds_s) - 1
    n_cohorts = len(cohorts)
    starts_s = np.asarray([spec.start_s for spec in cohorts])
    ends_s = np.asarray([spec.end_s for spec in cohorts])
    members = np.asarray([spec.n_members for spec in cohorts], dtype=np.float64)
    member_weights = np.asarray([spec.weight for spec in cohorts])
    aggregate_weights = member_weights * members
    demands_bps = np.asarray(
        [
            spec.n_members * spec.target_fps * spec.pinned_mean_payload_bits()
            for spec in cohorts
        ]
    )

    member_rates_bps = np.zeros((n_cohorts, max(n_segments, 1)))
    for seg in range(n_segments):
        t0_s = float(bounds_s[seg])
        t1_s = float(bounds_s[seg + 1])
        mid_s = 0.5 * (t0_s + t1_s)
        active = (starts_s <= mid_s) & (mid_s < ends_s)
        if not np.any(active):
            continue
        capacity_bps = link.capacity_bits(t0_s, t1_s) / (t1_s - t0_s)
        if scheduler_name == "fair":
            alloc_bps, leftover_bps = _fair_fill_bps(
                capacity_bps, demands_bps[active], aggregate_weights[active]
            )
        elif scheduler_name == "priority":
            alloc_bps, leftover_bps = _priority_fill_bps(
                capacity_bps, demands_bps[active], member_weights[active]
            )
        else:  # pragma: no cover - get_scheduler already rejected it
            raise ValueError(
                f"cohort mode supports fair/priority, got {scheduler_name!r}"
            )
        if leftover_bps > 0.0:
            weights_active = aggregate_weights[active]
            alloc_bps = alloc_bps + leftover_bps * weights_active / float(
                np.sum(weights_active)
            )
        member_rates_bps[active, seg] = alloc_bps / members[active]

    links: list[WirelessLink] = []
    for ci, spec in enumerate(cohorts):
        rates_mbps = member_rates_bps[ci] / 1e6
        # Segments outside the cohort's presence carry no allocation;
        # extend the nearest active segment's rate so late frames that
        # drain past departure (a backlogged member) still price.
        active_segments = np.flatnonzero(rates_mbps > 0.0)
        if active_segments.size:
            first, last = int(active_segments[0]), int(active_segments[-1])
            rates_mbps[:first] = rates_mbps[first]
            rates_mbps[last + 1:] = rates_mbps[last]
        rates_mbps = np.maximum(rates_mbps, _MIN_MEMBER_RATE_MBPS)
        # Packet loss is per-member, not a contended resource: every
        # effective member link inherits the shared link's loss trace
        # unchanged, so tracers see the same erasure process the exact
        # engine would on that link.
        if np.all(rates_mbps == rates_mbps[0]):
            links.append(
                WirelessLink(
                    bandwidth_mbps=float(rates_mbps[0]),
                    propagation_ms=link.propagation_ms,
                    jitter_ms=link.jitter_ms,
                    loss=link.loss,
                )
            )
            continue
        trace_times_s = [0.0]
        trace_rates = [float(rates_mbps[0])]
        for seg in range(1, n_segments):
            if rates_mbps[seg] != trace_rates[-1]:
                trace_times_s.append(float(bounds_s[seg]))
                trace_rates.append(float(rates_mbps[seg]))
        links.append(
            WirelessLink.traced(
                BandwidthTrace(trace_times_s, trace_rates),
                propagation_ms=link.propagation_ms,
                jitter_ms=link.jitter_ms,
                loss=link.loss,
            )
        )
    return links


# -- per-cohort simulation ----------------------------------------------


@dataclass(frozen=True)
class CohortSummary:
    """Aggregate outcome of one cohort (every member, tracers included).

    Attributes
    ----------
    name, scene, codec:
        Labels from the :class:`CohortSpec`.
    n_members, n_tracers, weight, target_fps, start_s, stop_s:
        Echoed spec fields.
    frames_streamed:
        Frames each member actually produced.
    member_payload_bits:
        Total transmitted bits of *one* member over its stream.
    mean_serialization_s:
        Mean per-frame airtime on the effective member link.
    encode_time_s:
        Per-frame server encode time.
    member_link:
        The effective member link the cohort was priced on — run a
        tracer through the exact engine on this link to reproduce its
        report bit for bit.
    adaptive:
        The members' shared adaptation telemetry (``None`` if pinned).
    """

    name: str
    scene: str
    codec: str
    n_members: int
    n_tracers: int
    weight: float
    target_fps: float
    start_s: float
    stop_s: float | None
    frames_streamed: int
    member_payload_bits: int
    mean_serialization_s: float
    encode_time_s: float
    member_link: WirelessLink
    adaptive: AdaptiveStats | None = None

    @property
    def mean_payload_bits(self) -> float:
        """Mean per-frame transmitted payload of one member."""
        return self.member_payload_bits / self.frames_streamed

    @property
    def sustainable_fps(self) -> float:
        """Frame rate one member sustains on its effective link.

        Same bound as
        :attr:`~repro.streaming.session.SessionReport.sustainable_fps`:
        the reciprocal of the slower of mean serialization and encode.
        """
        bottleneck_s = max(self.mean_serialization_s, self.encode_time_s)
        return 1.0 / bottleneck_s if bottleneck_s > 0 else float("inf")

    @property
    def meets_target(self) -> bool:
        """Whether the members sustain their target refresh rate."""
        return self.sustainable_fps >= self.target_fps

    @property
    def traffic_bits(self) -> int:
        """Bits transmitted by the whole cohort."""
        return self.n_members * self.member_payload_bits


@dataclass(frozen=True)
class _CohortOutcome:
    """One cohort's full result, as returned by a shard worker."""

    index: int
    summary: CohortSummary
    tracers: tuple[ClientReport, ...]
    sketch: QuantileSketch


def _simulate_cohort(
    index: int,
    spec: CohortSpec,
    member_link: WirelessLink,
    policy: RateController | None,
    ladder: "QualityLadder | None",
    seed: int,
    n_cohorts: int,
    recovery: RecoveryPolicy | None = None,
) -> _CohortOutcome:
    """Advance one cohort through the solo recurrence on its member link.

    The deterministic trajectory below mirrors the exact engine's
    single-stream path (``StreamingEngine._run_solo``) operation for
    operation — same queue-wait source, same serialization call, same
    backlog clamp — which is what makes tracer reports bit-for-bit
    reproducible there.  Jitter never feeds back into backlog or the
    controller (it is post-transmission overhead), so the trajectory is
    shared by every member and computed once.

    On a lossy member link the trajectory serializes **wire** bits
    (FEC inflation is deterministic, so it stays member-shared), while
    the stochastic recovery delay — erasure draws, ARQ rounds,
    reordering — lands only on tracers, whose per-frame draw order
    (loss before jitter) replicates the engine's exactly.  Bulk
    members keep the deterministic trajectory: the mean-field
    approximation prices their airtime and backlog truthfully but
    folds no recovery delay into the latency sketch; tracers carry the
    loss telemetry the fleet reports on.
    """
    interval_s = spec.interval_s
    state: AdaptationState | None = None
    if policy is not None:
        if ladder is None:  # pragma: no cover - caller always pairs them
            raise ValueError("a controller requires a ladder")
        state = AdaptationState(policy, ladder, spec.start_rung, interval_s)
    loss_trace = member_link.loss
    width = len(spec.payloads[0])
    rung_map = spec.rung_map if spec.rung_map is not None else tuple(range(width))
    backlog_s = 0.0
    frame_rows: list[tuple[int, int, str, float, float]] = []
    for k in range(spec.frames_to_stream):
        time_s = spec.start_s + k * interval_s
        bits = spec.payloads[k % len(spec.payloads)]
        if state is None:
            payload, rung_name = bits[0], ""
        else:
            chosen = state.choose(k, time_s, bits, member_link.at(time_s) * 1e6)
            local = rung_map.index(chosen) if chosen in rung_map else 0
            payload, rung_name = bits[local], state.ladder[rung_map[local]].name
        queue_wait_s = state.backlog_s if state is not None else backlog_s
        send_start_s = time_s + queue_wait_s
        wire_bits = (
            recovery.wire_bits(payload, loss_trace.packet_bits)
            if loss_trace is not None and recovery is not None
            else payload
        )
        serialization_s = member_link.serialization_time_s(
            wire_bits, start_s=send_start_s
        )
        if state is not None:
            state.record(payload, serialization_s)
        else:
            backlog_s = max(0.0, backlog_s + serialization_s - interval_s)
        frame_rows.append((k, payload, rung_name, queue_wait_s, serialization_s))

    stats = state.stats() if state is not None else None

    # Tracer members: replicate the engine's per-stream RNG spawn
    # (SeedSequence(seed).spawn(1)[0] for a one-stream run) so jitter
    # draws — one half-normal per frame, in frame order — match bit
    # for bit.  On a lossy link the loss draws precede the jitter draw
    # within each frame, again matching the engine.
    tracers: list[ClientReport] = []
    for ti in range(spec.n_tracers):
        rng = np.random.default_rng(
            np.random.SeedSequence(tracer_seed(seed, index, ti)).spawn(1)[0]
        )
        loss_runtime = (
            LossRuntime(
                loss_trace,
                recovery,
                interval_s=interval_s,
                rtt_s=member_link.rtt_s,
            )
            if loss_trace is not None and recovery is not None
            else None
        )
        timings = []
        for k, payload, rung_name, queue_wait_s, serialization_s in frame_rows:
            recovery_s = (
                loss_runtime.on_frame(
                    rng, payload, serialization_s, spec.start_s + k * interval_s
                )
                if loss_runtime is not None
                else 0.0
            )
            overhead_s = member_link.overhead_time_s(rng)
            timings.append(
                FrameTiming(
                    frame_index=k,
                    payload_bits=payload,
                    encode_time_s=spec.encode_time_s,
                    serialization_time_s=serialization_s,
                    transmit_time_s=queue_wait_s + serialization_s + overhead_s
                    + recovery_s,
                    rung=rung_name,
                )
            )
        tracers.append(
            ClientReport(
                encoder=spec.codec,
                frames=timings,
                target_fps=spec.target_fps,
                name=f"{spec.name}/tracer{ti}",
                scene=spec.scene,
                weight=spec.weight,
                adaptive=stats,
                start_s=spec.start_s,
                stop_s=spec.stop_s,
                loss=loss_runtime.stats() if loss_runtime is not None else None,
            )
        )

    sketch = QuantileSketch()
    if member_link.jitter_ms == 0.0 and loss_trace is None:
        # Every member is bit-identical: one weighted add per frame.
        overhead_s = member_link.overhead_time_s(None)
        latencies_s = np.asarray(
            [
                spec.encode_time_s + (queue_wait_s + serialization_s + overhead_s)
                for _, _, _, queue_wait_s, serialization_s in frame_rows
            ]
        )
        sketch.add(latencies_s, weight=float(spec.n_members))
    else:
        # Tracers carry their own draws; bulk members draw vectorized
        # half-normal jitter matrices from the cohort's spawned stream
        # (keyed on the global cohort index — shard-independent).
        for report in tracers:
            sketch.add(
                np.asarray([timing.motion_to_photon_s for timing in report.frames])
            )
        n_bulk = spec.n_members - spec.n_tracers
        if n_bulk > 0:
            bulk_rng = np.random.default_rng(
                np.random.SeedSequence(seed).spawn(n_cohorts)[index]
            )
            base_transmit_s = np.asarray(
                [
                    queue_wait_s + serialization_s
                    for _, _, _, queue_wait_s, serialization_s in frame_rows
                ]
            )
            propagation_s = member_link.propagation_ms * 1e-3
            drawn = 0
            while drawn < n_bulk:
                rows = min(_JITTER_CHUNK_MEMBERS, n_bulk - drawn)
                jitter_s = (
                    np.abs(
                        bulk_rng.normal(
                            0.0,
                            member_link.jitter_ms,
                            size=(rows, len(base_transmit_s)),
                        )
                    )
                    * 1e-3
                )
                latency_s = spec.encode_time_s + (
                    base_transmit_s[None, :] + (propagation_s + jitter_s)
                )
                sketch.add(latency_s.ravel())
                drawn += rows

    member_payload_bits = int(sum(row[1] for row in frame_rows))
    mean_serialization_s = float(np.mean([row[4] for row in frame_rows]))
    summary = CohortSummary(
        name=spec.name,
        scene=spec.scene,
        codec=spec.codec,
        n_members=spec.n_members,
        n_tracers=spec.n_tracers,
        weight=spec.weight,
        target_fps=spec.target_fps,
        start_s=spec.start_s,
        stop_s=spec.stop_s,
        frames_streamed=spec.frames_to_stream,
        member_payload_bits=member_payload_bits,
        mean_serialization_s=mean_serialization_s,
        encode_time_s=spec.encode_time_s,
        member_link=member_link,
        adaptive=stats,
    )
    return _CohortOutcome(
        index=index, summary=summary, tracers=tuple(tracers), sketch=sketch
    )


def _simulate_shard(
    tasks: list[tuple[int, CohortSpec, WirelessLink]],
    policy: RateController | None,
    ladder: "QualityLadder | None",
    seed: int,
    n_cohorts: int,
    recovery: RecoveryPolicy | None = None,
) -> list[_CohortOutcome]:
    """Run one shard's cohorts (a picklable process-pool task)."""
    return [
        _simulate_cohort(
            index, spec, member_link, policy, ladder, seed, n_cohorts, recovery
        )
        for index, spec, member_link in tasks
    ]


# -- the fleet report ---------------------------------------------------


@dataclass(frozen=True)
class CohortFleetReport:
    """Aggregate outcome of a cohort-mode fleet simulation.

    Mirrors :class:`~repro.streaming.server.FleetReport` at fleet
    scale: per-cohort summaries instead of per-client reports, tracer
    :class:`~repro.streaming.server.ClientReport` rows for the fully
    simulated members, and a latency
    :class:`~repro.streaming.sketch.QuantileSketch` instead of every
    retained sample.  Deliberately carries no shard or job count —
    the result (and its JSON) is identical for any execution layout.
    """

    cohorts: tuple[CohortSummary, ...]
    tracers: tuple[ClientReport, ...]
    link: WirelessLink
    scheduler: str
    seed: int
    latency: QuantileSketch
    controller: str | None = None

    @property
    def n_cohorts(self) -> int:
        """Number of cohorts simulated."""
        return len(self.cohorts)

    @property
    def n_clients(self) -> int:
        """Total clients the cohorts stand for."""
        return sum(summary.n_members for summary in self.cohorts)

    @property
    def is_adaptive(self) -> bool:
        """Whether the fleet ran under a rate controller."""
        return self.controller is not None

    @property
    def is_lossy(self) -> bool:
        """Whether the fleet ran on a lossy link (tracers carry stats)."""
        return any(report.loss is not None for report in self.tracers)

    @property
    def tracer_resyncs(self) -> int:
        """Total decoder resyncs across the fleet's tracer clients.

        Tracers are the fully simulated members, so this is a sampled
        view of the fleet's resync pressure, not a member-weighted
        total — bulk members advance through the deterministic
        mean-field trajectory and make no loss draws.
        """
        return sum(
            report.loss.resyncs
            for report in self.tracers
            if report.loss is not None
        )

    @property
    def tracer_delivered_quality(self) -> float | None:
        """Mean delivered-frame fraction across tracers (lossy only)."""
        values = [
            report.loss.delivered_quality
            for report in self.tracers
            if report.loss is not None
        ]
        if not values:
            return None
        return float(np.mean(values))

    def cohort(self, name: str) -> CohortSummary:
        """Look up one cohort's summary by name.

        Raises
        ------
        KeyError
            If no cohort carries ``name``.
        """
        for summary in self.cohorts:
            if summary.name == name:
                return summary
        raise KeyError(
            f"no cohort {name!r}; have {[s.name for s in self.cohorts]}"
        )

    def tracer(self, name: str) -> ClientReport:
        """Look up one tracer's report by name (``cohort/tracerN``)."""
        for report in self.tracers:
            if report.name == name:
                return report
        raise KeyError(
            f"no tracer {name!r}; have {[r.name for r in self.tracers]}"
        )

    @property
    def clients_meeting_target(self) -> int:
        """How many clients sustain their target refresh rate."""
        return sum(
            summary.n_members for summary in self.cohorts if summary.meets_target
        )

    @property
    def total_traffic_bits(self) -> int:
        """Total bits transmitted across every member and frame."""
        return int(sum(summary.traffic_bits for summary in self.cohorts))

    @property
    def mean_latency_s(self) -> float:
        """Exact mean motion-to-photon latency across every member frame."""
        return self.latency.mean()

    def tail_latency_s(self, percentile: float = 95.0) -> float:
        """Sketched latency percentile across every member frame.

        Parameters
        ----------
        percentile:
            Percentile in ``(0, 100]``.
        """
        if not 0 < percentile <= 100:
            raise ValueError(f"percentile must be in (0, 100], got {percentile}")
        return self.latency.quantile(percentile / 100.0)

    @property
    def total_stall_time_s(self) -> float:
        """Summed member stall time across adaptive cohorts."""
        return float(
            sum(
                summary.n_members * summary.adaptive.stall_time_s
                for summary in self.cohorts
                if summary.adaptive is not None
            )
        )

    @property
    def mean_quality(self) -> float | None:
        """Member-weighted mean delivered quality (``None`` if pinned)."""
        pairs = [
            (summary.n_members, summary.adaptive.mean_quality)
            for summary in self.cohorts
            if summary.adaptive is not None
        ]
        if not pairs:
            return None
        total = sum(n for n, _ in pairs)
        return float(sum(n * q for n, q in pairs) / total)

    def to_json(self, indent: int | None = 2) -> str:
        """Serialize through :mod:`repro.streaming.reports`.

        Tagged ``"report": "cohort-fleet"`` so the generic loader
        reads it back alongside every other report type.
        """
        from .reports import report_to_json

        return report_to_json(self, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "CohortFleetReport":
        """Load a report serialized by :meth:`to_json`."""
        from .reports import report_from_json

        report = report_from_json(text)
        if not isinstance(report, cls):
            raise TypeError(
                f"payload decodes to {type(report).__name__}, not {cls.__name__}"
            )
        return report

    def summary(self) -> str:
        """One-line fleet health readout."""
        text = (
            f"{self.clients_meeting_target}/{self.n_clients} clients meet target "
            f"({self.n_cohorts} cohorts) | "
            f"p95 latency {self.tail_latency_s(95.0) * 1e3:.2f} ms | "
            f"scheduler {self.scheduler}"
        )
        if self.is_adaptive:
            text += (
                f" | controller {self.controller}"
                f" | stall {self.total_stall_time_s * 1e3:.1f} ms"
            )
            quality = self.mean_quality
            if quality is not None:
                text += f" | quality {quality:.3f}"
        if self.is_lossy:
            text += f" | tracer resyncs {self.tracer_resyncs}"
            delivered = self.tracer_delivered_quality
            if delivered is not None:
                text += f" | delivered {delivered:.3f}"
        return text


# -- the public entry point ---------------------------------------------


def simulate_cohort_fleet(
    cohorts: Sequence[CohortSpec],
    link: WirelessLink = WIFI6_LINK,
    *,
    scheduler: str = "fair",
    seed: int = 0,
    controller: str | RateController | None = None,
    ladder: "QualityLadder | None" = None,
    recovery: "str | RecoveryPolicy | None" = None,
    n_shards: int = 1,
    n_jobs: int = 1,
) -> CohortFleetReport:
    """Simulate a fleet of cohorts over one shared link.

    Capacity is planned once (:func:`plan_member_links`), then every
    cohort advances independently on its effective member link —
    hashed to ``n_shards`` shards by cohort name and fanned over a
    :func:`repro.parallel.worker_pool` of ``n_jobs`` processes.  All
    per-cohort randomness keys on the global cohort index, and results
    merge in global cohort order, so the report (and its JSON) is
    byte-identical for every ``(n_shards, n_jobs)`` combination —
    property-tested in ``tests/cohort/test_sharding.py``.

    Parameters
    ----------
    cohorts:
        The fleet's cohorts; names must be unique.
    link:
        The shared wireless link (trace, propagation, and jitter carry
        into every effective member link).
    scheduler:
        ``"fair"`` or ``"priority"``.
    seed:
        Master seed (>= 0) for tracer and member jitter streams.
    controller:
        Optional rate-control policy (name or instance); every cohort
        then adapts from its ``start_rung`` over ``ladder``.
    ladder:
        Quality ladder for adaptive runs; defaults to
        :meth:`~repro.codecs.ladder.QualityLadder.default`.  Only
        valid with a controller.
    recovery:
        Loss recovery policy (name from
        :data:`~repro.streaming.loss.RECOVERY_CHOICES` or a
        :class:`~repro.streaming.loss.RecoveryPolicy`); only valid
        when ``link`` carries a loss trace.  Tracer clients then draw
        the same loss process the exact engine would on their member
        link and carry :class:`~repro.streaming.loss.LossStats` in
        their reports; bulk members price wire bits deterministically.
    n_shards:
        Shards cohorts are hashed into (per-AP/cell granularity).
    n_jobs:
        Process-pool width; ``1`` runs the shards inline.

    Returns
    -------
    CohortFleetReport
        Cohort summaries, tracer reports, and sketched latency.
    """
    cohorts = tuple(cohorts)
    if not cohorts:
        raise ValueError("a cohort fleet needs at least one cohort")
    names = [spec.name for spec in cohorts]
    if len(set(names)) != len(names):
        duplicates = sorted({n for n in names if names.count(n) > 1})
        raise ValueError(f"duplicate cohort names: {duplicates}")
    if seed < 0:
        raise ValueError(f"seed must be >= 0, got {seed}")
    if not isinstance(n_shards, int) or n_shards < 1:
        raise ValueError(f"n_shards must be a positive integer, got {n_shards!r}")
    if not isinstance(n_jobs, int) or n_jobs < 1:
        raise ValueError(f"n_jobs must be a positive integer, got {n_jobs!r}")
    if controller is None and ladder is not None:
        raise ValueError("ladder only applies when a controller is given")

    recovery_policy: RecoveryPolicy | None = None
    if link.loss is not None:
        recovery_policy = get_recovery_policy(recovery)
    elif recovery is not None:
        raise ValueError(
            "a recovery policy needs a lossy link; set WirelessLink.loss "
            "(e.g. LossTrace.bernoulli(0.01)) or drop the recovery argument"
        )

    policy: RateController | None = None
    if controller is not None:
        from ..codecs.ladder import QualityLadder

        policy = get_controller(controller)
        ladder = ladder if ladder is not None else QualityLadder.default()
        for spec in cohorts:
            if not 0 <= spec.start_rung < len(ladder):
                raise ValueError(
                    f"cohort {spec.name!r}: start_rung {spec.start_rung} "
                    f"outside ladder of {len(ladder)} rungs"
                )

    engine_scheduler = get_scheduler(scheduler)
    member_links = plan_member_links(cohorts, link, engine_scheduler.name)

    shard_tasks: list[list[tuple[int, CohortSpec, WirelessLink]]] = [
        [] for _ in range(n_shards)
    ]
    for index, (spec, member_link) in enumerate(zip(cohorts, member_links)):
        shard = zlib.crc32(spec.name.encode("utf-8")) % n_shards
        shard_tasks[shard].append((index, spec, member_link))
    shards = [tasks for tasks in shard_tasks if tasks]

    n_cohorts = len(cohorts)
    if n_jobs == 1 or len(shards) == 1:
        shard_results = [
            _simulate_shard(tasks, policy, ladder, seed, n_cohorts, recovery_policy)
            for tasks in shards
        ]
    else:
        with worker_pool(min(n_jobs, len(shards))) as pool:
            futures = [
                pool.submit(
                    _simulate_shard,
                    tasks,
                    policy,
                    ladder,
                    seed,
                    n_cohorts,
                    recovery_policy,
                )
                for tasks in shards
            ]
            shard_results = gather(futures)

    by_index = {
        outcome.index: outcome
        for outcomes in shard_results
        for outcome in outcomes
    }
    fleet_sketch = QuantileSketch()
    summaries: list[CohortSummary] = []
    tracers: list[ClientReport] = []
    for index in range(n_cohorts):
        outcome = by_index[index]
        fleet_sketch.merge(outcome.sketch)
        summaries.append(outcome.summary)
        tracers.extend(outcome.tracers)
    return CohortFleetReport(
        cohorts=tuple(summaries),
        tracers=tuple(tracers),
        link=link,
        scheduler=engine_scheduler.name,
        seed=seed,
        latency=fleet_sketch,
        controller=policy.name if policy is not None else None,
    )
