"""Streaming quantile sketch for fleet-scale latency roll-ups.

A million-client fleet produces millions of per-frame latencies; the
:class:`~repro.streaming.server.FleetReport` tail-latency fields used
to materialize every one of them just to answer ``p95``.  This module
provides the constant-memory alternative: a deterministic, mergeable
t-digest-style :class:`QuantileSketch` that keeps at most
``max_centroids`` weighted centroids and answers quantile queries by
interpolating between them.

Design constraints, in order:

* **Determinism.**  Two runs that feed the same values in the same
  order produce byte-identical sketches (compression is a pure
  function of the sorted centroid list — no randomness, no wall
  clocks), so sketch-backed reports keep the repository's two-runs-
  serialize-identically hyperproperty.
* **Exactness at small scale.**  Compression only starts once the
  centroid count exceeds ``max_centroids``; below that every sample is
  its own (possibly weighted) centroid and quantile queries reproduce
  ``numpy.percentile`` over the expanded population — so small fleets
  keep their historic exact tail-latency values bit for bit.
* **Mergeability.**  Shards build per-cohort sketches independently;
  :meth:`merge` folds them together.  Merging in a fixed (cohort)
  order yields byte-identical results for any shard count.

Accuracy: the compression bound keeps each centroid's quantile span
within ``4 q (1 - q) / max_centroids``, the t-digest ``k2`` scale —
tails stay sharp (spans shrink toward q = 0 and q = 1) and p50–p99
queries land well within 1% relative error at the default budget
(property-tested in ``tests/cohort/test_sketch.py``).
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

__all__ = ["QuantileSketch"]


class QuantileSketch:
    """Mergeable t-digest-style sketch over a stream of weighted values.

    Parameters
    ----------
    max_centroids:
        Compression budget.  The sketch stores every sample exactly
        until the centroid count exceeds this, then merges adjacent
        centroids under the t-digest ``k2`` size bound.
    """

    def __init__(self, max_centroids: int = 512):
        if max_centroids < 8:
            raise ValueError(f"max_centroids must be >= 8, got {max_centroids}")
        self.max_centroids = int(max_centroids)
        self._means = np.empty(0, dtype=np.float64)
        self._weights = np.empty(0, dtype=np.float64)
        self._pending: list[tuple[np.ndarray, np.ndarray]] = []
        self._compressed = False
        self._total_weight = 0.0
        self._weighted_sum = 0.0
        self._min_value = float("inf")
        self._max_value = float("-inf")

    # -- ingest ---------------------------------------------------------

    def add(self, values: float | Sequence[float] | np.ndarray, weight: float = 1.0) -> None:
        """Fold values into the sketch, each carrying ``weight``.

        A weight above 1 records that many statistically identical
        observations at once — how a jitter-free cohort accounts for
        all of its members in O(frames) work.
        """
        if weight <= 0:
            raise ValueError(f"weight must be positive, got {weight}")
        values = np.atleast_1d(np.asarray(values, dtype=np.float64))
        if values.size == 0:
            return
        if not np.all(np.isfinite(values)):
            raise ValueError("sketch values must be finite")
        self.add_weighted(values, np.full(values.size, float(weight)))

    def add_weighted(
        self, values: Sequence[float] | np.ndarray, weights: Sequence[float] | np.ndarray
    ) -> None:
        """Fold values with per-value weights into the sketch."""
        values = np.atleast_1d(np.asarray(values, dtype=np.float64)).ravel()
        weights = np.atleast_1d(np.asarray(weights, dtype=np.float64)).ravel()
        if values.size == 0:
            return
        if values.shape != weights.shape:
            raise ValueError(
                f"{values.size} values but {weights.size} weights"
            )
        if not np.all(np.isfinite(values)):
            raise ValueError("sketch values must be finite")
        if np.any(weights <= 0):
            raise ValueError("sketch weights must be positive")
        self._pending.append((values, weights))
        self._total_weight += float(np.sum(weights))
        self._weighted_sum += float(np.sum(values * weights))
        self._min_value = min(self._min_value, float(np.min(values)))
        self._max_value = max(self._max_value, float(np.max(values)))

    def merge(self, other: "QuantileSketch") -> None:
        """Fold another sketch's centroids into this one.

        Merging per-cohort sketches in a fixed order is deterministic
        for any shard assignment, which is what keeps sharded fleet
        reports byte-identical to single-process runs.
        """
        other._flush()
        if not other._means.size:
            return
        # Carry the donor's tracked aggregates verbatim rather than
        # recomputing them from its (sorted, possibly compressed)
        # centroids: summation order stays that of the original stream,
        # so merging shards reproduces the single-stream sums bit for
        # bit, and min/max survive compression.
        self._pending.append((other._means.copy(), other._weights.copy()))
        self._total_weight += other._total_weight
        self._weighted_sum += other._weighted_sum
        self._min_value = min(self._min_value, other._min_value)
        self._max_value = max(self._max_value, other._max_value)
        # A compressed donor's centroids are sample *means*, not exact
        # samples, so the merged sketch loses exactness too.
        self._compressed = self._compressed or other._compressed

    # -- queries --------------------------------------------------------

    @property
    def total_weight(self) -> float:
        """Summed weight of every observation folded in so far."""
        return self._total_weight

    @property
    def n_centroids(self) -> int:
        """Centroids currently retained (post-compression)."""
        self._flush()
        return int(self._means.size)

    def mean(self) -> float:
        """Exact weighted mean of every observation (never sketched)."""
        if self._total_weight <= 0:
            raise ValueError("cannot query an empty sketch")
        return self._weighted_sum / self._total_weight

    def quantile(self, q: float) -> float:
        """Value at quantile ``q`` in ``[0, 1]``.

        Exact (``numpy.percentile`` semantics over the weighted
        population) while the sketch is uncompressed; once compression
        has run it interpolates between centroid means at their
        cumulative-weight midpoints, pinning the extremes to the
        tracked true min/max.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        self._flush()
        if self._means.size == 0:
            raise ValueError("cannot query an empty sketch")
        if self._means.size == 1:
            return float(self._means[0])
        if not self._compressed:
            # Every centroid is still `weight` identical copies of an
            # exact sample: emulate numpy.percentile over that expanded
            # population without materializing it, so small fleets keep
            # their historic exact percentiles bit for bit.
            cum = np.cumsum(self._weights)
            position = q * (self._total_weight - 1.0)
            low = np.floor(position)
            last = self._means.size - 1
            value_low = float(
                self._means[min(int(np.searchsorted(cum, low, side="right")), last)]
            )
            value_high = float(
                self._means[
                    min(int(np.searchsorted(cum, np.ceil(position), side="right")), last)
                ]
            )
            return value_low + (value_high - value_low) * float(position - low)
        cum = np.cumsum(self._weights)
        centers = cum - self._weights / 2.0
        target = q * self._total_weight
        if target <= centers[0]:
            span = centers[0]
            frac = target / span if span > 0 else 1.0
            return float(self._min_value + (self._means[0] - self._min_value) * frac)
        if target >= centers[-1]:
            span = self._total_weight - centers[-1]
            frac = (target - centers[-1]) / span if span > 0 else 0.0
            return float(self._means[-1] + (self._max_value - self._means[-1]) * frac)
        index = int(np.searchsorted(centers, target, side="right")) - 1
        step = centers[index + 1] - centers[index]
        frac = (target - centers[index]) / step if step > 0 else 0.0
        return float(
            self._means[index] + (self._means[index + 1] - self._means[index]) * frac
        )

    # -- compression ----------------------------------------------------

    def _flush(self) -> None:
        """Fold pending batches into the sorted centroid arrays."""
        if not self._pending:
            return
        means = np.concatenate([self._means] + [v for v, _ in self._pending])
        weights = np.concatenate([self._weights] + [w for _, w in self._pending])
        self._pending = []
        order = np.argsort(means, kind="stable")
        self._means = means[order]
        self._weights = weights[order]
        if self._means.size > self.max_centroids:
            self._compress()

    def _compress(self) -> None:
        """Merge adjacent centroids until the budget holds.

        One k2 pass alone cannot guarantee the cap — the bound shrinks
        toward the tails, so extreme samples survive as singletons — so
        the bound is relaxed geometrically until the count fits.  Still
        a pure function of the sorted centroid list, hence
        deterministic.
        """
        self._compressed = True
        scale = 1.0
        while self._means.size > self.max_centroids:
            self._compress_pass(scale)
            scale *= 2.0

    def _compress_pass(self, scale: float) -> None:
        """Greedy left-to-right adjacent merge under ``scale`` x k2."""
        means = self._means
        weights = self._weights
        total = self._total_weight
        out_means: list[float] = []
        out_weights: list[float] = []
        cur_mean = float(means[0])
        cur_weight = float(weights[0])
        cum = 0.0  # weight fully emitted so far
        for mean, weight in zip(means[1:], weights[1:]):
            candidate = cur_weight + float(weight)
            q_mid = (cum + candidate / 2.0) / total
            limit = scale * 4.0 * total * q_mid * (1.0 - q_mid) / self.max_centroids
            if candidate <= limit:
                cur_mean = (cur_mean * cur_weight + float(mean) * float(weight)) / candidate
                cur_weight = candidate
            else:
                out_means.append(cur_mean)
                out_weights.append(cur_weight)
                cum += cur_weight
                cur_mean = float(mean)
                cur_weight = float(weight)
        out_means.append(cur_mean)
        out_weights.append(cur_weight)
        self._means = np.asarray(out_means, dtype=np.float64)
        self._weights = np.asarray(out_weights, dtype=np.float64)

    # -- serialization and equality -------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready mapping (flushed centroid form)."""
        self._flush()
        return {
            "max_centroids": self.max_centroids,
            "means": [float(m) for m in self._means],
            "weights": [float(w) for w in self._weights],
            "compressed": self._compressed,
            "total_weight": self._total_weight,
            "weighted_sum": self._weighted_sum,
            "min": None if not np.isfinite(self._min_value) else self._min_value,
            "max": None if not np.isfinite(self._max_value) else self._max_value,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "QuantileSketch":
        """Rebuild a sketch serialized by :meth:`to_dict`."""
        sketch = cls(max_centroids=int(data["max_centroids"]))
        sketch._means = np.asarray(data["means"], dtype=np.float64)
        sketch._weights = np.asarray(data["weights"], dtype=np.float64)
        sketch._compressed = bool(data["compressed"])
        sketch._total_weight = float(data["total_weight"])
        sketch._weighted_sum = float(data["weighted_sum"])
        sketch._min_value = float("inf") if data["min"] is None else float(data["min"])
        sketch._max_value = float("-inf") if data["max"] is None else float(data["max"])
        return sketch

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QuantileSketch):
            return NotImplemented
        self._flush()
        other._flush()
        return (
            self.max_centroids == other.max_centroids
            and np.array_equal(self._means, other._means)
            and np.array_equal(self._weights, other._weights)
            and self._compressed == other._compressed
            and self._total_weight == other._total_weight
            and self._weighted_sum == other._weighted_sum
            and self._min_value == other._min_value
            and self._max_value == other._max_value
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        self._flush()
        return (
            f"QuantileSketch(n_centroids={self._means.size}, "
            f"total_weight={self._total_weight:g})"
        )
