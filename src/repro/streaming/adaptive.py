"""Adaptive rate control: pick each frame's codec rung from feedback.

The session and fleet simulators historically pinned every client to
one codec for its whole stream.  Real streaming stacks (DASH and its
descendants) instead adapt: they watch what the network delivers and
pick the next chunk's representation accordingly.  This module closes
that loop at frame granularity:

* a :class:`RateController` is a *pure policy*: given this frame's
  per-rung encoded sizes and the measured link state, it returns the
  index of the rung to transmit.  Built-ins: ``fixed`` (today's
  pinned-codec behavior), ``buffer`` (queue-occupancy driven), and
  ``throughput`` (EWMA of measured goodput, clamped by the MAC's
  reported instantaneous PHY rate);
* an :class:`~repro.streaming.engine.AdaptationState` carries the
  per-client feedback loop — transmit backlog, goodput EWMA, rung
  dwell times, stalls — and is shared by the single-session and fleet
  simulators (both dispatch through
  :class:`~repro.streaming.engine.StreamingEngine`), so both use the
  same controller inputs and report the same metrics.  Under the
  default ``pricing="backlog"`` the fleet now queues each client's
  payloads behind that client's own backlog exactly as the solo
  session always did; the legacy round-priced fleet semantics remain
  available as ``pricing="round"``;
* :func:`simulate_adaptive_session` streams one client over a (usually
  time-varying) link and reports rung switches, time-in-rung, stall
  time, and delivered perceptual quality on top of the usual
  :class:`~repro.streaming.session.SessionReport` numbers.

The server encodes **every** ladder rung for each frame and transmits
one — exactly what a real ladder encoder does — so controllers may use
the current frame's actual rung sizes when choosing, not stale
estimates.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Sequence

from ..codecs.ladder import LadderEncodeCache, QualityLadder, encode_stereo_bits
from ..core.pipeline import PerceptualEncoder
from ..scenes.display import QUEST2_DISPLAY, DisplayGeometry
from ..scenes.library import Scene
from .engine import (
    AdaptationState,
    AdaptiveStats,
    ControllerContext,
    PrecomputedSource,
    StreamingEngine,
    StreamSpec,
)
from .link import WirelessLink
from .session import SessionReport
from .validation import validate_stream_timing

__all__ = [
    "ControllerContext",
    "RateController",
    "FixedController",
    "BufferController",
    "ThroughputController",
    "CONTROLLER_CHOICES",
    "get_controller",
    "AdaptiveStats",
    "AdaptationState",
    "AdaptiveSessionReport",
    "simulate_adaptive_session",
]


class RateController(abc.ABC):
    """Policy choosing the next frame's ladder rung.

    Controllers are **stateless**: every signal they may react to
    arrives in the :class:`ControllerContext`, and all feedback state
    (backlog, goodput EWMA) lives in the per-client
    :class:`AdaptationState`.  One controller instance can therefore
    drive any number of clients.
    """

    #: Registry name (the CLI's ``--controller`` spelling).
    name: str = ""

    #: Weight of the newest sample in the goodput EWMA that
    #: :class:`AdaptationState` maintains on this controller's behalf
    #: (and feeds back via ``ControllerContext.goodput_bps``).
    #: Controllers that react to goodput may override it.
    ewma_alpha: float = 0.3

    @abc.abstractmethod
    def select_rung(self, ladder: QualityLadder, ctx: ControllerContext) -> int:
        """Return the ladder index to transmit for this frame.

        Parameters
        ----------
        ladder:
            The quality ladder rungs are drawn from.
        ctx:
            The frame's sizes and measured link state.

        Returns
        -------
        int
            A rung index; the caller clamps it into range.
        """


class FixedController(RateController):
    """Always the same rung — the pre-adaptive pinned-codec behavior.

    Parameters
    ----------
    rung:
        Ladder index or rung/codec name to pin.  ``None`` (default)
        keeps whatever rung the client started on — for fleet clients
        that is the rung matching their configured codec, which makes
        ``fixed`` reproduce the non-adaptive simulation bit for bit.
    """

    name = "fixed"

    def __init__(self, rung: int | str | None = None):
        self.rung = rung

    def select_rung(self, ladder: QualityLadder, ctx: ControllerContext) -> int:
        """Return the pinned rung (or hold the client's current one)."""
        if self.rung is None:
            return ctx.current_rung
        if isinstance(self.rung, str):
            return ladder.index_of(self.rung)
        return int(self.rung)


class BufferController(RateController):
    """Queue-occupancy-driven adaptation (BBA-style).

    Watches the transmit backlog — how many seconds of encoded frames
    are waiting for air time — and steps one rung down when it exceeds
    ``high_s``, one rung up when it falls below ``low_s``, holding in
    between.  The one-rung-at-a-time rule keeps switching smooth, at
    the price of reacting over several frames.

    Parameters
    ----------
    high_s:
        Backlog (seconds) above which the controller steps down to a
        cheaper rung.
    low_s:
        Backlog below which it steps back up toward quality.
    """

    name = "buffer"

    def __init__(self, high_s: float = 0.01, low_s: float = 0.002):
        if not 0 <= low_s < high_s:
            raise ValueError(
                f"need 0 <= low_s < high_s, got low_s={low_s}, high_s={high_s}"
            )
        self.high_s = high_s
        self.low_s = low_s

    def select_rung(self, ladder: QualityLadder, ctx: ControllerContext) -> int:
        """Step down on high backlog, up on low, else hold."""
        if ctx.backlog_s > self.high_s:
            return ctx.current_rung + 1
        if ctx.backlog_s < self.low_s:
            return ctx.current_rung - 1
        return ctx.current_rung


class ThroughputController(RateController):
    """Goodput-driven adaptation with a PHY-rate clamp.

    Estimates deliverable bits per frame interval as ``safety`` times
    the smaller of (a) the EWMA of measured goodput — what this client
    actually achieved, which under contention is its *share* — and (b)
    the MAC's instantaneous PHY rate, which reacts to fades within the
    same frame.  It then transmits the best rung whose exact encoded
    size fits that budget; when none does, it sends the smallest
    payload on offer (per-frame bitrates are content-dependent, so the
    smallest rung is not always the last one).

    Parameters
    ----------
    safety:
        Fraction of the estimated capacity to actually spend, in
        ``(0, 1]``; headroom against estimation error.
    ewma_alpha:
        Weight of the newest goodput sample in the EWMA, in
        ``(0, 1]``.  The effective adaptation window is roughly
        ``interval / alpha`` seconds.
    """

    name = "throughput"

    def __init__(self, safety: float = 0.8, ewma_alpha: float = 0.3):
        if not 0.0 < safety <= 1.0:
            raise ValueError(f"safety must be in (0, 1], got {safety}")
        if not 0.0 < ewma_alpha <= 1.0:
            raise ValueError(f"ewma_alpha must be in (0, 1], got {ewma_alpha}")
        self.safety = safety
        self.ewma_alpha = ewma_alpha

    def select_rung(self, ladder: QualityLadder, ctx: ControllerContext) -> int:
        """Best rung whose exact size fits the estimated capacity."""
        estimate_bps = ctx.link_bps
        if ctx.goodput_bps is not None:
            estimate_bps = min(estimate_bps, ctx.goodput_bps)
        budget_bits = self.safety * estimate_bps * ctx.interval_s
        for index, bits in enumerate(ctx.rung_bits):
            if bits <= budget_bits:
                return index
        # Nothing fits: shed as much load as possible (ties break
        # toward the higher-quality rung).
        return min(range(len(ctx.rung_bits)), key=lambda i: (ctx.rung_bits[i], i))


_CONTROLLERS: dict[str, type[RateController]] = {
    cls.name: cls for cls in (FixedController, BufferController, ThroughputController)
}

#: Valid ``--controller`` spellings.
CONTROLLER_CHOICES = tuple(_CONTROLLERS)


def get_controller(controller: str | RateController, **kwargs) -> RateController:
    """Resolve a controller name (or pass an instance through).

    Parameters
    ----------
    controller:
        A name from :data:`CONTROLLER_CHOICES` or a ready
        :class:`RateController` instance.
    kwargs:
        Constructor arguments for a named controller; rejected when an
        instance is passed.

    Raises
    ------
    ValueError
        For unknown names, or kwargs alongside an instance.
    """
    if isinstance(controller, RateController):
        if kwargs:
            raise ValueError(
                "controller kwargs have no effect when an instance is passed"
            )
        return controller
    try:
        factory = _CONTROLLERS[controller]
    except KeyError:
        raise ValueError(
            f"unknown controller {controller!r}; expected one of {CONTROLLER_CHOICES}"
        ) from None
    return factory(**kwargs)


@dataclass(frozen=True)
class AdaptiveSessionReport(SessionReport):
    """A :class:`~repro.streaming.session.SessionReport` plus adaptation.

    All aggregate properties of the base report apply unchanged; the
    ``adaptive`` field adds the rate-control telemetry and ``ladder``
    names the rungs that were available.
    """

    adaptive: AdaptiveStats | None = None
    ladder: tuple[str, ...] = ()


def simulate_adaptive_session(
    scene: Scene,
    link: WirelessLink,
    controller: str | RateController = "throughput",
    ladder: QualityLadder | None = None,
    n_frames: int = 8,
    height: int = 192,
    width: int = 192,
    target_fps: float = 72.0,
    display: DisplayGeometry = QUEST2_DISPLAY,
    perceptual_encoder: PerceptualEncoder | None = None,
    encode_throughput_mpixels_s: float = 500.0,
    seed: int = 0,
    start_rung: str | int | None = None,
    loop_frames: int | None = None,
    rung_streams: Sequence[tuple[int, ...]] | None = None,
    encode_cache: LadderEncodeCache | None = None,
    recovery=None,
) -> AdaptiveSessionReport:
    """Stream one client with per-frame rate control over a link.

    Each frame interval the server renders a stereo frame, encodes it
    at **every** ladder rung, asks the controller which rung to
    transmit, and ships that payload over the (possibly time-varying)
    link.  Transmissions queue behind any backlog from earlier frames,
    so sustained over-subscription shows up as stall time rather than
    silently overlapping transmissions.

    Parameters
    ----------
    scene:
        The scene to render.
    link:
        The wireless link; attach a trace for a fading channel.
    controller:
        Rate-control policy (name or instance).
    ladder:
        Quality ladder; defaults to
        :meth:`~repro.codecs.ladder.QualityLadder.default`.
    n_frames:
        Frames to stream.
    height, width:
        Per-eye render resolution.
    target_fps:
        Display refresh rate; sets the frame interval.
    display:
        Headset geometry for the eccentricity map.
    perceptual_encoder:
        Shared perceptual encoder for the ladder's perceptual/BD rungs.
    encode_throughput_mpixels_s:
        Server-side encoder rate (as in
        :func:`~repro.streaming.session.simulate_session`).
    seed:
        Seed for the link-jitter stream.
    start_rung:
        Rung (index or name) in effect before the first frame;
        defaults to the best rung.
    loop_frames:
        Encode only this many unique frames and cycle them over the
        timeline — decouples simulated duration from encode cost for
        long fading studies.  ``None`` encodes every frame.
    rung_streams:
        Precomputed per-frame ladder sizes (one tuple of payload bits
        per frame, best rung first), e.g. from a previous run over the
        same scene and ladder.  Skips rendering and encoding entirely;
        shorter streams cycle like ``loop_frames``.  Callers sweeping
        several policies over identical content use this to pay the
        ladder-encode cost once.
    encode_cache:
        Shared :class:`~repro.codecs.ladder.LadderEncodeCache` for the
        session's scene/ladder/resolution.  Frames are encoded through
        the cache (and therefore at most once across every controller
        and scheduler sweep sharing it).  Mutually exclusive with
        ``rung_streams``; ``ladder`` defaults to the cache's ladder and
        must match it when given.
    recovery:
        Loss recovery policy (name from
        :data:`~repro.streaming.loss.RECOVERY_CHOICES` or a
        :class:`~repro.streaming.loss.RecoveryPolicy`); only valid
        when ``link`` carries a loss trace.

    Returns
    -------
    AdaptiveSessionReport
        Per-frame timings plus :class:`AdaptiveStats`.
    """
    validate_stream_timing(
        n_frames=n_frames,
        target_fps=target_fps,
        encode_throughput_mpixels_s=encode_throughput_mpixels_s,
    )
    if loop_frames is not None and loop_frames <= 0:
        raise ValueError(f"loop_frames must be positive, got {loop_frames}")
    if encode_cache is not None and rung_streams is not None:
        raise ValueError("encode_cache and rung_streams are mutually exclusive")
    if encode_cache is not None:
        if ladder is None:
            ladder = encode_cache.ladder
        elif ladder is not encode_cache.ladder:
            raise ValueError("ladder must match the encode_cache's ladder")
        if (
            encode_cache.scene is not scene
            or (encode_cache.height, encode_cache.width) != (height, width)
            or encode_cache.display != display
        ):
            raise ValueError(
                "encode_cache was built for a different scene, resolution, "
                "or display than this session"
            )

    policy = get_controller(controller)
    ladder = ladder if ladder is not None else QualityLadder.default()
    interval_s = 1.0 / target_fps
    if start_rung is None:
        initial = 0
    elif isinstance(start_rung, str):
        initial = ladder.index_of(start_rung)
    else:
        initial = int(start_rung)
    state = AdaptationState(policy, ladder, initial, interval_s)

    n_unique = min(n_frames, loop_frames) if loop_frames is not None else n_frames
    if rung_streams is not None:
        rung_streams = [tuple(frame_bits) for frame_bits in rung_streams]
        if not rung_streams:
            raise ValueError("rung_streams must hold at least one frame")
        if any(len(frame_bits) != len(ladder) for frame_bits in rung_streams):
            raise ValueError(
                f"rung_streams entries must have one size per rung "
                f"({len(ladder)} rungs)"
            )
    elif encode_cache is not None:
        # The shared cache pays the ladder-encode cost at most once per
        # unique frame across every sweep that reuses it.
        rung_streams = [encode_cache.rung_bits(index) for index in range(n_unique)]
    else:
        # Encode the whole ladder for each unique frame; long sessions
        # can cycle a short scene loop instead of paying encode cost
        # per frame.  Pass perceptual_encoder through as-is (None
        # included): the ladder's codec cache is keyed on encoder
        # identity, so a fresh default encoder per call would defeat
        # instance reuse across repeated sweeps.
        codecs = [
            ladder.build_codec(i, perceptual_encoder) for i in range(len(ladder))
        ]
        eccentricity = display.eccentricity_map(height, width)
        rung_streams = []
        for index in range(n_unique):
            eyes = scene.render_stereo(height, width, frame=index)
            rung_streams.append(
                encode_stereo_bits(codecs, eyes, eccentricity, display)
            )

    # One adaptive stream through the shared kernel, under the same
    # backlog pricing the fleet uses: payloads queue behind the
    # stream's own transmit backlog.
    spec = StreamSpec(
        name="session",
        source=PrecomputedSource(rung_streams),
        n_frames=n_frames,
        target_fps=target_fps,
        encode_time_s=2 * height * width / (encode_throughput_mpixels_s * 1e6),
        adaptation=state,
    )
    outcome = StreamingEngine(link, pricing="backlog", recovery=recovery).run(
        [spec], seed=seed
    )[0]
    return AdaptiveSessionReport(
        encoder=f"adaptive:{policy.name}",
        frames=outcome.frames,
        target_fps=target_fps,
        loss=outcome.loss,
        adaptive=outcome.adaptive,
        ladder=ladder.names,
    )
