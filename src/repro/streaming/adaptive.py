"""Adaptive rate control: pick each frame's codec rung from feedback.

The session and fleet simulators historically pinned every client to
one codec for its whole stream.  Real streaming stacks (DASH and its
descendants) instead adapt: they watch what the network delivers and
pick the next chunk's representation accordingly.  This module closes
that loop at frame granularity:

* a :class:`RateController` is a *pure policy*: given this frame's
  per-rung encoded sizes and the measured link state, it returns the
  index of the rung to transmit.  Built-ins: ``fixed`` (today's
  pinned-codec behavior), ``buffer`` (queue-occupancy driven), and
  ``throughput`` (EWMA of measured goodput, clamped by the MAC's
  reported instantaneous PHY rate);
* an :class:`AdaptationState` carries the per-client feedback loop —
  transmit backlog, goodput EWMA, rung dwell times, stalls — and is
  shared by the single-session and fleet simulators, so both use the
  same controller inputs and report the same metrics.  (Transport
  pricing still differs by design: a single session queues each
  payload behind its own backlog, while the fleet — like the
  pre-adaptive engine it reproduces bit for bit under ``fixed`` —
  prices every round's payloads as offered together at the round
  start, with backlog feeding the controllers and the stall metric
  rather than the scheduler.);
* :func:`simulate_adaptive_session` streams one client over a (usually
  time-varying) link and reports rung switches, time-in-rung, stall
  time, and delivered perceptual quality on top of the usual
  :class:`~repro.streaming.session.SessionReport` numbers.

The server encodes **every** ladder rung for each frame and transmits
one — exactly what a real ladder encoder does — so controllers may use
the current frame's actual rung sizes when choosing, not stale
estimates.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..codecs.ladder import QualityLadder, encode_stereo_bits
from ..core.pipeline import PerceptualEncoder
from ..scenes.display import QUEST2_DISPLAY, DisplayGeometry
from ..scenes.library import Scene
from .link import WirelessLink
from .session import FrameTiming, SessionReport

__all__ = [
    "ControllerContext",
    "RateController",
    "FixedController",
    "BufferController",
    "ThroughputController",
    "CONTROLLER_CHOICES",
    "get_controller",
    "AdaptiveStats",
    "AdaptationState",
    "AdaptiveSessionReport",
    "simulate_adaptive_session",
]


@dataclass(frozen=True)
class ControllerContext:
    """Everything a rate controller may look at when picking a rung.

    Attributes
    ----------
    frame_index:
        Zero-based index of the frame about to be transmitted.
    time_s:
        Session time at the start of this frame interval.
    interval_s:
        Frame interval (``1 / target_fps``) in seconds.
    rung_bits:
        This frame's encoded payload per ladder rung, best rung first —
        the server encodes the whole ladder, so these are exact sizes,
        not estimates.
    backlog_s:
        Transmit-queue occupancy in seconds: how far behind the
        display clock the client's transmissions are running.
    goodput_bps:
        EWMA of measured delivered goodput in bits/second, or ``None``
        before the first frame completes.
    link_bps:
        The MAC's reported instantaneous PHY rate in bits/second — the
        cross-layer hint real Wi-Fi rate adaptation exposes.  Under
        contention the achievable share is lower; ``goodput_bps``
        captures that.
    current_rung:
        The rung index used for the previous frame (or the starting
        rung on frame 0).
    """

    frame_index: int
    time_s: float
    interval_s: float
    rung_bits: tuple[int, ...]
    backlog_s: float
    goodput_bps: float | None
    link_bps: float
    current_rung: int


class RateController(abc.ABC):
    """Policy choosing the next frame's ladder rung.

    Controllers are **stateless**: every signal they may react to
    arrives in the :class:`ControllerContext`, and all feedback state
    (backlog, goodput EWMA) lives in the per-client
    :class:`AdaptationState`.  One controller instance can therefore
    drive any number of clients.
    """

    #: Registry name (the CLI's ``--controller`` spelling).
    name: str = ""

    #: Weight of the newest sample in the goodput EWMA that
    #: :class:`AdaptationState` maintains on this controller's behalf
    #: (and feeds back via ``ControllerContext.goodput_bps``).
    #: Controllers that react to goodput may override it.
    ewma_alpha: float = 0.3

    @abc.abstractmethod
    def select_rung(self, ladder: QualityLadder, ctx: ControllerContext) -> int:
        """Return the ladder index to transmit for this frame.

        Parameters
        ----------
        ladder:
            The quality ladder rungs are drawn from.
        ctx:
            The frame's sizes and measured link state.

        Returns
        -------
        int
            A rung index; the caller clamps it into range.
        """


class FixedController(RateController):
    """Always the same rung — the pre-adaptive pinned-codec behavior.

    Parameters
    ----------
    rung:
        Ladder index or rung/codec name to pin.  ``None`` (default)
        keeps whatever rung the client started on — for fleet clients
        that is the rung matching their configured codec, which makes
        ``fixed`` reproduce the non-adaptive simulation bit for bit.
    """

    name = "fixed"

    def __init__(self, rung: int | str | None = None):
        self.rung = rung

    def select_rung(self, ladder: QualityLadder, ctx: ControllerContext) -> int:
        """Return the pinned rung (or hold the client's current one)."""
        if self.rung is None:
            return ctx.current_rung
        if isinstance(self.rung, str):
            return ladder.index_of(self.rung)
        return int(self.rung)


class BufferController(RateController):
    """Queue-occupancy-driven adaptation (BBA-style).

    Watches the transmit backlog — how many seconds of encoded frames
    are waiting for air time — and steps one rung down when it exceeds
    ``high_s``, one rung up when it falls below ``low_s``, holding in
    between.  The one-rung-at-a-time rule keeps switching smooth, at
    the price of reacting over several frames.

    Parameters
    ----------
    high_s:
        Backlog (seconds) above which the controller steps down to a
        cheaper rung.
    low_s:
        Backlog below which it steps back up toward quality.
    """

    name = "buffer"

    def __init__(self, high_s: float = 0.01, low_s: float = 0.002):
        if not 0 <= low_s < high_s:
            raise ValueError(
                f"need 0 <= low_s < high_s, got low_s={low_s}, high_s={high_s}"
            )
        self.high_s = high_s
        self.low_s = low_s

    def select_rung(self, ladder: QualityLadder, ctx: ControllerContext) -> int:
        """Step down on high backlog, up on low, else hold."""
        if ctx.backlog_s > self.high_s:
            return ctx.current_rung + 1
        if ctx.backlog_s < self.low_s:
            return ctx.current_rung - 1
        return ctx.current_rung


class ThroughputController(RateController):
    """Goodput-driven adaptation with a PHY-rate clamp.

    Estimates deliverable bits per frame interval as ``safety`` times
    the smaller of (a) the EWMA of measured goodput — what this client
    actually achieved, which under contention is its *share* — and (b)
    the MAC's instantaneous PHY rate, which reacts to fades within the
    same frame.  It then transmits the best rung whose exact encoded
    size fits that budget; when none does, it sends the smallest
    payload on offer (per-frame bitrates are content-dependent, so the
    smallest rung is not always the last one).

    Parameters
    ----------
    safety:
        Fraction of the estimated capacity to actually spend, in
        ``(0, 1]``; headroom against estimation error.
    ewma_alpha:
        Weight of the newest goodput sample in the EWMA, in
        ``(0, 1]``.  The effective adaptation window is roughly
        ``interval / alpha`` seconds.
    """

    name = "throughput"

    def __init__(self, safety: float = 0.8, ewma_alpha: float = 0.3):
        if not 0.0 < safety <= 1.0:
            raise ValueError(f"safety must be in (0, 1], got {safety}")
        if not 0.0 < ewma_alpha <= 1.0:
            raise ValueError(f"ewma_alpha must be in (0, 1], got {ewma_alpha}")
        self.safety = safety
        self.ewma_alpha = ewma_alpha

    def select_rung(self, ladder: QualityLadder, ctx: ControllerContext) -> int:
        """Best rung whose exact size fits the estimated capacity."""
        estimate_bps = ctx.link_bps
        if ctx.goodput_bps is not None:
            estimate_bps = min(estimate_bps, ctx.goodput_bps)
        budget_bits = self.safety * estimate_bps * ctx.interval_s
        for index, bits in enumerate(ctx.rung_bits):
            if bits <= budget_bits:
                return index
        # Nothing fits: shed as much load as possible (ties break
        # toward the higher-quality rung).
        return min(range(len(ctx.rung_bits)), key=lambda i: (ctx.rung_bits[i], i))


_CONTROLLERS: dict[str, type[RateController]] = {
    cls.name: cls for cls in (FixedController, BufferController, ThroughputController)
}

#: Valid ``--controller`` spellings.
CONTROLLER_CHOICES = tuple(_CONTROLLERS)


def get_controller(controller: str | RateController, **kwargs) -> RateController:
    """Resolve a controller name (or pass an instance through).

    Parameters
    ----------
    controller:
        A name from :data:`CONTROLLER_CHOICES` or a ready
        :class:`RateController` instance.
    kwargs:
        Constructor arguments for a named controller; rejected when an
        instance is passed.

    Raises
    ------
    ValueError
        For unknown names, or kwargs alongside an instance.
    """
    if isinstance(controller, RateController):
        if kwargs:
            raise ValueError(
                "controller kwargs have no effect when an instance is passed"
            )
        return controller
    try:
        factory = _CONTROLLERS[controller]
    except KeyError:
        raise ValueError(
            f"unknown controller {controller!r}; expected one of {CONTROLLER_CHOICES}"
        ) from None
    return factory(**kwargs)


@dataclass(frozen=True)
class AdaptiveStats:
    """Adaptation outcome of one client's stream.

    Attributes
    ----------
    controller:
        Name of the policy that drove the stream.
    rungs:
        Rung name transmitted for each frame, in order.
    rung_switches:
        How many frames used a different rung than their predecessor.
    time_in_rung:
        Display time (seconds) attributed to each rung name.
    stall_time_s:
        Total time playback fell *further* behind the display clock —
        the rebuffering metric of the streaming literature at frame
        granularity.  Counted as transmit-backlog growth, so a
        constant pipeline delay is charged once, not every frame.
    mean_quality:
        Mean of the transmitted rungs' nominal quality scores.
    """

    controller: str
    rungs: tuple[str, ...]
    rung_switches: int
    time_in_rung: dict[str, float]
    stall_time_s: float
    mean_quality: float


class AdaptationState:
    """Per-client feedback loop shared by the session and fleet paths.

    Owns everything the controller reads (backlog, goodput EWMA,
    current rung) and everything the reports show (switch counts, rung
    dwell times, stall time, delivered quality).  The simulators drive
    it with two calls per frame: :meth:`choose` before transmitting,
    :meth:`record` once the scheduler has priced the transmission.

    Parameters
    ----------
    controller:
        The (stateless) policy instance.
    ladder:
        The quality ladder rungs are drawn from.
    start_rung:
        Rung index in effect before the first frame.
    interval_s:
        Frame interval (``1 / target_fps``) in seconds.
    """

    def __init__(
        self,
        controller: RateController,
        ladder: QualityLadder,
        start_rung: int,
        interval_s: float,
    ):
        if not 0 <= start_rung < len(ladder):
            raise ValueError(
                f"start_rung {start_rung} outside ladder of {len(ladder)} rungs"
            )
        if interval_s <= 0:
            raise ValueError(f"interval_s must be positive, got {interval_s}")
        self.controller = controller
        self.ladder = ladder
        self.interval_s = interval_s
        self.rung = start_rung
        self.backlog_s = 0.0
        self.goodput_bps: float | None = None
        self.rung_names: list[str] = []
        self.rung_switches = 0
        self.time_in_rung: dict[str, float] = {}
        self.stall_time_s = 0.0
        self._quality_sum = 0.0

    def choose(
        self,
        frame_index: int,
        time_s: float,
        rung_bits: tuple[int, ...],
        link_bps: float,
    ) -> int:
        """Pick (and commit to) the rung for this frame.

        Parameters
        ----------
        frame_index:
            Zero-based frame number.
        time_s:
            Session time at the interval start.
        rung_bits:
            Exact encoded size of this frame at every rung.
        link_bps:
            Instantaneous PHY rate at ``time_s`` in bits/second.

        Returns
        -------
        int
            The chosen rung index (clamped into the ladder).
        """
        ctx = ControllerContext(
            frame_index=frame_index,
            time_s=time_s,
            interval_s=self.interval_s,
            rung_bits=tuple(rung_bits),
            backlog_s=self.backlog_s,
            goodput_bps=self.goodput_bps,
            link_bps=link_bps,
            current_rung=self.rung,
        )
        chosen = int(self.controller.select_rung(self.ladder, ctx))
        chosen = max(0, min(chosen, len(self.ladder) - 1))
        if self.rung_names and chosen != self.rung:
            self.rung_switches += 1
        self.rung = chosen
        return chosen

    def record(self, payload_bits: int, drain_s: float) -> None:
        """Fold one transmitted frame's timing back into the loop.

        Updates the goodput EWMA with this frame's delivered rate, adds
        any deadline overrun to the stall total, and rolls the backlog
        forward: a frame whose transmission (queued behind the backlog)
        completes after the next display refresh leaves the excess
        queued.

        Stall is a *throughput* metric: it accrues only while the
        transmit backlog is **growing** — each frame contributes how
        much further behind the display clock its transmission left
        the stream, so a persistent one-interval pipeline delay is
        charged once, not once per frame.  Fixed propagation and
        jitter overhead pipeline across frames — they shift latency,
        not sustainable rate — so they are excluded too, mirroring the
        serialization-vs-encode bound of
        :attr:`~repro.streaming.session.SessionReport.sustainable_fps`.

        Parameters
        ----------
        payload_bits:
            Bits actually transmitted (the chosen rung's size).
        drain_s:
            Scheduler-assigned time for this payload to leave the air
            (contended time under a fleet scheduler).
        """
        rung = self.ladder[self.rung]
        self.rung_names.append(rung.name)
        self._quality_sum += rung.quality
        self.time_in_rung[rung.name] = (
            self.time_in_rung.get(rung.name, 0.0) + self.interval_s
        )
        new_backlog_s = max(0.0, self.backlog_s + drain_s - self.interval_s)
        self.stall_time_s += max(0.0, new_backlog_s - self.backlog_s)
        if drain_s > 0 and payload_bits > 0:
            sample = payload_bits / drain_s
            if self.goodput_bps is None:
                self.goodput_bps = sample
            else:
                self.goodput_bps += self.controller.ewma_alpha * (
                    sample - self.goodput_bps
                )
        self.backlog_s = new_backlog_s

    def stats(self) -> AdaptiveStats:
        """Freeze the accumulated telemetry into an :class:`AdaptiveStats`."""
        n_frames = len(self.rung_names)
        return AdaptiveStats(
            controller=self.controller.name,
            rungs=tuple(self.rung_names),
            rung_switches=self.rung_switches,
            time_in_rung=dict(self.time_in_rung),
            stall_time_s=self.stall_time_s,
            mean_quality=self._quality_sum / n_frames if n_frames else 0.0,
        )


@dataclass(frozen=True)
class AdaptiveSessionReport(SessionReport):
    """A :class:`~repro.streaming.session.SessionReport` plus adaptation.

    All aggregate properties of the base report apply unchanged; the
    ``adaptive`` field adds the rate-control telemetry and ``ladder``
    names the rungs that were available.
    """

    adaptive: AdaptiveStats | None = None
    ladder: tuple[str, ...] = ()


def simulate_adaptive_session(
    scene: Scene,
    link: WirelessLink,
    controller: str | RateController = "throughput",
    ladder: QualityLadder | None = None,
    n_frames: int = 8,
    height: int = 192,
    width: int = 192,
    target_fps: float = 72.0,
    display: DisplayGeometry = QUEST2_DISPLAY,
    perceptual_encoder: PerceptualEncoder | None = None,
    encode_throughput_mpixels_s: float = 500.0,
    seed: int = 0,
    start_rung: str | int | None = None,
    loop_frames: int | None = None,
    rung_streams: Sequence[tuple[int, ...]] | None = None,
) -> AdaptiveSessionReport:
    """Stream one client with per-frame rate control over a link.

    Each frame interval the server renders a stereo frame, encodes it
    at **every** ladder rung, asks the controller which rung to
    transmit, and ships that payload over the (possibly time-varying)
    link.  Transmissions queue behind any backlog from earlier frames,
    so sustained over-subscription shows up as stall time rather than
    silently overlapping transmissions.

    Parameters
    ----------
    scene:
        The scene to render.
    link:
        The wireless link; attach a trace for a fading channel.
    controller:
        Rate-control policy (name or instance).
    ladder:
        Quality ladder; defaults to
        :meth:`~repro.codecs.ladder.QualityLadder.default`.
    n_frames:
        Frames to stream.
    height, width:
        Per-eye render resolution.
    target_fps:
        Display refresh rate; sets the frame interval.
    display:
        Headset geometry for the eccentricity map.
    perceptual_encoder:
        Shared perceptual encoder for the ladder's perceptual/BD rungs.
    encode_throughput_mpixels_s:
        Server-side encoder rate (as in
        :func:`~repro.streaming.session.simulate_session`).
    seed:
        Seed for the link-jitter stream.
    start_rung:
        Rung (index or name) in effect before the first frame;
        defaults to the best rung.
    loop_frames:
        Encode only this many unique frames and cycle them over the
        timeline — decouples simulated duration from encode cost for
        long fading studies.  ``None`` encodes every frame.
    rung_streams:
        Precomputed per-frame ladder sizes (one tuple of payload bits
        per frame, best rung first), e.g. from a previous run over the
        same scene and ladder.  Skips rendering and encoding entirely;
        shorter streams cycle like ``loop_frames``.  Callers sweeping
        several policies over identical content use this to pay the
        ladder-encode cost once.

    Returns
    -------
    AdaptiveSessionReport
        Per-frame timings plus :class:`AdaptiveStats`.
    """
    if n_frames <= 0:
        raise ValueError(f"n_frames must be positive, got {n_frames}")
    if target_fps <= 0:
        raise ValueError(f"target_fps must be positive, got {target_fps}")
    if encode_throughput_mpixels_s <= 0:
        raise ValueError("encode_throughput_mpixels_s must be positive")
    if loop_frames is not None and loop_frames <= 0:
        raise ValueError(f"loop_frames must be positive, got {loop_frames}")

    engine = get_controller(controller)
    ladder = ladder if ladder is not None else QualityLadder.default()
    interval_s = 1.0 / target_fps
    if start_rung is None:
        initial = 0
    elif isinstance(start_rung, str):
        initial = ladder.index_of(start_rung)
    else:
        initial = int(start_rung)
    state = AdaptationState(engine, ladder, initial, interval_s)

    rng = np.random.default_rng(seed)
    encode_rate_pixels_s = encode_throughput_mpixels_s * 1e6
    encode_time = 2 * height * width / encode_rate_pixels_s

    if rung_streams is not None:
        rung_streams = [tuple(frame_bits) for frame_bits in rung_streams]
        if not rung_streams:
            raise ValueError("rung_streams must hold at least one frame")
        if any(len(frame_bits) != len(ladder) for frame_bits in rung_streams):
            raise ValueError(
                f"rung_streams entries must have one size per rung "
                f"({len(ladder)} rungs)"
            )
        n_unique = len(rung_streams)
    else:
        # Encode the whole ladder for each unique frame; long sessions
        # can cycle a short scene loop instead of paying encode cost
        # per frame.
        encoder = (
            perceptual_encoder if perceptual_encoder is not None else PerceptualEncoder()
        )
        codecs = [ladder.build_codec(i, encoder) for i in range(len(ladder))]
        eccentricity = display.eccentricity_map(height, width)
        n_unique = min(n_frames, loop_frames) if loop_frames is not None else n_frames
        rung_streams = []
        for index in range(n_unique):
            eyes = scene.render_stereo(height, width, frame=index)
            rung_streams.append(
                encode_stereo_bits(codecs, eyes, eccentricity, display)
            )

    frames = []
    for index in range(n_frames):
        time_s = index * interval_s
        rung_bits = rung_streams[index % n_unique]
        rung = state.choose(index, time_s, rung_bits, link.at(time_s) * 1e6)
        payload = rung_bits[rung]
        # The payload queues behind the existing backlog before it can
        # start serializing; the wait is part of this frame's latency
        # (transmit time) but not of its airtime (serialization).
        queue_wait_s = state.backlog_s
        send_start_s = time_s + queue_wait_s
        serialization = link.serialization_time_s(payload, start_s=send_start_s)
        overhead = link.overhead_time_s(rng)
        frames.append(
            FrameTiming(
                frame_index=index,
                payload_bits=payload,
                encode_time_s=encode_time,
                serialization_time_s=serialization,
                transmit_time_s=queue_wait_s + serialization + overhead,
                rung=ladder[rung].name,
            )
        )
        state.record(payload, serialization)

    return AdaptiveSessionReport(
        encoder=f"adaptive:{engine.name}",
        frames=frames,
        target_fps=target_fps,
        adaptive=state.stats(),
        ladder=ladder.names,
    )
