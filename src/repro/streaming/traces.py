"""Time-varying link capacity: bandwidth traces for fading channels.

The constant-bandwidth :class:`~repro.streaming.link.WirelessLink` is
the right model for a benchmark, but real Wi-Fi fades: rate adaptation
drops the PHY rate when the channel degrades, neighbors steal airtime,
and people walk between the headset and the access point.  A
:class:`BandwidthTrace` captures that as a piecewise-constant bandwidth
profile — step patterns, a two-state Markov channel, or a measured
trace loaded from a file — and answers the two questions a
frame-granularity simulator asks:

* what is the link rate *right now* (``bandwidth_mbps_at``), and
* when does a payload that starts transmitting at ``t`` finish
  (``finish_time_s``)?

Both are O(log segments) via precomputed cumulative-capacity arrays —
as is the capacity integral (``capacity_bits``) the discrete-event
kernel in :mod:`repro.streaming.engine` charges concurrent
transmissions against — so the simulators can query the trace at every
event without rescanning it.

Examples
--------
>>> trace = BandwidthTrace.square(high_mbps=400, low_mbps=100, period_s=5)
>>> trace.bandwidth_mbps_at(2.0), trace.bandwidth_mbps_at(7.0)
(400.0, 100.0)
>>> trace.capacity_bits(0.0, 10.0) == (400 + 100) / 2 * 10 * 1e6
True
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["BandwidthTrace", "parse_trace_spec", "TRACE_SPEC_KINDS"]

#: Spec prefixes :func:`parse_trace_spec` understands.
TRACE_SPEC_KINDS = ("const", "step", "markov", "file")


class BandwidthTrace:
    """A piecewise-constant bandwidth profile over time.

    The trace is a sequence of segments: segment ``i`` starts at
    ``times_s[i]`` and carries ``rates_mbps[i]`` until the next
    boundary; the last segment extends forever.  Construction
    precomputes the cumulative capacity delivered by each boundary, so
    instantaneous-rate, capacity-integral, and finish-time queries are
    all binary searches.

    Parameters
    ----------
    times_s:
        Segment start times in seconds, strictly ascending, beginning
        at ``0.0``.
    rates_mbps:
        Bandwidth of each segment in megabits per second, all positive,
        same length as ``times_s``.

    Raises
    ------
    ValueError
        If the boundary times do not start at zero or are not strictly
        ascending, if any rate is non-positive, or if the two sequences
        differ in length.
    """

    def __init__(self, times_s: Sequence[float], rates_mbps: Sequence[float]):
        times = np.asarray(times_s, dtype=np.float64)
        rates = np.asarray(rates_mbps, dtype=np.float64)
        if times.ndim != 1 or rates.ndim != 1 or times.size != rates.size:
            raise ValueError(
                f"times_s and rates_mbps must be 1-D and equal length, "
                f"got shapes {times.shape} and {rates.shape}"
            )
        if times.size == 0:
            raise ValueError("a trace needs at least one segment")
        if times[0] != 0.0:
            raise ValueError(f"the first segment must start at 0.0 s, got {times[0]}")
        if np.any(np.diff(times) <= 0):
            raise ValueError("segment start times must be strictly ascending")
        if np.any(rates <= 0):
            raise ValueError("all rates must be positive Mbps")
        self._times = times
        self._rates_bps = rates * 1e6
        # Capacity (bits) delivered by each segment boundary; the open
        # last segment contributes beyond _cum_bits[-1] at _rates_bps[-1].
        self._cum_bits = np.concatenate(
            ([0.0], np.cumsum(self._rates_bps[:-1] * np.diff(times)))
        )

    # -- constructors ---------------------------------------------------

    @classmethod
    def constant(cls, mbps: float) -> "BandwidthTrace":
        """A degenerate single-segment trace with a fixed rate."""
        return cls([0.0], [mbps])

    @classmethod
    def square(
        cls,
        high_mbps: float,
        low_mbps: float,
        period_s: float,
        horizon_s: float = 240.0,
    ) -> "BandwidthTrace":
        """Alternate between two rates, ``period_s`` seconds each.

        Starts high; the pattern repeats out to ``horizon_s`` (far
        beyond any frame-granularity session) and holds the last level
        afterwards.

        Parameters
        ----------
        high_mbps, low_mbps:
            The two bandwidth levels in Mbps.
        period_s:
            Dwell time at each level in seconds.
        horizon_s:
            How far out to materialize segments; the last one extends
            forever.
        """
        if period_s <= 0:
            raise ValueError(f"period_s must be positive, got {period_s}")
        n_segments = max(2, int(np.ceil(horizon_s / period_s)))
        times = [i * period_s for i in range(n_segments)]
        rates = [high_mbps if i % 2 == 0 else low_mbps for i in range(n_segments)]
        return cls(times, rates)

    @classmethod
    def step_down(
        cls, before_mbps: float, after_mbps: float, at_s: float
    ) -> "BandwidthTrace":
        """A single permanent rate change at ``at_s`` seconds."""
        if at_s <= 0:
            raise ValueError(f"at_s must be positive, got {at_s}")
        return cls([0.0, at_s], [before_mbps, after_mbps])

    @classmethod
    def markov(
        cls,
        levels_mbps: Sequence[float],
        p_switch: float,
        dt_s: float = 0.5,
        horizon_s: float = 240.0,
        seed: int = 0,
    ) -> "BandwidthTrace":
        """A discrete-time Markov channel over a set of rate levels.

        Every ``dt_s`` seconds the channel jumps, with probability
        ``p_switch``, to one of the *other* levels chosen uniformly —
        the classic Gilbert-Elliott channel when two levels are given.

        Parameters
        ----------
        levels_mbps:
            The bandwidth states in Mbps (at least two).
        p_switch:
            Per-step probability of leaving the current state, in
            ``[0, 1]``.
        dt_s:
            Step duration in seconds.
        horizon_s:
            Trace length; the final state holds forever after.
        seed:
            Seed for the state sequence (traces are reproducible).
        """
        levels = [float(level) for level in levels_mbps]
        if len(levels) < 2:
            raise ValueError("a Markov trace needs at least two levels")
        if not 0.0 <= p_switch <= 1.0:
            raise ValueError(f"p_switch must be in [0, 1], got {p_switch}")
        if dt_s <= 0:
            raise ValueError(f"dt_s must be positive, got {dt_s}")
        rng = np.random.default_rng(seed)
        n_steps = max(1, int(np.ceil(horizon_s / dt_s)))
        state = 0
        times, rates = [0.0], [levels[0]]
        for step in range(1, n_steps):
            if rng.random() < p_switch:
                others = [i for i in range(len(levels)) if i != state]
                state = others[int(rng.integers(len(others)))]
                times.append(step * dt_s)
                rates.append(levels[state])
        return cls(times, rates)

    @classmethod
    def from_file(cls, path) -> "BandwidthTrace":
        """Load a trace from a ``time_s,mbps`` CSV file.

        Blank lines and lines starting with ``#`` are skipped.  The
        first sample must be at time 0; times must ascend.
        """
        times, rates = [], []
        with open(path) as handle:
            for lineno, line in enumerate(handle, start=1):
                text = line.split("#", 1)[0].strip()
                if not text:
                    continue
                parts = text.replace(",", " ").split()
                if len(parts) != 2:
                    raise ValueError(
                        f"{path}:{lineno}: expected 'time_s,mbps', got {line!r}"
                    )
                times.append(float(parts[0]))
                rates.append(float(parts[1]))
        if not times:
            raise ValueError(f"{path}: no samples found")
        return cls(times, rates)

    # -- queries --------------------------------------------------------

    @property
    def n_segments(self) -> int:
        """Number of piecewise-constant segments."""
        return int(self._times.size)

    @property
    def times_s(self) -> tuple[float, ...]:
        """Segment start times in seconds, ascending from 0."""
        return tuple(float(t) for t in self._times)

    @property
    def rates_mbps(self) -> tuple[float, ...]:
        """Segment rates in Mbps, aligned with :attr:`times_s`.

        ``BandwidthTrace(trace.times_s, trace.rates_mbps)`` rebuilds an
        equivalent trace — the round-trip report serialization in
        :mod:`repro.streaming.reports` relies on exactly that.
        """
        return tuple(float(r) / 1e6 for r in self._rates_bps)

    @property
    def duration_s(self) -> float:
        """Start time of the last (open-ended) segment."""
        return float(self._times[-1])

    @property
    def mean_mbps(self) -> float:
        """Time-averaged bandwidth over the materialized span.

        For a single-segment (constant) trace this is just its rate;
        otherwise the open-ended tail is excluded from the average.
        """
        if self.n_segments == 1:
            return float(self._rates_bps[0] / 1e6)
        return float(self._cum_bits[-1] / self._times[-1] / 1e6)

    @property
    def min_mbps(self) -> float:
        """Lowest rate anywhere in the trace."""
        return float(self._rates_bps.min() / 1e6)

    def _segment_at(self, time_s: float) -> int:
        if time_s < 0:
            raise ValueError(f"time_s must be >= 0, got {time_s}")
        return int(np.searchsorted(self._times, time_s, side="right") - 1)

    def bandwidth_mbps_at(self, time_s: float) -> float:
        """Instantaneous bandwidth in Mbps at ``time_s``."""
        return float(self._rates_bps[self._segment_at(time_s)] / 1e6)

    def cumulative_bits(self, time_s: float) -> float:
        """Total capacity (bits) the link delivered over ``[0, time_s]``."""
        index = self._segment_at(time_s)
        return float(
            self._cum_bits[index]
            + self._rates_bps[index] * (time_s - self._times[index])
        )

    def capacity_bits(self, start_s: float, end_s: float) -> float:
        """Capacity (bits) deliverable over ``[start_s, end_s]``."""
        if end_s < start_s:
            raise ValueError(f"end_s {end_s} precedes start_s {start_s}")
        return self.cumulative_bits(end_s) - self.cumulative_bits(start_s)

    def finish_time_s(self, start_s: float, payload_bits: float) -> float:
        """Earliest time a payload starting at ``start_s`` fully drains.

        The inverse of :meth:`capacity_bits`: the smallest ``t`` with
        ``capacity_bits(start_s, t) >= payload_bits``.  Computed by
        binary search over the cumulative-capacity array, then linear
        interpolation inside the final segment.
        """
        if payload_bits < 0:
            raise ValueError(f"payload_bits must be >= 0, got {payload_bits}")
        if payload_bits == 0:
            # Validate start_s even though no bits move.
            self._segment_at(start_s)
            return float(start_s)
        target = self.cumulative_bits(start_s) + payload_bits
        if target >= self._cum_bits[-1]:
            # Drains inside the open-ended last segment.
            residual = target - self._cum_bits[-1]
            return float(self._times[-1] + residual / self._rates_bps[-1])
        index = int(np.searchsorted(self._cum_bits, target, side="right") - 1)
        residual = target - self._cum_bits[index]
        return float(self._times[index] + residual / self._rates_bps[index])

    def __eq__(self, other: object) -> bool:
        """Segment-wise value equality.

        Two traces are equal when their boundary times and rates match
        exactly — the invariant that makes the
        ``BandwidthTrace(trace.times_s, trace.rates_mbps)`` rebuild
        (and therefore report serialization round-trips) lossless.
        """
        if not isinstance(other, BandwidthTrace):
            return NotImplemented
        return np.array_equal(self._times, other._times) and np.array_equal(
            self._rates_bps, other._rates_bps
        )

    def __hash__(self) -> int:
        return hash((self._times.tobytes(), self._rates_bps.tobytes()))

    def __repr__(self) -> str:
        return (
            f"BandwidthTrace({self.n_segments} segments, "
            f"mean {self.mean_mbps:.1f} Mbps, min {self.min_mbps:.1f} Mbps)"
        )


def parse_trace_spec(spec: str) -> BandwidthTrace:
    """Build a :class:`BandwidthTrace` from a CLI spec string.

    Supported forms (fields are colon-separated):

    * ``const:MBPS`` — constant rate;
    * ``step:HIGH:LOW:PERIOD`` — square wave alternating between
      ``HIGH`` and ``LOW`` Mbps every ``PERIOD`` seconds;
    * ``markov:HIGH:LOW:P_SWITCH[:SEED]`` — two-state Markov channel
      switching with per-half-second probability ``P_SWITCH``;
    * ``file:PATH`` — ``time_s,mbps`` CSV trace.

    Raises
    ------
    ValueError
        For an unknown kind, wrong field count, or non-numeric fields.
    """
    kind, _, rest = str(spec).partition(":")
    kind = kind.strip().lower()
    fields = [field.strip() for field in rest.split(":")] if rest else []

    def numbers(n_min: int, n_max: int) -> list[float]:
        """The spec's fields as floats, arity-checked."""
        if not n_min <= len(fields) <= n_max:
            raise ValueError(
                f"trace spec {spec!r}: {kind!r} takes "
                f"{n_min if n_min == n_max else f'{n_min}-{n_max}'} fields"
            )
        try:
            return [float(field) for field in fields]
        except ValueError:
            raise ValueError(
                f"trace spec {spec!r}: non-numeric field in {fields}"
            ) from None

    if kind == "const":
        (mbps,) = numbers(1, 1)
        return BandwidthTrace.constant(mbps)
    if kind == "step":
        high, low, period = numbers(3, 3)
        return BandwidthTrace.square(high, low, period)
    if kind == "markov":
        values = numbers(3, 4)
        seed = int(values[3]) if len(values) == 4 else 0
        return BandwidthTrace.markov(values[:2], values[2], seed=seed)
    if kind == "file":
        if len(fields) != 1 or not fields[0]:
            raise ValueError(f"trace spec {spec!r}: 'file' takes one path field")
        return BandwidthTrace.from_file(fields[0])
    raise ValueError(
        f"unknown trace spec kind {kind!r}; expected one of {TRACE_SPEC_KINDS}"
    )
