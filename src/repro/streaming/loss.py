"""Packet-level link impairments and frame recovery policies.

The bandwidth traces in :mod:`repro.streaming.traces` make links
*slow*; this module makes them *lossy*.  A :class:`LossTrace` models
per-packet erasure — independent (Bernoulli) or bursty
(Gilbert–Elliott two-state) — plus bounded reordering, and a
:class:`RecoveryPolicy` decides what the transport does about a frame
that lost packets:

* :class:`ArqPolicy` retransmits the missing packets in rounds under
  capped exponential :class:`Backoff`, giving up at the frame deadline;
* :class:`FecPolicy` ships ``k`` parity packets with every frame and
  absorbs up to ``k`` losses with zero recovery latency;
* :class:`DropSkipPolicy` gives up immediately — cheapest on the wire,
  harshest on the decoder.

The decoder consequence is explicit: the temporal-BD codec path
predicts each frame from the previous one, so an undelivered frame
*poisons* its successors until the policy forces an I-frame resync
(``resync_delay_frames`` delivered frames after the loss run ends).
:class:`LossRuntime` runs that state machine per stream and rolls the
outcome up into :class:`LossStats` — resync counts, recovery latency,
and goodput versus delivered quality — surfaced on
:class:`~repro.streaming.session.SessionReport` and
:class:`~repro.streaming.server.FleetReport`.

Determinism contract: all randomness comes from the engine's
per-stream ``Generator`` (the ``SeedSequence.spawn`` scheme), and the
draw order per frame is fixed — packet erasures
(:meth:`LossTrace.sample_packets`), then reordering
(:meth:`LossTrace.sample_reorder`), then any policy retransmission
draws, then the link's jitter draw.  A ``None`` loss trace makes *no*
draws and *no* arithmetic changes, which is what keeps lossless
configurations bit-for-bit identical to the pre-loss engine.

Examples
--------
>>> trace = LossTrace.gilbert_elliott(p_enter_bad=0.01, mean_burst_packets=5)
>>> round(trace.steady_state_loss_rate, 4)
0.0476
>>> parse_loss_spec("bern:0.02").steady_state_loss_rate
0.02
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from .validation import (
    validate_backoff,
    validate_burst_length,
    validate_probability,
)

__all__ = [
    "LOSS_SPEC_KINDS",
    "RECOVERY_CHOICES",
    "LossTrace",
    "parse_loss_spec",
    "Backoff",
    "RecoveryPolicy",
    "ArqPolicy",
    "FecPolicy",
    "DropSkipPolicy",
    "get_recovery_policy",
    "RecoveryResult",
    "LossRuntime",
    "LossStats",
]

#: Spec prefixes :func:`parse_loss_spec` understands.
LOSS_SPEC_KINDS = ("bern", "ge")

#: Recovery policy names :func:`get_recovery_policy` understands.
RECOVERY_CHOICES = ("arq", "fec", "skip")

#: Default packet size: a 1500-byte MTU in bits.
DEFAULT_PACKET_BITS = 12_000

#: Channel states for the Gilbert–Elliott chain.
_GOOD, _BAD = 0, 1


@dataclass(frozen=True)
class LossTrace:
    """A packet-erasure profile for a wireless hop.

    The channel is a two-state (good/bad) discrete-time Markov chain
    advanced once per packet: in the good state packets are lost with
    probability ``p_loss_good``, in the bad state with ``p_loss_bad``.
    ``p_good_to_bad == 0`` degenerates to the memoryless Bernoulli
    channel.  Reordering is modeled as bounded displacement: each
    delivered packet is, with probability ``reorder_prob``, delayed by
    up to ``reorder_depth`` packet slots, and the frame is not decodable
    until its last straggler lands.

    Instances are immutable, hashable, and value-comparable so they can
    ride on the frozen :class:`~repro.streaming.link.WirelessLink`.

    Parameters
    ----------
    p_loss_good:
        Per-packet loss probability in the good state.
    p_loss_bad:
        Per-packet loss probability in the bad state.
    p_good_to_bad:
        Per-packet probability of entering a burst (good → bad).
    p_bad_to_good:
        Per-packet probability of a burst ending (bad → good); must be
        positive whenever bursts can start, so every burst ends.
    packet_bits:
        Packet size in bits; frames are fragmented into
        ``ceil(wire_bits / packet_bits)`` packets.
    reorder_prob:
        Per-packet probability of out-of-order delivery.
    reorder_depth:
        Maximum displacement, in packet slots, of a reordered packet.
    """

    p_loss_good: float = 0.0
    p_loss_bad: float = 1.0
    p_good_to_bad: float = 0.0
    p_bad_to_good: float = 1.0
    packet_bits: int = DEFAULT_PACKET_BITS
    reorder_prob: float = 0.0
    reorder_depth: int = 0

    def __post_init__(self) -> None:
        for name in ("p_loss_good", "p_loss_bad", "p_good_to_bad",
                     "p_bad_to_good", "reorder_prob"):
            object.__setattr__(
                self, name, validate_probability(getattr(self, name), name)
            )
        if self.p_good_to_bad > 0.0 and self.p_bad_to_good <= 0.0:
            raise ValueError(
                "p_bad_to_good must be positive when p_good_to_bad > 0, "
                "or every burst would last forever"
            )
        if int(self.packet_bits) <= 0:
            raise ValueError(
                f"packet_bits must be a positive packet size in bits, "
                f"got {self.packet_bits!r}"
            )
        object.__setattr__(self, "packet_bits", int(self.packet_bits))
        if int(self.reorder_depth) < 0:
            raise ValueError(
                f"reorder_depth must be >= 0 packets, got {self.reorder_depth!r}"
            )
        object.__setattr__(self, "reorder_depth", int(self.reorder_depth))
        if self.reorder_prob > 0.0 and self.reorder_depth < 1:
            raise ValueError(
                "reorder_depth must be >= 1 packet when reorder_prob > 0"
            )

    # -- constructors ---------------------------------------------------

    @classmethod
    def bernoulli(
        cls,
        p: float,
        packet_bits: int = DEFAULT_PACKET_BITS,
        reorder_prob: float = 0.0,
        reorder_depth: int = 0,
    ) -> "LossTrace":
        """Independent per-packet loss with probability ``p``."""
        return cls(
            p_loss_good=p,
            p_loss_bad=p,
            p_good_to_bad=0.0,
            p_bad_to_good=1.0,
            packet_bits=packet_bits,
            reorder_prob=reorder_prob,
            reorder_depth=reorder_depth,
        )

    @classmethod
    def gilbert_elliott(
        cls,
        p_enter_bad: float,
        mean_burst_packets: float = 5.0,
        p_loss_bad: float = 1.0,
        p_loss_good: float = 0.0,
        packet_bits: int = DEFAULT_PACKET_BITS,
        reorder_prob: float = 0.0,
        reorder_depth: int = 0,
    ) -> "LossTrace":
        """Bursty loss: bad states entered at ``p_enter_bad`` per packet.

        Parameters
        ----------
        p_enter_bad:
            Per-packet probability of entering the bad state.
        mean_burst_packets:
            Mean bad-state dwell in packets (geometric, so the exit
            probability is its reciprocal); must be >= 1.
        p_loss_bad, p_loss_good:
            Loss probabilities inside and outside bursts.
        packet_bits, reorder_prob, reorder_depth:
            As on the class.
        """
        mean_burst = validate_burst_length(mean_burst_packets, "mean_burst_packets")
        return cls(
            p_loss_good=p_loss_good,
            p_loss_bad=p_loss_bad,
            p_good_to_bad=p_enter_bad,
            p_bad_to_good=1.0 / mean_burst,
            packet_bits=packet_bits,
            reorder_prob=reorder_prob,
            reorder_depth=reorder_depth,
        )

    # -- analytic properties --------------------------------------------

    @property
    def is_bursty(self) -> bool:
        """Whether the bad state is reachable (Gilbert–Elliott proper)."""
        return self.p_good_to_bad > 0.0

    @property
    def stationary_bad_fraction(self) -> float:
        """Stationary probability of the bad state."""
        if not self.is_bursty:
            return 0.0
        return self.p_good_to_bad / (self.p_good_to_bad + self.p_bad_to_good)

    @property
    def steady_state_loss_rate(self) -> float:
        """Long-run per-packet loss probability (analytic).

        The statistical tests pin the empirical loss rate of sampled
        packet streams to this value.
        """
        pi_bad = self.stationary_bad_fraction
        return pi_bad * self.p_loss_bad + (1.0 - pi_bad) * self.p_loss_good

    @property
    def mean_burst_packets(self) -> float:
        """Mean bad-state dwell in packets (geometric)."""
        return 1.0 / self.p_bad_to_good

    @property
    def is_lossless(self) -> bool:
        """True when no packet can be lost or reordered."""
        return self.steady_state_loss_rate == 0.0 and self.reorder_prob == 0.0

    # -- sampling -------------------------------------------------------

    def n_packets(self, wire_bits: float) -> int:
        """Packets needed to carry ``wire_bits`` on this trace."""
        return max(1, int(math.ceil(wire_bits / self.packet_bits)))

    def sample_packets(
        self, rng: np.random.Generator, n_packets: int, state: int = _GOOD
    ) -> tuple[np.ndarray, int]:
        """Draw per-packet loss for ``n_packets``, advancing the chain.

        Exactly one ``rng.random((n_packets, 2))`` draw is made
        regardless of parameters (column 0 drives the state transition,
        column 1 the erasure), so the draw count — and therefore every
        later draw in the stream — depends only on the packet count.
        For each packet the erasure is evaluated in the *current* state,
        then the chain transitions; a burst therefore starts losing
        packets one slot after ``p_good_to_bad`` fires.

        Parameters
        ----------
        rng:
            The stream's generator.
        n_packets:
            Number of packet slots to draw.
        state:
            Chain state carried over from the previous frame.

        Returns
        -------
        tuple
            ``(lost, state)``: a boolean erasure mask of length
            ``n_packets`` and the chain state after the last packet.
        """
        u = rng.random((n_packets, 2))
        lost = np.empty(n_packets, dtype=bool)
        if not self.is_bursty:
            lost[:] = u[:, 1] < self.p_loss_good
            return lost, state
        p_gb, p_bg = self.p_good_to_bad, self.p_bad_to_good
        for i in range(n_packets):
            lost[i] = u[i, 1] < (
                self.p_loss_bad if state == _BAD else self.p_loss_good
            )
            if state == _GOOD:
                if u[i, 0] < p_gb:
                    state = _BAD
            elif u[i, 0] < p_bg:
                state = _GOOD
        return lost, state

    def sample_reorder(self, rng: np.random.Generator, n_packets: int) -> int:
        """Extra packet slots the frame waits for its last straggler.

        Makes no draws when ``reorder_prob == 0``; otherwise one
        uniform vector plus, if any packet reordered, one integer
        vector for the displacements.
        """
        if self.reorder_prob <= 0.0:
            return 0
        displaced = rng.random(n_packets) < self.reorder_prob
        count = int(np.count_nonzero(displaced))
        if count == 0:
            return 0
        depths = rng.integers(1, self.reorder_depth + 1, size=count)
        return int(depths.max())

    def __repr__(self) -> str:
        kind = "GE" if self.is_bursty else "bernoulli"
        return (
            f"LossTrace({kind}, loss {self.steady_state_loss_rate:.4f}, "
            f"burst {self.mean_burst_packets:.1f} pkt, "
            f"packet {self.packet_bits} b)"
        )


def parse_loss_spec(spec: str) -> LossTrace:
    """Build a :class:`LossTrace` from a CLI spec string.

    Supported forms (fields are colon-separated, mirroring
    :func:`~repro.streaming.traces.parse_trace_spec`):

    * ``bern:P`` — independent per-packet loss with probability ``P``;
    * ``ge:P_ENTER:MEAN_BURST[:P_LOSS_BAD[:P_LOSS_GOOD]]`` —
      Gilbert–Elliott bursts entered at ``P_ENTER`` per packet with
      mean length ``MEAN_BURST`` packets.

    Raises
    ------
    ValueError
        For an unknown kind, wrong field count, or invalid values
        (via the validators, with the offending field named).
    """
    kind, _, rest = str(spec).partition(":")
    kind = kind.strip().lower()
    fields = [f.strip() for f in rest.split(":")] if rest else []

    def numbers(n_min: int, n_max: int) -> list[float]:
        """The spec's fields as floats, arity-checked."""
        if not n_min <= len(fields) <= n_max:
            raise ValueError(
                f"loss spec {spec!r}: {kind!r} takes "
                f"{n_min if n_min == n_max else f'{n_min}-{n_max}'} fields"
            )
        try:
            return [float(f) for f in fields]
        except ValueError:
            raise ValueError(
                f"loss spec {spec!r}: non-numeric field in {fields}"
            ) from None

    if kind == "bern":
        (p,) = numbers(1, 1)
        return LossTrace.bernoulli(p)
    if kind == "ge":
        values = numbers(2, 4)
        p_loss_bad = values[2] if len(values) >= 3 else 1.0
        p_loss_good = values[3] if len(values) == 4 else 0.0
        return LossTrace.gilbert_elliott(
            values[0], values[1], p_loss_bad=p_loss_bad, p_loss_good=p_loss_good
        )
    raise ValueError(
        f"unknown loss spec kind {kind!r}; expected one of {LOSS_SPEC_KINDS}"
    )


@dataclass(frozen=True)
class Backoff:
    """Capped exponential backoff: ``min(max_s, base_s * factor**n)``.

    One schedule, two users: :class:`ArqPolicy` waits this long before
    each retransmission round, and the serving client
    (:mod:`repro.serving.client`) waits this long before each
    reconnection attempt — the "same backoff policy" the chaos tests
    lean on.

    Parameters
    ----------
    base_s:
        Delay before the first retry, in seconds.
    factor:
        Multiplier applied per subsequent retry; >= 1.
    max_s:
        Ceiling on any single delay, in seconds.
    """

    base_s: float = 0.002
    factor: float = 2.0
    max_s: float = 0.064

    def __post_init__(self) -> None:
        validate_backoff(self.base_s, self.factor, self.max_s)

    def delay_s(self, attempt: int) -> float:
        """Delay before retry ``attempt`` (1-based), in seconds."""
        if attempt < 1:
            raise ValueError(f"attempt is 1-based, got {attempt}")
        return min(self.max_s, self.base_s * self.factor ** (attempt - 1))


class RecoveryResult:
    """Outcome of one frame's recovery attempt (a plain record)."""

    __slots__ = ("delivered", "delay_s", "retransmits")

    def __init__(self, delivered: bool, delay_s: float, retransmits: int):
        self.delivered = delivered
        self.delay_s = delay_s
        self.retransmits = retransmits


@dataclass(frozen=True)
class RecoveryPolicy:
    """What the transport does about a frame that lost packets.

    Subclasses override :meth:`wire_bits` (deterministic per-frame
    overhead, charged to the link before any loss is drawn) and
    :meth:`resolve` (whether the frame is ultimately delivered, at what
    extra latency).  Policies are frozen, stateless, and picklable —
    one instance is shared across streams and process-pool shards; all
    per-stream state lives in :class:`LossRuntime`.

    Parameters
    ----------
    resync_delay_frames:
        Delivered frames the decoder must see after a loss run before
        the forced I-frame resync lands (1 = the very next delivered
        frame resynchronizes).
    """

    resync_delay_frames: int = 1

    def __post_init__(self) -> None:
        if int(self.resync_delay_frames) < 1:
            raise ValueError(
                f"resync_delay_frames must be >= 1, "
                f"got {self.resync_delay_frames!r}"
            )

    #: Registry name; subclasses set it.
    name = "abstract"

    def wire_bits(self, payload_bits: float, packet_bits: int) -> float:
        """Bits actually offered to the link for this payload."""
        return payload_bits

    def resolve(
        self,
        rng: np.random.Generator,
        n_lost: int,
        *,
        packet_time_s: float,
        rtt_s: float,
        deadline_s: float,
        retx_loss_rate: float,
    ) -> RecoveryResult:
        """Decide the frame's fate given ``n_lost`` erased packets."""
        raise NotImplementedError


@dataclass(frozen=True)
class ArqPolicy(RecoveryPolicy):
    """Retransmit missing packets in rounds under a frame deadline.

    Each round waits the backoff delay, spends one RTT plus the
    serialization time of the still-missing packets, and redraws their
    fate at the trace's steady-state loss rate (retransmissions are
    spaced far enough apart to decorrelate from the burst that killed
    the originals).  The frame is delivered when no packets remain
    missing; it is abandoned when the retry cap is hit or the
    accumulated delay crosses the deadline.

    Parameters
    ----------
    max_retries:
        Maximum retransmission rounds per frame.
    backoff:
        Delay schedule between rounds.
    deadline_fraction:
        Fraction of the frame interval the recovery may consume before
        the frame is abandoned (1.0 = the full frame time).
    """

    max_retries: int = 4
    backoff: Backoff = field(default_factory=Backoff)
    deadline_fraction: float = 1.0

    name = "arq"

    def __post_init__(self) -> None:
        super().__post_init__()
        if int(self.max_retries) < 1:
            raise ValueError(
                f"max_retries must be >= 1, got {self.max_retries!r}"
            )
        if not math.isfinite(self.deadline_fraction) or self.deadline_fraction <= 0:
            raise ValueError(
                f"deadline_fraction must be finite and positive, "
                f"got {self.deadline_fraction!r}"
            )

    def resolve(
        self,
        rng: np.random.Generator,
        n_lost: int,
        *,
        packet_time_s: float,
        rtt_s: float,
        deadline_s: float,
        retx_loss_rate: float,
    ) -> RecoveryResult:
        if n_lost == 0:
            return RecoveryResult(True, 0.0, 0)
        missing = n_lost
        delay_s = 0.0
        retransmits = 0
        for attempt in range(1, self.max_retries + 1):
            delay_s += (
                self.backoff.delay_s(attempt)
                + rtt_s
                + missing * packet_time_s
            )
            retransmits += missing
            missing = int(
                np.count_nonzero(rng.random(missing) < retx_loss_rate)
            )
            if missing == 0 or delay_s > deadline_s:
                break
        delivered = missing == 0 and delay_s <= deadline_s
        return RecoveryResult(delivered, delay_s, retransmits)


@dataclass(frozen=True)
class FecPolicy(RecoveryPolicy):
    """Ship ``k`` parity packets per frame; absorb up to ``k`` losses.

    Overhead is deterministic — ``k * packet_bits`` on every non-empty
    frame, inflating serialization time and therefore backlog exactly
    as real FEC inflates airtime — and recovery is instantaneous: the
    frame decodes iff at most ``k`` of its data+parity packets were
    erased.

    Parameters
    ----------
    k:
        Parity packets per frame (also the per-frame loss budget).
    """

    k: int = 2

    name = "fec"

    def __post_init__(self) -> None:
        super().__post_init__()
        if int(self.k) < 1:
            raise ValueError(f"fec k must be >= 1 parity packet, got {self.k!r}")

    def wire_bits(self, payload_bits: float, packet_bits: int) -> float:
        if payload_bits <= 0:
            return payload_bits
        return payload_bits + self.k * packet_bits

    def resolve(
        self,
        rng: np.random.Generator,
        n_lost: int,
        *,
        packet_time_s: float,
        rtt_s: float,
        deadline_s: float,
        retx_loss_rate: float,
    ) -> RecoveryResult:
        return RecoveryResult(n_lost <= self.k, 0.0, 0)


@dataclass(frozen=True)
class DropSkipPolicy(RecoveryPolicy):
    """Give up on any frame that lost a packet; lean on resync."""

    name = "skip"

    def resolve(
        self,
        rng: np.random.Generator,
        n_lost: int,
        *,
        packet_time_s: float,
        rtt_s: float,
        deadline_s: float,
        retx_loss_rate: float,
    ) -> RecoveryResult:
        return RecoveryResult(n_lost == 0, 0.0, 0)


def get_recovery_policy(
    policy: "str | RecoveryPolicy | None", **kwargs
) -> RecoveryPolicy:
    """Resolve a recovery policy by name or pass an instance through.

    Mirrors :func:`~repro.streaming.adaptive.get_controller`: ``None``
    and ``"arq"`` both give the default ARQ policy; keyword arguments
    are forwarded to the named policy's constructor.

    Raises
    ------
    ValueError
        For unknown policy names (listing :data:`RECOVERY_CHOICES`).
    """
    if isinstance(policy, RecoveryPolicy):
        if kwargs:
            raise ValueError(
                "cannot pass policy kwargs alongside a policy instance"
            )
        return policy
    if policy is None:
        policy = "arq"
    classes = {"arq": ArqPolicy, "fec": FecPolicy, "skip": DropSkipPolicy}
    try:
        cls = classes[policy]
    except KeyError:
        raise ValueError(
            f"unknown recovery policy {policy!r}; "
            f"expected one of {RECOVERY_CHOICES}"
        ) from None
    return cls(**kwargs)


@dataclass(frozen=True)
class LossStats:
    """Per-stream loss/recovery telemetry, attached to session reports.

    Every frame lands in exactly one of three bins: *displayed*
    (delivered to a synchronized decoder, including the forced resync
    I-frames), *lost* (undelivered), or *poisoned* (delivered bits the
    decoder could not use because a temporal-BD reference was missing).

    Parameters
    ----------
    policy:
        Recovery policy name (``"arq"``, ``"fec"``, or ``"skip"``).
    frames_displayed, frames_lost, frames_poisoned:
        The three frame bins.
    resyncs:
        Completed forced I-frame resynchronizations.
    recovery_time_s:
        Summed loss-to-resync latency across all resyncs.
    packets_sent, packets_lost:
        First-transmission packet counts (retransmissions excluded).
    retransmits:
        Packets retransmitted by ARQ.
    overhead_bits:
        FEC parity plus retransmitted bits — airtime spent on
        protection rather than payload.
    goodput_bits:
        Payload bits of displayed frames.
    wasted_bits:
        Payload bits of lost and poisoned frames.
    """

    policy: str = "skip"
    frames_displayed: int = 0
    frames_lost: int = 0
    frames_poisoned: int = 0
    resyncs: int = 0
    recovery_time_s: float = 0.0
    packets_sent: int = 0
    packets_lost: int = 0
    retransmits: int = 0
    overhead_bits: float = 0.0
    goodput_bits: float = 0.0
    wasted_bits: float = 0.0

    @property
    def n_frames(self) -> int:
        """Total frames classified."""
        return self.frames_displayed + self.frames_lost + self.frames_poisoned

    @property
    def delivered_quality(self) -> float:
        """Fraction of frames the viewer actually saw decoded."""
        total = self.n_frames
        return self.frames_displayed / total if total else 1.0

    @property
    def packet_loss_rate(self) -> float:
        """Empirical first-transmission packet loss rate."""
        return self.packets_lost / self.packets_sent if self.packets_sent else 0.0

    @property
    def mean_recovery_latency_s(self) -> float:
        """Mean loss-to-resync latency, 0 when nothing was lost."""
        return self.recovery_time_s / self.resyncs if self.resyncs else 0.0

    @property
    def goodput_fraction(self) -> float:
        """Displayed payload bits over all bits offered to the link."""
        total = self.goodput_bits + self.wasted_bits + self.overhead_bits
        return self.goodput_bits / total if total else 1.0


class LossRuntime:
    """Per-stream impairment state machine.

    Owns the Gilbert–Elliott chain state carried across frames, the
    decoder poisoning/resync state, and the running telemetry counters.
    The engine (and the cohort tracer loop, which must replicate the
    engine's draws exactly) calls :meth:`wire_bits` before pricing a
    frame's serialization and :meth:`on_frame` immediately after it —
    before the jitter draw — passing the same per-stream ``rng``.

    Parameters
    ----------
    trace:
        The link's loss profile.
    policy:
        Recovery policy (shared, stateless).
    interval_s:
        The stream's frame interval (sets the ARQ deadline).
    rtt_s:
        Link round-trip time (propagation both ways).
    """

    __slots__ = (
        "trace",
        "policy",
        "interval_s",
        "rtt_s",
        "_state",
        "_poisoned",
        "_countdown",
        "_loss_time_s",
        "_frames_displayed",
        "_frames_lost",
        "_frames_poisoned",
        "_resyncs",
        "_recovery_time_s",
        "_packets_sent",
        "_packets_lost",
        "_retransmits",
        "_overhead_bits",
        "_goodput_bits",
        "_wasted_bits",
    )

    def __init__(
        self,
        trace: LossTrace,
        policy: RecoveryPolicy,
        interval_s: float,
        rtt_s: float,
    ):
        self.trace = trace
        self.policy = policy
        self.interval_s = interval_s
        self.rtt_s = rtt_s
        self._state = _GOOD
        self._poisoned = False
        self._countdown = 0
        self._loss_time_s = 0.0
        self._frames_displayed = 0
        self._frames_lost = 0
        self._frames_poisoned = 0
        self._resyncs = 0
        self._recovery_time_s = 0.0
        self._packets_sent = 0
        self._packets_lost = 0
        self._retransmits = 0
        self._overhead_bits = 0.0
        self._goodput_bits = 0.0
        self._wasted_bits = 0.0

    def wire_bits(self, payload_bits: float) -> float:
        """Bits the link must carry for this payload (FEC-inflated)."""
        return self.policy.wire_bits(payload_bits, self.trace.packet_bits)

    def on_frame(
        self,
        rng: np.random.Generator,
        payload_bits: float,
        serialization_s: float,
        time_s: float,
    ) -> float:
        """Impair one transmitted frame; return the recovery delay.

        Draw order (fixed, replicated by cohort tracers): packet
        erasures, reorder displacement, then policy retransmission
        rounds.  The returned delay — retransmission rounds plus
        straggler wait — is added to the frame's transmit time but,
        like jitter, never fed back into the sender's backlog.

        Parameters
        ----------
        rng:
            The stream's generator (same one the jitter draw uses,
            *after* this call).
        payload_bits:
            The frame's useful payload (pre-FEC).
        serialization_s:
            Wire serialization time of the (FEC-inflated) frame.
        time_s:
            The frame's nominal ready time, used to timestamp loss
            runs for recovery-latency accounting.

        Returns
        -------
        float
            Extra seconds to add to the frame's transmit time.
        """
        wire = self.wire_bits(payload_bits)
        if wire <= 0:
            self._classify(True, payload_bits, time_s)
            return 0.0
        n_packets = self.trace.n_packets(wire)
        packet_time_s = serialization_s / n_packets
        lost_mask, self._state = self.trace.sample_packets(
            rng, n_packets, self._state
        )
        n_lost = int(np.count_nonzero(lost_mask))
        straggler_slots = self.trace.sample_reorder(rng, n_packets)
        result = self.policy.resolve(
            rng,
            n_lost,
            packet_time_s=packet_time_s,
            rtt_s=self.rtt_s,
            deadline_s=self.policy_deadline_s,
            retx_loss_rate=self.trace.steady_state_loss_rate,
        )
        self._packets_sent += n_packets
        self._packets_lost += n_lost
        self._retransmits += result.retransmits
        self._overhead_bits += (
            (wire - payload_bits) + result.retransmits * self.trace.packet_bits
        )
        self._classify(result.delivered, payload_bits, time_s)
        return result.delay_s + straggler_slots * packet_time_s

    @property
    def policy_deadline_s(self) -> float:
        """Recovery deadline in seconds for this stream's frame rate."""
        fraction = getattr(self.policy, "deadline_fraction", 1.0)
        return fraction * self.interval_s

    def _classify(self, delivered: bool, payload_bits: float, time_s: float) -> None:
        """Advance the decoder poisoning/resync state machine."""
        if not delivered:
            if not self._poisoned:
                self._poisoned = True
                self._loss_time_s = time_s
            self._countdown = self.policy.resync_delay_frames
            self._frames_lost += 1
            self._wasted_bits += payload_bits
            return
        if self._poisoned:
            self._countdown -= 1
            if self._countdown <= 0:
                # This delivered frame is the forced I-frame resync.
                self._poisoned = False
                self._resyncs += 1
                self._recovery_time_s += time_s - self._loss_time_s
                self._frames_displayed += 1
                self._goodput_bits += payload_bits
            else:
                self._frames_poisoned += 1
                self._wasted_bits += payload_bits
            return
        self._frames_displayed += 1
        self._goodput_bits += payload_bits

    def stats(self) -> LossStats:
        """Snapshot the counters as an immutable :class:`LossStats`."""
        return LossStats(
            policy=self.policy.name,
            frames_displayed=self._frames_displayed,
            frames_lost=self._frames_lost,
            frames_poisoned=self._frames_poisoned,
            resyncs=self._resyncs,
            recovery_time_s=self._recovery_time_s,
            packets_sent=self._packets_sent,
            packets_lost=self._packets_lost,
            retransmits=self._retransmits,
            overhead_bits=self._overhead_bits,
            goodput_bits=self._goodput_bits,
            wasted_bits=self._wasted_bits,
        )
