"""One discrete-event streaming kernel behind every simulator.

The repository grew three hand-rolled frame loops — the solo session,
the adaptive session, and the multi-client fleet — each re-implementing
render → encode → schedule → transmit with subtly different timing
semantics.  This module replaces all three with a single
ns-3-style discrete-event core:

* an **event queue** keyed on simulated time carries three event
  kinds — :data:`FRAME_READY` (a stream's next stereo frame finished
  encoding), :data:`TRANSMIT_START` (its payload reaches the air), and
  :data:`TRANSMIT_DONE` (its last bit drains);
* **pluggable components**: a :class:`FrameSource` produces per-frame
  payload sizes (rendering + encoding, possibly through a
  :class:`~repro.codecs.ladder.LadderEncodeCache`), a rate controller
  (:mod:`repro.streaming.adaptive`) picks each frame's quality-ladder
  rung, a :class:`LinkScheduler` divides the air among concurrent
  transmissions, and a (possibly traced)
  :class:`~repro.streaming.link.WirelessLink` prices them;
* two **transport pricing** disciplines: ``"backlog"`` gives every
  stream its own display clock and queues payloads behind the stream's
  transmit backlog, resolving cross-stream contention event by event in
  the fluid limit; ``"round"`` replays the legacy fleet semantics —
  every round's payloads offered together at the round start — for
  continuity with previously published tables (bit for bit up to the
  per-stream jitter-RNG change below; exactly so on jitter-free
  links).

The public simulators are now thin wrappers: a solo session is a fleet
of one, a pinned codec is a non-adaptive stream, and the fleet simply
runs many streams.  Per-stream jitter RNGs are spawned from one
``numpy.random.SeedSequence``, so adding a client never perturbs
another client's jitter draws, and per-stream clocks admit staggered
start times and mixed refresh rates without a fastest-client hack.
"""

from __future__ import annotations

import abc
import heapq
import math
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Sequence

import numpy as np

from ..codecs.ladder import encode_frame_rungs
from .link import WirelessLink
from .loss import LossRuntime, LossStats, get_recovery_policy
from .validation import (
    PRICING_MODES,
    validate_pricing,
    validate_stream_timing,
    validate_stream_window,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..codecs.ladder import QualityLadder
    from ..scenes.display import DisplayGeometry
    from ..scenes.library import Scene

__all__ = [
    "FRAME_READY",
    "TRANSMIT_START",
    "TRANSMIT_DONE",
    "Event",
    "FrameTiming",
    "LinkScheduler",
    "FairShareScheduler",
    "PriorityScheduler",
    "SCHEDULER_CHOICES",
    "get_scheduler",
    "ControllerContext",
    "AdaptiveStats",
    "AdaptationState",
    "FrameSource",
    "PrecomputedSource",
    "CodecStreamSource",
    "frames_within_window",
    "StreamSpec",
    "StreamOutcome",
    "StreamingEngine",
    "PRICING_MODES",
]

#: Payload remainders below this many bits count as fully drained
#: (guards the fluid scheduler against float round-off).
_DRAIN_EPSILON_BITS = 1e-6

# -- events -------------------------------------------------------------

#: A stream's next stereo frame finished encoding and wants air time.
FRAME_READY = "frame-ready"
#: A queued payload reaches the air and starts occupying the link.
TRANSMIT_START = "transmit-start"
#: A payload's last bit leaves the air.
TRANSMIT_DONE = "transmit-done"

#: Tie-break order for events at the same simulated time: completions
#: land first (freeing the link and recording feedback), then newly
#: ready frames (controllers see that feedback), then queued payloads
#: reaching the air.
_EVENT_ORDER = {TRANSMIT_DONE: 0, FRAME_READY: 1, TRANSMIT_START: 2}


@dataclass(frozen=True)
class Event:
    """One kernel event, as recorded in the engine's event log.

    Attributes
    ----------
    time_s:
        Simulated time the event fires.
    kind:
        :data:`FRAME_READY`, :data:`TRANSMIT_START`, or
        :data:`TRANSMIT_DONE`.
    stream:
        Name of the stream the event belongs to.
    frame_index:
        Zero-based frame number within that stream.
    """

    time_s: float
    kind: str
    stream: str
    frame_index: int


# -- per-frame timing ---------------------------------------------------


@dataclass(frozen=True)
class FrameTiming:
    """Timing of one stereo frame through the remote pipeline.

    Attributes
    ----------
    frame_index:
        Zero-based frame number within the stream.
    payload_bits:
        Encoded size of the transmitted stereo pair.
    encode_time_s:
        Server-side encode time for the frame.
    serialization_time_s:
        Airtime of the payload (contended drain time inside a fleet).
    transmit_time_s:
        Serialization plus queue wait and propagation/jitter overhead.
    rung:
        Quality-ladder rung this frame was transmitted at; empty for
        non-adaptive streams.
    """

    frame_index: int
    payload_bits: int
    encode_time_s: float
    serialization_time_s: float
    transmit_time_s: float
    rung: str = ""

    @property
    def motion_to_photon_s(self) -> float:
        """Render-to-display latency contribution of encode + link.

        (Server render time and display scan-out are common to all
        encoders and excluded, as the comparison is between encoders.)
        """
        return self.encode_time_s + self.transmit_time_s


# -- link schedulers ----------------------------------------------------


class LinkScheduler(abc.ABC):
    """Divides one link's capacity among simultaneous frame payloads."""

    #: Registry name (the CLI's ``--scheduler`` spelling).
    name: str = ""

    @abc.abstractmethod
    def drain_times_s(
        self,
        payload_bits: Sequence[float],
        weights: Sequence[float],
        link: WirelessLink,
        start_s: float = 0.0,
    ) -> list[float]:
        """Completion time of each payload, offered at ``start_s``.

        Returns one drain time per payload: how long after the round
        starts that client's last bit leaves the air.  Zero-size
        payloads never occupy the link.  ``start_s`` anchors the round
        on the session clock so traced links price each round at its
        own bandwidth; constant links ignore it.  (This is the batch
        entry point ``pricing="round"`` replays; the event kernel uses
        :meth:`instantaneous_shares` instead.)
        """

    def instantaneous_shares(self, weights: Sequence[float]) -> list[float]:
        """Fraction of link capacity each backlogged flow gets *now*.

        The event kernel calls this whenever the set of in-flight
        transmissions changes and lets each flow drain at its share of
        the (possibly traced) link rate until the next event.  The
        default is generalized processor sharing — capacity in
        proportion to weight — which makes any subclass work under
        ``pricing="backlog"``; disciplines with different preemption
        rules (e.g. strict priority) override it.

        Parameters
        ----------
        weights:
            Positive scheduling weights of the currently backlogged
            flows, in stream order.

        Returns
        -------
        list of float
            One share per flow, non-negative, summing to at most 1.
        """
        if any(w <= 0 for w in weights):
            raise ValueError("scheduler weights must be positive")
        total = sum(weights)
        return [w / total for w in weights]

    @staticmethod
    def _validate(payload_bits: Sequence[float], weights: Sequence[float]) -> None:
        """Reject mismatched lengths, negative payloads, bad weights."""
        if len(payload_bits) != len(weights):
            raise ValueError(
                f"{len(payload_bits)} payloads but {len(weights)} weights"
            )
        if any(p < 0 for p in payload_bits):
            raise ValueError("payloads must be >= 0 bits")
        if any(w <= 0 for w in weights):
            raise ValueError("scheduler weights must be positive")


class FairShareScheduler(LinkScheduler):
    """Weighted fair queueing in the fluid (GPS) limit.

    Every backlogged client receives capacity in proportion to its
    weight; when one drains, its share redistributes among the rest.
    Equal weights give the classic per-client ``1/n`` fair share.  In
    round pricing on a traced link the rate is re-sampled at the start
    of each fluid step (a drain event), a piecewise approximation that
    is exact whenever trace boundaries do not fall inside a step; the
    event kernel's backlog pricing integrates the trace exactly
    instead.
    """

    name = "fair"

    def drain_times_s(self, payload_bits, weights, link, start_s=0.0):
        """See :meth:`LinkScheduler.drain_times_s`."""
        self._validate(payload_bits, weights)
        remaining = [float(bits) for bits in payload_bits]
        finish = [0.0] * len(remaining)
        active = [i for i, bits in enumerate(remaining) if bits > 0]
        now = 0.0
        while active:
            bandwidth = link.at(start_s + now) * 1e6
            total_weight = sum(weights[i] for i in active)
            rates = {i: bandwidth * weights[i] / total_weight for i in active}
            step = min(remaining[i] / rates[i] for i in active)
            now += step
            still_active = []
            for i in active:
                remaining[i] -= rates[i] * step
                if remaining[i] <= _DRAIN_EPSILON_BITS:
                    finish[i] = now
                else:
                    still_active.append(i)
            active = still_active
        return finish


class PriorityScheduler(LinkScheduler):
    """Strict priority: heavier clients transmit first, then the rest.

    Ties break in client order.  The heaviest client sees a dedicated
    link — useful to model one latency-critical headset among best-
    effort peers.  On a traced link each transmission serializes at its
    own (queued) start time, so fades land on whoever is on the air.
    """

    name = "priority"

    def drain_times_s(self, payload_bits, weights, link, start_s=0.0):
        """See :meth:`LinkScheduler.drain_times_s`."""
        self._validate(payload_bits, weights)
        order = sorted(
            range(len(payload_bits)), key=lambda i: (-weights[i], i)
        )
        finish = [0.0] * len(payload_bits)
        now = 0.0
        for i in order:
            if payload_bits[i] > 0:
                now += link.serialization_time_s(
                    payload_bits[i], start_s=start_s + now
                )
                finish[i] = now
        return finish

    def instantaneous_shares(self, weights):
        """All capacity to the heaviest backlogged flow (ties: first)."""
        if any(w <= 0 for w in weights):
            raise ValueError("scheduler weights must be positive")
        top = min(range(len(weights)), key=lambda i: (-weights[i], i))
        return [1.0 if i == top else 0.0 for i in range(len(weights))]


_SCHEDULERS = {cls.name: cls for cls in (FairShareScheduler, PriorityScheduler)}

#: Valid ``--scheduler`` spellings.
SCHEDULER_CHOICES = tuple(_SCHEDULERS)


def get_scheduler(scheduler: str | LinkScheduler) -> LinkScheduler:
    """Resolve a scheduler name (or pass an instance through).

    Parameters
    ----------
    scheduler:
        A name from :data:`SCHEDULER_CHOICES` or a ready
        :class:`LinkScheduler` instance.

    Raises
    ------
    ValueError
        For unknown names.
    """
    if isinstance(scheduler, LinkScheduler):
        return scheduler
    try:
        return _SCHEDULERS[scheduler]()
    except KeyError:
        raise ValueError(
            f"unknown scheduler {scheduler!r}; expected one of {SCHEDULER_CHOICES}"
        ) from None


# -- adaptation state ---------------------------------------------------


@dataclass(frozen=True)
class ControllerContext:
    """Everything a rate controller may look at when picking a rung.

    Attributes
    ----------
    frame_index:
        Zero-based index of the frame about to be transmitted.
    time_s:
        Session time at the start of this frame interval.
    interval_s:
        Frame interval (``1 / target_fps``) in seconds.
    rung_bits:
        This frame's encoded payload per ladder rung, best rung first —
        the server encodes the whole ladder, so these are exact sizes,
        not estimates.
    backlog_s:
        Transmit-queue occupancy in seconds: how far behind the
        display clock the client's transmissions are running.
    goodput_bps:
        EWMA of measured delivered goodput in bits/second, or ``None``
        before the first frame completes.
    link_bps:
        The MAC's reported instantaneous PHY rate in bits/second — the
        cross-layer hint real Wi-Fi rate adaptation exposes.  Under
        contention the achievable share is lower; ``goodput_bps``
        captures that.
    current_rung:
        The rung index used for the previous frame (or the starting
        rung on frame 0).
    """

    frame_index: int
    time_s: float
    interval_s: float
    rung_bits: tuple[int, ...]
    backlog_s: float
    goodput_bps: float | None
    link_bps: float
    current_rung: int


@dataclass(frozen=True)
class AdaptiveStats:
    """Adaptation outcome of one client's stream.

    Attributes
    ----------
    controller:
        Name of the policy that drove the stream.
    rungs:
        Rung name transmitted for each frame, in order.
    rung_switches:
        How many frames used a different rung than their predecessor.
    time_in_rung:
        Display time (seconds) attributed to each rung name.
    stall_time_s:
        Total time playback fell *further* behind the display clock —
        the rebuffering metric of the streaming literature at frame
        granularity.  Counted as transmit-backlog growth, so a
        constant pipeline delay is charged once, not every frame.
    mean_quality:
        Mean of the transmitted rungs' nominal quality scores.
    """

    controller: str
    rungs: tuple[str, ...]
    rung_switches: int
    time_in_rung: dict[str, float]
    stall_time_s: float
    mean_quality: float


class AdaptationState:
    """Per-stream feedback loop shared by every engine-backed simulator.

    Owns everything the controller reads (backlog, goodput EWMA,
    current rung) and everything the reports show (switch counts, rung
    dwell times, stall time, delivered quality).  The engine drives it
    with two calls per frame: :meth:`choose` when the frame is ready,
    :meth:`record` once the transmission has been priced.

    Parameters
    ----------
    controller:
        The (stateless) :class:`~repro.streaming.adaptive.RateController`
        policy instance.
    ladder:
        The quality ladder rungs are drawn from.
    start_rung:
        Rung index in effect before the first frame.
    interval_s:
        Frame interval (``1 / target_fps``) in seconds.
    """

    def __init__(
        self,
        controller,
        ladder: "QualityLadder",
        start_rung: int,
        interval_s: float,
    ):
        if not 0 <= start_rung < len(ladder):
            raise ValueError(
                f"start_rung {start_rung} outside ladder of {len(ladder)} rungs"
            )
        if interval_s <= 0:
            raise ValueError(f"interval_s must be positive, got {interval_s}")
        self.controller = controller
        self.ladder = ladder
        self.interval_s = interval_s
        self.rung = start_rung
        self.backlog_s = 0.0
        self.goodput_bps: float | None = None
        self.rung_names: list[str] = []
        self.rung_switches = 0
        self.time_in_rung: dict[str, float] = {}
        self.stall_time_s = 0.0
        self._quality_sum = 0.0

    def choose(
        self,
        frame_index: int,
        time_s: float,
        rung_bits: tuple[int, ...],
        link_bps: float,
    ) -> int:
        """Pick (and commit to) the rung for this frame.

        Parameters
        ----------
        frame_index:
            Zero-based frame number.
        time_s:
            Session time at the interval start.
        rung_bits:
            Exact encoded size of this frame at every rung.
        link_bps:
            Instantaneous PHY rate at ``time_s`` in bits/second.

        Returns
        -------
        int
            The chosen rung index (clamped into the ladder).
        """
        ctx = ControllerContext(
            frame_index=frame_index,
            time_s=time_s,
            interval_s=self.interval_s,
            rung_bits=tuple(rung_bits),
            backlog_s=self.backlog_s,
            goodput_bps=self.goodput_bps,
            link_bps=link_bps,
            current_rung=self.rung,
        )
        chosen = int(self.controller.select_rung(self.ladder, ctx))
        chosen = max(0, min(chosen, len(self.ladder) - 1))
        if self.rung_names and chosen != self.rung:
            self.rung_switches += 1
        self.rung = chosen
        return chosen

    def record(
        self, payload_bits: int, drain_s: float, rung: int | None = None
    ) -> None:
        """Fold one transmitted frame's timing back into the loop.

        Updates the goodput EWMA with this frame's delivered rate, adds
        any deadline overrun to the stall total, and rolls the backlog
        forward: a frame whose transmission (queued behind the backlog)
        completes after the next display refresh leaves the excess
        queued.

        Stall is a *throughput* metric: it accrues only while the
        transmit backlog is **growing** — each frame contributes how
        much further behind the display clock its transmission left
        the stream, so a persistent one-interval pipeline delay is
        charged once, not once per frame.  Fixed propagation and
        jitter overhead pipeline across frames — they shift latency,
        not sustainable rate — so they are excluded too, mirroring the
        serialization-vs-encode bound of
        :attr:`~repro.streaming.session.SessionReport.sustainable_fps`.

        Parameters
        ----------
        payload_bits:
            Bits actually transmitted (the chosen rung's size).
        drain_s:
            Scheduler-assigned time for this payload to leave the air
            (contended time under a fleet scheduler).
        rung:
            Ladder index the frame was actually transmitted at.
            Defaults to the current rung — correct for the simulators,
            whose ``choose``/``record`` calls interleave strictly.  A
            real server's transport acknowledgements can arrive *after*
            the next frame's ``choose`` has already moved the current
            rung, so it passes the frame's rung explicitly.
        """
        rung = self.ladder[self.rung if rung is None else rung]
        self.rung_names.append(rung.name)
        self._quality_sum += rung.quality
        self.time_in_rung[rung.name] = (
            self.time_in_rung.get(rung.name, 0.0) + self.interval_s
        )
        new_backlog_s = max(0.0, self.backlog_s + drain_s - self.interval_s)
        self.stall_time_s += max(0.0, new_backlog_s - self.backlog_s)
        if drain_s > 0 and payload_bits > 0:
            sample = payload_bits / drain_s
            if self.goodput_bps is None:
                self.goodput_bps = sample
            else:
                self.goodput_bps += self.controller.ewma_alpha * (
                    sample - self.goodput_bps
                )
        self.backlog_s = new_backlog_s

    def stats(self) -> AdaptiveStats:
        """Freeze the accumulated telemetry into an :class:`AdaptiveStats`."""
        n_frames = len(self.rung_names)
        return AdaptiveStats(
            controller=self.controller.name,
            rungs=tuple(self.rung_names),
            rung_switches=self.rung_switches,
            time_in_rung=dict(self.time_in_rung),
            stall_time_s=self.stall_time_s,
            mean_quality=self._quality_sum / n_frames if n_frames else 0.0,
        )


# -- frame sources ------------------------------------------------------


class FrameSource(abc.ABC):
    """Produces each frame's encoded payload sizes, one per rung.

    A source answers one question — "how many bits is frame *k* at
    every available quality rung" — and hides *how*: rendering and
    encoding on demand (:class:`CodecStreamSource`), replaying
    precomputed streams (:class:`PrecomputedSource`), or reading a
    shared :class:`~repro.codecs.ladder.LadderEncodeCache`.  The engine
    requests frames in display order, so stateful codecs behind a
    source see their frames serially.
    """

    @abc.abstractmethod
    def rung_bits(self, frame_index: int) -> tuple[int, ...]:
        """Payload bits of frame ``frame_index``, best rung first."""


class PrecomputedSource(FrameSource):
    """Replays precomputed per-frame ladder sizes, cycling if short.

    Parameters
    ----------
    frames:
        One tuple of payload bits per frame (best rung first); shorter
        streams cycle over the timeline, decoupling simulated duration
        from encode cost.
    """

    def __init__(self, frames: Sequence[Sequence[int]]):
        frames = [tuple(int(bits) for bits in frame) for frame in frames]
        if not frames:
            raise ValueError("rung_streams must hold at least one frame")
        widths = {len(frame) for frame in frames}
        if len(widths) != 1:
            raise ValueError(
                f"every frame must list the same number of rungs, got {sorted(widths)}"
            )
        self._frames = frames

    def rung_bits(self, frame_index: int) -> tuple[int, ...]:
        """Frame sizes, cycling over the precomputed stream."""
        return self._frames[frame_index % len(self._frames)]


class CodecStreamSource(FrameSource):
    """Renders a scene and encodes each frame with the given codecs.

    One shared :class:`~repro.codecs.context.FrameContext` per eye per
    frame keeps quantization and tiling at most-once work however many
    rungs are encoded.  Frames are encoded on first request and
    memoized, so the engine can ask again (e.g. when replaying) without
    re-paying the encode.

    Parameters
    ----------
    scene:
        The scene to render.
    codecs:
        Codec instances, one per rung (a single pinned codec is a
        1-rung ladder).  They are ``reset()`` at construction.
    height, width:
        Per-eye render resolution.
    display:
        Headset geometry for the eccentricity map.
    fixation_for:
        Optional ``frame_index -> (x, y)`` gaze lookup; ``None`` keeps
        the centered default.
    """

    def __init__(
        self,
        scene: "Scene",
        codecs: Sequence,
        height: int,
        width: int,
        display: "DisplayGeometry",
        fixation_for: Callable[[int], tuple[float, float]] | None = None,
    ):
        if not codecs:
            raise ValueError("a codec stream source needs at least one codec")
        for codec in codecs:
            codec.reset()
        self._scene = scene
        self._codecs = list(codecs)
        self._height = height
        self._width = width
        self._display = display
        self._fixation_for = fixation_for
        self._cache: dict[int, tuple[int, ...]] = {}

    def rung_bits(self, frame_index: int) -> tuple[int, ...]:
        """Render and encode frame ``frame_index`` (memoized)."""
        cached = self._cache.get(frame_index)
        if cached is not None:
            return cached
        fixation = (
            self._fixation_for(frame_index) if self._fixation_for is not None else None
        )
        bits = encode_frame_rungs(
            self._scene, self._codecs, self._height, self._width, self._display,
            frame_index, fixation,
        )
        self._cache[frame_index] = bits
        return bits


# -- stream specification and outcome -----------------------------------


def frames_within_window(
    n_frames: int,
    target_fps: float,
    start_s: float = 0.0,
    stop_s: float | None = None,
) -> int:
    """Frames a stream produces before departing at ``stop_s``.

    Frame ``k`` is ready at ``start_s + k / target_fps`` and is
    streamed only while its stream is present (ready time strictly
    before ``stop_s``).  ``None`` means no departure.  A valid window
    (``stop_s > start_s``) always admits frame 0.  Shared by
    :attr:`StreamSpec.frames_to_stream` and the fleet's per-client
    encode planning, so the encoder never renders frames the engine
    would drop.
    """
    if stop_s is None:
        return n_frames
    by_departure = math.ceil((stop_s - start_s) * target_fps - 1e-9)
    return max(1, min(n_frames, by_departure))


@dataclass
class StreamSpec:
    """One stream (client) as the engine sees it.

    Attributes
    ----------
    name:
        Unique stream label.
    source:
        Where the stream's per-frame payload sizes come from.
    n_frames:
        Frames to stream.
    target_fps:
        The stream's own display refresh rate; sets its frame interval
        (and, under ``pricing="backlog"``, its clock).
    encode_time_s:
        Server-side encode time charged to every frame.
    weight:
        Scheduling weight under contention.
    start_s:
        Session time the stream joins (``pricing="backlog"`` only);
        models late joiners.
    stop_s:
        Session time the stream departs, or ``None`` to stream all
        ``n_frames``.  Frames whose ready time falls at or after
        ``stop_s`` are never produced — the engine's model of a client
        leaving the fleet mid-session.
    adaptation:
        Optional per-stream :class:`AdaptationState` (controller +
        telemetry); ``None`` pins the source's first rung.
    rung_map:
        Ladder indices available in ``source``, in source order; lets a
        pinned fleet encode only the rung it transmits.  ``None`` means
        the identity map.
    """

    name: str
    source: FrameSource
    n_frames: int
    target_fps: float
    encode_time_s: float = 0.0
    weight: float = 1.0
    start_s: float = 0.0
    stop_s: float | None = None
    adaptation: AdaptationState | None = None
    rung_map: tuple[int, ...] | None = None

    def __post_init__(self):
        if not self.name:
            raise ValueError("stream name must be non-empty")
        validate_stream_timing(n_frames=self.n_frames, target_fps=self.target_fps)
        if self.encode_time_s < 0:
            raise ValueError(f"encode_time_s must be >= 0, got {self.encode_time_s}")
        if self.weight <= 0:
            raise ValueError(f"stream {self.name!r}: weight must be positive")
        if self.start_s < 0:
            raise ValueError(f"start_s must be >= 0, got {self.start_s}")
        validate_stream_window(self.start_s, self.stop_s, name=self.name)

    @property
    def interval_s(self) -> float:
        """The stream's own frame interval in seconds."""
        return 1.0 / self.target_fps

    @property
    def frames_to_stream(self) -> int:
        """Frames actually produced, after any ``stop_s`` departure.

        Frame ``k`` is ready at ``start_s + k * interval_s`` and is
        streamed only while the stream is present (ready time strictly
        before ``stop_s``).  A valid window always admits frame 0.
        """
        return frames_within_window(
            self.n_frames, self.target_fps, self.start_s, self.stop_s
        )


@dataclass(frozen=True)
class StreamOutcome:
    """What one stream experienced: per-frame timings plus telemetry.

    Attributes
    ----------
    name:
        The stream's label.
    frames:
        One :class:`FrameTiming` per streamed frame, in display order.
    adaptive:
        Frozen adaptation telemetry, or ``None`` for pinned streams.
    loss:
        Frozen loss/recovery telemetry, or ``None`` on lossless links.
    """

    name: str
    frames: list[FrameTiming]
    adaptive: AdaptiveStats | None = None
    loss: LossStats | None = None


# -- kernel runtime state -----------------------------------------------


class _Flow:
    """An in-flight transmission inside the fluid event kernel."""

    __slots__ = (
        "frame_index",
        "payload_bits",
        "wire_bits",
        "rung_name",
        "nominal_s",
        "send_start_s",
        "remaining_bits",
        "share",
        "version",
    )

    def __init__(
        self, frame_index, payload_bits, wire_bits, rung_name, nominal_s, send_start_s
    ):
        self.frame_index = frame_index
        self.payload_bits = payload_bits
        self.wire_bits = wire_bits
        self.rung_name = rung_name
        self.nominal_s = nominal_s
        self.send_start_s = send_start_s
        self.remaining_bits = float(wire_bits)
        self.share = 0.0
        self.version = 0


class _StreamRuntime:
    """Mutable per-stream bookkeeping for one engine run."""

    __slots__ = (
        "spec", "rng", "queue", "flow", "pending_start", "timings", "backlog_s", "loss"
    )

    def __init__(self, spec: StreamSpec, rng: np.random.Generator):
        self.spec = spec
        self.rng = rng
        self.queue: deque = deque()
        self.flow: _Flow | None = None
        self.pending_start = False
        self.timings: list[FrameTiming] = []
        self.backlog_s = 0.0  # non-adaptive solo streams track their own
        self.loss: LossRuntime | None = None  # set by run() on lossy links


# -- the engine ---------------------------------------------------------


class StreamingEngine:
    """Discrete-event simulation core shared by every streaming path.

    Parameters
    ----------
    link:
        The (possibly traced) wireless link all streams share.
    scheduler:
        Link scheduling discipline (name or :class:`LinkScheduler`).
    pricing:
        Transport pricing mode, one of
        :data:`~repro.streaming.validation.PRICING_MODES`:

        ``"backlog"``
            Each stream runs on its own display clock (``start_s`` +
            multiples of its frame interval) and queues payloads behind
            its own transmit backlog.  Concurrent transmissions share
            the link in the fluid limit of the scheduler's
            :meth:`~LinkScheduler.instantaneous_shares`, integrated
            exactly through a traced link's capacity profile.
        ``"round"``
            The legacy fleet semantics: all streams tick on one round
            clock (the fastest stream's interval) and every round's
            payloads are offered together at the round start via
            :meth:`~LinkScheduler.drain_times_s`, with backlog feeding
            the controllers and the stall metric rather than the
            scheduler.  Drain pricing is preserved bit for bit; jitter
            overhead now draws from the per-stream spawned RNGs, so on
            links with ``jitter_ms > 0`` transmit times differ from
            the pre-engine shared-RNG draws (a one-time, documented
            change).
    recovery:
        Loss recovery policy — a name from
        :data:`~repro.streaming.loss.RECOVERY_CHOICES`, a
        :class:`~repro.streaming.loss.RecoveryPolicy` instance, or
        ``None`` for the default (ARQ) when the link carries a
        :class:`~repro.streaming.loss.LossTrace`.  Naming a policy on
        a lossless link is an error: there is nothing to recover from.

    Notes
    -----
    A single-stream run under ``"backlog"`` is priced analytically —
    the event timeline of a lone stream is deterministic, so each
    frame resolves at its :data:`FRAME_READY` event exactly as the
    historical session loops did (controller feedback included), which
    keeps solo reports bit-for-bit stable.  Multi-stream runs resolve
    contention event by event, so a controller sees a frame's feedback
    when its transmission actually completes.
    """

    def __init__(
        self,
        link: WirelessLink,
        scheduler: str | LinkScheduler = "fair",
        pricing: str = "backlog",
        recovery=None,
    ):
        self.link = link
        self.scheduler = get_scheduler(scheduler)
        self.pricing = validate_pricing(pricing)
        if link.loss is not None:
            self.recovery = get_recovery_policy(recovery)
        elif recovery is not None:
            raise ValueError(
                "a recovery policy needs a lossy link; "
                "set WirelessLink.loss (e.g. LossTrace.bernoulli(0.01)) "
                "or drop the recovery argument"
            )
        else:
            self.recovery = None
        self.last_events: tuple[Event, ...] = ()

    # -- public entry ---------------------------------------------------

    def run(self, streams: Sequence[StreamSpec], seed: int = 0) -> list[StreamOutcome]:
        """Simulate the streams to completion.

        Parameters
        ----------
        streams:
            The stream specifications; names must be unique.
        seed:
            Master seed.  Per-stream jitter RNGs are spawned from
            ``numpy.random.SeedSequence(seed)``, one child per stream
            in order — adding a stream never perturbs the jitter draws
            of the streams before it.

        Returns
        -------
        list of StreamOutcome
            One outcome per stream, in input order.  The kernel's
            event log (in processing order) is kept on
            :attr:`last_events`.
        """
        streams = list(streams)
        if not streams:
            raise ValueError("the engine needs at least one stream")
        names = [spec.name for spec in streams]
        if len(set(names)) != len(names):
            duplicates = sorted({n for n in names if names.count(n) > 1})
            raise ValueError(f"duplicate stream names: {duplicates}")
        rngs = [
            np.random.default_rng(child)
            for child in np.random.SeedSequence(seed).spawn(len(streams))
        ]
        runtimes = [_StreamRuntime(spec, rng) for spec, rng in zip(streams, rngs)]
        if self.link.loss is not None:
            for rt in runtimes:
                rt.loss = LossRuntime(
                    self.link.loss,
                    self.recovery,
                    interval_s=rt.spec.interval_s,
                    rtt_s=self.link.rtt_s,
                )
        self._events: list[Event] = []
        if self.pricing == "round":
            self._run_round_priced(runtimes)
        elif len(runtimes) == 1:
            self._run_solo(runtimes[0])
        else:
            self._run_event_kernel(runtimes)
        self.last_events = tuple(self._events)
        return [
            StreamOutcome(
                name=rt.spec.name,
                frames=rt.timings,
                adaptive=(
                    rt.spec.adaptation.stats()
                    if rt.spec.adaptation is not None
                    else None
                ),
                loss=rt.loss.stats() if rt.loss is not None else None,
            )
            for rt in runtimes
        ]

    # -- shared helpers -------------------------------------------------

    def _choose_payload(
        self, rt: _StreamRuntime, frame_index: int, time_s: float
    ) -> tuple[int, str]:
        """Ask the stream's controller (if any) for this frame's rung.

        Returns the payload bits and the rung name ("" when pinned).
        """
        spec = rt.spec
        bits = spec.source.rung_bits(frame_index)
        state = spec.adaptation
        if state is None:
            return bits[0], ""
        chosen = state.choose(frame_index, time_s, bits, self.link.at(time_s) * 1e6)
        rung_map = (
            spec.rung_map if spec.rung_map is not None else tuple(range(len(bits)))
        )
        local = rung_map.index(chosen) if chosen in rung_map else 0
        return bits[local], state.ladder[rung_map[local]].name

    def _log(self, time_s: float, kind: str, stream: str, frame_index: int) -> None:
        self._events.append(Event(time_s, kind, stream, frame_index))

    # -- round pricing (legacy fleet semantics) -------------------------

    def _run_round_priced(self, runtimes: list[_StreamRuntime]) -> None:
        """All streams tick together; each round priced as one batch."""
        if any(rt.spec.start_s != 0.0 for rt in runtimes):
            raise ValueError(
                'staggered start_s requires pricing="backlog"; '
                'round pricing shares one round clock'
            )
        interval_s = 1.0 / max(rt.spec.target_fps for rt in runtimes)
        n_rounds = max(rt.spec.n_frames for rt in runtimes)
        weights_all = [rt.spec.weight for rt in runtimes]
        for frame_index in range(n_rounds):
            round_start_s = frame_index * interval_s
            # A departed stream (stop_s at or before this round's start)
            # contributes nothing to the round's batch — the round-clock
            # equivalent of the backlog kernel never producing frames
            # after the departure.
            active = [
                rt
                for rt in runtimes
                if frame_index < rt.spec.n_frames
                and (rt.spec.stop_s is None or round_start_s < rt.spec.stop_s)
            ]
            if not active:
                continue
            payloads: list[int] = []
            rung_names: list[str] = []
            for rt in active:
                payload, rung_name = self._choose_payload(
                    rt, frame_index, round_start_s
                )
                payloads.append(payload)
                rung_names.append(rung_name)
                self._log(round_start_s, FRAME_READY, rt.spec.name, frame_index)
            weights = (
                weights_all
                if len(active) == len(runtimes)
                else [rt.spec.weight for rt in active]
            )
            # FEC parity inflates what the link must carry, so drain
            # pricing sees wire bits; payload bits stay the reported
            # (and controller-visible) frame size.  Lossless links take
            # the unmodified historical path.
            wire_payloads = (
                [rt.loss.wire_bits(p) for rt, p in zip(active, payloads)]
                if self.link.loss is not None
                else payloads
            )
            drains = self.scheduler.drain_times_s(
                wire_payloads, weights, self.link, start_s=round_start_s
            )
            for rt, payload, rung_name, drain in zip(
                active, payloads, rung_names, drains
            ):
                recovery_s = (
                    rt.loss.on_frame(rt.rng, payload, drain, round_start_s)
                    if rt.loss is not None
                    else 0.0
                )
                overhead = self.link.overhead_time_s(rt.rng)
                if rt.spec.adaptation is not None:
                    rt.spec.adaptation.record(payload, drain)
                rt.timings.append(
                    FrameTiming(
                        frame_index=frame_index,
                        payload_bits=payload,
                        encode_time_s=rt.spec.encode_time_s,
                        serialization_time_s=drain,
                        transmit_time_s=drain + overhead + recovery_s,
                        rung=rung_name,
                    )
                )
                self._log(round_start_s, TRANSMIT_START, rt.spec.name, frame_index)
                self._log(
                    round_start_s + drain, TRANSMIT_DONE, rt.spec.name, frame_index
                )

    # -- solo fast path (deterministic timeline) ------------------------

    def _run_solo(self, rt: _StreamRuntime) -> None:
        """Backlog pricing for a lone stream, resolved analytically.

        With no cross-stream contention every frame's fate is fixed the
        moment it is ready: it queues behind the stream's backlog,
        serializes through the (possibly traced) link from its send
        time, and rolls the backlog forward.  Resolving at the
        :data:`FRAME_READY` event preserves the historical session
        loops bit for bit, controller feedback order included.
        """
        spec = rt.spec
        state = spec.adaptation
        interval_s = spec.interval_s
        for frame_index in range(spec.frames_to_stream):
            time_s = spec.start_s + frame_index * interval_s
            self._log(time_s, FRAME_READY, spec.name, frame_index)
            payload, rung_name = self._choose_payload(rt, frame_index, time_s)
            # The payload queues behind the existing backlog before it
            # can start serializing; the wait is part of this frame's
            # latency (transmit time) but not of its airtime
            # (serialization).
            queue_wait_s = state.backlog_s if state is not None else rt.backlog_s
            send_start_s = time_s + queue_wait_s
            # Loss draws land before the jitter draw — the fixed
            # per-frame draw order the cohort tracers replicate.  On a
            # lossless link neither branch draws nor changes a bit.
            if rt.loss is not None:
                serialization = self.link.serialization_time_s(
                    rt.loss.wire_bits(payload), start_s=send_start_s
                )
                recovery_s = rt.loss.on_frame(rt.rng, payload, serialization, time_s)
            else:
                serialization = self.link.serialization_time_s(
                    payload, start_s=send_start_s
                )
                recovery_s = 0.0
            overhead = self.link.overhead_time_s(rt.rng)
            rt.timings.append(
                FrameTiming(
                    frame_index=frame_index,
                    payload_bits=payload,
                    encode_time_s=spec.encode_time_s,
                    serialization_time_s=serialization,
                    transmit_time_s=queue_wait_s + serialization + overhead
                    + recovery_s,
                    rung=rung_name,
                )
            )
            if state is not None:
                state.record(payload, serialization)
            else:
                rt.backlog_s = max(0.0, rt.backlog_s + serialization - interval_s)
            self._log(send_start_s, TRANSMIT_START, spec.name, frame_index)
            self._log(
                send_start_s + serialization, TRANSMIT_DONE, spec.name, frame_index
            )

    # -- the event kernel (fluid contention) ----------------------------

    def _run_event_kernel(self, runtimes: list[_StreamRuntime]) -> None:
        """Event-driven backlog pricing for contending streams."""
        heap: list[tuple] = []
        seq = 0

        def push(time_s, kind, stream_index, frame_index=-1, version=-1):
            nonlocal seq
            heapq.heappush(
                heap,
                (time_s, _EVENT_ORDER[kind], seq, kind, stream_index, frame_index, version),
            )
            seq += 1

        for index, rt in enumerate(runtimes):
            interval_s = rt.spec.interval_s
            for frame_index in range(rt.spec.frames_to_stream):
                push(
                    rt.spec.start_s + frame_index * interval_s,
                    FRAME_READY,
                    index,
                    frame_index,
                )

        clock = 0.0
        version_counter = 0

        def advance(now: float) -> None:
            """Drain every in-flight flow at its share up to ``now``."""
            nonlocal clock
            if now <= clock:
                return
            capacity = self.link.capacity_bits(clock, now)
            for rt in runtimes:
                flow = rt.flow
                if flow is not None and flow.share > 0.0:
                    flow.remaining_bits = max(
                        0.0, flow.remaining_bits - flow.share * capacity
                    )
            clock = now

        def reschedule(now: float) -> None:
            """Re-divide the link after the active set changed."""
            nonlocal version_counter
            active = [i for i, rt in enumerate(runtimes) if rt.flow is not None]
            if not active:
                return
            shares = self.scheduler.instantaneous_shares(
                [runtimes[i].spec.weight for i in active]
            )
            for i, share in zip(active, shares):
                flow = runtimes[i].flow
                version_counter += 1
                flow.version = version_counter
                flow.share = share
                if share <= 0.0:
                    continue  # re-priced when the active set next changes
                if flow.remaining_bits <= _DRAIN_EPSILON_BITS:
                    finish = now
                else:
                    finish = now + self.link.serialization_time_s(
                        flow.remaining_bits / share, start_s=now
                    )
                push(finish, TRANSMIT_DONE, i, flow.frame_index, flow.version)

        while heap:
            time_s, _, _, kind, index, frame_index, version = heapq.heappop(heap)
            rt = runtimes[index]
            spec = rt.spec
            if kind == FRAME_READY:
                self._log(time_s, FRAME_READY, spec.name, frame_index)
                payload, rung_name = self._choose_payload(rt, frame_index, time_s)
                wire = rt.loss.wire_bits(payload) if rt.loss is not None else payload
                rt.queue.append((frame_index, payload, wire, rung_name, time_s))
                if rt.flow is None and not rt.pending_start:
                    rt.pending_start = True
                    push(time_s, TRANSMIT_START, index)
            elif kind == TRANSMIT_START:
                rt.pending_start = False
                frame_index, payload, wire, rung_name, nominal_s = rt.queue.popleft()
                self._log(time_s, TRANSMIT_START, spec.name, frame_index)
                advance(time_s)
                rt.flow = _Flow(frame_index, payload, wire, rung_name, nominal_s, time_s)
                reschedule(time_s)
            else:  # TRANSMIT_DONE
                flow = rt.flow
                if flow is None or flow.version != version:
                    continue  # superseded by a later reschedule
                self._log(time_s, TRANSMIT_DONE, spec.name, flow.frame_index)
                advance(time_s)
                serialization = time_s - flow.send_start_s
                queue_wait_s = flow.send_start_s - flow.nominal_s
                recovery_s = (
                    rt.loss.on_frame(
                        rt.rng, flow.payload_bits, serialization, flow.nominal_s
                    )
                    if rt.loss is not None
                    else 0.0
                )
                overhead = self.link.overhead_time_s(rt.rng)
                if spec.adaptation is not None:
                    spec.adaptation.record(flow.payload_bits, serialization)
                rt.timings.append(
                    FrameTiming(
                        frame_index=flow.frame_index,
                        payload_bits=flow.payload_bits,
                        encode_time_s=spec.encode_time_s,
                        serialization_time_s=serialization,
                        transmit_time_s=queue_wait_s + serialization + overhead
                        + recovery_s,
                        rung=flow.rung_name,
                    )
                )
                rt.flow = None
                if rt.queue and not rt.pending_start:
                    rt.pending_start = True
                    push(time_s, TRANSMIT_START, index)
                reschedule(time_s)
        for rt in runtimes:
            rt.timings.sort(key=lambda timing: timing.frame_index)
