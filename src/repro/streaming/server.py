"""Multi-client streaming engine: N headsets, one shared link.

The single-session simulator answers "what does this encoder buy one
client on a dedicated link".  Real deployments of the paper's system —
the remote-rendering scenario of Sec. 2.2 — put several headsets behind
one access point, so what matters is how encoders behave under
*contention*: per-client frames compete for the same air time, and the
scheduler decides who waits.

This module simulates exactly that, as a thin wrapper over the
discrete-event kernel in :mod:`repro.streaming.engine`:

* each :class:`ClientConfig` carries its own scene, gaze trace,
  resolution, target refresh rate, codec choice, scheduling weight,
  and (optionally staggered) start time;
* encoded payloads contend for one
  :class:`~repro.streaming.link.WirelessLink` under a
  :class:`~repro.streaming.engine.LinkScheduler` — weighted fair share
  in the fluid (GPS) limit, or strict priority.  The default
  ``pricing="backlog"`` runs every client on its own display clock
  and queues its payloads behind its own transmit backlog (so mixed
  refresh rates and late joiners need no fastest-client hack);
  ``pricing="round"`` replays the legacy round-priced engine (bit for
  bit on jitter-free links; jitter now draws from per-client RNGs);
* per-client :class:`ClientReport`\\ s (a
  :class:`~repro.streaming.session.SessionReport` each, so the
  encode-vs-serialization fps bound applies unchanged) roll up into a
  :class:`FleetReport` with tail latency, clients meeting target, and
  aggregate link utilization.

Client streams are independent until their payloads meet at the link,
so with ``n_jobs > 1`` the render+encode work fans out over a process
pool, one task per client stream — frames within a stream stay serial
and ordered, which is what stateful codecs require.

Two orthogonal extensions ride on the same kernel:

* a **time-varying link** — attach a
  :class:`~repro.streaming.traces.BandwidthTrace` and transmissions
  drain through whatever rates the trace holds while they are on the
  air;
* **adaptive rate control** — pass ``controller=`` and each client
  independently re-picks its codec rung per frame from a
  :class:`~repro.codecs.ladder.QualityLadder`, reporting rung
  switches, time-in-rung, stall time, and delivered quality via
  :class:`~repro.streaming.adaptive.AdaptiveStats`.  The ``fixed``
  controller reproduces the non-adaptive engine bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..codecs.ladder import QualityLadder, encode_stereo_bits
from ..parallel import gather, worker_pool
from ..scenes.display import QUEST2_DISPLAY, DisplayGeometry
from ..scenes.gaze import GazeSample
from ..scenes.library import get_scene
from .adaptive import FixedController, RateController, get_controller
from .engine import (
    SCHEDULER_CHOICES,
    AdaptationState,
    AdaptiveStats,
    FairShareScheduler,
    LinkScheduler,
    PrecomputedSource,
    PriorityScheduler,
    StreamingEngine,
    StreamSpec,
    frames_within_window,
    get_scheduler,
)
from .link import WIFI6_LINK, WirelessLink
from .session import ENCODER_CHOICES, SessionReport, build_streaming_codec
from .validation import validate_stream_timing, validate_stream_window

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .sketch import QuantileSketch

__all__ = [
    "ClientConfig",
    "LinkScheduler",
    "FairShareScheduler",
    "PriorityScheduler",
    "SCHEDULER_CHOICES",
    "get_scheduler",
    "ClientReport",
    "FleetReport",
    "solo_sustainable_fps",
    "simulate_fleet",
]


@dataclass(frozen=True)
class ClientConfig:
    """One headset client in a fleet.

    Attributes
    ----------
    name:
        Unique client label (report lookup key).
    scene:
        Scene name from :mod:`repro.scenes.library`.
    codec:
        Streaming encoder name (one of
        :data:`~repro.streaming.session.ENCODER_CHOICES`).  Under
        adaptive rate control this is the client's *starting* rung.
    height, width:
        Per-eye render resolution.
    target_fps:
        Refresh rate this client must sustain.
    weight:
        Scheduling weight: capacity share under fair share, rank under
        strict priority (higher goes first).
    fixation:
        Static gaze point in normalized coordinates, used when no gaze
        trace is given.
    gaze_trace:
        Optional :class:`~repro.scenes.gaze.GazeSample` sequence (time
        ascending); the fixation at each frame is the most recent
        sample, as a zero-latency tracker would report it.
    encode_throughput_mpixels_s:
        Server-side encoder rate for this client's stream.
    start_s:
        Session time this client joins the fleet (a late joiner's
        first frame is ready at ``start_s``).  Requires
        ``pricing="backlog"``; the legacy round pricing shares one
        round clock.
    stop_s:
        Session time this client leaves the fleet, or ``None`` to
        stream all ``n_frames``.  Frames whose ready time falls at or
        after ``stop_s`` are never streamed, and
        :attr:`FleetReport.link_utilization` weighs the client's demand
        by the fraction of the fleet horizon it was actually present.
    """

    name: str
    scene: str = "office"
    codec: str = "perceptual"
    height: int = 192
    width: int = 192
    target_fps: float = 72.0
    weight: float = 1.0
    fixation: tuple[float, float] = (0.5, 0.5)
    gaze_trace: tuple[GazeSample, ...] | None = None
    encode_throughput_mpixels_s: float = 500.0
    start_s: float = 0.0
    stop_s: float | None = None

    def __post_init__(self):
        if not self.name:
            raise ValueError("client name must be non-empty")
        if self.codec not in ENCODER_CHOICES:
            raise ValueError(
                f"client {self.name!r}: unknown codec {self.codec!r}; "
                f"expected one of {ENCODER_CHOICES}"
            )
        if self.height < 8 or self.width < 8:
            raise ValueError(
                f"client {self.name!r}: frames must be at least 8x8, "
                f"got {self.height}x{self.width}"
            )
        if self.target_fps <= 0:
            raise ValueError(f"client {self.name!r}: target_fps must be positive")
        if self.weight <= 0:
            raise ValueError(f"client {self.name!r}: weight must be positive")
        if self.encode_throughput_mpixels_s <= 0:
            raise ValueError(
                f"client {self.name!r}: encode_throughput_mpixels_s must be positive"
            )
        if self.start_s < 0:
            raise ValueError(
                f"client {self.name!r}: start_s must be >= 0, got {self.start_s}"
            )
        validate_stream_window(self.start_s, self.stop_s, name=self.name)
        fx, fy = self.fixation
        if not (0.0 <= fx <= 1.0 and 0.0 <= fy <= 1.0):
            raise ValueError(
                f"client {self.name!r}: fixation must be within [0, 1]^2, "
                f"got {self.fixation}"
            )
        if self.gaze_trace is not None:
            trace = tuple(self.gaze_trace)
            times = [s.time_s for s in trace]
            if times != sorted(times):
                raise ValueError(
                    f"client {self.name!r}: gaze trace must be time-ascending"
                )
            object.__setattr__(self, "gaze_trace", trace)

    @property
    def encode_time_s(self) -> float:
        """Server-side encode time for one stereo frame."""
        return 2 * self.height * self.width / (self.encode_throughput_mpixels_s * 1e6)

    def fixation_at(self, time_s: float) -> tuple[float, float]:
        """Gaze point in effect at a session time.

        Parameters
        ----------
        time_s:
            Session time in seconds.

        Returns
        -------
        tuple of float
            Normalized ``(x, y)`` fixation: the latest gaze-trace
            sample at or before ``time_s``, clamped into the frame, or
            the static ``fixation`` without a trace.
        """
        if not self.gaze_trace:
            return self.fixation
        current = None
        for sample in self.gaze_trace:
            if sample.time_s > time_s:
                break
            current = sample
        if current is None:
            return self.fixation
        clamped = current.clamped()
        return (clamped.x, clamped.y)


@dataclass(frozen=True)
class ClientReport(SessionReport):
    """One client's session outcome inside a fleet.

    Identical to a :class:`~repro.streaming.session.SessionReport` —
    including the encode-vs-serialization sustainable-fps bound — with
    the frame serialization times reflecting *contended* drain times
    under the fleet's scheduler.  Adaptive fleets additionally attach
    the client's :class:`~repro.streaming.adaptive.AdaptiveStats`.
    """

    name: str = ""
    scene: str = ""
    weight: float = 1.0
    adaptive: AdaptiveStats | None = None
    start_s: float = 0.0
    stop_s: float | None = None

    @property
    def active_time_s(self) -> float:
        """Display time this client actually streamed for.

        The number of frames it produced (after any ``stop_s``
        departure) times its own frame interval — the client's
        presence, as opposed to the fleet's whole horizon.
        """
        return len(self.frames) / self.target_fps


@dataclass(frozen=True)
class FleetReport:
    """Aggregate outcome of a multi-client streaming simulation."""

    clients: tuple[ClientReport, ...]
    link: WirelessLink
    scheduler: str
    n_frames: int
    controller: str | None = None
    pricing: str = "backlog"

    @property
    def n_clients(self) -> int:
        """Number of clients simulated."""
        return len(self.clients)

    @property
    def is_adaptive(self) -> bool:
        """Whether the fleet ran under a rate controller."""
        return self.controller is not None

    def client(self, name: str) -> ClientReport:
        """Look up one client's report by name.

        Raises
        ------
        KeyError
            If no client carries ``name``.
        """
        for report in self.clients:
            if report.name == name:
                return report
        raise KeyError(
            f"no client {name!r}; have {[r.name for r in self.clients]}"
        )

    @property
    def clients_meeting_target(self) -> int:
        """How many clients sustain their target refresh rate."""
        return sum(report.meets_target for report in self.clients)

    @property
    def total_traffic_bits(self) -> int:
        """Total bits transmitted across every client and frame."""
        return int(
            sum(frame.payload_bits for report in self.clients for frame in report.frames)
        )

    @property
    def mean_latency_s(self) -> float:
        """Mean motion-to-photon contribution across all frames."""
        return float(
            np.mean([f.motion_to_photon_s for r in self.clients for f in r.frames])
        )

    def latency_sketch(self, max_centroids: int = 512) -> "QuantileSketch":
        """Every frame's motion-to-photon latency as a quantile sketch.

        The sketch is exact (every sample its own centroid) until the
        frame count exceeds ``max_centroids``, then compresses to
        constant memory — the representation fleet-scale roll-ups use
        instead of retaining millions of samples.
        """
        from .sketch import QuantileSketch

        sketch = QuantileSketch(max_centroids=max_centroids)
        for report in self.clients:
            latencies_s = [f.motion_to_photon_s for f in report.frames]
            if latencies_s:
                sketch.add(np.asarray(latencies_s))
        return sketch

    def tail_latency_s(self, percentile: float = 95.0, *, exact: bool = False) -> float:
        """Latency percentile across every frame of every client.

        Answered from :meth:`latency_sketch`, which defers to
        ``numpy.percentile`` while uncompressed — so fleets under the
        default 512-frame budget keep their historic exact values bit
        for bit (pinned in ``tests/cohort/test_fleet_report_migration.py``).

        Parameters
        ----------
        percentile:
            Percentile in ``(0, 100]``.
        exact:
            Force the legacy exact path: materialize every sample and
            take ``numpy.percentile`` directly, whatever the size.
        """
        if not 0 < percentile <= 100:
            raise ValueError(f"percentile must be in (0, 100], got {percentile}")
        if exact:
            latencies = [f.motion_to_photon_s for r in self.clients for f in r.frames]
            return float(np.percentile(latencies, percentile))
        return self.latency_sketch().quantile(percentile / 100.0)

    def _presence_time_s(self, report: ClientReport) -> float:
        """Display time ``report`` streamed for, on the pricing clock.

        Backlog pricing ticks each client's own display clock, so a
        client's presence is its frame count at its own rate
        (:attr:`ClientReport.active_time_s`).  Legacy round pricing
        ticks one round clock at the fastest client's rate — every
        client consumes *rounds*, so its frames count round intervals,
        not intervals of its own rate.
        """
        if self.pricing == "round":
            round_fps = max(r.target_fps for r in self.clients)
            return len(report.frames) / round_fps
        return report.active_time_s

    @property
    def horizon_s(self) -> float:
        """Fleet horizon: when the last client's last frame was ready.

        The latest ``start_s`` plus presence time over the fleet — the
        duration demand is averaged over in
        :attr:`link_utilization` — measured on the clock the pricing
        mode ticks on (per-client display clocks under ``"backlog"``,
        one round clock under ``"round"``).
        """
        return max(r.start_s + self._presence_time_s(r) for r in self.clients)

    @property
    def link_utilization(self) -> float:
        """Offered load at target rates relative to link capacity.

        Each client demands ``mean payload x target fps`` bits per
        second *while present*; joins (``start_s``) and departures
        (``stop_s``) weigh that demand by the fraction of the fleet
        horizon the client actually streamed for.  The sum over
        clients, divided by the link bandwidth, is the fraction of
        capacity the fleet asks for — an always-on fleet reduces to the
        plain ``mean payload x target fps`` demand.  Values above 1
        mean the link is oversubscribed — some clients necessarily miss
        their targets.  (Traced links use their nominal mean rate.)
        An empty fleet — no client delivered a single frame — offered
        no load, so the utilization is 0.
        """
        horizon = self.horizon_s
        if horizon <= 0:
            return 0.0
        demand = sum(
            report.mean_payload_bits
            * report.target_fps
            * (presence / horizon)
            for report in self.clients
            if (presence := self._presence_time_s(report)) > 0
        )
        return demand / (self.link.bandwidth_mbps * 1e6)

    @property
    def is_lossy(self) -> bool:
        """Whether the fleet ran over a lossy link."""
        return any(r.loss is not None for r in self.clients)

    @property
    def total_resyncs(self) -> int:
        """Summed forced I-frame resyncs across lossy clients."""
        return int(sum(r.loss.resyncs for r in self.clients if r.loss is not None))

    @property
    def total_frames_lost(self) -> int:
        """Summed undelivered frames across lossy clients."""
        return int(
            sum(r.loss.frames_lost for r in self.clients if r.loss is not None)
        )

    @property
    def mean_recovery_latency_s(self) -> float:
        """Mean loss-to-resync latency across the fleet's resyncs."""
        stats = [r.loss for r in self.clients if r.loss is not None]
        resyncs = sum(s.resyncs for s in stats)
        if not resyncs:
            return 0.0
        return sum(s.recovery_time_s for s in stats) / resyncs

    @property
    def mean_delivered_quality(self) -> float | None:
        """Mean fraction of frames decoded and displayed, or ``None``.

        ``None`` on lossless links (where every frame is displayed by
        construction and the column would be noise).
        """
        values = [
            r.loss.delivered_quality for r in self.clients if r.loss is not None
        ]
        return float(np.mean(values)) if values else None

    @property
    def goodput_fraction(self) -> float | None:
        """Displayed payload over all offered bits, or ``None`` lossless."""
        stats = [r.loss for r in self.clients if r.loss is not None]
        if not stats:
            return None
        goodput = sum(s.goodput_bits for s in stats)
        total = goodput + sum(s.wasted_bits + s.overhead_bits for s in stats)
        return goodput / total if total else 1.0

    @property
    def total_stall_time_s(self) -> float:
        """Summed stall time across adaptive clients (0 when pinned)."""
        return float(
            sum(r.adaptive.stall_time_s for r in self.clients if r.adaptive is not None)
        )

    @property
    def total_rung_switches(self) -> int:
        """Summed rung switches across adaptive clients."""
        return int(
            sum(r.adaptive.rung_switches for r in self.clients if r.adaptive is not None)
        )

    @property
    def mean_quality(self) -> float | None:
        """Mean delivered quality across adaptive clients (else ``None``)."""
        qualities = [
            r.adaptive.mean_quality for r in self.clients if r.adaptive is not None
        ]
        return float(np.mean(qualities)) if qualities else None

    def to_json(self, indent: int | None = 2) -> str:
        """Serialize through :mod:`repro.streaming.reports`.

        The payload is type-tagged (``"report": "fleet"``) so the
        generic :func:`~repro.streaming.reports.report_from_json`
        loader reads it back alongside session/client/server payloads.
        """
        from .reports import report_to_json

        return report_to_json(self, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "FleetReport":
        """Load a report serialized by :meth:`to_json`."""
        from .reports import report_from_json

        report = report_from_json(text)
        if not isinstance(report, cls):
            raise TypeError(
                f"payload decodes to {type(report).__name__}, "
                f"not {cls.__name__}"
            )
        return report

    def summary(self) -> str:
        """One-line fleet health readout."""
        text = (
            f"{self.clients_meeting_target}/{self.n_clients} clients meet target | "
            f"link utilization {self.link_utilization:.2f} | "
            f"p95 latency {self.tail_latency_s(95.0) * 1e3:.2f} ms | "
            f"scheduler {self.scheduler}"
        )
        if self.is_adaptive:
            text += (
                f" | controller {self.controller}"
                f" | stall {self.total_stall_time_s * 1e3:.1f} ms"
            )
            quality = self.mean_quality
            if quality is not None:
                text += f" | quality {quality:.3f}"
        if self.is_lossy:
            delivered = self.mean_delivered_quality
            text += (
                f" | resyncs {self.total_resyncs}"
                f" | delivered {delivered:.3f}"
                f" | recovery {self.mean_recovery_latency_s * 1e3:.1f} ms"
            )
        return text


def solo_sustainable_fps(report: ClientReport, link: WirelessLink) -> float:
    """Frame rate this client would sustain with the link to itself.

    Uses the same payloads and encode times the fleet produced, with
    uncontended serialization — the single-client equivalent the
    contention studies compare against.  Traced links are priced at
    their nominal (time-averaged) rate, matching the demand basis of
    :attr:`FleetReport.link_utilization`; pricing at trace time zero
    would credit the solo baseline with whatever phase the trace
    happens to start in.

    Parameters
    ----------
    report:
        The client's in-fleet report.
    link:
        The link the fleet shared.
    """
    solo_serialization = report.mean_payload_bits / (link.bandwidth_mbps * 1e6)
    bottleneck = max(solo_serialization, report.mean_encode_time_s)
    return 1.0 / bottleneck if bottleneck > 0 else float("inf")


def _encode_client_stream(
    client: ClientConfig,
    display: DisplayGeometry,
    n_frames: int,
    ladder: QualityLadder | None = None,
    rung_indices: tuple[int, ...] | None = None,
) -> list[tuple[int, ...]]:
    """Render and encode one client's whole stream, in display order.

    Runs as a unit — inline or as one process-pool task — so stateful
    codecs always see their frames serially and in order.  Without a
    ladder the client's configured codec is the only "rung"; with one,
    every frame is rendered once and encoded at each requested rung,
    sharing the per-eye :class:`~repro.codecs.context.FrameContext`.

    Returns
    -------
    list of tuple
        One tuple per frame holding the payload bits of each requested
        rung (a 1-tuple in the non-adaptive case).
    """
    scene = get_scene(client.scene)
    if ladder is None:
        codecs = [build_streaming_codec(client.codec)]
    else:
        indices = rung_indices if rung_indices is not None else tuple(range(len(ladder)))
        codecs = [ladder.build_codec(i) for i in indices]
    for codec in codecs:
        codec.reset()
    payloads: list[tuple[int, ...]] = []
    for index in range(n_frames):
        eyes = scene.render_stereo(client.height, client.width, frame=index)
        fixation = client.fixation_at(index / client.target_fps)
        eccentricity = display.eccentricity_map(
            client.height, client.width, fixation=fixation
        )
        payloads.append(encode_stereo_bits(codecs, eyes, eccentricity, display))
    return payloads


def _encode_streams(
    clients: Sequence[ClientConfig],
    display: DisplayGeometry,
    frame_counts: Sequence[int],
    n_jobs: int,
    ladder: QualityLadder | None = None,
    rung_indices: Sequence[tuple[int, ...] | None] | None = None,
) -> list[list[tuple[int, ...]]]:
    """Per-client payload streams, fanned over processes when asked.

    ``frame_counts`` holds each client's post-departure frame count
    (:func:`~repro.streaming.engine.frames_within_window`), so an
    early-leaving client never pays for frames the engine would drop.
    """
    per_client = rung_indices if rung_indices is not None else [None] * len(clients)
    if n_jobs == 1 or len(clients) == 1:
        return [
            _encode_client_stream(c, display, count, ladder, indices)
            for c, count, indices in zip(clients, frame_counts, per_client)
        ]
    with worker_pool(min(n_jobs, len(clients))) as pool:
        futures = [
            pool.submit(
                _encode_client_stream, client, display, count, ladder, indices
            )
            for client, count, indices in zip(clients, frame_counts, per_client)
        ]
        return gather(futures)


def simulate_fleet(
    clients: Sequence[ClientConfig],
    link: WirelessLink = WIFI6_LINK,
    *,
    scheduler: str | LinkScheduler = "fair",
    n_frames: int = 4,
    n_jobs: int = 1,
    display: DisplayGeometry = QUEST2_DISPLAY,
    seed: int = 0,
    controller: str | RateController | None = None,
    ladder: QualityLadder | None = None,
    pricing: str = "backlog",
    recovery=None,
) -> FleetReport:
    """Stream ``n_frames`` stereo frames per client over one shared link.

    Each client renders and encodes its own stream (scene, gaze,
    resolution, codec) and all payloads contend for the link under
    ``scheduler``, dispatched through the
    :class:`~repro.streaming.engine.StreamingEngine`.  ``n_jobs``
    parallelizes the render+encode work across client streams; results
    are bit-identical for any value.

    Parameters
    ----------
    clients:
        The fleet; names must be unique.
    link:
        The shared wireless link; attach a
        :class:`~repro.streaming.traces.BandwidthTrace` for a fading
        channel.
    scheduler:
        Link scheduling discipline (name or instance).
    n_frames:
        Frames streamed per client.
    n_jobs:
        Process-pool width for per-client encoding.
    display:
        Headset geometry shared by all clients.
    seed:
        Master seed.  Per-client jitter RNGs are spawned from
        ``numpy.random.SeedSequence(seed)`` in client order, so adding
        a client never perturbs the other clients' jitter draws.
    controller:
        Optional rate-control policy (name or
        :class:`~repro.streaming.adaptive.RateController`).  When set,
        every client starts on the rung matching its configured codec
        and independently re-picks a rung each frame; the ``fixed``
        controller reproduces the non-adaptive engine bit for bit.
    ladder:
        Quality ladder for adaptive runs; defaults to
        :meth:`~repro.codecs.ladder.QualityLadder.default`.  Only
        valid with a controller.
    pricing:
        Transport pricing mode.  The default ``"backlog"`` gives every
        client its own display clock — frames arrive at
        ``start_s + k / target_fps`` and queue behind the client's own
        transmit backlog, with cross-client contention resolved event
        by event in the scheduler's fluid limit (this is the semantics
        :func:`~repro.streaming.adaptive.simulate_adaptive_session`
        always had, now shared by the fleet; it admits mixed refresh
        rates and staggered ``start_s`` without a fastest-client
        hack).  ``"round"`` replays the legacy engine: one round
        clock at the fastest client's interval, every round's payloads
        offered together at the round start, backlog feeding the
        controllers and the stall metric rather than the scheduler.
        Drain pricing is bit-for-bit; jitter draws now come from the
        per-client spawned RNGs (see the migration notes), so jittery
        links see a one-time report change versus PR 3.
    recovery:
        Loss recovery policy (name from
        :data:`~repro.streaming.loss.RECOVERY_CHOICES` or a
        :class:`~repro.streaming.loss.RecoveryPolicy`); only valid
        when ``link`` carries a loss trace.  Each client then reports
        its :class:`~repro.streaming.loss.LossStats` and the fleet
        aggregates resyncs, recovery latency, and delivered quality.

    Returns
    -------
    FleetReport
        Per-client reports plus fleet aggregates (adaptive runs carry
        per-client :class:`~repro.streaming.adaptive.AdaptiveStats`).
    """
    clients = tuple(clients)
    if not clients:
        raise ValueError("a fleet needs at least one client")
    names = [client.name for client in clients]
    if len(set(names)) != len(names):
        duplicates = sorted({n for n in names if names.count(n) > 1})
        raise ValueError(f"duplicate client names: {duplicates}")
    validate_stream_timing(n_frames=n_frames)
    if not isinstance(n_jobs, int) or n_jobs < 1:
        raise ValueError(f"n_jobs must be a positive integer, got {n_jobs!r}")
    if controller is None and ladder is not None:
        raise ValueError("ladder only applies when a controller is given")
    engine_scheduler = get_scheduler(scheduler)
    engine = StreamingEngine(
        link, scheduler=engine_scheduler, pricing=pricing, recovery=recovery
    )
    if engine.pricing == "round":
        # The legacy round clock ticks at the fastest client's
        # interval, so a departing client consumes rounds — not frames
        # of its own rate — until ``stop_s``.
        round_fps = max(c.target_fps for c in clients)
        frame_counts = [
            frames_within_window(n_frames, round_fps, 0.0, c.stop_s) for c in clients
        ]
    else:
        frame_counts = [
            frames_within_window(n_frames, c.target_fps, c.start_s, c.stop_s)
            for c in clients
        ]

    policy: RateController | None = None
    adapters: list[AdaptationState] | None = None
    rung_maps: list[tuple[int, ...]] = []
    if controller is not None:
        policy = get_controller(controller)
        ladder = ladder if ladder is not None else QualityLadder.default()
        start_rungs = [ladder.index_of(client.codec) for client in clients]
        if isinstance(policy, FixedController):
            # A pinned fleet only ever transmits one rung per client —
            # skip encoding the rest of the ladder.
            if policy.rung is None:
                pinned = start_rungs
            elif isinstance(policy.rung, str):
                pinned = [ladder.index_of(policy.rung)] * len(clients)
            else:
                pinned = [int(policy.rung)] * len(clients)
            rung_maps = [(rung,) for rung in pinned]
            start_rungs = pinned
        else:
            rung_maps = [tuple(range(len(ladder)))] * len(clients)
        # Budgets and deadlines are judged against each client's own
        # refresh rate, whatever clock the pricing mode ticks on.
        adapters = [
            AdaptationState(policy, ladder, start, 1.0 / client.target_fps)
            for start, client in zip(start_rungs, clients)
        ]
        streams = _encode_streams(
            clients, display, frame_counts, n_jobs, ladder, rung_maps
        )
    else:
        streams = _encode_streams(clients, display, frame_counts, n_jobs)

    specs = [
        StreamSpec(
            name=client.name,
            source=PrecomputedSource(streams[ci]),
            n_frames=n_frames,
            target_fps=client.target_fps,
            encode_time_s=client.encode_time_s,
            weight=client.weight,
            start_s=client.start_s,
            stop_s=client.stop_s,
            adaptation=adapters[ci] if adapters is not None else None,
            rung_map=rung_maps[ci] if adapters is not None else None,
        )
        for ci, client in enumerate(clients)
    ]
    outcomes = engine.run(specs, seed=seed)

    reports = tuple(
        ClientReport(
            encoder=client.codec,
            frames=outcome.frames,
            target_fps=client.target_fps,
            loss=outcome.loss,
            name=client.name,
            scene=client.scene,
            weight=client.weight,
            adaptive=outcome.adaptive,
            start_s=client.start_s,
            stop_s=client.stop_s,
        )
        for client, outcome in zip(clients, outcomes)
    )
    return FleetReport(
        clients=reports,
        link=link,
        scheduler=engine_scheduler.name,
        n_frames=n_frames,
        controller=policy.name if policy is not None else None,
        pricing=engine.pricing,
    )
