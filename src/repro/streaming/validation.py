"""Shared parameter validation for the streaming simulators.

Every public simulator — :func:`~repro.streaming.session.simulate_session`,
:func:`~repro.streaming.adaptive.simulate_adaptive_session`, and
:func:`~repro.streaming.server.simulate_fleet` — used to carry its own
copy of the same guard clauses, with error messages drifting apart one
review at a time.  They now all validate here, as does the
:class:`~repro.streaming.engine.StreamingEngine` they dispatch through,
so a bad ``n_frames`` raises the same message whichever door it comes
in by.
"""

from __future__ import annotations

import math

__all__ = [
    "PRICING_MODES",
    "validate_stream_timing",
    "validate_stream_window",
    "validate_pricing",
    "validate_probability",
    "validate_burst_length",
    "validate_backoff",
]

#: Transport pricing disciplines the engine understands: ``"backlog"``
#: queues each stream's payloads behind its own transmit backlog
#: (per-stream clocks, event-driven contention); ``"round"`` replays
#: the legacy fleet semantics where every round's payloads are offered
#: together at the round start.
PRICING_MODES = ("backlog", "round")


def validate_stream_timing(
    n_frames: int | None = None,
    target_fps: float | None = None,
    encode_throughput_mpixels_s: float | None = None,
) -> None:
    """Reject non-positive stream-timing parameters.

    Pass only the parameters the caller actually has; ``None`` skips a
    check.  Error messages are the historical ones, so callers (and
    tests) matching on them keep working.

    Parameters
    ----------
    n_frames:
        Number of frames to stream; must be positive.
    target_fps:
        Display refresh rate in frames per second; must be positive.
    encode_throughput_mpixels_s:
        Server-side encoder rate; must be positive.

    Raises
    ------
    ValueError
        On the first non-positive value, with the parameter named.
    """
    if n_frames is not None and n_frames <= 0:
        raise ValueError(f"n_frames must be positive, got {n_frames}")
    if target_fps is not None and target_fps <= 0:
        raise ValueError(f"target_fps must be positive, got {target_fps}")
    if encode_throughput_mpixels_s is not None and encode_throughput_mpixels_s <= 0:
        raise ValueError("encode_throughput_mpixels_s must be positive")


def validate_stream_window(
    start_s: float = 0.0, stop_s: float | None = None, name: str | None = None
) -> None:
    """Reject an impossible join/leave window.

    A stream joins the session at ``start_s`` and (optionally) departs
    at ``stop_s``: frames whose ready time falls at or after ``stop_s``
    are never streamed.  Both the fleet's
    :class:`~repro.streaming.server.ClientConfig` and the engine's
    :class:`~repro.streaming.engine.StreamSpec` validate here, so a bad
    window raises the same message whichever door it comes in by.

    Parameters
    ----------
    start_s:
        Session time the stream joins; must be >= 0.
    stop_s:
        Session time the stream departs, or ``None`` for no departure.
        Must leave room for at least the first frame
        (``stop_s > start_s``).
    name:
        Optional stream/client name used to prefix error messages.

    Raises
    ------
    ValueError
        On a negative ``start_s`` or a ``stop_s`` at or before it.
    """
    prefix = f"{name!r}: " if name else ""
    if start_s < 0:
        raise ValueError(f"{prefix}start_s must be >= 0, got {start_s}")
    if stop_s is not None and stop_s <= start_s:
        raise ValueError(
            f"{prefix}stop_s must be > start_s ({start_s}), got {stop_s}"
        )


def validate_pricing(pricing: str) -> str:
    """Canonicalize a transport-pricing mode name.

    Parameters
    ----------
    pricing:
        One of :data:`PRICING_MODES`.

    Returns
    -------
    str
        The validated mode, unchanged.

    Raises
    ------
    ValueError
        For unknown modes.
    """
    if pricing not in PRICING_MODES:
        raise ValueError(
            f"unknown pricing {pricing!r}; expected one of {PRICING_MODES}"
        )
    return pricing


def validate_probability(value: float, name: str) -> float:
    """Reject a probability outside ``[0, 1]`` (or NaN/inf).

    Loss traces and chaos configs are parameterized almost entirely by
    probabilities, and a NaN smuggled through an arithmetic pipeline
    turns every comparison silently false — so non-finite values are
    rejected by name rather than allowed to propagate.

    Parameters
    ----------
    value:
        The candidate probability.
    name:
        Parameter name used in the error message.

    Returns
    -------
    float
        The validated value as a ``float``.

    Raises
    ------
    ValueError
        If ``value`` is NaN, infinite, negative, or greater than 1.
    """
    value = float(value)
    if not math.isfinite(value):
        raise ValueError(
            f"{name} must be a finite probability in [0, 1], got {value!r}"
        )
    if not 0.0 <= value <= 1.0:
        raise ValueError(
            f"{name} must be a probability in [0, 1], got {value!r}"
        )
    return value


def validate_burst_length(value: float, name: str) -> float:
    """Reject a non-positive or non-finite mean burst length.

    A Gilbert–Elliott burst is parameterized by its mean length in
    packets; zero would mean bursts that end before they begin and a
    NaN would silently disable the bad state.

    Parameters
    ----------
    value:
        Mean burst length in packets; must be finite and >= 1.
    name:
        Parameter name used in the error message.

    Returns
    -------
    float
        The validated value as a ``float``.

    Raises
    ------
    ValueError
        If ``value`` is NaN, infinite, or below 1.
    """
    value = float(value)
    if not math.isfinite(value) or value < 1.0:
        raise ValueError(
            f"{name} must be a finite mean burst length >= 1 packet, "
            f"got {value!r}"
        )
    return value


def validate_backoff(base_s: float, factor: float, max_s: float) -> None:
    """Reject an impossible exponential-backoff schedule.

    Shared by the ARQ retransmission policy and the serving client's
    reconnect loop, so both fail identically on the same bad schedule.

    Parameters
    ----------
    base_s:
        First-attempt delay in seconds; must be finite and >= 0.
    factor:
        Per-attempt multiplier; must be finite and >= 1 (a factor
        below 1 would make later retries *faster*, defeating backoff).
    max_s:
        Delay cap in seconds; must be finite and >= ``base_s``.

    Raises
    ------
    ValueError
        On the first offending parameter, with the constraint named.
    """
    base_s = float(base_s)
    factor = float(factor)
    max_s = float(max_s)
    if not math.isfinite(base_s) or base_s < 0.0:
        raise ValueError(
            f"backoff base_s must be finite and >= 0 seconds, got {base_s!r}"
        )
    if not math.isfinite(factor) or factor < 1.0:
        raise ValueError(
            f"backoff factor must be finite and >= 1, got {factor!r}"
        )
    if not math.isfinite(max_s) or max_s < base_s:
        raise ValueError(
            f"backoff max_s must be finite and >= base_s ({base_s}), "
            f"got {max_s!r}"
        )
