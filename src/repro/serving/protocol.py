"""Wire protocol of the streaming server: framing, handshake, ACKs.

Everything here is **pure**: messages are frozen dataclasses, encoding
returns ``bytes``, and decoding is an incremental state machine
(:class:`MessageDecoder`) that accepts input split at *any* byte
boundary — exactly what a TCP stream delivers.  No sockets, no clocks,
no asyncio: the server and client layers own the I/O and feed this
module whatever arrives.

Wire format
-----------

Every message is one frame::

    +----+----+------+----------------+------------------+
    | 'R'| 'V'| type | u32 body length|   body bytes ...  |
    +----+----+------+----------------+------------------+

2-byte magic, 1-byte type tag, big-endian 32-bit body length, body.
Control messages (:class:`Hello`, :class:`Welcome`, :class:`Bye`)
carry a UTF-8 JSON body; the hot-path messages (:class:`Frame`,
:class:`Ack`) carry fixed ``struct``-packed headers so the per-frame
cost stays flat.

The handshake mirrors the simulator's configuration surface: a
:class:`Hello` carries a :class:`StreamSetup` — the
:class:`~repro.streaming.engine.StreamSpec`-equivalent description of
the stream the client wants — and the :class:`Welcome` answers with
the ladder actually in force, so client and server agree on rung
indices before the first frame flies.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass, field
from typing import Any, Iterator

__all__ = [
    "PROTOCOL_MAGIC",
    "PROTOCOL_VERSION",
    "MAX_BODY_BYTES",
    "ProtocolError",
    "StreamSetup",
    "Hello",
    "Welcome",
    "Frame",
    "Ack",
    "Bye",
    "Message",
    "encode_message",
    "MessageDecoder",
]

#: Two-byte frame preamble ("Repro Video").  Anything else on the wire
#: is a framing error, caught immediately instead of after a bad
#: length field swallows megabytes.
PROTOCOL_MAGIC = b"RV"

#: Handshake version; the server rejects a :class:`Hello` carrying a
#: different one.
PROTOCOL_VERSION = 1

#: Upper bound on a single message body.  Far above any realistic
#: encoded frame, but small enough that a corrupt length field fails
#: fast instead of buffering forever.
MAX_BODY_BYTES = 1 << 26  # 64 MiB

_HEADER = struct.Struct(">2sBI")  # magic, type, body length
_FRAME_HEAD = struct.Struct(">IHHd")  # frame_index, rung, flags, ready_time_s
_ACK_BODY = struct.Struct(">Id")  # frame_index, recv_time_s

_TYPE_HELLO = 0x01
_TYPE_WELCOME = 0x02
_TYPE_FRAME = 0x03
_TYPE_ACK = 0x04
_TYPE_BYE = 0x05


class ProtocolError(Exception):
    """The byte stream violated the wire protocol."""


@dataclass(frozen=True)
class StreamSetup:
    """What a client asks to be streamed — the wire twin of a StreamSpec.

    Carried inside :class:`Hello`; every field maps onto the knobs of
    :func:`~repro.streaming.adaptive.simulate_adaptive_session` /
    :class:`~repro.streaming.engine.StreamSpec`, which is what makes
    the digital-twin comparison possible: the same setup drives the
    simulator and the socket.

    Attributes
    ----------
    scene:
        Scene name the server should stream (must exist in its bank).
    height, width:
        Per-eye resolution the bank was encoded at.
    target_fps:
        Frame cadence the server paces at.
    n_frames:
        Frames to stream; the server sends :class:`Bye` after the last.
    controller:
        Rate-controller name from
        :data:`~repro.streaming.adaptive.CONTROLLER_CHOICES`.
    start_rung:
        Rung name (or ``None`` for the best rung) in force before the
        first frame.
    """

    scene: str
    height: int = 192
    width: int = 192
    target_fps: float = 72.0
    n_frames: int = 72
    controller: str = "throughput"
    start_rung: str | None = None

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready mapping (the :class:`Hello` body payload)."""
        return {
            "scene": self.scene,
            "height": self.height,
            "width": self.width,
            "target_fps": self.target_fps,
            "n_frames": self.n_frames,
            "controller": self.controller,
            "start_rung": self.start_rung,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "StreamSetup":
        """Rebuild from the mapping form, with type coercion."""
        return cls(
            scene=str(data["scene"]),
            height=int(data.get("height", 192)),
            width=int(data.get("width", 192)),
            target_fps=float(data.get("target_fps", 72.0)),
            n_frames=int(data.get("n_frames", 72)),
            controller=str(data.get("controller", "throughput")),
            start_rung=(
                None if data.get("start_rung") is None else str(data["start_rung"])
            ),
        )


@dataclass(frozen=True)
class Hello:
    """Client -> server: open a stream.

    Attributes
    ----------
    setup:
        The requested stream configuration.
    client_name:
        Label echoed into the server's per-client report.
    version:
        Protocol version the client speaks.
    """

    setup: StreamSetup
    client_name: str = ""
    version: int = PROTOCOL_VERSION


@dataclass(frozen=True)
class Welcome:
    """Server -> client: stream accepted, here is the ladder.

    Attributes
    ----------
    ladder:
        Rung names in force, best quality first — the decoder ring for
        every :class:`Frame.rung` index that follows.
    interval_s:
        Frame interval the server paces at.
    n_frames:
        Frames the server will actually send (it may clamp the ask).
    session:
        Server-assigned session label (unique per connection).
    """

    ladder: tuple[str, ...]
    interval_s: float
    n_frames: int
    session: str = ""


@dataclass(frozen=True)
class Frame:
    """Server -> client: one encoded stereo frame.

    Attributes
    ----------
    frame_index:
        Zero-based frame number within the stream.
    rung:
        Ladder index the payload was encoded at.
    ready_time_s:
        Session time the frame became ready on the server (the paced
        ``k * interval`` instant) — lets the client compute end-to-end
        lateness without clock sync.
    payload:
        The encoded bitstream bytes.
    flags:
        Reserved bit field (zero today).
    """

    frame_index: int
    rung: int
    ready_time_s: float
    payload: bytes
    flags: int = 0


@dataclass(frozen=True)
class Ack:
    """Client -> server: a frame was fully received and consumed.

    Attributes
    ----------
    frame_index:
        The frame being acknowledged.
    recv_time_s:
        Client-side session time (seconds since its own epoch) the
        frame finished arriving.  Informational — the server measures
        drain with its *own* clock on ACK arrival, so no clock sync is
        assumed.
    """

    frame_index: int
    recv_time_s: float


@dataclass(frozen=True)
class Bye:
    """Either side: the stream is over.

    Attributes
    ----------
    reason:
        Human-readable close reason (``"complete"``, ``"drain"``, ...).
    stats:
        Optional JSON-compatible closing stats blob.
    """

    reason: str = "complete"
    stats: dict[str, Any] = field(default_factory=dict)


Message = Hello | Welcome | Frame | Ack | Bye


def _frame_bytes(msg_type: int, body: bytes) -> bytes:
    if len(body) > MAX_BODY_BYTES:
        raise ProtocolError(
            f"message body of {len(body)} bytes exceeds the "
            f"{MAX_BODY_BYTES}-byte limit"
        )
    return _HEADER.pack(PROTOCOL_MAGIC, msg_type, len(body)) + body


def _json_body(payload: dict[str, Any]) -> bytes:
    return json.dumps(payload, separators=(",", ":")).encode("utf-8")


def encode_message(message: Message) -> bytes:
    """Serialize any protocol message to its wire frame."""
    if isinstance(message, Hello):
        return _frame_bytes(
            _TYPE_HELLO,
            _json_body(
                {
                    "version": message.version,
                    "client_name": message.client_name,
                    "setup": message.setup.to_dict(),
                }
            ),
        )
    if isinstance(message, Welcome):
        return _frame_bytes(
            _TYPE_WELCOME,
            _json_body(
                {
                    "ladder": list(message.ladder),
                    "interval_s": message.interval_s,
                    "n_frames": message.n_frames,
                    "session": message.session,
                }
            ),
        )
    if isinstance(message, Frame):
        head = _FRAME_HEAD.pack(
            message.frame_index, message.rung, message.flags, message.ready_time_s
        )
        return _frame_bytes(_TYPE_FRAME, head + message.payload)
    if isinstance(message, Ack):
        return _frame_bytes(
            _TYPE_ACK, _ACK_BODY.pack(message.frame_index, message.recv_time_s)
        )
    if isinstance(message, Bye):
        return _frame_bytes(
            _TYPE_BYE, _json_body({"reason": message.reason, "stats": message.stats})
        )
    raise TypeError(f"not a protocol message: {type(message).__name__}")


def _decode_json(body: bytes, what: str) -> dict[str, Any]:
    try:
        data = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"malformed {what} body: {exc}") from exc
    if not isinstance(data, dict):
        raise ProtocolError(f"{what} body must be a JSON object")
    return data


def _decode_body(msg_type: int, body: bytes) -> Message:
    if msg_type == _TYPE_HELLO:
        data = _decode_json(body, "HELLO")
        try:
            setup = StreamSetup.from_dict(data["setup"])
            client_name = str(data.get("client_name", ""))
            version = int(data.get("version", 0))
        except (KeyError, TypeError, ValueError) as exc:
            raise ProtocolError(f"malformed HELLO body: {exc}") from exc
        return Hello(setup=setup, client_name=client_name, version=version)
    if msg_type == _TYPE_WELCOME:
        data = _decode_json(body, "WELCOME")
        try:
            return Welcome(
                ladder=tuple(str(name) for name in data["ladder"]),
                interval_s=float(data["interval_s"]),
                n_frames=int(data["n_frames"]),
                session=str(data.get("session", "")),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ProtocolError(f"malformed WELCOME body: {exc}") from exc
    if msg_type == _TYPE_FRAME:
        if len(body) < _FRAME_HEAD.size:
            raise ProtocolError(
                f"FRAME body of {len(body)} bytes is shorter than its "
                f"{_FRAME_HEAD.size}-byte header"
            )
        frame_index, rung, flags, ready_time_s = _FRAME_HEAD.unpack_from(body)
        return Frame(
            frame_index=frame_index,
            rung=rung,
            ready_time_s=ready_time_s,
            payload=body[_FRAME_HEAD.size :],
            flags=flags,
        )
    if msg_type == _TYPE_ACK:
        if len(body) != _ACK_BODY.size:
            raise ProtocolError(
                f"ACK body must be {_ACK_BODY.size} bytes, got {len(body)}"
            )
        frame_index, recv_time_s = _ACK_BODY.unpack(body)
        return Ack(frame_index=frame_index, recv_time_s=recv_time_s)
    if msg_type == _TYPE_BYE:
        data = _decode_json(body, "BYE")
        stats = data.get("stats", {})
        if not isinstance(stats, dict):
            raise ProtocolError("BYE stats must be a JSON object")
        return Bye(reason=str(data.get("reason", "")), stats=stats)
    raise ProtocolError(f"unknown message type 0x{msg_type:02x}")


class MessageDecoder:
    """Incremental frame decoder over an arbitrarily-chunked byte stream.

    Feed it whatever the transport hands you — one byte at a time or a
    megabyte — and it yields each complete message exactly once, in
    order.  Partial frames stay buffered across calls, so the decoder
    is insensitive to where TCP happens to split the stream (the
    property the protocol round-trip tests exercise at hypothesis-chosen
    boundaries).

    Raises :class:`ProtocolError` on bad magic, unknown message types,
    or oversize bodies; after an error the decoder is poisoned and
    every further :meth:`feed` re-raises, because a framing error
    leaves no way to resynchronize a length-prefixed stream.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._error: ProtocolError | None = None

    @property
    def buffered_bytes(self) -> int:
        """Bytes held waiting for the rest of a frame."""
        return len(self._buffer)

    def feed(self, data: bytes) -> list[Message]:
        """Buffer ``data`` and return every message it completes."""
        return list(self.iter_feed(data))

    def iter_feed(self, data: bytes) -> Iterator[Message]:
        """Like :meth:`feed`, yielding messages as they complete."""
        if self._error is not None:
            raise self._error
        self._buffer.extend(data)
        while True:
            if len(self._buffer) < _HEADER.size:
                return
            magic, msg_type, length = _HEADER.unpack_from(self._buffer)
            if magic != PROTOCOL_MAGIC:
                self._error = ProtocolError(
                    f"bad frame magic {bytes(magic)!r} (expected {PROTOCOL_MAGIC!r})"
                )
                raise self._error
            if length > MAX_BODY_BYTES:
                self._error = ProtocolError(
                    f"declared body of {length} bytes exceeds the "
                    f"{MAX_BODY_BYTES}-byte limit"
                )
                raise self._error
            end = _HEADER.size + length
            if len(self._buffer) < end:
                return
            body = bytes(self._buffer[_HEADER.size : end])
            del self._buffer[:end]
            try:
                message = _decode_body(msg_type, body)
            except ProtocolError as exc:
                self._error = exc
                raise
            yield message
