"""A real async streaming server with the engine as its digital twin.

The discrete-event engine (:mod:`repro.streaming.engine`) prices
adaptive streaming analytically; this package performs the same loop
over real sockets and measures it:

* :mod:`~repro.serving.protocol` — the pure wire protocol: framed
  messages, the HELLO/WELCOME handshake, an incremental decoder safe
  against arbitrary TCP chunking;
* :mod:`~repro.serving.frames` — :class:`FrameBank`, pre-encoded
  ladder payloads (real BD bitstreams where available) that double as
  an engine :class:`~repro.streaming.engine.FrameSource`;
* :mod:`~repro.serving.server` — the asyncio server: paced frame
  loops, per-client send-queue backpressure, deadline drops, and live
  rung selection through the *same*
  :class:`~repro.streaming.engine.AdaptationState` the simulators use;
* :mod:`~repro.serving.client` — the load generator: N concurrent
  connections with trace-shaped read throttling, per-frame ACKs, and
  optional backoff-paced reconnection after mid-stream losses;
* :mod:`~repro.serving.chaos` — fault injection: a
  :class:`ChaosConfig` that drops, delays, or resets outgoing frames
  so the reconnect/resync path is exercised against real sockets.

``repro serve`` and ``repro loadgen`` expose both ends on the command
line; reports serialize through :mod:`repro.streaming.reports`, so
simulated and served metrics diff with the same tooling.
"""

from .chaos import CHAOS_ACTIONS, ChaosConfig, ChaosInjector, parse_chaos_spec
from .client import LoadgenClientReport, LoadgenConfig, LoadgenReport, run_loadgen
from .frames import FrameBank, filler_payload
from .protocol import (
    MAX_BODY_BYTES,
    PROTOCOL_MAGIC,
    PROTOCOL_VERSION,
    Ack,
    Bye,
    Frame,
    Hello,
    Message,
    MessageDecoder,
    ProtocolError,
    StreamSetup,
    Welcome,
    encode_message,
)
from .server import ServeConfig, ServedClientReport, ServerReport, StreamServer

__all__ = [
    "PROTOCOL_MAGIC",
    "PROTOCOL_VERSION",
    "MAX_BODY_BYTES",
    "ProtocolError",
    "StreamSetup",
    "Hello",
    "Welcome",
    "Frame",
    "Ack",
    "Bye",
    "Message",
    "encode_message",
    "MessageDecoder",
    "FrameBank",
    "filler_payload",
    "ServeConfig",
    "ServedClientReport",
    "ServerReport",
    "StreamServer",
    "LoadgenConfig",
    "LoadgenClientReport",
    "LoadgenReport",
    "run_loadgen",
    "ChaosConfig",
    "ChaosInjector",
    "parse_chaos_spec",
    "CHAOS_ACTIONS",
]
