"""The asyncio streaming server: the engine's loop on real sockets.

This is the system half of the digital twin.  The discrete-event
engine *prices* a stream — frames ready on an interval clock, a rate
controller picking rungs, payloads draining through a link — and this
server *performs* it: an asyncio TCP accept loop, one paced frame loop
per connection, length-prefixed :class:`~repro.serving.protocol.Frame`
messages on the wire, and per-client backpressure with deadline-based
frame dropping where the simulator would grow a backlog without bound.

The adaptation loop is **literally the engine's**: each connection
owns an :class:`~repro.streaming.engine.AdaptationState` driving the
same :class:`~repro.streaming.adaptive.RateController` policies, with
one substitution — where the simulator records the link model's
computed drain time, the server records the *measured* one.  A frame's
drain is the time from when the channel got free (``max(send time,
previous ACK)``) to its ACK arrival, which is robust to kernel TCP
buffering: writes complete long before bytes reach a throttled
client, but ACKs arrive at consumption pace, so consecutive-ACK
spacing measures true goodput.

Rung *choices* stay deterministic across sim and server because the
PHY-rate input to the controller is evaluated from the configured
:class:`~repro.streaming.traces.BandwidthTrace` at **session time**
(``k * interval``), not wall time — measured feedback adjusts the
goodput EWMA, the clamp that dominates rung selection follows the
trace, and `tests/test_serving_twin.py` holds the two paths to the
same switch sequence.
"""

from __future__ import annotations

import asyncio
import itertools
from dataclasses import dataclass
from typing import Any

import numpy as np

from ..streaming.adaptive import get_controller
from ..streaming.engine import AdaptationState, FrameTiming
from ..streaming.server import ClientReport
from ..streaming.traces import BandwidthTrace
from ..streaming.validation import validate_stream_timing
from .chaos import ChaosConfig, ChaosInjector
from .frames import FrameBank
from .protocol import (
    PROTOCOL_VERSION,
    Ack,
    Bye,
    Frame,
    Hello,
    MessageDecoder,
    ProtocolError,
    Welcome,
    encode_message,
)

__all__ = ["ServeConfig", "ServedClientReport", "ServerReport", "StreamServer"]


@dataclass(frozen=True)
class ServeConfig:
    """Everything a :class:`StreamServer` needs to run.

    Attributes
    ----------
    bank:
        The pre-encoded :class:`~repro.serving.frames.FrameBank` every
        connection streams from.
    host, port:
        Bind address; port ``0`` picks a free one (read it back from
        :attr:`StreamServer.port` after start).
    nominal_bandwidth_mbps:
        PHY rate reported to controllers when no trace is configured.
    phy_trace:
        Optional :class:`~repro.streaming.traces.BandwidthTrace` the
        per-connection PHY-rate hint follows, evaluated at session
        time — the live analog of a traced
        :class:`~repro.streaming.link.WirelessLink`.
    deadline_s:
        A frame still queued this long after its ready time is dropped
        instead of sent (late frames are worthless to a head-mounted
        display).  ``None`` never drops.
    queue_frames:
        Per-client send-queue capacity, in frames; a full queue drops
        the *new* frame at enqueue (counted separately from deadline
        drops).
    drain_grace_s:
        How long shutdown and stream completion wait for outstanding
        ACKs before closing anyway.
    handshake_timeout_s:
        How long a fresh connection may take to present a valid HELLO.
    send_stall_timeout_s:
        Per-frame watchdog on the socket write: a client that keeps
        the TCP connection open but stops reading blocks ``drain()``
        indefinitely, which would pin the connection (and its bank
        payload references) until server shutdown.  A drain stalled
        this long marks the client gone and aborts the transport.
        ``None`` disables the watchdog.
    write_buffer_bytes:
        Transport write-buffer high-water mark.  Small values make
        ``drain()`` exert backpressure promptly instead of buffering
        megabytes in user space; ``None`` keeps asyncio's default.
    max_frames:
        Upper clamp on a client's requested stream length.
    chaos:
        Optional :class:`~repro.serving.chaos.ChaosConfig` injecting
        frame drops, delays, and connection resets into every
        connection's sender — the live counterpart of a lossy
        :class:`~repro.streaming.link.WirelessLink`.  ``None``
        (default) serves faithfully.
    """

    bank: FrameBank
    host: str = "127.0.0.1"
    port: int = 0
    nominal_bandwidth_mbps: float = 400.0
    phy_trace: BandwidthTrace | None = None
    deadline_s: float | None = 0.25
    queue_frames: int = 32
    drain_grace_s: float = 2.0
    handshake_timeout_s: float = 5.0
    send_stall_timeout_s: float | None = 10.0
    write_buffer_bytes: int | None = 65536
    max_frames: int = 100_000
    chaos: ChaosConfig | None = None

    def __post_init__(self):
        if self.nominal_bandwidth_mbps <= 0:
            raise ValueError(
                f"nominal_bandwidth_mbps must be positive, "
                f"got {self.nominal_bandwidth_mbps}"
            )
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError(f"deadline_s must be positive, got {self.deadline_s}")
        if self.queue_frames < 1:
            raise ValueError(f"queue_frames must be >= 1, got {self.queue_frames}")
        if self.send_stall_timeout_s is not None and self.send_stall_timeout_s <= 0:
            raise ValueError(
                f"send_stall_timeout_s must be positive, "
                f"got {self.send_stall_timeout_s}"
            )
        if self.max_frames < 1:
            raise ValueError(f"max_frames must be >= 1, got {self.max_frames}")

    def link_bps_at(self, time_s: float) -> float:
        """The PHY-rate hint a controller sees at session time ``time_s``."""
        if self.phy_trace is not None:
            return self.phy_trace.bandwidth_mbps_at(time_s) * 1e6
        return self.nominal_bandwidth_mbps * 1e6


@dataclass(frozen=True)
class ServedClientReport(ClientReport):
    """One connection's outcome, in the fleet report's vocabulary.

    A :class:`~repro.streaming.server.ClientReport` — same frame rows,
    same aggregate properties, same adaptation telemetry — plus the
    counters only a real transport has.

    Attributes
    ----------
    deadline_drops:
        Frames dropped because they were still queued past their
        deadline.
    queue_drops:
        Frames dropped at enqueue because the send queue was full.
    protocol_errors:
        Wire-protocol violations observed on this connection.
    bytes_sent:
        Total bytes written to the socket (payloads and framing).
    chaos_drops, chaos_delays, chaos_resets:
        Faults injected into this connection by the server's
        :class:`~repro.serving.chaos.ChaosConfig` (all zero when chaos
        is off).  A reset also drops the frame it interrupted.
    """

    deadline_drops: int = 0
    queue_drops: int = 0
    protocol_errors: int = 0
    bytes_sent: int = 0
    chaos_drops: int = 0
    chaos_delays: int = 0
    chaos_resets: int = 0

    @property
    def dropped_frames(self) -> int:
        """Frames dropped for any reason."""
        return self.deadline_drops + self.queue_drops + self.chaos_drops + self.chaos_resets


@dataclass(frozen=True)
class ServerReport:
    """Aggregate outcome of a serving run — the live FleetReport.

    Mirrors :class:`~repro.streaming.server.FleetReport` where the
    concepts coincide (clients, tail latency, stalls, quality) and
    adds what only a real server has: drop and protocol-error
    counters, wall-clock duration, rung occupancy measured from actual
    transmissions.
    """

    clients: tuple[ServedClientReport, ...]
    ladder: tuple[str, ...]
    duration_s: float = 0.0
    scene: str = ""
    handshake_errors: int = 0
    unclean_closes: int = 0

    @property
    def n_clients(self) -> int:
        """Connections that completed a handshake."""
        return len(self.clients)

    @property
    def frames_sent(self) -> int:
        """Delivered (ACKed) frames across every client."""
        return sum(len(r.frames) for r in self.clients)

    @property
    def deadline_drops(self) -> int:
        """Summed deadline drops across clients."""
        return sum(r.deadline_drops for r in self.clients)

    @property
    def queue_drops(self) -> int:
        """Summed queue-full drops across clients."""
        return sum(r.queue_drops for r in self.clients)

    @property
    def dropped_frames(self) -> int:
        """Frames dropped for any reason, across clients."""
        return self.deadline_drops + self.queue_drops + self.chaos_drops

    @property
    def protocol_errors(self) -> int:
        """Summed wire-protocol violations across clients."""
        return sum(r.protocol_errors for r in self.clients)

    @property
    def chaos_drops(self) -> int:
        """Frames the chaos injector dropped or reset away, fleet-wide."""
        return sum(r.chaos_drops + r.chaos_resets for r in self.clients)

    @property
    def chaos_resets(self) -> int:
        """Connections the chaos injector reset mid-stream."""
        return sum(r.chaos_resets for r in self.clients)

    @property
    def clean(self) -> bool:
        """Whether the run finished without faults *we* did not inject.

        Protocol violations, handshake failures, and connections that
        had to be cancelled at shutdown all count against cleanliness;
        injected chaos (drops, delays, resets) does not — degrading
        gracefully under chaos is the expected behavior, not an error.
        ``repro serve`` exits nonzero when this is false.
        """
        return (
            self.protocol_errors == 0
            and self.handshake_errors == 0
            and self.unclean_closes == 0
        )

    @property
    def total_stall_time_s(self) -> float:
        """Summed stall time across adaptive clients."""
        return float(
            sum(r.adaptive.stall_time_s for r in self.clients if r.adaptive is not None)
        )

    def tail_latency_s(self, percentile: float = 95.0) -> float:
        """Motion-to-photon latency percentile across delivered frames."""
        if not 0 < percentile <= 100:
            raise ValueError(f"percentile must be in (0, 100], got {percentile}")
        latencies = [f.motion_to_photon_s for r in self.clients for f in r.frames]
        if not latencies:
            return 0.0
        return float(np.percentile(latencies, percentile))

    @property
    def rung_occupancy(self) -> dict[str, float]:
        """Fraction of delivered frames transmitted at each rung."""
        counts: dict[str, int] = {}
        total = 0
        for report in self.clients:
            for timing in report.frames:
                if timing.rung:
                    counts[timing.rung] = counts.get(timing.rung, 0) + 1
                    total += 1
        if total == 0:
            return {}
        return {name: counts.get(name, 0) / total for name in self.ladder}

    def summary(self) -> str:
        """One-line serving health readout."""
        occupancy = ", ".join(
            f"{name}:{share:.2f}" for name, share in self.rung_occupancy.items()
        )
        text = (
            f"{self.n_clients} clients | {self.frames_sent} frames | "
            f"{self.dropped_frames} dropped "
            f"({self.deadline_drops} deadline, {self.queue_drops} queue) | "
            f"{self.protocol_errors} protocol errors | "
            f"p95 latency {self.tail_latency_s(95.0) * 1e3:.2f} ms | "
            f"stall {self.total_stall_time_s * 1e3:.1f} ms | "
            f"rungs [{occupancy}]"
        )
        if self.chaos_drops or self.chaos_resets:
            text += (
                f" | chaos {self.chaos_drops} dropped, "
                f"{self.chaos_resets} resets"
            )
        if self.handshake_errors or self.unclean_closes:
            text += (
                f" | UNCLEAN ({self.handshake_errors} handshake, "
                f"{self.unclean_closes} cancelled)"
            )
        return text

    def to_json(self, indent: int | None = 2) -> str:
        """Serialize through :mod:`repro.streaming.reports`."""
        from ..streaming.reports import report_to_json

        return report_to_json(self, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "ServerReport":
        """Load a report serialized by :meth:`to_json`."""
        from ..streaming.reports import report_from_json

        report = report_from_json(text)
        if not isinstance(report, cls):
            raise TypeError(
                f"payload decodes to {type(report).__name__}, not {cls.__name__}"
            )
        return report


class _EmptyConnection(Exception):
    """A peer connected and closed without ever sending a byte."""


class _QueuedFrame:
    """One frame waiting in a connection's send queue."""

    __slots__ = ("frame_index", "rung", "ready_s", "payload_bits", "payload")

    def __init__(self, frame_index, rung, ready_s, payload_bits, payload):
        self.frame_index = frame_index
        self.rung = rung
        self.ready_s = ready_s
        self.payload_bits = payload_bits
        self.payload = payload


class _Connection:
    """Per-client serving state: pacer, sender, ACK reader.

    Three coroutines per connection:

    * the **pacer** (the connection handler itself) wakes every frame
      interval, asks the :class:`AdaptationState` for a rung exactly as
      the engine's solo path does, and enqueues the frame — dropping it
      if the queue is full;
    * the **sender** drains the queue onto the socket, dropping frames
      whose deadline passed while they waited (that wait *is* the
      backpressure signal: a throttled client fills the transport
      buffer, ``drain()`` blocks, the queue backs up);
    * the **ACK reader** turns acknowledgement arrival times into
      measured drain samples and replays them into the adaptation
      state strictly in frame order, so the feedback loop sees the same
      ordering the simulator guarantees by construction.
    """

    def __init__(
        self,
        server: "StreamServer",
        session: str,
        hello: Hello,
        writer: asyncio.StreamWriter,
        session_index: int = 0,
    ):
        config = server.config
        bank = config.bank
        setup = hello.setup
        validate_stream_timing(
            n_frames=setup.n_frames, target_fps=setup.target_fps
        )
        controller = get_controller(setup.controller)
        ladder = bank.ladder
        start = 0 if setup.start_rung is None else ladder.index_of(setup.start_rung)
        self.server = server
        self.config = config
        self.bank = bank
        self.setup = setup
        self.session = session
        self.name = hello.client_name or session
        self.writer = writer
        self.interval_s = 1.0 / setup.target_fps
        self.n_frames = min(setup.n_frames, config.max_frames)
        self.state = AdaptationState(controller, ladder, start, self.interval_s)
        self.controller_name = controller.name
        self.queue: asyncio.Queue[_QueuedFrame | None] = asyncio.Queue(
            maxsize=config.queue_frames
        )
        self.epoch: float = 0.0  # loop.time() at session start
        self.send_time_s: dict[int, float] = {}  # frame -> session send time
        self.chosen: dict[int, tuple[int, int]] = {}  # frame -> (rung, bits)
        self.last_ack_s = 0.0
        self.timings: list[FrameTiming] = []
        self.deadline_drops = 0
        self.queue_drops = 0
        self.protocol_errors = 0
        self.bytes_sent = 0
        # Fault injection: one deterministic chaos stream per
        # connection index, None when the server runs faithfully.
        self.chaos: ChaosInjector | None = (
            config.chaos.injector(session_index)
            if config.chaos is not None and config.chaos.is_active
            else None
        )
        self.chaos_dropped_frames = 0  # frames lost to chaos drop or reset
        self.client_gone = asyncio.Event()
        self.acked = 0  # frames whose ACK has arrived
        self.sent = 0  # frames actually written
        # In-order record replay (ACKs for sent frames arrive in order,
        # but drop records originate in the pacer/sender and may lap
        # them).
        self._pending_records: dict[int, tuple[int, int, float, float | None]] = {}
        self._next_record = 0

    # -- session clock --------------------------------------------------

    def now_s(self) -> float:
        """Session time: seconds since this connection's first frame."""
        return asyncio.get_running_loop().time() - self.epoch

    # -- adaptation-state bookkeeping -----------------------------------

    def _push_record(
        self, frame_index: int, payload_bits: int, drain_s: float, ack_s: float | None
    ) -> None:
        """Queue one frame's outcome; replay any in-order prefix."""
        rung, _ = self.chosen[frame_index]
        self._pending_records[frame_index] = (rung, payload_bits, drain_s, ack_s)
        while self._next_record in self._pending_records:
            rung, bits, drain, ack = self._pending_records.pop(self._next_record)
            self.state.record(bits, drain, rung=rung)
            if ack is not None:
                ready_s = self._next_record * self.interval_s
                self.timings.append(
                    FrameTiming(
                        frame_index=self._next_record,
                        payload_bits=bits,
                        encode_time_s=self.bank.encode_time_s,
                        serialization_time_s=drain,
                        transmit_time_s=max(0.0, ack - ready_s),
                        rung=self.state.ladder[rung].name,
                    )
                )
            self._next_record += 1

    def _drop(self, frame: _QueuedFrame, *, deadline: bool) -> None:
        """Account one dropped frame (zero bits moved, interval passed)."""
        if deadline:
            self.deadline_drops += 1
        else:
            self.queue_drops += 1
        self._push_record(frame.frame_index, 0, 0.0, None)

    def _chaos_drop(self, frame: _QueuedFrame) -> None:
        """Account a frame the chaos injector kept off the wire.

        Same record-replay bookkeeping as a real drop, so the
        adaptation state and the stream-drain accounting never stall
        on an injected fault.
        """
        self.chaos_dropped_frames += 1
        self._push_record(frame.frame_index, 0, 0.0, None)

    # -- coroutines -----------------------------------------------------

    async def pace(self) -> None:
        """The frame clock: choose a rung and enqueue, every interval."""
        loop = asyncio.get_running_loop()
        self.epoch = loop.time()
        for frame_index in range(self.n_frames):
            if self.client_gone.is_set():
                break
            ready_s = frame_index * self.interval_s
            delay = self.epoch + ready_s - loop.time()
            if delay > 0:
                await asyncio.sleep(delay)
            rung_bits = self.bank.rung_bits(frame_index)
            # The PHY hint is evaluated at *session* time, so the
            # controller's clamp input is identical to the simulator's
            # whatever the wall clock did.
            rung = self.state.choose(
                frame_index, ready_s, rung_bits, self.config.link_bps_at(ready_s)
            )
            frame = _QueuedFrame(
                frame_index=frame_index,
                rung=rung,
                ready_s=ready_s,
                payload_bits=rung_bits[rung],
                payload=self.bank.payload(frame_index, rung),
            )
            self.chosen[frame_index] = (rung, rung_bits[rung])
            try:
                self.queue.put_nowait(frame)
            except asyncio.QueueFull:
                self._drop(frame, deadline=False)
        # Sender sentinel.  A healthy sender frees a slot within one
        # drain-watchdog period, so bound the wait; past it the sender
        # is wedged or dead, and blocking here would pin the
        # connection — force the sentinel in instead.
        grace = self.config.drain_grace_s
        if self.config.send_stall_timeout_s is not None:
            grace = max(grace, self.config.send_stall_timeout_s)
        try:
            await asyncio.wait_for(self.queue.put(None), grace)
        except asyncio.TimeoutError:
            self.client_gone.set()
            while True:
                try:
                    self.queue.put_nowait(None)
                    return
                except asyncio.QueueFull:
                    stale = self.queue.get_nowait()
                    if stale is not None:
                        self._drop(stale, deadline=True)

    async def send(self) -> None:
        """Drain the queue to the socket, dropping past-deadline frames."""
        deadline_s = self.config.deadline_s
        stall_s = self.config.send_stall_timeout_s
        while True:
            frame = await self.queue.get()
            if frame is None:
                return
            if self.client_gone.is_set():
                self._drop(frame, deadline=True)
                continue
            if deadline_s is not None and self.now_s() > frame.ready_s + deadline_s:
                self._drop(frame, deadline=True)
                continue
            message = Frame(
                frame_index=frame.frame_index,
                rung=frame.rung,
                ready_time_s=frame.ready_s,
                payload=frame.payload,
            )
            wire = encode_message(message)
            if self.chaos is not None:
                action = self.chaos.frame_action()
                if action == "drop":
                    # Never written: the client sees a frame-index gap,
                    # exactly like an erased packet in the simulator.
                    self._chaos_drop(frame)
                    continue
                if action == "reset":
                    # Kill the connection the way real networks do:
                    # optionally mid-message (the peer reads a
                    # truncated frame then EOF), then a hard abort.
                    self.client_gone.set()
                    try:
                        if self.chaos.config.truncate_on_reset and len(wire) > 8:
                            self.writer.write(wire[: len(wire) // 2])
                        self.writer.transport.abort()
                    except (ConnectionError, OSError):
                        pass
                    self._chaos_drop(frame)
                    continue
                if action == "delay":
                    await asyncio.sleep(self.chaos.delay_s)
            self.send_time_s[frame.frame_index] = self.now_s()
            try:
                self.writer.write(wire)
                if stall_s is None:
                    await self.writer.drain()
                else:
                    await asyncio.wait_for(self.writer.drain(), stall_s)
            except asyncio.TimeoutError:
                # The client holds the connection open but stopped
                # reading (no transport-buffer room for this long);
                # abort rather than stay pinned on an unresponsive
                # peer.  Must precede the OSError clause: on 3.11+
                # asyncio.TimeoutError is the builtin TimeoutError,
                # an OSError subclass.
                self.client_gone.set()
                self.writer.transport.abort()
                self._drop(frame, deadline=True)
                continue
            except (ConnectionError, OSError):
                self.client_gone.set()
                self._drop(frame, deadline=True)
                continue
            self.bytes_sent += len(wire)
            self.sent += 1

    async def read(self, reader: asyncio.StreamReader, decoder: MessageDecoder) -> None:
        """Consume ACKs (and a possible client BYE) off the socket.

        ``decoder`` is the handshake's — the first (empty) feed flushes
        anything the client pipelined in the same TCP segment as its
        HELLO (an eager ACK, an early BYE) instead of dropping it.
        """
        data = b""
        try:
            while True:
                for message in decoder.iter_feed(data):
                    if isinstance(message, Ack):
                        self._on_ack(message)
                    elif isinstance(message, Bye):
                        self.client_gone.set()
                        return
                    else:
                        self.protocol_errors += 1
                if reader.at_eof():
                    break
                data = await reader.read(4096)
                if not data:
                    break
        except ProtocolError:
            self.protocol_errors += 1
        except (ConnectionError, OSError):
            pass
        finally:
            self.client_gone.set()

    def _on_ack(self, ack: Ack) -> None:
        send_s = self.send_time_s.pop(ack.frame_index, None)
        chosen = self.chosen.get(ack.frame_index)
        if send_s is None or chosen is None:
            self.protocol_errors += 1  # ACK for a frame never sent
            return
        ack_s = self.now_s()
        # The channel was busy until the previous ACK: measure this
        # frame's drain from whichever came later, its own send or the
        # previous frame's completion — the live twin of the engine's
        # queue-behind-backlog serialization pricing.
        drain_s = max(1e-9, ack_s - max(send_s, self.last_ack_s))
        self.last_ack_s = ack_s
        self.acked += 1
        self._push_record(ack.frame_index, chosen[1], drain_s, ack_s)

    # -- report ---------------------------------------------------------

    def report(self) -> ServedClientReport:
        """Freeze this connection's outcome."""
        return ServedClientReport(
            encoder=f"serving:{self.controller_name}",
            frames=list(self.timings),
            target_fps=self.setup.target_fps,
            name=self.name,
            scene=self.setup.scene,
            weight=1.0,
            adaptive=self.state.stats(),
            deadline_drops=self.deadline_drops,
            queue_drops=self.queue_drops,
            protocol_errors=self.protocol_errors,
            bytes_sent=self.bytes_sent,
            chaos_drops=self.chaos.drops if self.chaos is not None else 0,
            chaos_delays=self.chaos.delays if self.chaos is not None else 0,
            chaos_resets=self.chaos.resets if self.chaos is not None else 0,
        )


class StreamServer:
    """Asyncio TCP server streaming a :class:`FrameBank` to clients.

    Lifecycle::

        server = StreamServer(config)
        await server.start()          # binds; server.port is now real
        ...                           # clients connect and stream
        report = await server.stop()  # graceful drain, aggregate report

    Each accepted connection handshakes
    (:class:`~repro.serving.protocol.Hello` in,
    :class:`~repro.serving.protocol.Welcome` out), then runs the
    pacer/sender/ACK-reader trio until the stream completes, the
    client leaves, or the server drains.  Connection outcomes
    accumulate into the :class:`ServerReport` whether they ended
    cleanly or not.
    """

    def __init__(self, config: ServeConfig):
        self.config = config
        self._server: asyncio.AbstractServer | None = None
        self._sessions = itertools.count(1)
        self._active: set[asyncio.Task] = set()
        self._finished: list[ServedClientReport] = []
        self._handshake_errors = 0
        self._unclean_closes = 0
        self._started_at: float = 0.0
        self._stopping = False

    @property
    def port(self) -> int:
        """The bound TCP port (useful with a ``port=0`` config)."""
        if self._server is None:
            raise RuntimeError("server is not started")
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        """Bind and start accepting connections."""
        if self._server is not None:
            raise RuntimeError("server already started")
        self._server = await asyncio.start_server(
            self._handle, host=self.config.host, port=self.config.port
        )
        self._started_at = asyncio.get_running_loop().time()

    async def serve_forever(self) -> None:
        """Block until cancelled (pair with :meth:`stop`)."""
        if self._server is None:
            raise RuntimeError("server is not started")
        await self._server.serve_forever()

    async def stop(self) -> ServerReport:
        """Graceful drain: stop accepting, let streams finish, report.

        Active connections get up to ``drain_grace_s`` to finish their
        in-flight frames; stragglers are cancelled with a
        :class:`~repro.serving.protocol.Bye` on the way out.
        """
        self._stopping = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._active:
            done, pending = await asyncio.wait(
                self._active, timeout=self.config.drain_grace_s
            )
            for task in pending:
                task.cancel()
            if pending:
                # Connections that outlived the drain grace had to be
                # killed — that is an unclean shutdown, and the exit
                # code should say so.
                self._unclean_closes += len(pending)
                await asyncio.gather(*pending, return_exceptions=True)
        return self.report()

    def report(self) -> ServerReport:
        """The aggregate outcome so far (finished connections only)."""
        duration = 0.0
        if self._started_at:
            try:
                duration = asyncio.get_running_loop().time() - self._started_at
            except RuntimeError:
                duration = 0.0
        return ServerReport(
            clients=tuple(self._finished),
            ladder=self.config.bank.ladder.names,
            duration_s=duration,
            scene=self.config.bank.scene_name,
            handshake_errors=self._handshake_errors,
            unclean_closes=self._unclean_closes,
        )

    # -- connection handling --------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._active.add(task)
            task.add_done_callback(self._active.discard)
        try:
            await self._serve_connection(reader, writer)
        except asyncio.CancelledError:
            raise
        except Exception:  # noqa: BLE001 - one bad client must not kill the server
            self._handshake_errors += 1
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_hello(
        self, reader: asyncio.StreamReader
    ) -> tuple[Hello, MessageDecoder]:
        """Read the HELLO; return it with the decoder that parsed it.

        The decoder comes back so bytes the client pipelined behind its
        HELLO stay buffered for :meth:`_Connection.read` instead of
        being discarded with a throwaway decoder.
        """
        decoder = MessageDecoder()

        async def read_hello() -> Hello:
            received = False
            while True:
                data = await reader.read(4096)
                if not data:
                    if not received:
                        raise _EmptyConnection
                    raise ProtocolError("connection closed before HELLO")
                received = True
                for message in decoder.iter_feed(data):
                    if isinstance(message, Hello):
                        return message
                    raise ProtocolError(
                        f"expected HELLO, got {type(message).__name__}"
                    )

        # wait_for, not asyncio.timeout(): the support floor is 3.10.
        hello = await asyncio.wait_for(
            read_hello(), self.config.handshake_timeout_s
        )
        return hello, decoder

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        config = self.config
        if config.write_buffer_bytes is not None:
            writer.transport.set_write_buffer_limits(high=config.write_buffer_bytes)
        session_index = next(self._sessions)
        session = f"session-{session_index}"
        try:
            hello, decoder = await self._read_hello(reader)
        except _EmptyConnection:
            # A peer that connected and closed without sending a byte
            # is a port probe (health checks, the CI poll loop), not a
            # protocol violation — don't let it poison the exit code.
            return
        except (ProtocolError, asyncio.TimeoutError):
            self._handshake_errors += 1
            return

        def reject(reason: str) -> None:
            writer.write(encode_message(Bye(reason=reason)))

        if hello.version != PROTOCOL_VERSION:
            self._handshake_errors += 1
            reject(f"unsupported protocol version {hello.version}")
            return
        bank = config.bank
        if bank.scene_name and hello.setup.scene != bank.scene_name:
            self._handshake_errors += 1
            reject(
                f"scene {hello.setup.scene!r} not served "
                f"(bank holds {bank.scene_name!r})"
            )
            return
        try:
            connection = _Connection(self, session, hello, writer, session_index)
        except (ValueError, KeyError) as exc:
            self._handshake_errors += 1
            reject(f"bad stream setup: {exc}")
            return

        writer.write(
            encode_message(
                Welcome(
                    ladder=bank.ladder.names,
                    interval_s=connection.interval_s,
                    n_frames=connection.n_frames,
                    session=session,
                )
            )
        )
        await writer.drain()

        reader_task = asyncio.create_task(connection.read(reader, decoder))
        sender_task = asyncio.create_task(connection.send())
        try:
            await connection.pace()
            await sender_task
            # Give in-flight frames a grace window to be consumed and
            # acknowledged before declaring the stream over.
            deadline = asyncio.get_running_loop().time() + config.drain_grace_s
            while (
                connection.acked + connection.deadline_drops + connection.queue_drops
                + connection.chaos_dropped_frames
                < connection.n_frames
                and not connection.client_gone.is_set()
                and asyncio.get_running_loop().time() < deadline
            ):
                await asyncio.sleep(0.01)
            try:
                writer.write(encode_message(Bye(reason="complete")))
                await writer.drain()
            except (ConnectionError, OSError):
                pass
        finally:
            for task in (sender_task, reader_task):
                if not task.done():
                    task.cancel()
            await asyncio.gather(sender_task, reader_task, return_exceptions=True)
            self._finished.append(connection.report())


def _served_client_to_dict(report: ServedClientReport) -> dict[str, Any]:
    from ..streaming.reports import _client_to_dict

    body = {
        **_client_to_dict(report),
        "deadline_drops": report.deadline_drops,
        "queue_drops": report.queue_drops,
        "protocol_errors": report.protocol_errors,
        "bytes_sent": report.bytes_sent,
    }
    # Chaos counters only exist on the wire when chaos ran, so
    # faithful-serving payloads stay byte-identical to before.
    if report.chaos_drops or report.chaos_delays or report.chaos_resets:
        body["chaos_drops"] = report.chaos_drops
        body["chaos_delays"] = report.chaos_delays
        body["chaos_resets"] = report.chaos_resets
    return body


def _served_client_from_dict(data: dict[str, Any]) -> ServedClientReport:
    from ..streaming.reports import adaptive_stats_from_dict, frame_timing_from_dict

    return ServedClientReport(
        encoder=str(data["encoder"]),
        target_fps=float(data["target_fps"]),
        frames=[frame_timing_from_dict(f) for f in data["frames"]],
        name=str(data["name"]),
        scene=str(data["scene"]),
        weight=float(data.get("weight", 1.0)),
        adaptive=adaptive_stats_from_dict(data.get("adaptive")),
        deadline_drops=int(data.get("deadline_drops", 0)),
        queue_drops=int(data.get("queue_drops", 0)),
        protocol_errors=int(data.get("protocol_errors", 0)),
        bytes_sent=int(data.get("bytes_sent", 0)),
        chaos_drops=int(data.get("chaos_drops", 0)),
        chaos_delays=int(data.get("chaos_delays", 0)),
        chaos_resets=int(data.get("chaos_resets", 0)),
    )


def _server_report_to_dict(report: ServerReport) -> dict[str, Any]:
    body = {
        "clients": [_served_client_to_dict(c) for c in report.clients],
        "ladder": list(report.ladder),
        "duration_s": report.duration_s,
        "scene": report.scene,
    }
    if report.handshake_errors:
        body["handshake_errors"] = report.handshake_errors
    if report.unclean_closes:
        body["unclean_closes"] = report.unclean_closes
    return body


def _server_report_from_dict(data: dict[str, Any]) -> ServerReport:
    return ServerReport(
        clients=tuple(_served_client_from_dict(c) for c in data["clients"]),
        ladder=tuple(str(name) for name in data["ladder"]),
        duration_s=float(data.get("duration_s", 0.0)),
        scene=str(data.get("scene", "")),
        handshake_errors=int(data.get("handshake_errors", 0)),
        unclean_closes=int(data.get("unclean_closes", 0)),
    )


def _register_report_types() -> None:
    from ..streaming.reports import register_report_type

    register_report_type(
        "served-client",
        ServedClientReport,
        _served_client_to_dict,
        _served_client_from_dict,
    )
    register_report_type(
        "server", ServerReport, _server_report_to_dict, _server_report_from_dict
    )


_register_report_types()
