"""The asyncio load generator: N throttled clients against one server.

Each connection is a faithful headset stand-in: it handshakes, reads
the socket in small chunks, *paces its own consumption* to a
:class:`~repro.streaming.traces.BandwidthTrace` (the live equivalent
of the simulator's traced link), and acknowledges every frame at the
moment its last byte would have arrived over that channel.  The
server's measured-goodput feedback loop therefore sees the configured
channel, not the loopback's gigabits.

Throttling is a virtual-clock construction: ``virt`` tracks when the
emulated channel would have finished delivering everything read so
far.  Each chunk advances it by the chunk's drain time *from the later
of the channel's previous finish or the chunk's actual arrival* — an
idle channel doesn't bank credit — and the client sleeps until the
virtual finish before processing the bytes, so ACKs fire at emulated
delivery times.

Per-connection outcomes are
:class:`~repro.streaming.server.ClientReport`-compatible (same frame
rows, same aggregates), so loadgen output, server reports, and
simulator fleets all diff with the same tooling.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..streaming.engine import FrameTiming
from ..streaming.loss import Backoff
from ..streaming.server import ClientReport
from ..streaming.traces import BandwidthTrace
from .protocol import (
    Ack,
    Bye,
    Frame,
    Hello,
    MessageDecoder,
    ProtocolError,
    StreamSetup,
    Welcome,
    encode_message,
)

__all__ = ["LoadgenConfig", "LoadgenClientReport", "LoadgenReport", "run_loadgen"]


@dataclass(frozen=True)
class LoadgenConfig:
    """One load-generation run against a streaming server.

    Attributes
    ----------
    host, port:
        Where the server listens.
    setup:
        The :class:`~repro.serving.protocol.StreamSetup` every client
        requests.
    n_clients:
        Concurrent connections.
    trace:
        Read-throttle :class:`~repro.streaming.traces.BandwidthTrace`
        per client; ``None`` reads at loopback speed.
    chunk_bytes:
        Socket read size; smaller chunks give the throttle finer
        pacing granularity at more wakeups.
    connect_stagger_s:
        Delay between successive connection openings, avoiding a
        thundering-herd handshake.
    timeout_s:
        Per-client overall timeout (handshake through BYE, spanning
        every reconnect attempt); a client past it reports what it
        has.
    max_reconnects:
        How many times a client may reconnect after losing its
        connection mid-stream (reset, EOF before BYE, refused
        connect).  ``0`` (default) keeps the historical
        single-connection behavior; chaos runs set it so clients ride
        out injected resets.
    backoff:
        The capped exponential :class:`~repro.streaming.loss.Backoff`
        paced between reconnect attempts — the *same* policy class the
        simulator's ARQ recovery uses, so simulated and served
        retry schedules share one definition.
    """

    host: str = "127.0.0.1"
    port: int = 0
    setup: StreamSetup = field(default_factory=lambda: StreamSetup(scene="office"))
    n_clients: int = 1
    trace: BandwidthTrace | None = None
    chunk_bytes: int = 4096
    connect_stagger_s: float = 0.002
    timeout_s: float = 60.0
    max_reconnects: int = 0
    backoff: Backoff = field(default_factory=lambda: Backoff(base_s=0.05, factor=2.0, max_s=1.0))

    def __post_init__(self):
        if self.n_clients < 1:
            raise ValueError(f"n_clients must be >= 1, got {self.n_clients}")
        if self.chunk_bytes < 64:
            raise ValueError(f"chunk_bytes must be >= 64, got {self.chunk_bytes}")
        if self.timeout_s <= 0:
            raise ValueError(f"timeout_s must be positive, got {self.timeout_s}")
        if self.max_reconnects < 0:
            raise ValueError(
                f"max_reconnects must be >= 0, got {self.max_reconnects}"
            )


@dataclass(frozen=True)
class LoadgenClientReport(ClientReport):
    """One loadgen connection's view of its stream.

    Frame rows measure what the *client* saw: ``serialization_time_s``
    is the spacing between consecutive frame deliveries (consumption
    pace) and ``transmit_time_s`` is delivery time minus the server's
    stamped ready time.

    Attributes
    ----------
    protocol_errors:
        Wire-protocol violations observed by this client.
    bytes_received:
        Total bytes read off the socket.
    completed:
        Whether the stream ended with the server's BYE (as opposed to
        a timeout or connection error).
    reconnects:
        Connections re-established after a mid-stream loss (requires
        ``max_reconnects > 0`` in the config).
    resyncs:
        Discontinuities in the delivered frame-index sequence — a
        dropped frame or a post-reconnect restart, i.e. every point a
        real decoder would need an I-frame resync.  The served
        counterpart of
        :attr:`repro.streaming.loss.LossStats.resyncs`.
    """

    protocol_errors: int = 0
    bytes_received: int = 0
    completed: bool = False
    reconnects: int = 0
    resyncs: int = 0


@dataclass(frozen=True)
class LoadgenReport:
    """Aggregate outcome of one load-generation run."""

    clients: tuple[LoadgenClientReport, ...]
    duration_s: float = 0.0

    @property
    def n_clients(self) -> int:
        """Connections attempted."""
        return len(self.clients)

    @property
    def frames_received(self) -> int:
        """Fully delivered frames across every connection."""
        return sum(len(r.frames) for r in self.clients)

    @property
    def bytes_received(self) -> int:
        """Total bytes read across every connection."""
        return sum(r.bytes_received for r in self.clients)

    @property
    def protocol_errors(self) -> int:
        """Wire-protocol violations across every connection."""
        return sum(r.protocol_errors for r in self.clients)

    @property
    def completed_clients(self) -> int:
        """Connections that ended with the server's BYE."""
        return sum(r.completed for r in self.clients)

    @property
    def total_reconnects(self) -> int:
        """Reconnections across every client."""
        return sum(r.reconnects for r in self.clients)

    @property
    def total_resyncs(self) -> int:
        """Frame-sequence discontinuities across every client."""
        return sum(r.resyncs for r in self.clients)

    def tail_latency_s(self, percentile: float = 95.0) -> float:
        """Client-observed delivery-latency percentile across frames."""
        if not 0 < percentile <= 100:
            raise ValueError(f"percentile must be in (0, 100], got {percentile}")
        latencies = [f.transmit_time_s for r in self.clients for f in r.frames]
        if not latencies:
            return 0.0
        return float(np.percentile(latencies, percentile))

    def summary(self) -> str:
        """One-line loadgen outcome readout."""
        goodput = 0.0
        if self.duration_s > 0:
            goodput = 8 * self.bytes_received / self.duration_s / 1e6
        text = (
            f"{self.completed_clients}/{self.n_clients} clients completed | "
            f"{self.frames_received} frames | "
            f"{self.bytes_received / 2**20:.1f} MiB "
            f"({goodput:.1f} Mbps aggregate) | "
            f"{self.protocol_errors} protocol errors | "
            f"p95 delivery latency {self.tail_latency_s(95.0) * 1e3:.2f} ms"
        )
        if self.total_reconnects or self.total_resyncs:
            text += (
                f" | {self.total_reconnects} reconnects | "
                f"{self.total_resyncs} resyncs"
            )
        return text

    def to_json(self, indent: int | None = 2) -> str:
        """Serialize through :mod:`repro.streaming.reports`."""
        from ..streaming.reports import report_to_json

        return report_to_json(self, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "LoadgenReport":
        """Load a report serialized by :meth:`to_json`."""
        from ..streaming.reports import report_from_json

        report = report_from_json(text)
        if not isinstance(report, cls):
            raise TypeError(
                f"payload decodes to {type(report).__name__}, not {cls.__name__}"
            )
        return report


async def _run_connection(config: LoadgenConfig, index: int) -> LoadgenClientReport:
    """One client: connect, handshake, consume at the traced pace.

    With ``max_reconnects > 0`` a connection lost mid-stream (reset,
    truncated frame, refused connect) is retried under the config's
    capped-exponential backoff; the overall ``timeout_s`` budget spans
    every attempt.  Frame rows accumulate across attempts, and every
    discontinuity in the delivered frame-index sequence counts one
    resync.
    """
    name = f"loadgen-{index}"
    setup = config.setup
    timings: list[FrameTiming] = []
    protocol_errors = 0
    bytes_received = 0
    completed = False
    reconnects = 0
    resyncs = 0
    prev_frame_index: int | None = None
    ladder: tuple[str, ...] = ()

    def report() -> LoadgenClientReport:
        return LoadgenClientReport(
            encoder="loadgen",
            frames=list(timings),
            target_fps=setup.target_fps,
            name=name,
            scene=setup.scene,
            protocol_errors=protocol_errors,
            bytes_received=bytes_received,
            completed=completed,
            reconnects=reconnects,
            resyncs=resyncs,
        )

    loop = asyncio.get_running_loop()

    async def stream(reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        nonlocal protocol_errors, bytes_received, completed, ladder
        nonlocal resyncs, prev_frame_index
        writer.write(
            encode_message(Hello(setup=setup, client_name=name))
        )
        await writer.drain()

        decoder = MessageDecoder()
        trace = config.trace
        t0 = loop.time()
        virt = 0.0  # emulated-channel finish time of all bytes so far
        got_welcome = False
        last_delivery_s = 0.0

        while True:
            data = await reader.read(config.chunk_bytes)
            if not data:
                break
            bytes_received += len(data)
            if trace is not None:
                arrival_s = loop.time() - t0
                virt = max(virt, arrival_s)
                virt = trace.finish_time_s(virt, 8 * len(data))
                delay = (t0 + virt) - loop.time()
                if delay > 0:
                    await asyncio.sleep(delay)
                delivery_s = virt
            else:
                delivery_s = loop.time() - t0
            try:
                messages = decoder.feed(data)
            except ProtocolError:
                protocol_errors += 1
                break
            done = False
            for message in messages:
                if isinstance(message, Welcome):
                    if got_welcome:
                        protocol_errors += 1
                    got_welcome = True
                    ladder = message.ladder
                elif isinstance(message, Frame):
                    if (
                        prev_frame_index is not None
                        and message.frame_index != prev_frame_index + 1
                    ):
                        resyncs += 1
                    prev_frame_index = message.frame_index
                    rung_name = (
                        ladder[message.rung]
                        if message.rung < len(ladder)
                        else str(message.rung)
                    )
                    timings.append(
                        FrameTiming(
                            frame_index=message.frame_index,
                            payload_bits=8 * len(message.payload),
                            encode_time_s=0.0,
                            serialization_time_s=max(
                                0.0, delivery_s - last_delivery_s
                            ),
                            transmit_time_s=max(
                                0.0, delivery_s - message.ready_time_s
                            ),
                            rung=rung_name,
                        )
                    )
                    last_delivery_s = delivery_s
                    writer.write(
                        encode_message(
                            Ack(
                                frame_index=message.frame_index,
                                recv_time_s=delivery_s,
                            )
                        )
                    )
                    await writer.drain()
                elif isinstance(message, Bye):
                    completed = True
                    done = True
                else:
                    protocol_errors += 1
            if done:
                break
        if completed:
            try:
                writer.write(encode_message(Bye(reason="complete")))
                await writer.drain()
            except (ConnectionError, OSError):
                pass

    deadline = loop.time() + config.timeout_s
    attempt = 0
    while True:
        writer = None
        try:
            reader, writer = await asyncio.open_connection(config.host, config.port)
            remaining = deadline - loop.time()
            if remaining <= 0:
                break
            # wait_for, not asyncio.timeout(): the support floor is 3.10.
            await asyncio.wait_for(stream(reader, writer), remaining)
        except asyncio.TimeoutError:
            break
        except (ConnectionError, OSError):
            pass
        finally:
            if writer is not None:
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionError, OSError):
                    pass
        if completed:
            break
        attempt += 1
        if attempt > config.max_reconnects:
            break
        delay = config.backoff.delay_s(attempt)
        if loop.time() + delay >= deadline:
            break
        await asyncio.sleep(delay)
        reconnects += 1
    return report()


async def run_loadgen(config: LoadgenConfig) -> LoadgenReport:
    """Run ``n_clients`` concurrent connections; aggregate their reports."""
    loop = asyncio.get_running_loop()
    started = loop.time()

    async def staggered(index: int) -> LoadgenClientReport:
        if config.connect_stagger_s > 0 and index:
            await asyncio.sleep(index * config.connect_stagger_s)
        return await _run_connection(config, index)

    reports = await asyncio.gather(
        *(staggered(index) for index in range(config.n_clients))
    )
    return LoadgenReport(
        clients=tuple(reports), duration_s=loop.time() - started
    )


def _loadgen_client_to_dict(report: LoadgenClientReport) -> dict[str, Any]:
    from ..streaming.reports import _client_to_dict

    data = {
        **_client_to_dict(report),
        "protocol_errors": report.protocol_errors,
        "bytes_received": report.bytes_received,
        "completed": report.completed,
    }
    if report.reconnects:
        data["reconnects"] = report.reconnects
    if report.resyncs:
        data["resyncs"] = report.resyncs
    return data


def _loadgen_client_from_dict(data: dict[str, Any]) -> LoadgenClientReport:
    from ..streaming.reports import adaptive_stats_from_dict, frame_timing_from_dict

    return LoadgenClientReport(
        encoder=str(data["encoder"]),
        target_fps=float(data["target_fps"]),
        frames=[frame_timing_from_dict(f) for f in data["frames"]],
        name=str(data["name"]),
        scene=str(data["scene"]),
        weight=float(data.get("weight", 1.0)),
        adaptive=adaptive_stats_from_dict(data.get("adaptive")),
        protocol_errors=int(data.get("protocol_errors", 0)),
        bytes_received=int(data.get("bytes_received", 0)),
        completed=bool(data.get("completed", False)),
        reconnects=int(data.get("reconnects", 0)),
        resyncs=int(data.get("resyncs", 0)),
    )


def _loadgen_report_to_dict(report: LoadgenReport) -> dict[str, Any]:
    return {
        "clients": [_loadgen_client_to_dict(c) for c in report.clients],
        "duration_s": report.duration_s,
    }


def _loadgen_report_from_dict(data: dict[str, Any]) -> LoadgenReport:
    return LoadgenReport(
        clients=tuple(_loadgen_client_from_dict(c) for c in data["clients"]),
        duration_s=float(data.get("duration_s", 0.0)),
    )


def _register_report_types() -> None:
    from ..streaming.reports import register_report_type

    register_report_type(
        "loadgen-client",
        LoadgenClientReport,
        _loadgen_client_to_dict,
        _loadgen_client_from_dict,
    )
    register_report_type(
        "loadgen", LoadgenReport, _loadgen_report_to_dict, _loadgen_report_from_dict
    )


_register_report_types()
