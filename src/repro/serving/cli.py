"""``repro serve`` / ``repro loadgen``: the serving stack on the shell.

Both commands are dispatched from :func:`repro.cli.main` before the
experiment machinery, so the serving stack needs no experiment
scaffolding::

    # terminal 1: encode a bank and serve it
    python -m repro serve --scene office --port 9900 --trace step:40:8:2

    # terminal 2: 8 throttled clients for ~5 seconds
    python -m repro loadgen --port 9900 --clients 8 --duration 5

``loadgen --spawn-server`` boots the server in-process first — one
command, one process, clean shutdown — which is what the CI smoke job
runs.  Both commands print a one-line summary and can write their full
report as JSON (``--report PATH``) in the shared
:mod:`repro.streaming.reports` format.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import math
import signal
import sys

from ..streaming.adaptive import CONTROLLER_CHOICES
from ..streaming.traces import parse_trace_spec
from .chaos import parse_chaos_spec
from .client import LoadgenConfig, LoadgenReport, run_loadgen
from .frames import FrameBank
from .protocol import StreamSetup
from .server import ServeConfig, ServerReport, StreamServer

__all__ = ["serve_main", "loadgen_main"]


def _write_report(path: str, report) -> None:
    """Serialize a report to ``path``.

    Sync on purpose: called after ``asyncio.run`` returns, so the
    blocking file write never shares a thread with the event loop
    (RPR301/RPR303 stay structurally impossible here).
    """
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(report.to_json())
    print(f"report written to {path}", flush=True)


def _bank_arguments(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("frame bank")
    group.add_argument("--scene", default="office", help="scene to encode and serve")
    group.add_argument(
        "--bank-frames", type=int, default=4, metavar="N",
        help="unique frames to pre-encode (streams cycle over them)",
    )
    group.add_argument("--height", type=int, default=96, help="per-eye frame height")
    group.add_argument("--width", type=int, default=96, help="per-eye frame width")
    group.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="process-pool width for bank encoding",
    )


def _build_bank(args: argparse.Namespace) -> FrameBank:
    return FrameBank.from_scene(
        args.scene,
        n_frames=args.bank_frames,
        height=args.height,
        width=args.width,
        n_jobs=args.jobs,
    )


def _serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Stream a pre-encoded frame bank to adaptive clients over TCP.",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=9900, help="bind port (0 picks a free one)"
    )
    _bank_arguments(parser)
    link = parser.add_argument_group("link model")
    link.add_argument(
        "--bandwidth", type=float, default=400.0, metavar="MBPS",
        help="nominal PHY rate reported to controllers",
    )
    link.add_argument(
        "--trace", default=None, metavar="SPEC",
        help="time-varying PHY-rate hint, e.g. step:40:8:2 or const:MBPS "
             "(evaluated at per-stream session time)",
    )
    policy = parser.add_argument_group("serving policy")
    policy.add_argument(
        "--deadline", type=float, default=0.25, metavar="S",
        help="drop frames still queued this long after ready (0 disables)",
    )
    policy.add_argument(
        "--queue", type=int, default=32, metavar="FRAMES",
        help="per-client send-queue capacity",
    )
    policy.add_argument(
        "--chaos", default=None, metavar="SPEC",
        help="fault injection on outgoing frames, e.g. "
             "drop=0.05,delay=0.1:25,reset=0.02,seed=7",
    )
    parser.add_argument(
        "--duration", type=float, default=None, metavar="S",
        help="shut down after this long (default: run until SIGINT)",
    )
    parser.add_argument(
        "--report", default=None, metavar="PATH",
        help="write the ServerReport as JSON on shutdown",
    )
    return parser


def _serve_config(args: argparse.Namespace, bank: FrameBank) -> ServeConfig:
    trace = parse_trace_spec(args.trace) if args.trace else None
    return ServeConfig(
        bank=bank,
        host=args.host,
        port=args.port,
        nominal_bandwidth_mbps=args.bandwidth,
        phy_trace=trace,
        deadline_s=None if args.deadline == 0 else args.deadline,
        queue_frames=args.queue,
        chaos=parse_chaos_spec(args.chaos) if args.chaos else None,
    )


def serve_main(argv: list[str] | None = None) -> int:
    """Entry point of ``repro serve``; returns a process exit code."""
    args = _serve_parser().parse_args(argv)
    try:
        bank = _build_bank(args)
        config = _serve_config(args, bank)
    except (ValueError, KeyError, OSError) as exc:
        print(f"repro serve: {exc}", file=sys.stderr)
        return 2

    # Probe the report path up front so a bad one fails before the
    # server ever binds.
    report_path = args.report
    if report_path:
        try:
            with open(report_path, "w", encoding="utf-8"):
                pass
        except OSError as exc:
            print(f"repro serve: cannot write --report: {exc}", file=sys.stderr)
            return 2

    async def run_server() -> ServerReport:
        server = StreamServer(config)
        await server.start()
        print(
            f"serving {config.bank.scene_name!r} "
            f"({config.bank.n_unique_frames} frames x "
            f"{len(config.bank.ladder)} rungs) on {config.host}:{server.port}",
            flush=True,
        )
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            with contextlib.suppress(NotImplementedError, ValueError):
                loop.add_signal_handler(signum, stop.set)
        if args.duration is not None:
            loop.call_later(args.duration, stop.set)
        await stop.wait()
        report = await server.stop()
        print(report.summary(), flush=True)
        return report

    try:
        report = asyncio.run(run_server())
    except KeyboardInterrupt:
        return 130
    if report_path:
        _write_report(report_path, report)
    # `clean` also covers handshake errors and unclean (cancelled)
    # stream shutdowns — injected chaos never counts against it.
    return 0 if report.clean else 1


def _loadgen_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro loadgen",
        description="Throttled streaming clients against a repro serve instance.",
    )
    parser.add_argument("--host", default="127.0.0.1", help="server address")
    parser.add_argument("--port", type=int, default=9900, help="server port")
    parser.add_argument(
        "--clients", type=int, default=1, metavar="N", help="concurrent connections"
    )
    stream = parser.add_argument_group("stream request")
    # --scene / --height / --width double as the stream request and the
    # spawned server's bank setup; they arrive via _bank_arguments.
    stream.add_argument(
        "--fps", type=float, default=30.0, help="frame cadence to request"
    )
    length = stream.add_mutually_exclusive_group()
    length.add_argument(
        "--frames", type=int, default=None, metavar="N", help="frames per stream"
    )
    length.add_argument(
        "--duration", type=float, default=None, metavar="S",
        help="stream length in seconds (converted to frames at --fps)",
    )
    stream.add_argument(
        "--controller", choices=CONTROLLER_CHOICES, default="throughput",
        help="rate controller each stream runs under",
    )
    shaping = parser.add_argument_group("client channel")
    shaping.add_argument(
        "--trace", default=None, metavar="SPEC",
        help="per-client read-throttle trace, e.g. const:20 or step:40:8:2",
    )
    shaping.add_argument(
        "--chunk", type=int, default=4096, metavar="BYTES", help="socket read size"
    )
    parser.add_argument(
        "--timeout", type=float, default=60.0, metavar="S",
        help="per-client overall timeout, spanning reconnect attempts",
    )
    parser.add_argument(
        "--reconnects", type=int, default=0, metavar="N",
        help="reconnect attempts per client after a mid-stream loss "
             "(capped exponential backoff between attempts)",
    )
    parser.add_argument(
        "--report", default=None, metavar="PATH",
        help="write the LoadgenReport as JSON",
    )
    spawn = parser.add_argument_group(
        "self-hosting (boot an in-process server first)"
    )
    spawn.add_argument(
        "--spawn-server", action="store_true",
        help="start an in-process repro serve on --host with an ephemeral "
             "port and run the load against it (single-process smoke mode)",
    )
    _bank_arguments(parser)
    spawn.add_argument(
        "--server-trace", default=None, metavar="SPEC",
        help="spawned server's PHY-rate hint trace",
    )
    spawn.add_argument(
        "--server-bandwidth", type=float, default=400.0, metavar="MBPS",
        help="spawned server's nominal PHY rate",
    )
    spawn.add_argument(
        "--deadline", type=float, default=0.25, metavar="S",
        help="spawned server's frame deadline (0 disables)",
    )
    spawn.add_argument(
        "--chaos", default=None, metavar="SPEC",
        help="spawned server's fault injection, e.g. "
             "drop=0.05,delay=0.1:25,reset=0.02,seed=7",
    )
    return parser


def loadgen_main(argv: list[str] | None = None) -> int:
    """Entry point of ``repro loadgen``; returns a process exit code."""
    args = _loadgen_parser().parse_args(argv)
    if args.frames is not None:
        n_frames = args.frames
    elif args.duration is not None:
        n_frames = max(1, math.ceil(args.duration * args.fps))
    else:
        n_frames = max(1, math.ceil(2.0 * args.fps))  # 2 s default
    try:
        setup = StreamSetup(
            scene=args.scene,
            height=args.height,
            width=args.width,
            target_fps=args.fps,
            n_frames=n_frames,
            controller=args.controller,
        )
        trace = parse_trace_spec(args.trace) if args.trace else None
    except (ValueError, OSError) as exc:
        print(f"repro loadgen: {exc}", file=sys.stderr)
        return 2

    async def run() -> "tuple[LoadgenReport, ServerReport | None] | int":
        server = None
        port = args.port
        if args.spawn_server:
            try:
                bank = _build_bank(args)
                server_trace = (
                    parse_trace_spec(args.server_trace) if args.server_trace else None
                )
                server_config = ServeConfig(
                    bank=bank,
                    host=args.host,
                    port=0,
                    nominal_bandwidth_mbps=args.server_bandwidth,
                    phy_trace=server_trace,
                    deadline_s=None if args.deadline == 0 else args.deadline,
                    chaos=parse_chaos_spec(args.chaos) if args.chaos else None,
                )
            except (ValueError, KeyError, OSError) as exc:
                print(f"repro loadgen: {exc}", file=sys.stderr)
                return 2
            server = StreamServer(server_config)
            await server.start()
            port = server.port
            print(f"spawned server on {args.host}:{port}", flush=True)
        config = LoadgenConfig(
            host=args.host,
            port=port,
            setup=setup,
            n_clients=args.clients,
            trace=trace,
            chunk_bytes=args.chunk,
            timeout_s=args.timeout,
            max_reconnects=args.reconnects,
        )
        report = await run_loadgen(config)
        print(report.summary(), flush=True)
        server_report = None
        if server is not None:
            server_report = await server.stop()
            print(server_report.summary(), flush=True)
        return report, server_report

    try:
        result = asyncio.run(run())
    except KeyboardInterrupt:
        return 130
    if isinstance(result, int):
        return result
    report, server_report = result
    if args.report:
        _write_report(args.report, report)
    failed = (
        report.protocol_errors > 0
        or report.frames_received == 0
        or report.completed_clients == 0
        or (server_report is not None and not server_report.clean)
    )
    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover - manual entry
    raise SystemExit(serve_main())
