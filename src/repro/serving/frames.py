"""Frame banks: pre-encoded ladder payloads the server streams from.

A live server cannot afford to render and ladder-encode on the frame
clock of every connection, and it does not need to: clients streaming
the same scene at the same resolution share content.  A
:class:`FrameBank` renders a scene once, encodes every frame at every
ladder rung — fanned out across a :func:`repro.parallel.worker_pool`
when asked — and serves two queries forever after: *how many bits is
frame k at rung r* and *give me those bytes*.

The bank subclasses the engine's
:class:`~repro.streaming.engine.FrameSource`, so the **same object**
answers the simulator (which only needs sizes) and the socket (which
needs bytes).  That shared source is the digital-twin contract: when
`tests/test_serving_twin.py` runs one bank through
:func:`~repro.streaming.adaptive.simulate_adaptive_session` and
through a loopback server, any divergence is in the transport, not the
content.

Payload bytes are real bitstreams where the codec produces them (the
BD family emits its packed stream as ``metadata["payload"]``) and
deterministic filler at the codec-reported size everywhere else —
either way, the bytes on the wire occupy exactly the bits the
simulator accounts for.
"""

from __future__ import annotations

from typing import Sequence

from ..codecs.context import FrameContext
from ..codecs.ladder import QualityLadder
from ..parallel import pool_map, worker_pool
from ..scenes.display import QUEST2_DISPLAY, DisplayGeometry
from ..scenes.library import Scene, get_scene
from ..streaming.engine import FrameSource

__all__ = ["FrameBank", "filler_payload"]


def filler_payload(payload_bits: int, frame_index: int, rung_index: int) -> bytes:
    """Deterministic stand-in bytes for a codec without a bitstream.

    The pattern varies with ``(frame_index, rung_index)`` so payloads
    are distinguishable on the wire, and the length is the exact byte
    ceiling of ``payload_bits`` — the transport carries what the
    simulator priced, nothing more.
    """
    if payload_bits < 0:
        raise ValueError(f"payload_bits must be >= 0, got {payload_bits}")
    n_bytes = (payload_bits + 7) // 8
    if n_bytes == 0:
        return b""
    seed = bytes([(frame_index * 31 + rung_index * 7 + k) % 251 for k in range(64)])
    return (seed * (n_bytes // len(seed) + 1))[:n_bytes]


def _encode_frame(
    scene: Scene,
    ladder: QualityLadder,
    height: int,
    width: int,
    display: DisplayGeometry,
    frame_index: int,
) -> tuple[tuple[int, ...], tuple[bytes, ...]]:
    """Render one frame and encode every rung, collecting bytes.

    Mirrors :func:`repro.codecs.ladder.encode_stereo_bits` — one
    :class:`~repro.codecs.context.FrameContext` per eye shared across
    rungs — but builds each rung's codec fresh with ``payload=True``
    where the codec supports it, so the ladder's shared codec cache is
    never mutated and real bitstreams come out where available.
    """
    eyes = scene.render_stereo(height, width, frame=frame_index)
    eccentricity = display.eccentricity_map(height, width)
    ctxs = [
        FrameContext(eye, eccentricity=eccentricity, display=display) for eye in eyes
    ]
    bits: list[int] = []
    payloads: list[bytes] = []
    for rung_index, rung in enumerate(ladder):
        codec = rung.build()
        if hasattr(codec, "payload"):
            codec.payload = True
        total_bits = 0
        stream = bytearray()
        have_stream = True
        for ctx in ctxs:
            encoded = codec.encode(ctx)
            total_bits += encoded.total_bits
            eye_payload = encoded.metadata.get("payload")
            if isinstance(eye_payload, (bytes, bytearray)):
                stream.extend(eye_payload)
            else:
                have_stream = False
        bits.append(int(total_bits))
        payloads.append(
            bytes(stream)
            if have_stream and stream
            else filler_payload(int(total_bits), frame_index, rung_index)
        )
    return tuple(bits), tuple(payloads)


def _encode_frame_by_name(
    scene_name: str,
    rung_fields: tuple[tuple[str, str, float, tuple], ...],
    height: int,
    width: int,
    display: DisplayGeometry,
    frame_index: int,
) -> tuple[tuple[int, ...], tuple[bytes, ...]]:
    """Process-pool entry point: rebuild scene + ladder from names.

    Worker processes receive plain strings and tuples instead of live
    objects — scenes and ladders rebuild cheaply, and codec instances
    (which may hold unpicklable caches) never cross the pipe.
    """
    from ..codecs.ladder import QualityRung

    scene = get_scene(scene_name)
    ladder = QualityLadder(
        rungs=tuple(
            QualityRung(name=name, codec=codec, quality=quality, codec_kwargs=kwargs)
            for name, codec, quality, kwargs in rung_fields
        )
    )
    return _encode_frame(scene, ladder, height, width, display, frame_index)


class FrameBank(FrameSource):
    """Pre-encoded per-frame ladder payloads for one scene setup.

    Construct with :meth:`from_scene` (render + encode, optionally on a
    process pool) or :meth:`from_rung_streams` (synthetic sizes — the
    twin test's entry point).  Shorter banks cycle over the stream
    timeline, exactly like the engine's
    :class:`~repro.streaming.engine.PrecomputedSource`.

    Parameters
    ----------
    ladder:
        The quality ladder the payloads were encoded against.
    rung_streams:
        One tuple of payload bits per frame, best rung first.
    payloads:
        Matching payload bytes, one tuple of ``bytes`` per frame.
    encode_time_s:
        Modeled per-frame encode latency the server charges (mirrors
        the simulators' ``encode_throughput_mpixels_s`` accounting).
    scene_name, height, width:
        Provenance, echoed into reports.
    """

    def __init__(
        self,
        ladder: QualityLadder,
        rung_streams: Sequence[Sequence[int]],
        payloads: Sequence[Sequence[bytes]],
        encode_time_s: float = 0.0,
        scene_name: str = "",
        height: int = 0,
        width: int = 0,
    ):
        rung_streams = [tuple(int(b) for b in frame) for frame in rung_streams]
        payloads = [tuple(bytes(p) for p in frame) for frame in payloads]
        if not rung_streams:
            raise ValueError("a frame bank needs at least one frame")
        if len(rung_streams) != len(payloads):
            raise ValueError(
                f"rung_streams and payloads disagree on frame count: "
                f"{len(rung_streams)} vs {len(payloads)}"
            )
        for index, (frame_bits, frame_payloads) in enumerate(
            zip(rung_streams, payloads)
        ):
            if len(frame_bits) != len(ladder) or len(frame_payloads) != len(ladder):
                raise ValueError(
                    f"frame {index} must carry one entry per rung "
                    f"({len(ladder)} rungs)"
                )
        if encode_time_s < 0:
            raise ValueError(f"encode_time_s must be >= 0, got {encode_time_s}")
        self.ladder = ladder
        self.encode_time_s = encode_time_s
        self.scene_name = scene_name
        self.height = height
        self.width = width
        self._rung_streams = rung_streams
        self._payloads = payloads

    # -- construction ---------------------------------------------------

    @classmethod
    def from_scene(
        cls,
        scene: str | Scene,
        ladder: QualityLadder | None = None,
        n_frames: int = 8,
        height: int = 192,
        width: int = 192,
        display: DisplayGeometry = QUEST2_DISPLAY,
        encode_throughput_mpixels_s: float = 500.0,
        n_jobs: int = 1,
    ) -> "FrameBank":
        """Render and ladder-encode ``n_frames`` of a scene.

        Parameters
        ----------
        scene:
            Scene instance or library name.
        ladder:
            Quality ladder; defaults to
            :meth:`~repro.codecs.ladder.QualityLadder.default`.
        n_frames:
            Unique frames to encode (streams cycle over them).
        height, width:
            Per-eye render resolution.
        display:
            Headset geometry for the eccentricity map.
        encode_throughput_mpixels_s:
            Modeled server-side encoder rate; sets the bank's
            ``encode_time_s`` with the same formula the simulators use.
        n_jobs:
            Frames encode in parallel on a
            :func:`repro.parallel.worker_pool` of this width; ``1``
            stays in-process.  Results are identical for any value.
        """
        if n_frames < 1:
            raise ValueError(f"n_frames must be >= 1, got {n_frames}")
        if n_jobs < 1:
            raise ValueError(f"n_jobs must be >= 1, got {n_jobs}")
        if isinstance(scene, str):
            scene_name, scene_obj = scene, get_scene(scene)
        else:
            scene_name, scene_obj = scene.name, scene
        ladder = ladder if ladder is not None else QualityLadder.default()
        encode_time_s = 2 * height * width / (encode_throughput_mpixels_s * 1e6)

        if n_jobs == 1 or n_frames == 1:
            results = [
                _encode_frame(scene_obj, ladder, height, width, display, index)
                for index in range(n_frames)
            ]
        else:
            rung_fields = tuple(
                (rung.name, rung.codec, rung.quality, rung.codec_kwargs)
                for rung in ladder
            )
            with worker_pool(min(n_jobs, n_frames)) as pool:
                results = pool_map(
                    pool,
                    _encode_frame_by_name,
                    [scene_name] * n_frames,
                    [rung_fields] * n_frames,
                    [height] * n_frames,
                    [width] * n_frames,
                    [display] * n_frames,
                    range(n_frames),
                )
        return cls(
            ladder=ladder,
            rung_streams=[bits for bits, _ in results],
            payloads=[payloads for _, payloads in results],
            encode_time_s=encode_time_s,
            scene_name=scene_name,
            height=height,
            width=width,
        )

    @classmethod
    def from_rung_streams(
        cls,
        rung_streams: Sequence[Sequence[int]],
        ladder: QualityLadder | None = None,
        encode_time_s: float = 0.0,
        scene_name: str = "synthetic",
    ) -> "FrameBank":
        """Wrap precomputed sizes with synthesized payload bytes.

        The twin test's constructor: the exact ``rung_streams`` handed
        to :func:`~repro.streaming.adaptive.simulate_adaptive_session`
        become a servable bank, so simulator and server stream
        byte-for-bit the same ladder sizes.
        """
        ladder = ladder if ladder is not None else QualityLadder.default()
        rung_streams = [tuple(int(b) for b in frame) for frame in rung_streams]
        payloads = [
            tuple(
                filler_payload(bits, frame_index, rung_index)
                for rung_index, bits in enumerate(frame_bits)
            )
            for frame_index, frame_bits in enumerate(rung_streams)
        ]
        return cls(
            ladder=ladder,
            rung_streams=rung_streams,
            payloads=payloads,
            encode_time_s=encode_time_s,
            scene_name=scene_name,
        )

    # -- queries --------------------------------------------------------

    @property
    def n_unique_frames(self) -> int:
        """Frames actually encoded (streams cycle over them)."""
        return len(self._rung_streams)

    @property
    def rung_streams(self) -> list[tuple[int, ...]]:
        """Per-frame ladder sizes, in ``simulate_adaptive_session`` form."""
        return list(self._rung_streams)

    def rung_bits(self, frame_index: int) -> tuple[int, ...]:
        """Payload bits of frame ``frame_index`` at every rung."""
        return self._rung_streams[frame_index % len(self._rung_streams)]

    def payload(self, frame_index: int, rung_index: int) -> bytes:
        """The wire bytes of one frame at one rung."""
        frame_payloads = self._payloads[frame_index % len(self._payloads)]
        if not 0 <= rung_index < len(frame_payloads):
            raise IndexError(
                f"rung {rung_index} outside ladder of {len(frame_payloads)} rungs"
            )
        return frame_payloads[rung_index]

    def total_bytes(self) -> int:
        """Bank footprint: summed payload bytes across frames and rungs."""
        return sum(len(p) for frame in self._payloads for p in frame)

    def __repr__(self) -> str:
        mib = self.total_bytes() / 2**20
        return (
            f"FrameBank({self.scene_name!r}, {self.n_unique_frames} frames x "
            f"{len(self.ladder)} rungs, {mib:.1f} MiB)"
        )

