"""Fault injection for the serving stack: drops, delays, resets.

The simulator's loss model (:mod:`repro.streaming.loss`) erases
packets analytically; this module is its live counterpart — a
:class:`ChaosConfig` the server (or the loadgen's spawned server)
applies to real connections: FRAME messages are dropped before they
reach the socket, delayed by a fixed stall, or the connection is reset
mid-stream (optionally after writing a truncated frame, which is what
a connection dying mid-segment actually looks like to the peer).

Chaos is *injected above the protocol layer on purpose*: a dropped
frame is simply never written, a reset aborts the transport, so a
correct client observes gaps and EOFs — never malformed bytes.  That
is the contract the chaos smoke test enforces: under injected faults
the fleet reconnects and degrades, with **zero protocol errors** on
either side.

Randomness is numpy (``default_rng`` over a ``SeedSequence`` keyed on
the config seed and the connection index), matching the determinism
rules the invariant linter enforces on the simulation side: two runs
with the same seed inject the same fault sequence per connection
index, which keeps chaos failures reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..streaming.validation import validate_probability

__all__ = ["ChaosConfig", "ChaosInjector", "parse_chaos_spec", "CHAOS_ACTIONS"]

#: Per-frame outcomes an injector can hand the sender, in evaluation
#: order (reset is checked first so a configured reset rate is not
#: shadowed by a high drop rate).
CHAOS_ACTIONS = ("reset", "drop", "delay", "send")


@dataclass(frozen=True)
class ChaosConfig:
    """Fault-injection rates for a serving run.

    Each outgoing FRAME message independently draws one action:
    ``reset`` (probability ``reset_prob``), else ``drop``
    (``drop_prob``), else ``delay`` (``delay_prob``, stalling the
    sender ``delay_ms`` before the write), else a normal send.

    Attributes
    ----------
    drop_prob:
        Per-frame probability the frame is silently not sent.
    delay_prob:
        Per-frame probability the send stalls ``delay_ms`` first.
    delay_ms:
        Stall applied to a delayed frame, in milliseconds.
    reset_prob:
        Per-frame probability the connection is reset (transport
        abort) instead of sending.
    truncate_on_reset:
        Write a truncated prefix of the frame before aborting, so the
        peer sees a mid-message EOF — the realistic shape of a
        connection dying mid-segment.  Truncation only ever pairs with
        a reset: truncating on a healthy connection would desynchronize
        the byte stream and manufacture protocol errors.
    seed:
        Master seed; each connection draws from an independent child
        stream keyed on its connection index.
    """

    drop_prob: float = 0.0
    delay_prob: float = 0.0
    delay_ms: float = 25.0
    reset_prob: float = 0.0
    truncate_on_reset: bool = True
    seed: int = 0

    def __post_init__(self):
        validate_probability(self.drop_prob, "drop_prob")
        validate_probability(self.delay_prob, "delay_prob")
        validate_probability(self.reset_prob, "reset_prob")
        total = self.drop_prob + self.delay_prob + self.reset_prob
        if total > 1.0 + 1e-12:
            raise ValueError(
                f"drop_prob + delay_prob + reset_prob must be <= 1, "
                f"got {total}"
            )
        if not np.isfinite(self.delay_ms) or self.delay_ms < 0:
            raise ValueError(f"delay_ms must be >= 0, got {self.delay_ms}")
        if self.seed < 0:
            raise ValueError(f"seed must be >= 0, got {self.seed}")

    @property
    def is_active(self) -> bool:
        """Whether any fault has a nonzero rate."""
        return self.drop_prob > 0 or self.delay_prob > 0 or self.reset_prob > 0

    def injector(self, connection_index: int) -> "ChaosInjector":
        """The per-connection fault stream for connection ``connection_index``."""
        return ChaosInjector(self, connection_index)


def parse_chaos_spec(spec: str) -> ChaosConfig:
    """Parse a ``--chaos`` flag value into a :class:`ChaosConfig`.

    The grammar is comma-separated ``key=value`` fields::

        drop=0.05,delay=0.1:25,reset=0.02,seed=7

    ``drop``, ``reset``, and ``seed`` take one number; ``delay`` takes
    ``PROB`` or ``PROB:MS`` (milliseconds default 25).  Unknown keys
    and malformed numbers raise ``ValueError`` with the offending
    field named.
    """
    kwargs: dict = {}
    for field_text in spec.split(","):
        field_text = field_text.strip()
        if not field_text:
            continue
        key, sep, value = field_text.partition("=")
        key = key.strip()
        if not sep:
            raise ValueError(
                f"bad chaos field {field_text!r}: expected KEY=VALUE "
                f"(e.g. drop=0.05)"
            )
        try:
            if key == "drop":
                kwargs["drop_prob"] = float(value)
            elif key == "reset":
                kwargs["reset_prob"] = float(value)
            elif key == "delay":
                prob, _, ms = value.partition(":")
                kwargs["delay_prob"] = float(prob)
                if ms:
                    kwargs["delay_ms"] = float(ms)
            elif key == "seed":
                kwargs["seed"] = int(value)
            else:
                raise ValueError(
                    f"unknown chaos key {key!r}; "
                    f"expected drop, delay, reset, or seed"
                )
        except ValueError as exc:
            if "chaos" in str(exc):
                raise
            raise ValueError(
                f"bad chaos field {field_text!r}: {exc}"
            ) from None
    if not kwargs:
        raise ValueError(
            f"empty chaos spec {spec!r}; expected e.g. "
            f"'drop=0.05,delay=0.1:25,reset=0.02'"
        )
    return ChaosConfig(**kwargs)


class ChaosInjector:
    """One connection's deterministic fault stream.

    Draws exactly one uniform per frame, so the fault sequence a
    connection index sees depends only on the config seed — never on
    timing or on what other connections did.
    """

    __slots__ = ("config", "rng", "drops", "delays", "resets")

    def __init__(self, config: ChaosConfig, connection_index: int):
        if connection_index < 0:
            raise ValueError(
                f"connection_index must be >= 0, got {connection_index}"
            )
        self.config = config
        self.rng = np.random.default_rng(
            np.random.SeedSequence([config.seed, connection_index])
        )
        self.drops = 0
        self.delays = 0
        self.resets = 0

    def frame_action(self) -> str:
        """Draw this frame's fate: one of :data:`CHAOS_ACTIONS`."""
        config = self.config
        draw = float(self.rng.random())
        if draw < config.reset_prob:
            self.resets += 1
            return "reset"
        draw -= config.reset_prob
        if draw < config.drop_prob:
            self.drops += 1
            return "drop"
        draw -= config.drop_prob
        if draw < config.delay_prob:
            self.delays += 1
            return "delay"
        return "send"

    @property
    def delay_s(self) -> float:
        """The stall a delayed frame pays, in seconds."""
        return self.config.delay_ms * 1e-3
