"""Process-pool plumbing shared by the batch encoder and fleet engine.

Everything CPU-heavy in this library is pure-Python + numpy, so real
parallel speed-ups need processes, not threads.  This module is the one
place that decides how those pools are built: fork where the platform
offers it (cheap start-up, so even small batches win), the platform
default (spawn) elsewhere.  Callers submit picklable work and reassemble
results in submission order, which keeps every parallel path
bit-identical to its serial equivalent.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor

__all__ = ["worker_pool"]


def worker_pool(n_workers: int) -> ProcessPoolExecutor:
    """A process pool of ``n_workers``, preferring cheap fork start-up."""
    if n_workers < 1:
        raise ValueError(f"n_workers must be >= 1, got {n_workers}")
    method = "fork" if "fork" in multiprocessing.get_all_start_methods() else None
    return ProcessPoolExecutor(
        max_workers=n_workers, mp_context=multiprocessing.get_context(method)
    )
