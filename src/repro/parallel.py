"""Process-pool plumbing shared by the batch encoder and fleet engine.

Everything CPU-heavy in this library is pure-Python + numpy, so real
parallel speed-ups need processes, not threads.  This module is the one
place that decides how those pools are built: fork where the platform
offers it (cheap start-up, so even small batches win), the platform
default (spawn) elsewhere.  Callers submit picklable work and reassemble
results in submission order, which keeps every parallel path
bit-identical to its serial equivalent.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Iterable, Sequence

__all__ = ["worker_pool", "gather", "pool_map", "BrokenPoolError"]


class BrokenPoolError(RuntimeError):
    """A pool worker died before finishing its task.

    The usual culprit is the OS killing a worker outright — the Linux
    OOM killer under memory pressure, a container runtime enforcing a
    limit, or an explicit SIGKILL.  The pool cannot recover the lost
    work, so callers fail fast with this error instead of returning
    partial results.
    """


_BROKEN_POOL_HINT = (
    "a worker process died before finishing its task (likely killed by "
    "the OS: out-of-memory, container limit, or an explicit signal); "
    "retry with fewer workers (lower n_jobs) or a smaller per-task "
    "footprint"
)


def worker_pool(n_workers: int) -> ProcessPoolExecutor:
    """A process pool of ``n_workers``, preferring cheap fork start-up.

    Collect results through :func:`gather` or :func:`pool_map` so a
    worker killed mid-task surfaces as :class:`BrokenPoolError` instead
    of a bare ``BrokenProcessPool``.
    """
    if n_workers < 1:
        raise ValueError(f"n_workers must be >= 1, got {n_workers}")
    method = "fork" if "fork" in multiprocessing.get_all_start_methods() else None
    return ProcessPoolExecutor(
        max_workers=n_workers, mp_context=multiprocessing.get_context(method)
    )


def gather(futures: Sequence[Future]) -> list:
    """Results of submitted futures, in submission order.

    Raises
    ------
    BrokenPoolError
        If a worker process died (OOM kill, SIGKILL, hard crash)
        before the work completed.
    """
    try:
        return [future.result() for future in futures]
    except BrokenProcessPool as exc:
        raise BrokenPoolError(_BROKEN_POOL_HINT) from exc


def pool_map(
    pool: ProcessPoolExecutor,
    fn: Callable,
    *iterables: Iterable,
    chunksize: int = 1,
) -> list:
    """``list(pool.map(...))`` with broken-worker translation.

    Raises
    ------
    BrokenPoolError
        If a worker process died before the map completed.
    """
    try:
        return list(pool.map(fn, *iterables, chunksize=chunksize))
    except BrokenProcessPool as exc:
        raise BrokenPoolError(_BROKEN_POOL_HINT) from exc
