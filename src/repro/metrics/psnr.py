"""Objective image-quality metrics (paper Sec. 6.3).

The paper reports PSNR of the compressed frames to make a point: the
scheme is *subjectively* clean while scoring poorly on objective
metrics (mean 46 dB with huge variance, most scenes below 37 dB —
normally "visible artifacts" territory).  We implement PSNR over
8-bit sRGB frames, per frame and per channel.
"""

from __future__ import annotations

import numpy as np

__all__ = ["mse", "psnr", "psnr_per_channel"]


def _validate_pair(reference, test) -> tuple[np.ndarray, np.ndarray]:
    ref = np.asarray(reference)
    tst = np.asarray(test)
    if ref.shape != tst.shape:
        raise ValueError(f"shape mismatch: {ref.shape} vs {tst.shape}")
    if ref.size == 0:
        raise ValueError("empty images")
    return ref.astype(np.float64), tst.astype(np.float64)


def mse(reference, test) -> float:
    """Mean squared error between two equal-shape images."""
    ref, tst = _validate_pair(reference, test)
    return float(np.mean(np.square(ref - tst)))


def psnr(reference, test, peak: float = 255.0) -> float:
    """Peak signal-to-noise ratio in dB.

    Identical images return ``inf`` (they have no noise floor); the
    paper's two very-high-PSNR scenes are near this regime.
    """
    if peak <= 0:
        raise ValueError(f"peak must be positive, got {peak}")
    error = mse(reference, test)
    if error == 0:
        return float("inf")
    return float(10.0 * np.log10(peak * peak / error))


def psnr_per_channel(reference, test, peak: float = 255.0) -> np.ndarray:
    """PSNR of each color channel separately, shape ``(C,)``."""
    ref, tst = _validate_pair(reference, test)
    if ref.ndim != 3:
        raise ValueError(f"expected (H, W, C) images, got shape {ref.shape}")
    out = np.empty(ref.shape[2])
    for channel in range(ref.shape[2]):
        out[channel] = psnr(ref[..., channel], tst[..., channel], peak=peak)
    return out
