"""Objective quality metrics and reporting statistics."""

from .psnr import mse, psnr, psnr_per_channel
from .temporal import FlickerReport, flicker_report
from .stats import Summary, geometric_mean, summarize

__all__ = [
    "mse",
    "psnr",
    "psnr_per_channel",
    "FlickerReport",
    "flicker_report",
    "Summary",
    "geometric_mean",
    "summarize",
]
