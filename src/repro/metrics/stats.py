"""Small statistics helpers for experiment reporting."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Summary", "summarize", "geometric_mean"]


@dataclass(frozen=True)
class Summary:
    """Mean / std / min / max of a sample, as experiments report them."""

    mean: float
    std: float
    minimum: float
    maximum: float
    count: int

    def __str__(self) -> str:
        return (
            f"mean={self.mean:.3f} std={self.std:.3f} "
            f"min={self.minimum:.3f} max={self.maximum:.3f} (n={self.count})"
        )


def summarize(values) -> Summary:
    """Summary statistics of a 1-D sample (population std, ddof=0)."""
    arr = np.asarray(values, dtype=np.float64).ravel()
    if arr.size == 0:
        raise ValueError("cannot summarize an empty sample")
    return Summary(
        mean=float(arr.mean()),
        std=float(arr.std()),
        minimum=float(arr.min()),
        maximum=float(arr.max()),
        count=int(arr.size),
    )


def geometric_mean(values) -> float:
    """Geometric mean of positive values (compression-ratio friendly)."""
    arr = np.asarray(values, dtype=np.float64).ravel()
    if arr.size == 0:
        raise ValueError("cannot average an empty sample")
    if arr.min() <= 0:
        raise ValueError("geometric mean requires strictly positive values")
    return float(np.exp(np.mean(np.log(arr))))
