"""Temporal stability metrics for adjusted frame sequences.

The perceptual adjustment is computed per frame with no temporal state,
which raises a question the paper does not evaluate: do static scene
regions *flicker* — change output colors frame to frame even though
the input barely changed?  (Several study participants reported
artifacts specifically during motion, making temporal behaviour worth
quantifying.)

The metric: for consecutive frame pairs, compare the output color
change against the input color change per pixel, in 8-bit sRGB code
units.  The *excess temporal variation*

    excess = mean(max(0, |out_t - out_{t-1}| - |in_t - in_{t-1}|))

is zero for a codec that never amplifies temporal change, and grows
when the adjustment flips states between frames (e.g. a tile's HL/LH
geometry toggling between cases).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["FlickerReport", "flicker_report"]


@dataclass(frozen=True)
class FlickerReport:
    """Temporal-variation comparison of an encoded sequence.

    All statistics are in 8-bit code units, averaged over pixels and
    consecutive frame pairs.
    """

    input_variation: float
    output_variation: float
    excess_variation: float
    max_excess: float
    n_pairs: int

    @property
    def amplification(self) -> float:
        """Output-to-input temporal variation ratio (1.0 = neutral)."""
        if self.input_variation == 0:
            return float("inf") if self.output_variation > 0 else 1.0
        return self.output_variation / self.input_variation


def flicker_report(input_frames, output_frames) -> FlickerReport:
    """Compare temporal variation of input and output sRGB sequences.

    Parameters
    ----------
    input_frames, output_frames:
        Equal-length lists of ``(H, W, 3)`` uint8 frames (at least 2).
    """
    if len(input_frames) != len(output_frames):
        raise ValueError(
            f"sequence lengths differ: {len(input_frames)} vs {len(output_frames)}"
        )
    if len(input_frames) < 2:
        raise ValueError("need at least two frames to measure temporal variation")

    input_total = 0.0
    output_total = 0.0
    excess_total = 0.0
    max_excess = 0.0
    n_pairs = len(input_frames) - 1
    for index in range(n_pairs):
        in_a = np.asarray(input_frames[index], dtype=np.float64)
        in_b = np.asarray(input_frames[index + 1], dtype=np.float64)
        out_a = np.asarray(output_frames[index], dtype=np.float64)
        out_b = np.asarray(output_frames[index + 1], dtype=np.float64)
        if in_a.shape != out_a.shape:
            raise ValueError(f"frame shape mismatch: {in_a.shape} vs {out_a.shape}")
        input_change = np.abs(in_b - in_a)
        output_change = np.abs(out_b - out_a)
        excess = np.maximum(0.0, output_change - input_change)
        input_total += float(input_change.mean())
        output_total += float(output_change.mean())
        excess_total += float(excess.mean())
        max_excess = max(max_excess, float(excess.max()))

    return FlickerReport(
        input_variation=input_total / n_pairs,
        output_variation=output_total / n_pairs,
        excess_variation=excess_total / n_pairs,
        max_excess=max_excess,
        n_pairs=n_pairs,
    )
