"""Linear-RGB <-> sRGB gamma transfer functions (paper Eq. 1).

The rendering pipeline produces colors in *linear RGB*, three floating
point channels in ``[0, 1]``.  For output encoding each channel is passed
through the standard sRGB opto-electronic transfer function ("gamma
encoding") and quantized to an 8-bit integer in ``[0, 255]``.  The paper's
``f_s2r`` (its Eq. 1) is exactly this transfer function followed by the
floor to an integer code; we expose both the continuous transfer function
and the quantizing variant because the encoder needs the former for
analysis and the latter for bit accounting.

All functions are vectorized over arbitrary-shaped numpy arrays and are
exact inverses of each other up to quantization.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "LINEAR_THRESHOLD",
    "SRGB_THRESHOLD",
    "linear_to_srgb",
    "srgb_to_linear",
    "encode_srgb8",
    "decode_srgb8",
    "quantize_unit",
]

#: Linear-domain breakpoint below which the sRGB curve is linear.
#:
#: This is the exact crossover of the two branch functions — the root of
#: ``12.92 x = 1.055 x^(1/2.4) - 0.055`` — rather than the rounded
#: ``0.0031308`` the sRGB spec prints.  With the rounded constant the
#: linear branch overshoots the power branch at the seam, making the
#: transfer function non-monotonic there and breaking exact round trips
#: through :func:`srgb_to_linear` for values near 0.04045.
LINEAR_THRESHOLD = 0.003130668442500634

#: sRGB-domain image of :data:`LINEAR_THRESHOLD` (12.92 * threshold).
SRGB_THRESHOLD = 12.92 * LINEAR_THRESHOLD


def _as_float_array(values, name: str) -> np.ndarray:
    """Coerce ``values`` to a float64 array, rejecting non-numeric input."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.size and not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} must be finite, got non-finite entries")
    return arr


def linear_to_srgb(linear) -> np.ndarray:
    """Apply the continuous sRGB transfer function to linear values.

    Parameters
    ----------
    linear:
        Array-like of linear-RGB channel values.  Values are clipped to
        ``[0, 1]`` before the transfer, mirroring display hardware which
        saturates out-of-gamut values.

    Returns
    -------
    numpy.ndarray
        sRGB-encoded values in ``[0, 1]`` (not yet quantized).
    """
    x = np.clip(_as_float_array(linear, "linear"), 0.0, 1.0)
    low = 12.92 * x
    high = 1.055 * np.power(x, 1.0 / 2.4, where=x > 0, out=np.zeros_like(x)) - 0.055
    return np.where(x <= LINEAR_THRESHOLD, low, high)


def srgb_to_linear(srgb) -> np.ndarray:
    """Invert :func:`linear_to_srgb` (continuous, un-quantized form)."""
    s = np.clip(_as_float_array(srgb, "srgb"), 0.0, 1.0)
    low = s / 12.92
    high = np.power((s + 0.055) / 1.055, 2.4)
    return np.where(s <= SRGB_THRESHOLD, low, high)


def encode_srgb8(linear) -> np.ndarray:
    """Gamma-encode linear RGB and quantize to 8-bit codes.

    This is the paper's ``f_s2r`` (Eq. 1) scaled to the 0..255 code range:
    the non-linear transfer followed by rounding to the nearest integer
    code.  Rounding (rather than a strict floor on the scaled value) is
    what real framebuffer hardware does and keeps the function an exact
    inverse of :func:`decode_srgb8` on code points.

    Returns
    -------
    numpy.ndarray of uint8
    """
    encoded = linear_to_srgb(linear)
    return np.clip(np.round(encoded * 255.0), 0, 255).astype(np.uint8)


def decode_srgb8(codes) -> np.ndarray:
    """Map 8-bit sRGB codes back to linear RGB floats in ``[0, 1]``."""
    codes = np.asarray(codes)
    if codes.dtype.kind not in "iu":
        raise TypeError(f"sRGB codes must be integers, got dtype {codes.dtype}")
    if codes.size and (codes.min() < 0 or codes.max() > 255):
        raise ValueError("sRGB codes must lie in [0, 255]")
    return srgb_to_linear(codes.astype(np.float64) / 255.0)


def quantize_unit(values, levels: int = 256) -> np.ndarray:
    """Quantize ``[0, 1]`` floats onto a uniform grid of ``levels`` codes.

    Utility used by baselines that quantize in spaces other than sRGB.
    """
    if levels < 2:
        raise ValueError(f"levels must be >= 2, got {levels}")
    arr = np.clip(_as_float_array(values, "values"), 0.0, 1.0)
    return np.round(arr * (levels - 1)) / (levels - 1)
