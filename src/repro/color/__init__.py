"""Color spaces used by the perceptual encoder.

Three representations appear in the paper and are mirrored here:

* **linear RGB** — what the renderer produces; floats in ``[0, 1]``.
* **sRGB** — gamma-encoded 8-bit codes; the domain where Base+Delta bit
  encoding happens (paper Eq. 1).
* **DKL** — the opponent space in which discrimination ellipsoids are
  axis-aligned; a linear transform away from linear RGB (paper Eq. 2).
"""

from .dkl import DKL_TO_RGB, RGB_TO_DKL, dkl_to_rgb, rgb_to_dkl
from .srgb import (
    LINEAR_THRESHOLD,
    SRGB_THRESHOLD,
    decode_srgb8,
    encode_srgb8,
    linear_to_srgb,
    quantize_unit,
    srgb_to_linear,
)
from .utils import ensure_color_array, format_hex, parse_hex, relative_luminance

__all__ = [
    "DKL_TO_RGB",
    "RGB_TO_DKL",
    "dkl_to_rgb",
    "rgb_to_dkl",
    "LINEAR_THRESHOLD",
    "SRGB_THRESHOLD",
    "decode_srgb8",
    "encode_srgb8",
    "linear_to_srgb",
    "quantize_unit",
    "srgb_to_linear",
    "ensure_color_array",
    "format_hex",
    "parse_hex",
    "relative_luminance",
]
