"""Small color utilities shared across the library.

Hex-code parsing (used to reproduce the paper's Fig. 1 demonstration),
relative luminance, and shape validation helpers for color arrays.
"""

from __future__ import annotations

import re

import numpy as np

from .srgb import srgb_to_linear

__all__ = [
    "parse_hex",
    "format_hex",
    "relative_luminance",
    "ensure_color_array",
]

_HEX_RE = re.compile(r"^#?([0-9a-fA-F]{6})$")

#: Rec. 709 / sRGB luminance weights for linear RGB.
_LUMA_WEIGHTS = np.array([0.2126, 0.7152, 0.0722], dtype=np.float64)


def parse_hex(code: str) -> np.ndarray:
    """Parse an sRGB hex code like ``#F06077`` into linear RGB floats.

    The hex digits are 8-bit *sRGB* codes, so the gamma is removed to
    return a linear-RGB 3-vector in ``[0, 1]``.
    """
    match = _HEX_RE.match(code.strip())
    if match is None:
        raise ValueError(f"not a valid 6-digit hex color: {code!r}")
    digits = match.group(1)
    srgb8 = np.array([int(digits[i : i + 2], 16) for i in (0, 2, 4)], dtype=np.float64)
    return srgb_to_linear(srgb8 / 255.0)


def format_hex(srgb8) -> str:
    """Format an 8-bit sRGB triple as ``#RRGGBB``."""
    arr = np.asarray(srgb8)
    if arr.shape != (3,):
        raise ValueError(f"expected a single sRGB triple, got shape {arr.shape}")
    values = [int(v) for v in arr]
    if any(v < 0 or v > 255 for v in values):
        raise ValueError(f"sRGB codes must lie in [0, 255], got {values}")
    return "#" + "".join(f"{v:02X}" for v in values)


def relative_luminance(rgb) -> np.ndarray:
    """Relative luminance of linear-RGB colors (Rec. 709 weights).

    Used by the perception model to modulate discrimination thresholds
    with brightness, and by the scene generator to report scene
    statistics.  Works on any array with a trailing axis of size 3.
    """
    arr = ensure_color_array(rgb, "rgb")
    return arr @ _LUMA_WEIGHTS


def ensure_color_array(colors, name: str = "colors") -> np.ndarray:
    """Validate and coerce an array of 3-channel colors to float64."""
    arr = np.asarray(colors, dtype=np.float64)
    if arr.shape[-1] != 3:
        raise ValueError(f"{name} must have a trailing axis of size 3, got {arr.shape}")
    return arr
