"""RGB <-> DKL color-space transform (paper Eq. 2).

Psychophysical color-discrimination data is expressed in the DKL
(Derrington-Krauskopf-Lennie) opponent color space, which is a *linear*
transform away from linear RGB.  The paper publishes the constant matrix

    M_RGB2DKL = [[ 0.14,  0.17,  0.00],
                 [-0.21, -0.71, -0.07],
                 [ 0.21,  0.72,  0.07]]

(the same coefficients as Duinkharjav et al. 2022).  The paper's Eq. 2
prints ``RGB = M @ DKL`` but every downstream use (Eq. 10 builds the
quadric from ``T`` directly; Eq. 13a converts an RGB-space vector to DKL
by left-multiplying with ``M_RGB2DKL``; Eq. 13c converts back with the
inverse) requires the direction implied by the *name*:

    DKL = M_RGB2DKL @ RGB            RGB = M_RGB2DKL^{-1} @ DKL

We adopt that convention throughout and note the Eq. 2 typo here once.

The matrix is nearly singular (determinant ~= 9.8e-5) because the G and
B rows are almost parallel — a property of the underlying cone
fundamentals — so its inverse has large entries.  All transforms go
through an explicitly precomputed inverse to keep them bit-reproducible.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "RGB_TO_DKL",
    "DKL_TO_RGB",
    "rgb_to_dkl",
    "dkl_to_rgb",
]

#: Constant linear map from linear RGB to DKL (paper Sec. 2.1).
RGB_TO_DKL = np.array(
    [
        [0.14, 0.17, 0.00],
        [-0.21, -0.71, -0.07],
        [0.21, 0.72, 0.07],
    ],
    dtype=np.float64,
)

#: Precomputed inverse map from DKL back to linear RGB.
DKL_TO_RGB = np.linalg.inv(RGB_TO_DKL)


def _transform(colors, matrix: np.ndarray, name: str) -> np.ndarray:
    """Apply a 3x3 linear map to an array of 3-vectors (last axis = 3)."""
    arr = np.asarray(colors, dtype=np.float64)
    if arr.shape[-1] != 3:
        raise ValueError(f"{name} expects last axis of size 3, got shape {arr.shape}")
    return arr @ matrix.T


def rgb_to_dkl(rgb) -> np.ndarray:
    """Convert linear-RGB colors to DKL.

    Accepts any array whose last axis has size 3; the transform is applied
    per 3-vector.  Input is *linear* RGB (no gamma), per the paper.
    """
    return _transform(rgb, RGB_TO_DKL, "rgb_to_dkl")


def dkl_to_rgb(dkl) -> np.ndarray:
    """Convert DKL colors back to linear RGB (inverse of :func:`rgb_to_dkl`)."""
    return _transform(dkl, DKL_TO_RGB, "dkl_to_rgb")
