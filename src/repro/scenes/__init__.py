"""Procedural VR scene substrate (paper Sec. 5.1).

Six named scenes with the luminance/palette properties the paper
reports, stereo sub-frame rendering, value-noise texturing, and the
display geometry that turns gaze into per-pixel eccentricity.
"""

from .display import (
    QUEST2_DISPLAY,
    QUEST2_HIGH_RESOLUTION,
    QUEST2_LOW_RESOLUTION,
    QUEST2_REFRESH_RATES,
    DisplayGeometry,
    peripheral_fraction,
)
from .gaze import GazeSample, LastSamplePredictor, LinearPredictor, saccade_trace
from .library import SCENE_NAMES, Scene, all_scenes, get_scene, render_scene
from .noise import fractal_noise, value_noise
from .primitives import draw_box, draw_disk, mix_noise, modulate, solid, vertical_gradient

__all__ = [
    "QUEST2_DISPLAY",
    "QUEST2_HIGH_RESOLUTION",
    "QUEST2_LOW_RESOLUTION",
    "QUEST2_REFRESH_RATES",
    "DisplayGeometry",
    "peripheral_fraction",
    "GazeSample",
    "LastSamplePredictor",
    "LinearPredictor",
    "saccade_trace",
    "SCENE_NAMES",
    "Scene",
    "all_scenes",
    "get_scene",
    "render_scene",
    "fractal_noise",
    "value_noise",
    "draw_box",
    "draw_disk",
    "mix_noise",
    "modulate",
    "solid",
    "vertical_gradient",
]
