"""The six evaluation scenes (paper Sec. 5.1).

The paper evaluates on six VR scenes from the color-perception study of
Duinkharjav et al. — office, fortnite, skyline, dumbo, thai, monkey —
rendered per eye at runtime.  Those Unity assets are not available, so
each scene here is a procedural stand-in engineered to match the
properties the paper attributes to it:

* **office** — indoor scene, neutral palette, medium luminance;
* **fortnite** — bright outdoor scene "with a large amount of green"
  (the scene where no participant noticed artifacts);
* **skyline** — large smooth sky gradient over a high-contrast city
  (smooth content where lossless PNG-style coding is strongest);
* **dumbo** — dark ride, low luminance (most noticeable artifacts);
* **thai** — warm, ornate temple interior, busy texture;
* **monkey** — dark jungle, low luminance, organic texture.

Scenes are deterministic in ``(name, frame)``; stereo eyes crop a wider
canvas at a small horizontal disparity so the two sub-frames are the
correlated pair a real renderer would produce.  Scene tasks (e.g.
"count the birds") are mirrored by animated salient objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..color.srgb import linear_to_srgb, srgb_to_linear
from .noise import fractal_noise, value_noise
from .primitives import draw_box, draw_disk, mix_noise, modulate, vertical_gradient

__all__ = ["Scene", "SCENE_NAMES", "get_scene", "render_scene", "all_scenes"]

_BASE_SEED = 20240427  # ASPLOS'24 opening day; fixed for reproducibility.

Renderer = Callable[[int, int, np.random.Generator, int], np.ndarray]


def _render_office(height: int, width: int, rng: np.random.Generator, phase: int) -> np.ndarray:
    frame = vertical_gradient((height, width), [0.32, 0.30, 0.27], [0.16, 0.15, 0.14])
    # Window with daylight, slowly brightening/dimming across frames.
    daylight = 0.75 + 0.05 * np.sin(phase * 0.35)
    draw_box(frame, height * 0.12, height * 0.48, width * 0.08, width * 0.30,
             [daylight, daylight, daylight * 1.05])
    # Desks and monitors.
    for k in range(3):
        x0 = width * (0.38 + 0.20 * k)
        draw_box(frame, height * 0.62, height * 0.72, x0, x0 + width * 0.16, [0.22, 0.14, 0.08])
        draw_box(frame, height * 0.46, height * 0.60, x0 + width * 0.02, x0 + width * 0.13,
                 [0.05, 0.08, 0.12])
        draw_box(frame, height * 0.48, height * 0.58, x0 + width * 0.03, x0 + width * 0.12,
                 [0.10, 0.22, 0.30])
    # Carpet.
    draw_box(frame, height * 0.78, height, 0, width, [0.12, 0.10, 0.10])
    texture = fractal_noise((height, width), cell=max(4, width // 40), rng=rng, octaves=3)
    return modulate(frame, texture, amplitude=0.10)


def _render_fortnite(height: int, width: int, rng: np.random.Generator, phase: int) -> np.ndarray:
    frame = vertical_gradient((height, width), [0.45, 0.70, 0.95], [0.70, 0.85, 0.95])
    horizon = int(height * 0.42)
    # Rolling green terrain.
    hills = value_noise((1, width), cell=max(8, width // 10), rng=rng)[0]
    terrain_top = horizon + (hills * height * 0.08).astype(np.int64)
    rows = np.arange(height)[:, None]
    terrain_mask = rows >= terrain_top[None, :]
    green = np.array([0.18, 0.55, 0.16])
    frame[terrain_mask] = green
    # Sun.
    draw_disk(frame, height * 0.14, width * 0.80, max(3, height // 14), [1.0, 0.97, 0.85])
    # Trees.
    for k in range(6):
        cx = width * (0.08 + 0.15 * k) + (phase % 3)
        cy = horizon + height * (0.12 + 0.05 * (k % 3))
        draw_disk(frame, cy, cx, max(2, height // 22), [0.10, 0.42, 0.10])
        draw_box(frame, cy, cy + height * 0.08, cx - 1, cx + 2, [0.25, 0.16, 0.08])
    # Birds to count (task stimulus), drifting with the frame index.
    for k in range(5):
        bx = (width * (0.1 + 0.17 * k) + phase * width * 0.01) % width
        draw_disk(frame, height * (0.10 + 0.04 * (k % 3)), bx, max(1, height // 160),
                  [0.05, 0.05, 0.06])
    grass = fractal_noise((height, width), cell=max(3, width // 64), rng=rng, octaves=3)
    frame = np.where(terrain_mask[..., None], modulate(frame, grass, 0.22), frame)
    sky_tex = value_noise((height, width), cell=max(16, width // 6), rng=rng)
    return mix_noise(frame, np.where(terrain_mask, 0.0, sky_tex), [0.95, 0.96, 0.99], 0.25)


def _render_skyline(height: int, width: int, rng: np.random.Generator, phase: int) -> np.ndarray:
    # Wide, very smooth sky: the PNG-friendly scene.
    frame = vertical_gradient((height, width), [0.22, 0.40, 0.75], [0.70, 0.78, 0.88])
    skyline_top = int(height * 0.55)
    building_rng = np.random.default_rng(_BASE_SEED + 7)  # static architecture
    x = 0
    while x < width:
        bwidth = int(width * building_rng.uniform(0.04, 0.10))
        btop = int(skyline_top + height * building_rng.uniform(0.0, 0.18))
        shade = building_rng.uniform(0.05, 0.12)
        draw_box(frame, btop, height, x, x + bwidth, [shade, shade, shade * 1.2])
        # Lit windows: small bright cells on a grid.
        for wy in range(btop + 4, height - 2, max(3, height // 40)):
            for wx in range(x + 2, x + bwidth - 2, max(3, width // 80)):
                if building_rng.random() < 0.35:
                    lit = 0.55 + 0.1 * np.sin(phase * 0.9 + wx)
                    draw_box(frame, wy, wy + 2, wx, wx + 2, [lit, lit * 0.9, 0.45])
        x += bwidth + int(width * 0.01)
    haze = value_noise((height, width), cell=max(24, width // 4), rng=rng)
    return mix_noise(frame, haze * 0.5, [0.85, 0.87, 0.92], 0.10)


def _render_dumbo(height: int, width: int, rng: np.random.Generator, phase: int) -> np.ndarray:
    # Dark indoor ride: deep blue ambient with warm practical lights.
    frame = vertical_gradient((height, width), [0.015, 0.02, 0.05], [0.04, 0.035, 0.06])
    track_y = height * 0.70
    draw_box(frame, track_y, track_y + height * 0.04, 0, width, [0.10, 0.07, 0.05])
    for k in range(7):
        cx = (width * (0.05 + 0.15 * k) + phase * width * 0.02) % width
        cy = height * (0.25 + 0.1 * (k % 3))
        draw_disk(frame, cy, cx, max(2, height // 30), [0.65, 0.40, 0.12], opacity=0.9)
        draw_disk(frame, cy, cx, max(4, height // 16), [0.30, 0.18, 0.05], opacity=0.35)
    # Ride vehicles.
    for k in range(3):
        vx = (width * (0.2 + 0.3 * k) - phase * width * 0.015) % width
        draw_box(frame, track_y - height * 0.08, track_y, vx, vx + width * 0.09,
                 [0.18, 0.05, 0.06])
    murk = fractal_noise((height, width), cell=max(8, width // 20), rng=rng, octaves=3)
    return modulate(frame, murk, amplitude=0.30)


def _render_thai(height: int, width: int, rng: np.random.Generator, phase: int) -> np.ndarray:
    # Golden temple interior: warm palette, ornate high-frequency detail.
    frame = vertical_gradient((height, width), [0.40, 0.26, 0.10], [0.25, 0.14, 0.06])
    # Columns.
    for k in range(5):
        x0 = width * (0.05 + 0.20 * k)
        draw_box(frame, height * 0.15, height * 0.85, x0, x0 + width * 0.06, [0.55, 0.38, 0.12])
        draw_box(frame, height * 0.12, height * 0.17, x0 - width * 0.01, x0 + width * 0.07,
                 [0.70, 0.50, 0.18])
    # Altar glow, breathing with the frame index.
    glow = 0.8 + 0.08 * np.sin(phase * 0.5)
    draw_disk(frame, height * 0.55, width * 0.5, max(4, height // 8),
              [glow, glow * 0.75, glow * 0.3], opacity=0.5)
    ornament = fractal_noise((height, width), cell=max(3, width // 80), rng=rng, octaves=4)
    frame = modulate(frame, ornament, amplitude=0.28)
    gilt = value_noise((height, width), cell=max(4, width // 48), rng=rng)
    return mix_noise(frame, (gilt > 0.8) * gilt, [0.9, 0.75, 0.3], 0.35)


def _render_monkey(height: int, width: int, rng: np.random.Generator, phase: int) -> np.ndarray:
    # Dark jungle: layered foliage with moonlight patches and monkeys.
    frame = vertical_gradient((height, width), [0.015, 0.03, 0.02], [0.03, 0.05, 0.03])
    canopy = fractal_noise((height, width), cell=max(6, width // 16), rng=rng, octaves=4)
    frame = mix_noise(frame, canopy, [0.05, 0.12, 0.04], 0.8)
    # Moonlight shafts.
    for k in range(3):
        x0 = width * (0.15 + 0.3 * k) + phase
        draw_box(frame, 0, height, x0, x0 + width * 0.03, [0.10, 0.12, 0.14], opacity=0.45)
    # Monkeys to count: dark silhouettes with pale faces.
    monkey_rng = np.random.default_rng(_BASE_SEED + 11)
    for k in range(4):
        cx = width * monkey_rng.uniform(0.1, 0.9) + (phase % 5)
        cy = height * monkey_rng.uniform(0.2, 0.7)
        draw_disk(frame, cy, cx, max(2, height // 40), [0.02, 0.02, 0.02])
        draw_disk(frame, cy - height * 0.01, cx, max(1, height // 90), [0.18, 0.15, 0.12])
    undergrowth = fractal_noise((height, width), cell=max(3, width // 60), rng=rng, octaves=3)
    return modulate(frame, undergrowth, amplitude=0.35)


@dataclass(frozen=True)
class Scene:
    """A named procedural scene with deterministic stereo rendering.

    ``grain_codes`` is the amplitude (in 8-bit sRGB code units) of the
    per-pixel rendering grain added after composition.  Real rendered
    framebuffers carry anti-aliasing and shading noise of this order;
    without it, gradient-only synthetic frames are unrealistically
    friendly to dictionary coders like PNG's DEFLATE stage.
    """

    name: str
    description: str
    renderer: Renderer
    scene_id: int
    grain_codes: float = 1.0

    def render(
        self, height: int, width: int, frame: int = 0, eye: str | None = None,
        disparity_fraction: float = 0.01,
    ) -> np.ndarray:
        """Render one (sub-)frame in linear RGB.

        ``eye`` is ``None`` for a cyclopean frame, or ``"left"`` /
        ``"right"`` for the stereo sub-frames the paper renders; the
        two eyes crop a wider canvas offset by ``disparity_fraction``
        of the width, so their content is identical up to parallax
        (their rendering grain differs, as it would between two real
        render passes).
        """
        if height < 8 or width < 8:
            raise ValueError(f"scene frames must be at least 8x8, got {height}x{width}")
        if frame < 0:
            raise ValueError(f"frame index must be >= 0, got {frame}")
        if eye not in (None, "left", "right"):
            raise ValueError(f"eye must be None, 'left' or 'right', got {eye!r}")
        disparity = max(1, int(width * disparity_fraction)) if eye else 0
        canvas_width = width + 2 * disparity
        rng = np.random.default_rng(
            np.random.SeedSequence([_BASE_SEED, self.scene_id, frame])
        )
        canvas = self.renderer(height, canvas_width, rng, frame)
        offset = {None: disparity, "left": 0, "right": 2 * disparity}[eye]
        out = np.clip(canvas[:, offset : offset + width], 0.0, 1.0)
        if self.grain_codes > 0:
            eye_id = {None: 0, "left": 1, "right": 2}[eye]
            grain_rng = np.random.default_rng(
                np.random.SeedSequence([_BASE_SEED, self.scene_id, frame, 97 + eye_id])
            )
            # Grain is display-referred (uniform in sRGB code units), so
            # apply it in the gamma domain and return to linear.
            srgb = linear_to_srgb(out)
            srgb += grain_rng.uniform(
                -self.grain_codes / 255.0, self.grain_codes / 255.0, size=out.shape
            )
            out = srgb_to_linear(np.clip(srgb, 0.0, 1.0))
        return out

    def render_stereo(
        self, height: int, width: int, frame: int = 0
    ) -> tuple[np.ndarray, np.ndarray]:
        """Render the (left, right) sub-frame pair for one frame."""
        return (
            self.render(height, width, frame, eye="left"),
            self.render(height, width, frame, eye="right"),
        )


_SCENES = {
    scene.name: scene
    for scene in (
        Scene("office", "indoor office, neutral palette, medium luminance",
              _render_office, 1, grain_codes=1.0),
        Scene("fortnite", "bright outdoor game world, green dominant",
              _render_fortnite, 2, grain_codes=1.2),
        Scene("skyline", "smooth sky gradient over a night-lit city",
              _render_skyline, 3, grain_codes=0.6),
        Scene("dumbo", "dark indoor ride with warm practical lights",
              _render_dumbo, 4, grain_codes=1.0),
        Scene("thai", "golden temple interior, ornate texture",
              _render_thai, 5, grain_codes=1.5),
        Scene("monkey", "dark jungle with animal silhouettes",
              _render_monkey, 6, grain_codes=1.2),
    )
}

#: Scene names in the paper's plotting order.
SCENE_NAMES = ("office", "fortnite", "skyline", "dumbo", "thai", "monkey")


def get_scene(name: str) -> Scene:
    """Look up a scene by name; raises with the valid names listed."""
    try:
        return _SCENES[name]
    except KeyError:
        raise ValueError(f"unknown scene {name!r}; expected one of {SCENE_NAMES}") from None


def all_scenes() -> list[Scene]:
    """All six scenes in plotting order."""
    return [_SCENES[name] for name in SCENE_NAMES]


def render_scene(name: str, height: int, width: int, frame: int = 0, eye: str | None = None):
    """Convenience wrapper: ``get_scene(name).render(...)``."""
    return get_scene(name).render(height, width, frame=frame, eye=eye)
