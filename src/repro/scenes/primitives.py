"""Drawing primitives for the procedural scene generator.

All primitives operate on linear-RGB float frames in ``[0, 1]`` and are
deliberately simple: gradients, axis-aligned boxes, disks and noise
modulation are enough to produce framebuffer content with controlled
local statistics (smooth regions, hard edges, texture), which is what
the compression experiments need.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "solid",
    "vertical_gradient",
    "draw_box",
    "draw_disk",
    "modulate",
    "mix_noise",
]


def solid(shape: tuple[int, int], color) -> np.ndarray:
    """A constant-color frame of ``shape`` (height, width)."""
    height, width = shape
    frame = np.empty((height, width, 3), dtype=np.float64)
    frame[:] = np.asarray(color, dtype=np.float64)
    return frame


def vertical_gradient(shape: tuple[int, int], top_color, bottom_color) -> np.ndarray:
    """Linear vertical blend from ``top_color`` to ``bottom_color``."""
    height, width = shape
    t = np.linspace(0.0, 1.0, height)[:, None, None]
    top = np.asarray(top_color, dtype=np.float64)
    bottom = np.asarray(bottom_color, dtype=np.float64)
    return np.broadcast_to((1 - t) * top + t * bottom, (height, width, 3)).copy()


def _clip_span(start: float, stop: float, limit: int) -> tuple[int, int]:
    lo = int(np.clip(round(start), 0, limit))
    hi = int(np.clip(round(stop), 0, limit))
    return lo, max(lo, hi)


def draw_box(frame: np.ndarray, y0, y1, x0, x1, color, opacity: float = 1.0) -> None:
    """Blend an axis-aligned rectangle into ``frame`` in place.

    Coordinates are in pixels and may exceed the frame; they are
    clipped.  ``opacity`` blends with the existing content.
    """
    if not 0.0 <= opacity <= 1.0:
        raise ValueError(f"opacity must be in [0, 1], got {opacity}")
    ya, yb = _clip_span(y0, y1, frame.shape[0])
    xa, xb = _clip_span(x0, x1, frame.shape[1])
    if ya == yb or xa == xb:
        return
    region = frame[ya:yb, xa:xb]
    region *= 1.0 - opacity
    region += opacity * np.asarray(color, dtype=np.float64)


def draw_disk(frame: np.ndarray, cy, cx, radius, color, opacity: float = 1.0) -> None:
    """Blend a filled disk into ``frame`` in place (clipped)."""
    if radius <= 0:
        return
    if not 0.0 <= opacity <= 1.0:
        raise ValueError(f"opacity must be in [0, 1], got {opacity}")
    ya, yb = _clip_span(cy - radius, cy + radius + 1, frame.shape[0])
    xa, xb = _clip_span(cx - radius, cx + radius + 1, frame.shape[1])
    if ya == yb or xa == xb:
        return
    ys = np.arange(ya, yb)[:, None]
    xs = np.arange(xa, xb)[None, :]
    mask = (ys - cy) ** 2 + (xs - cx) ** 2 <= radius**2
    region = frame[ya:yb, xa:xb]
    blend = opacity * mask[..., None]
    region *= 1.0 - blend
    region += blend * np.asarray(color, dtype=np.float64)


def modulate(frame: np.ndarray, field: np.ndarray, amplitude: float) -> np.ndarray:
    """Multiply a frame by ``1 + amplitude * (field - 0.5)`` per pixel.

    ``field`` is a ``(H, W)`` texture in ``[0, 1]``; the result is
    clipped back to the unit cube.  This is how scenes acquire surface
    texture without shifting their mean color.
    """
    if field.shape != frame.shape[:2]:
        raise ValueError(f"field {field.shape} does not match frame {frame.shape[:2]}")
    out = frame * (1.0 + amplitude * (field[..., None] - 0.5))
    return np.clip(out, 0.0, 1.0)


def mix_noise(frame: np.ndarray, field: np.ndarray, color, amount: float) -> np.ndarray:
    """Blend a color into the frame with per-pixel weight ``amount * field``."""
    if field.shape != frame.shape[:2]:
        raise ValueError(f"field {field.shape} does not match frame {frame.shape[:2]}")
    weight = np.clip(amount * field, 0.0, 1.0)[..., None]
    return np.clip(frame * (1 - weight) + np.asarray(color) * weight, 0.0, 1.0)
