"""Procedural value-noise textures for the scene generator.

Pure-numpy multi-octave value noise: random lattices upsampled with
bilinear interpolation and summed with decaying amplitude.  This is the
texture primitive every synthetic scene builds on — it produces the
smooth-but-textured local statistics that framebuffer content has,
which is what Base+Delta compression responds to.
"""

from __future__ import annotations

import numpy as np

__all__ = ["value_noise", "fractal_noise"]


def _bilinear_upsample(lattice: np.ndarray, shape: tuple[int, int]) -> np.ndarray:
    """Bilinearly resample a 2-D lattice to ``shape``."""
    height, width = shape
    lat_h, lat_w = lattice.shape
    # Sample positions in lattice coordinates, endpoints inclusive.
    ys = np.linspace(0.0, lat_h - 1.0, height)
    xs = np.linspace(0.0, lat_w - 1.0, width)
    y0 = np.clip(ys.astype(np.int64), 0, lat_h - 2) if lat_h > 1 else np.zeros(height, np.int64)
    x0 = np.clip(xs.astype(np.int64), 0, lat_w - 2) if lat_w > 1 else np.zeros(width, np.int64)
    fy = (ys - y0)[:, None]
    fx = (xs - x0)[None, :]
    y1 = np.minimum(y0 + 1, lat_h - 1)
    x1 = np.minimum(x0 + 1, lat_w - 1)
    top = lattice[np.ix_(y0, x0)] * (1 - fx) + lattice[np.ix_(y0, x1)] * fx
    bottom = lattice[np.ix_(y1, x0)] * (1 - fx) + lattice[np.ix_(y1, x1)] * fx
    return top * (1 - fy) + bottom * fy


def value_noise(shape: tuple[int, int], cell: int, rng: np.random.Generator) -> np.ndarray:
    """Single-octave value noise in ``[0, 1]``.

    Parameters
    ----------
    shape:
        Output ``(height, width)``.
    cell:
        Approximate feature size in pixels; the random lattice has one
        node per ``cell`` pixels.
    rng:
        Source of randomness (callers own the seed for determinism).
    """
    if cell < 1:
        raise ValueError(f"cell must be >= 1, got {cell}")
    height, width = shape
    if height < 1 or width < 1:
        raise ValueError(f"shape must be positive, got {shape}")
    lat_h = max(2, -(-height // cell) + 1)
    lat_w = max(2, -(-width // cell) + 1)
    lattice = rng.random((lat_h, lat_w))
    return _bilinear_upsample(lattice, (height, width))


def fractal_noise(
    shape: tuple[int, int],
    cell: int,
    rng: np.random.Generator,
    octaves: int = 4,
    persistence: float = 0.5,
) -> np.ndarray:
    """Multi-octave value noise, normalized to ``[0, 1]``.

    Each octave halves the feature size and multiplies the amplitude by
    ``persistence``; the sum is rescaled to the unit interval.
    """
    if octaves < 1:
        raise ValueError(f"octaves must be >= 1, got {octaves}")
    if not 0 < persistence <= 1:
        raise ValueError(f"persistence must be in (0, 1], got {persistence}")
    total = np.zeros(shape, dtype=np.float64)
    amplitude = 1.0
    amplitude_sum = 0.0
    for octave in range(octaves):
        octave_cell = max(1, cell >> octave)
        total += amplitude * value_noise(shape, octave_cell, rng)
        amplitude_sum += amplitude
        amplitude *= persistence
    return total / amplitude_sum
