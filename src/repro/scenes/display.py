"""VR display geometry: field of view, resolutions, eccentricity maps.

The encoder needs per-pixel *eccentricity* — the visual angle between
each pixel's view ray and the current gaze ray.  This module models a
pinhole per-eye display with a wide FoV (VR headsets are ~100 deg,
paper Sec. 2.1) and computes exact angular eccentricity maps.

Also records the Oculus Quest 2 operating points the paper's power
evaluation sweeps (Sec. 6.2): the lowest and highest render resolutions
and the four refresh rates.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

__all__ = [
    "DisplayGeometry",
    "QUEST2_LOW_RESOLUTION",
    "QUEST2_HIGH_RESOLUTION",
    "QUEST2_REFRESH_RATES",
    "QUEST2_DISPLAY",
    "peripheral_fraction",
]

#: Lowest rendering resolution on Oculus Quest 2 (both eyes combined).
QUEST2_LOW_RESOLUTION = (2096, 4128)  # (height, width)
#: Highest rendering resolution on Oculus Quest 2 (paper Sec. 6.1).
QUEST2_HIGH_RESOLUTION = (2736, 5408)
#: Refresh rates available on Quest 2 (paper Fig. 13).
QUEST2_REFRESH_RATES = (72, 80, 90, 120)

#: Largest eccentricity map (bytes) retained by the per-geometry cache.
#: 8 MB holds a 1024x1024 float64 map; bounding per-entry size keeps
#: the 32-entry cache under ~256 MB even for adversarial gaze sweeps.
_CACHE_MAP_BYTES_LIMIT = 8 * 1024 * 1024

#: Eccentricity-map cache entries kept per geometry instance.
_CACHE_MAX_ENTRIES = 32


@dataclass(frozen=True)
class DisplayGeometry:
    """Pinhole model of one eye's display.

    Attributes
    ----------
    fov_horizontal_deg, fov_vertical_deg:
        Full field of view in degrees.
    """

    fov_horizontal_deg: float = 100.0
    fov_vertical_deg: float = 100.0

    def __post_init__(self):
        for name in ("fov_horizontal_deg", "fov_vertical_deg"):
            value = getattr(self, name)
            if not 0 < value < 180:
                raise ValueError(f"{name} must be in (0, 180), got {value}")
        # Per-instance map cache.  An ``lru_cache`` on the method would
        # key on ``self``, pinning every geometry ever used for the
        # lifetime of the class (a leak) and making all geometries fight
        # over one eviction budget; here each instance gets its own
        # LRU of :data:`_CACHE_MAX_ENTRIES` maps and dies with it.
        object.__setattr__(self, "_map_cache", OrderedDict())

    def __getstate__(self):
        # Cached maps do not travel across pickling (process-pool
        # workers rebuild what they need); ship only the geometry.
        state = dict(self.__dict__)
        state["_map_cache"] = OrderedDict()
        return state

    def _view_rays(self, height: int, width: int) -> np.ndarray:
        """Unit view rays for every pixel, shape ``(H, W, 3)``.

        The image plane sits at unit depth; pixel centers map to
        tangent-plane coordinates spanning the FoV.
        """
        tan_h = np.tan(np.radians(self.fov_horizontal_deg / 2.0))
        tan_v = np.tan(np.radians(self.fov_vertical_deg / 2.0))
        # Pixel centers in normalized device coordinates [-1, 1].
        xs = (np.arange(width) + 0.5) / width * 2.0 - 1.0
        ys = (np.arange(height) + 0.5) / height * 2.0 - 1.0
        plane_x = xs[None, :] * tan_h
        plane_y = ys[:, None] * tan_v
        rays = np.empty((height, width, 3), dtype=np.float64)
        rays[..., 0] = plane_x
        rays[..., 1] = plane_y
        rays[..., 2] = 1.0
        rays /= np.linalg.norm(rays, axis=-1, keepdims=True)
        return rays

    def eccentricity_map(
        self, height: int, width: int, fixation: tuple[float, float] = (0.5, 0.5)
    ) -> np.ndarray:
        """Per-pixel eccentricity (degrees) for a gaze point.

        Parameters
        ----------
        height, width:
            Frame size in pixels.
        fixation:
            Gaze point in normalized image coordinates ``(x, y)`` with
            ``(0.5, 0.5)`` the screen center; must lie within the frame.

        Notes
        -----
        Maps are cached per ``(geometry, height, width, fixation)`` —
        encoders ask for the same map every frame — and returned as
        read-only arrays so one caller cannot corrupt another's view.
        Copy before mutating.  Maps larger than
        :data:`_CACHE_MAP_BYTES_LIMIT` bypass the cache (a
        gaze-contingent sweep at headset resolution would otherwise
        pin gigabytes); they stay transient per call, as before.
        """
        if height < 1 or width < 1:
            raise ValueError(f"frame must be non-empty, got {height}x{width}")
        fx, fy = fixation
        if not (0.0 <= fx <= 1.0 and 0.0 <= fy <= 1.0):
            raise ValueError(f"fixation must be within [0, 1]^2, got {fixation}")
        key = (int(height), int(width), (float(fx), float(fy)))
        if height * width * 8 > _CACHE_MAP_BYTES_LIMIT:
            return self._compute_eccentricity_map(*key)
        cache: OrderedDict = self._map_cache
        if key in cache:
            cache.move_to_end(key)
            return cache[key]
        ecc = self._compute_eccentricity_map(*key)
        cache[key] = ecc
        while len(cache) > _CACHE_MAX_ENTRIES:
            cache.popitem(last=False)
        return ecc

    def _compute_eccentricity_map(
        self, height: int, width: int, fixation: tuple[float, float]
    ) -> np.ndarray:
        fx, fy = fixation
        rays = self._view_rays(height, width)
        tan_h = np.tan(np.radians(self.fov_horizontal_deg / 2.0))
        tan_v = np.tan(np.radians(self.fov_vertical_deg / 2.0))
        gaze = np.array([(fx * 2 - 1) * tan_h, (fy * 2 - 1) * tan_v, 1.0])
        gaze /= np.linalg.norm(gaze)
        cosines = np.clip(rays @ gaze, -1.0, 1.0)
        ecc = np.degrees(np.arccos(cosines))
        ecc.setflags(write=False)
        return ecc


#: Default headset geometry used throughout the experiments.
QUEST2_DISPLAY = DisplayGeometry()


def peripheral_fraction(
    eccentricity_map: np.ndarray, threshold_deg: float = 20.0
) -> float:
    """Fraction of pixels beyond an eccentricity threshold.

    The paper motivates the approach with "above 90% of a frame's
    pixels are in the peripheral vision (outside 20 deg)"; this helper
    lets tests and examples verify the claim for our geometry.
    """
    ecc = np.asarray(eccentricity_map, dtype=np.float64)
    if ecc.size == 0:
        raise ValueError("eccentricity map is empty")
    return float(np.mean(ecc > threshold_deg))
