"""Synthetic gaze traces and gaze prediction.

The paper's user study attributed some reported artifacts to "rendering
lag or slow gaze detection" during rapid eye movement (Sec. 6.3).  To
study — and mitigate — that effect, this module provides:

* :func:`saccade_trace` — a synthetic eye-movement trace alternating
  fixations with ballistic saccades (the standard two-state model of
  free viewing);
* :class:`LastSamplePredictor` / :class:`LinearPredictor` — what the
  encoder believes the gaze is, given a tracker latency: either the
  stale last sample, or a constant-velocity extrapolation from the two
  most recent samples (what real eye-tracked headsets ship).

The predictors expose a known subtlety the tests document: velocity
extrapolation reduces error *during* an ongoing saccade but overshoots
at saccade endings, so at saccade-scale latencies its whole-trace
average is no better than the stale sample — gaze prediction is
genuinely hard, which is why the paper's participants could see
artifacts under rapid eye movement at all.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "GazeSample",
    "saccade_trace",
    "LastSamplePredictor",
    "LinearPredictor",
]


@dataclass(frozen=True)
class GazeSample:
    """One gaze-tracker sample: time and normalized fixation point."""

    time_s: float
    x: float
    y: float

    def clamped(self) -> "GazeSample":
        return GazeSample(
            self.time_s, float(np.clip(self.x, 0.0, 1.0)), float(np.clip(self.y, 0.0, 1.0))
        )


def saccade_trace(
    duration_s: float,
    sample_rate_hz: float = 120.0,
    rng: np.random.Generator | None = None,
    fixation_mean_s: float = 0.35,
    saccade_duration_s: float = 0.05,
) -> list[GazeSample]:
    """Generate a fixation/saccade gaze trace in normalized coordinates.

    Fixations hold a point (with tiny tremor) for an exponentially
    distributed duration, then a ballistic saccade moves to a new
    uniform target over ``saccade_duration_s`` following a smooth
    minimum-jerk profile — the standard kinematics of free viewing.
    """
    if duration_s <= 0:
        raise ValueError(f"duration_s must be positive, got {duration_s}")
    if sample_rate_hz <= 0:
        raise ValueError(f"sample_rate_hz must be positive, got {sample_rate_hz}")
    rng = rng if rng is not None else np.random.default_rng(0)

    dt = 1.0 / sample_rate_hz
    samples: list[GazeSample] = []
    time = 0.0
    position = np.array([0.5, 0.5])
    while time < duration_s:
        # Fixation with micro-tremor.
        hold = rng.exponential(fixation_mean_s)
        end = min(time + hold, duration_s)
        while time < end:
            tremor = rng.normal(0.0, 0.002, 2)
            samples.append(
                GazeSample(time, *(position + tremor)).clamped()
            )
            time += dt
        if time >= duration_s:
            break
        # Ballistic saccade to a new target (minimum-jerk profile).
        target = rng.uniform(0.1, 0.9, 2)
        start = position.copy()
        saccade_end = min(time + saccade_duration_s, duration_s)
        saccade_start = time
        while time < saccade_end:
            progress = (time - saccade_start) / saccade_duration_s
            smooth = progress**3 * (10 - 15 * progress + 6 * progress**2)
            point = start + (target - start) * min(smooth, 1.0)
            samples.append(GazeSample(time, *point).clamped())
            time += dt
        position = target
    return samples


class LastSamplePredictor:
    """Gaze estimate = the most recent sample older than the latency."""

    def predict(self, trace: list[GazeSample], now_s: float, latency_s: float):
        """Return the (x, y) the encoder would use at time ``now_s``."""
        if latency_s < 0:
            raise ValueError(f"latency_s must be >= 0, got {latency_s}")
        visible = [s for s in trace if s.time_s <= now_s - latency_s]
        if not visible:
            return (0.5, 0.5)
        last = visible[-1]
        return (last.x, last.y)


class LinearPredictor:
    """Velocity extrapolation with saccade gating.

    Velocity is estimated over a ``velocity_window_s`` span (not
    adjacent samples — fixation tremor would dominate) and only applied
    when it exceeds ``min_speed`` — the saccade-detection deadband real
    eye trackers use; during fixations the predictor degrades
    gracefully to the last sample.  Extrapolation is capped at
    ``max_extrapolation_s``.
    """

    def __init__(
        self,
        max_extrapolation_s: float = 0.1,
        velocity_window_s: float = 0.025,
        min_speed: float = 0.5,
    ):
        if max_extrapolation_s < 0:
            raise ValueError("max_extrapolation_s must be >= 0")
        if velocity_window_s <= 0:
            raise ValueError("velocity_window_s must be positive")
        if min_speed < 0:
            raise ValueError("min_speed must be >= 0")
        self.max_extrapolation_s = max_extrapolation_s
        self.velocity_window_s = velocity_window_s
        self.min_speed = min_speed

    def predict(self, trace: list[GazeSample], now_s: float, latency_s: float):
        if latency_s < 0:
            raise ValueError(f"latency_s must be >= 0, got {latency_s}")
        visible = [s for s in trace if s.time_s <= now_s - latency_s]
        if not visible:
            return (0.5, 0.5)
        last = visible[-1]
        if len(visible) == 1:
            return (last.x, last.y)
        # Reference sample one velocity window back (or the oldest).
        cutoff = last.time_s - self.velocity_window_s
        reference = visible[0]
        for sample in reversed(visible[:-1]):
            if sample.time_s <= cutoff:
                reference = sample
                break
        dt = last.time_s - reference.time_s
        if dt <= 0:
            return (last.x, last.y)
        vx = (last.x - reference.x) / dt
        vy = (last.y - reference.y) / dt
        if np.hypot(vx, vy) < self.min_speed:
            return (last.x, last.y)  # fixation: do not amplify tremor
        horizon = min(now_s - last.time_s, self.max_extrapolation_s)
        return (
            float(np.clip(last.x + vx * horizon, 0.0, 1.0)),
            float(np.clip(last.y + vy * horizon, 0.0, 1.0)),
        )
