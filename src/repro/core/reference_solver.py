"""Iterative reference solver for the unrelaxed problem (paper Eq. 7).

The paper's exact formulation — minimize the summed ``log2`` delta
widths over all three channels in the *sRGB* domain, subject to every
pixel staying inside its discrimination ellipsoid — is non-convex and
needs an iterative solver ("popular solvers in Matlab spend hours",
Sec. 3.2).  This module implements a small-scale version of that solver
so the analytical solution can be validated against it:

* pixels are parameterized as ``p_i = c_i + d_i`` with the ellipsoid
  constraint expressed as a smooth inequality on the DKL-normalized
  displacement, handled by SLSQP;
* the objective uses the continuous sRGB transfer (no floor) and a
  softmax/softmin smoothing so gradients exist, annealed toward the
  true max/min.

It is *not* part of the real-time path; it exists for tests and the
relaxation-fidelity ablation, on single tiles.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import minimize
from scipy.special import logsumexp

from ..color.dkl import RGB_TO_DKL
from ..color.srgb import linear_to_srgb

__all__ = ["ReferenceSolution", "solve_tile_reference", "true_objective_bits"]


def true_objective_bits(tile_rgb: np.ndarray) -> float:
    """The unrelaxed objective of Eq. 7a for one tile, in bits.

    ``sum_C log2(max(f(p_C)) - min(f(p_C)) + 1)`` with values expressed
    on the 0..255 sRGB code scale (continuous, no floor/quantization).
    """
    codes = linear_to_srgb(tile_rgb) * 255.0
    spans = codes.max(axis=0) - codes.min(axis=0)
    return float(np.sum(np.log2(spans + 1.0)))


def _smooth_objective(flat_deltas, tile, smoothing):
    deltas = flat_deltas.reshape(tile.shape)
    codes = linear_to_srgb(np.clip(tile + deltas, 0.0, 1.0)) * 255.0
    total = 0.0
    for channel in range(3):
        values = codes[:, channel]
        # Stable log-sum-exp keeps the softmax finite for code-scale
        # values (up to 255 / smoothing in the exponent).
        soft_max = smoothing * logsumexp(values / smoothing)
        soft_min = -smoothing * logsumexp(-values / smoothing)
        total += np.log2(max(soft_max - soft_min, 0.0) + 1.0)
    return total


@dataclass(frozen=True)
class ReferenceSolution:
    """Output of the iterative solver on one tile."""

    adjusted: np.ndarray
    objective_bits: float
    initial_bits: float
    converged: bool


def solve_tile_reference(
    tile_rgb,
    semi_axes,
    maxiter: int = 200,
    smoothing_schedule: tuple[float, ...] = (4.0, 1.0, 0.25),
) -> ReferenceSolution:
    """Iteratively minimize Eq. 7 for a single tile.

    Parameters
    ----------
    tile_rgb:
        ``(pixels, 3)`` linear-RGB tile.
    semi_axes:
        ``(pixels, 3)`` DKL semi-axes of each pixel's ellipsoid.
    maxiter:
        SLSQP iteration budget per smoothing stage.
    smoothing_schedule:
        Decreasing softmax temperatures; each stage warm-starts the
        next, annealing toward the true max/min objective.
    """
    tile = np.asarray(tile_rgb, dtype=np.float64)
    axes = np.asarray(semi_axes, dtype=np.float64)
    if tile.ndim != 2 or tile.shape[1] != 3:
        raise ValueError(f"tile_rgb must be (pixels, 3), got {tile.shape}")
    if axes.shape != tile.shape:
        raise ValueError(f"semi_axes {axes.shape} must match tile {tile.shape}")

    def constraint_values(flat_deltas):
        deltas = flat_deltas.reshape(tile.shape)
        dkl = deltas @ RGB_TO_DKL.T
        # >= 0 when inside the ellipsoid.
        return 1.0 - np.sum(np.square(dkl / axes), axis=1)

    constraints = [{"type": "ineq", "fun": constraint_values}]
    current = np.zeros(tile.size)
    converged = True
    for smoothing in smoothing_schedule:
        result = minimize(
            _smooth_objective,
            current,
            args=(tile, smoothing),
            method="SLSQP",
            constraints=constraints,
            options={"maxiter": maxiter, "ftol": 1e-10},
        )
        current = result.x
        converged = converged and bool(result.success)

    deltas = current.reshape(tile.shape)
    # Project any small constraint violation back onto the ellipsoids.
    dkl = deltas @ RGB_TO_DKL.T
    norms = np.sqrt(np.sum(np.square(dkl / axes), axis=1))
    scale = np.where(norms > 1.0, 1.0 / norms, 1.0)
    adjusted = np.clip(tile + deltas * scale[:, None], 0.0, 1.0)

    return ReferenceSolution(
        adjusted=adjusted,
        objective_bits=true_objective_bits(adjusted),
        initial_bits=true_objective_bits(tile),
        converged=converged,
    )
