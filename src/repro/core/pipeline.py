"""Frame-level perceptual encoding pipeline (paper Fig. 7).

Ties the pieces together the way the paper's system does:

    rendered linear-RGB frame + gaze
      -> per-pixel discrimination ellipsoids (Phi, on the GPU)
      -> per-tile color adjustment, best of Red/Blue axes (the CAU)
      -> sRGB quantization
      -> ordinary Base+Delta compression

Pixels inside the *foveal bypass* radius (the paper keeps the central
10 degrees untouched, following color-perception-study practice) are
pinned by giving them near-zero semi-axes; they still participate in
their tile's HL/LH reduction, so mixed fovea/periphery tiles remain
correct rather than special-cased.

:class:`PerceptualEncoder` is the main public entry point of the
library; :class:`FrameResult` carries everything the experiments
report.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..codecs.base import EncodedFrame
from ..color.srgb import encode_srgb8
from ..encoding.accounting import SizeBreakdown
from ..encoding.bd import bd_breakdown
from ..encoding.tiling import TileGrid, tile_frame, tile_scalar_field, untile_frame
from ..perception.geometry import mahalanobis
from ..perception.law import ParametricEllipsoidLaw
from ..perception.model import DiscriminationModel, default_model
from .optimizer import optimize_tiles

__all__ = ["FrameResult", "PerceptualEncoder", "DEFAULT_FOVEAL_RADIUS_DEG"]

#: Radius (deg eccentricity) of the untouched central region, Sec. 5.1.
DEFAULT_FOVEAL_RADIUS_DEG = 10.0


@dataclass(frozen=True, kw_only=True)
class FrameResult(EncodedFrame):
    """Everything produced by encoding one frame.

    A :class:`~repro.codecs.base.EncodedFrame` (codec ``"perceptual"``)
    carrying the generic fields — ``total_bits``, ``breakdown``, and
    ``reconstruction`` (the adjusted sRGB frame) — plus the
    pipeline-specific diagnostics below.

    Attributes
    ----------
    adjusted_frame:
        Perceptually adjusted frame, linear RGB, original size.
    adjusted_srgb:
        The adjusted frame quantized to uint8 sRGB (what gets BD
        encoded and eventually displayed); also exposed as the generic
        ``reconstruction``.
    original_srgb:
        The unadjusted frame quantized to uint8 sRGB — the baseline BD
        input.
    baseline_breakdown:
        BD size accounting for the original frame (the BD baseline);
        the inherited ``breakdown`` accounts the adjusted frame (ours).
    case2_fraction:
        Fraction of tiles whose winning adjustment found a common plane
        (paper Fig. 12's ``c2``).
    axis_fractions:
        Mapping axis -> fraction of tiles won by that axis.
    max_mahalanobis:
        Largest ellipsoid-normalized color shift over all *adjusted*
        (non-foveal) pixels; the perceptual guarantee is ``<= 1`` up to
        quantization.
    grid:
        Tile geometry used.
    """

    adjusted_frame: np.ndarray
    adjusted_srgb: np.ndarray
    original_srgb: np.ndarray
    baseline_breakdown: SizeBreakdown
    case2_fraction: float
    axis_fractions: dict[int, float]
    max_mahalanobis: float
    grid: TileGrid

    @property
    def bandwidth_reduction_vs_uncompressed(self) -> float:
        """Traffic saved vs. raw frames (paper Fig. 10 headline)."""
        return self.breakdown.reduction_vs_uncompressed()

    @property
    def bandwidth_reduction_vs_bd(self) -> float:
        """Traffic saved vs. plain BD on the unadjusted frame."""
        return self.breakdown.reduction_vs(self.baseline_breakdown)


class PerceptualEncoder:
    """Color-perception-aware pre-encoder in front of Base+Delta.

    Parameters
    ----------
    model:
        Discrimination model ``Phi``; defaults to the library's
        parametric model (swap in :class:`~repro.perception.RBFModel`
        for the paper-faithful network, or a calibrated per-user model).
    tile_size:
        Square tile edge; 4 matches the paper's hardware.
    foveal_radius_deg:
        Eccentricity below which pixels are left untouched.
    axes:
        Candidate optimization channels in tie-break order.
    """

    def __init__(
        self,
        model: DiscriminationModel | None = None,
        tile_size: int = 4,
        foveal_radius_deg: float = DEFAULT_FOVEAL_RADIUS_DEG,
        axes: tuple[int, ...] = (2, 0),
        case2_placement: str = "mid",
    ):
        if foveal_radius_deg < 0:
            raise ValueError(f"foveal_radius_deg must be >= 0, got {foveal_radius_deg}")
        self.model = model if model is not None else default_model()
        self.tile_size = tile_size
        self.foveal_radius_deg = float(foveal_radius_deg)
        self.axes = axes
        self.case2_placement = case2_placement

    def encode_frame(self, frame_linear, eccentricity_deg) -> FrameResult:
        """Adjust one frame and account its Base+Delta size.

        Parameters
        ----------
        frame_linear:
            ``(H, W, 3)`` linear-RGB frame in ``[0, 1]``.
        eccentricity_deg:
            ``(H, W)`` per-pixel eccentricity in degrees (from the
            display geometry and current gaze), or a scalar applied to
            every pixel.
        """
        frame = np.asarray(frame_linear, dtype=np.float64)
        if frame.ndim != 3 or frame.shape[2] != 3:
            raise ValueError(f"frame must be (H, W, 3), got {frame.shape}")
        ecc = np.asarray(eccentricity_deg, dtype=np.float64)
        if ecc.ndim == 0:
            ecc = np.full(frame.shape[:2], float(ecc))
        if ecc.shape != frame.shape[:2]:
            raise ValueError(
                f"eccentricity map {ecc.shape} does not match frame {frame.shape[:2]}"
            )

        tiles, grid = tile_frame(frame, self.tile_size)
        ecc_tiles, _ = tile_scalar_field(ecc, self.tile_size)

        semi_axes = self.model.semi_axes(tiles, ecc_tiles)
        foveal = ecc_tiles < self.foveal_radius_deg
        semi_axes = np.where(
            foveal[..., None], ParametricEllipsoidLaw.MIN_SEMI_AXIS, semi_axes
        )

        optimized = optimize_tiles(
            tiles, semi_axes, axes=self.axes, case2_placement=self.case2_placement
        )

        n_pixels = grid.height * grid.width
        breakdown = bd_breakdown(optimized.adjusted_srgb, n_pixels=n_pixels)
        original_srgb_tiles = encode_srgb8(tiles)
        baseline = bd_breakdown(original_srgb_tiles, n_pixels=n_pixels)

        # Perceptual guarantee audit on the pixels we actually moved.
        moved = ~foveal
        if moved.any():
            model_axes = self.model.semi_axes(tiles[moved], ecc_tiles[moved])
            distances = mahalanobis(optimized.adjusted[moved], tiles[moved], model_axes)
            max_distance = float(distances.max())
        else:
            max_distance = 0.0

        axis_values, axis_counts = np.unique(optimized.chosen_axis, return_counts=True)
        axis_fractions = {
            int(a): float(c) / grid.n_tiles for a, c in zip(axis_values, axis_counts)
        }

        adjusted_srgb_frame = untile_frame(optimized.adjusted_srgb, grid)
        return FrameResult(
            codec="perceptual",
            total_bits=breakdown.total_bits,
            n_pixels=n_pixels,
            breakdown=breakdown,
            reconstruction=adjusted_srgb_frame,
            adjusted_frame=untile_frame(optimized.adjusted, grid),
            adjusted_srgb=adjusted_srgb_frame,
            original_srgb=untile_frame(original_srgb_tiles, grid),
            baseline_breakdown=baseline,
            case2_fraction=float(optimized.case2.mean()),
            axis_fractions=axis_fractions,
            max_mahalanobis=max_distance,
            grid=grid,
        )
