"""Per-tile color adjustment along one channel (paper Sec. 3.3, Fig. 6).

Given a tile of pixels and their discrimination ellipsoids, the
analytical solution of the relaxed problem (Eq. 8c) squeezes the chosen
channel's values into the smallest interval reachable without any pixel
leaving its ellipsoid.  With per-pixel channel extrema ``L_i``/``H_i``
(lowest/highest reachable channel value), define

    HL = max_i L_i   ("highest of the lows")
    LH = min_i H_i   ("lowest of the highs")

* **Case 1** (``HL > LH``): no plane crosses every ellipsoid.  The
  minimum achievable span is ``HL - LH``; it is attained by clamping
  every channel value into ``[LH, HL]``.
* **Case 2** (``HL <= LH``): every plane with channel value in
  ``[HL, LH]`` crosses all ellipsoids; all pixels move onto the mean
  plane ``(HL + LH) / 2`` and the channel needs zero delta bits.

Movement is along each pixel's *extrema vector* (center to channel
extremum).  Along that line the channel value varies linearly and spans
exactly ``[L_i, H_i]`` while staying inside the ellipsoid, so reaching a
target channel value ``z*`` means taking the step ``(z* - z_i) /
(H_i - z_i)`` of the displacement — central symmetry makes one
denominator serve both directions.

A final gamut clamp scales any move back toward the center until the
result lies in the unit RGB cube; scaling toward the center can never
exit the ellipsoid, so the perceptual constraint survives the clamp.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..perception.geometry import channel_extrema

__all__ = ["CASE2_PLACEMENTS", "AxisAdjustment", "adjust_tiles", "case2_plane"]


@dataclass(frozen=True)
class AxisAdjustment:
    """Outcome of adjusting a tile stack along one channel.

    Attributes
    ----------
    adjusted:
        Adjusted linear-RGB tiles, same shape as the input
        ``(n_tiles, pixels, 3)``.
    case2:
        Boolean per tile; True where a common plane existed (Fig. 6b).
    span_before, span_after:
        Channel value span (max - min) per tile before and after, in
        linear RGB.  ``span_after`` is measured on the *clamped* result.
    axis:
        The channel that was optimized (0=R, 1=G, 2=B).
    """

    adjusted: np.ndarray
    case2: np.ndarray
    span_before: np.ndarray
    span_after: np.ndarray
    axis: int


def case2_plane(low_channel: np.ndarray, high_channel: np.ndarray) -> tuple:
    """Compute HL, LH and the case-2 mask from per-pixel channel extrema.

    Parameters are ``(n_tiles, pixels)`` arrays of the lowest/highest
    reachable channel values.  Returns ``(HL, LH, case2)`` with per-tile
    shapes.  Exposed separately because the hardware model mirrors this
    reduction stage (the CAU's comparator trees).
    """
    if low_channel.shape != high_channel.shape or low_channel.ndim != 2:
        raise ValueError(
            f"expected matching (n_tiles, pixels) arrays, got "
            f"{low_channel.shape} and {high_channel.shape}"
        )
    hl = low_channel.max(axis=1)
    lh = high_channel.min(axis=1)
    return hl, lh, lh >= hl


def _clamp_to_gamut(centers: np.ndarray, moved: np.ndarray) -> np.ndarray:
    """Scale each move toward its center until the result is in [0,1]^3.

    The scale factor is the largest ``m in [0, 1]`` with ``c + m*(p - c)``
    inside the unit cube, computed per channel and combined with a min.
    Because the center is always in gamut and scaling toward the center
    stays inside the (convex) ellipsoid, the clamp preserves both
    constraints.
    """
    delta = moved - centers
    with np.errstate(divide="ignore", invalid="ignore"):
        scale_high = np.where(moved > 1.0, (1.0 - centers) / delta, 1.0)
        scale_low = np.where(moved < 0.0, -centers / delta, 1.0)
    scale = np.clip(np.minimum(scale_high, scale_low).min(axis=-1), 0.0, 1.0)
    return centers + scale[..., None] * delta


#: Valid case-2 plane placements: the paper uses the HL/LH mean.
CASE2_PLACEMENTS = ("mid", "hl", "lh")


def adjust_tiles(
    tiles_rgb, semi_axes, axis: int, case2_placement: str = "mid"
) -> AxisAdjustment:
    """Run the analytical color adjustment on a stack of tiles.

    Parameters
    ----------
    tiles_rgb:
        Linear-RGB tiles, shape ``(n_tiles, pixels_per_tile, 3)``,
        values in ``[0, 1]``.
    semi_axes:
        DKL-space discrimination semi-axes per pixel, same shape.
        Foveal (bypassed) pixels are expressed with near-zero semi-axes,
        which pins them in place and correctly *constrains* the rest of
        their tile through HL/LH.
    axis:
        Channel to minimize (0=R or 2=B in the paper; 1=G is allowed
        and useful for ablations).
    case2_placement:
        Where to put the common plane in case 2: ``"mid"`` (the HL/LH
        average, the paper's choice), ``"hl"`` or ``"lh"`` (either
        extreme; exposed for the plane-placement ablation).  All three
        achieve zero span along ``axis``; they differ in how far the
        *other* channels drift.
    """
    if case2_placement not in CASE2_PLACEMENTS:
        raise ValueError(
            f"case2_placement must be one of {CASE2_PLACEMENTS}, got {case2_placement!r}"
        )
    tiles = np.asarray(tiles_rgb, dtype=np.float64)
    if tiles.ndim != 3 or tiles.shape[2] != 3:
        raise ValueError(f"tiles_rgb must be (n_tiles, pixels, 3), got {tiles.shape}")
    if tiles.size and (tiles.min() < 0.0 or tiles.max() > 1.0):
        raise ValueError("tiles_rgb must be linear RGB in [0, 1]")

    extrema = channel_extrema(tiles, semi_axes, axis)
    z = tiles[..., axis]
    low = extrema.low[..., axis]
    high = extrema.high[..., axis]

    hl, lh, case2 = case2_plane(low, high)
    if case2_placement == "mid":
        plane = 0.5 * (hl + lh)
    elif case2_placement == "hl":
        plane = hl
    else:  # "lh"
        plane = lh
    # Case 1 target: clamp into [LH, HL]; case 2 target: the common plane.
    target = np.where(
        case2[:, None],
        plane[:, None],
        np.clip(z, lh[:, None], hl[:, None]),
    )

    halfwidth = high - z  # equals z - low by central symmetry
    with np.errstate(divide="ignore", invalid="ignore"):
        step = np.where(halfwidth > 0, (target - z) / halfwidth, 0.0)
    # |step| <= 1 holds analytically; enforce against float round-off.
    np.clip(step, -1.0, 1.0, out=step)
    moved = tiles + step[..., None] * extrema.displacement
    adjusted = _clamp_to_gamut(tiles, moved)

    z_after = adjusted[..., axis]
    return AxisAdjustment(
        adjusted=adjusted,
        case2=case2,
        span_before=z.max(axis=1) - z.min(axis=1),
        span_after=z_after.max(axis=1) - z_after.min(axis=1),
        axis=axis,
    )
