"""Per-tile axis selection (paper Sec. 3.4, Fig. 7).

The paper runs the analytical adjustment twice per tile — once
minimizing along Blue, once along Red — and keeps whichever yields the
smaller encoded size.  The deciding cost is the *actual* Base+Delta bit
cost of the tile after sRGB quantization, across all three channels:
optimizing one channel shifts the others (moves follow the extrema
vectors), so the full-tile cost is what must be compared.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..color.srgb import encode_srgb8
from ..encoding.bd import BASE_FIELD_BITS, WIDTH_FIELD_BITS, delta_widths
from .adjust import AxisAdjustment, adjust_tiles

__all__ = ["tile_bd_bits", "OptimizedTiles", "optimize_tiles"]


def tile_bd_bits(tiles_srgb8: np.ndarray) -> np.ndarray:
    """Per-tile BD bit cost (all channels), shape ``(n_tiles,)``.

    ``bits = sum_channels (8 + 4 + pixels * w_channel)`` — Eq. 5-6 plus
    the width metadata field.
    """
    widths = delta_widths(tiles_srgb8)
    pixels_per_tile = tiles_srgb8.shape[1]
    per_channel_overhead = BASE_FIELD_BITS + WIDTH_FIELD_BITS
    return 3 * per_channel_overhead + pixels_per_tile * widths.sum(axis=1)


@dataclass(frozen=True)
class OptimizedTiles:
    """Result of the two-axis optimization over a tile stack.

    Attributes
    ----------
    adjusted:
        Winning adjusted tiles in linear RGB, ``(n_tiles, pixels, 3)``.
    adjusted_srgb:
        The same tiles quantized to uint8 sRGB — exactly what the BD
        encoder will see; all bit accounting uses these.
    chosen_axis:
        Per tile, the channel whose adjustment won (values from
        ``axes``).
    case2:
        Per tile, whether the *winning* adjustment hit case 2 (common
        plane, zero-delta channel) — the statistic of paper Fig. 12.
    bits:
        Per-tile BD bit cost of the winning adjustment.
    per_axis:
        The raw :class:`AxisAdjustment` for each candidate axis, kept
        for ablation studies.
    """

    adjusted: np.ndarray
    adjusted_srgb: np.ndarray
    chosen_axis: np.ndarray
    case2: np.ndarray
    bits: np.ndarray
    per_axis: dict[int, AxisAdjustment]


def optimize_tiles(
    tiles_rgb, semi_axes, axes: tuple[int, ...] = (2, 0), case2_placement: str = "mid"
) -> OptimizedTiles:
    """Adjust a tile stack along each candidate axis and keep the best.

    Parameters
    ----------
    tiles_rgb, semi_axes:
        As for :func:`repro.core.adjust.adjust_tiles`.
    axes:
        Candidate channels, in tie-break priority order.  The paper uses
        Blue and Red; the default lists Blue first so ties fall to Blue
        (its ellipsoid axis is typically the longest).  A single-element
        tuple degrades gracefully to fixed-axis operation (used by the
        axis ablation).
    """
    if not axes:
        raise ValueError("need at least one candidate axis")
    if len(set(axes)) != len(axes):
        raise ValueError(f"duplicate axes in {axes}")

    per_axis: dict[int, AxisAdjustment] = {}
    srgb_stack = []
    bits_stack = []
    for axis in axes:
        result = adjust_tiles(tiles_rgb, semi_axes, axis, case2_placement=case2_placement)
        per_axis[axis] = result
        srgb = encode_srgb8(result.adjusted)
        srgb_stack.append(srgb)
        bits_stack.append(tile_bd_bits(srgb))

    bits_matrix = np.stack(bits_stack, axis=0)  # (n_axes, n_tiles)
    # argmin returns the *first* minimum, so listing Blue first in
    # ``axes`` implements the tie-break.
    winner = bits_matrix.argmin(axis=0)  # (n_tiles,)

    # Gather the winning tiles by masked assignment.  Stacking every
    # candidate into an (n_axes, n_tiles, px, 3) block before indexing
    # would materialize n_axes full copies of the frame's tile stack
    # (twice: linear and sRGB) just to throw most of them away.
    adjusted = per_axis[axes[0]].adjusted.copy()
    adjusted_srgb = srgb_stack[0].copy()
    case2 = per_axis[axes[0]].case2.copy()
    for index in range(1, len(axes)):
        mask = winner == index
        if mask.any():
            adjusted[mask] = per_axis[axes[index]].adjusted[mask]
            adjusted_srgb[mask] = srgb_stack[index][mask]
            case2[mask] = per_axis[axes[index]].case2[mask]
    chosen_axis = np.asarray(axes, dtype=np.int64)[winner]

    return OptimizedTiles(
        adjusted=adjusted,
        adjusted_srgb=adjusted_srgb,
        chosen_axis=chosen_axis,
        case2=case2,
        bits=np.take_along_axis(bits_matrix, winner[None, :], axis=0)[0],
        per_axis=per_axis,
    )
