"""The paper's primary contribution: perceptual color adjustment.

Analytical per-tile adjustment (Fig. 6 two-case geometry), the R/B axis
optimizer, the frame pipeline in front of Base+Delta, and the iterative
reference solver used to validate the convex relaxation.
"""

from .adjust import CASE2_PLACEMENTS, AxisAdjustment, adjust_tiles, case2_plane
from .optimizer import OptimizedTiles, optimize_tiles, tile_bd_bits
from .pipeline import DEFAULT_FOVEAL_RADIUS_DEG, FrameResult, PerceptualEncoder
from .reference_solver import ReferenceSolution, solve_tile_reference, true_objective_bits

__all__ = [
    "CASE2_PLACEMENTS",
    "AxisAdjustment",
    "adjust_tiles",
    "case2_plane",
    "OptimizedTiles",
    "optimize_tiles",
    "tile_bd_bits",
    "DEFAULT_FOVEAL_RADIUS_DEG",
    "FrameResult",
    "PerceptualEncoder",
    "ReferenceSolution",
    "solve_tile_reference",
    "true_objective_bits",
]
