"""Uniform frame-size accounting across all baselines (paper Sec. 5.3).

Every baseline reduces to "how many bits does this frame cost":

* **NoCom** — raw sRGB, 24 bits/pixel;
* **BD** — Base+Delta on the unmodified frame;
* **PNG** — lossless filter+DEFLATE coding;
* **SCC** — constant index width from the set-cover table.

:func:`baseline_bits` dispatches by name so experiments can sweep the
whole roster with one loop.
"""

from __future__ import annotations

import numpy as np

from ..encoding.accounting import UNCOMPRESSED_BPP
from ..encoding.bd import bd_breakdown
from ..encoding.tiling import tile_frame
from .png_codec import png_compressed_bits
from .scc import DEFAULT_SCC_ECCENTRICITY, scc_bits_per_pixel

__all__ = ["BASELINE_NAMES", "baseline_bits", "nocom_bits", "bd_bits", "scc_bits"]

#: Baseline roster in the paper's plotting order.
BASELINE_NAMES = ("NoCom", "SCC", "BD", "PNG")


def _pixel_count(frame: np.ndarray) -> int:
    if frame.ndim != 3 or frame.shape[2] != 3:
        raise ValueError(f"frame must be (H, W, 3), got {frame.shape}")
    return frame.shape[0] * frame.shape[1]


def nocom_bits(frame_srgb8: np.ndarray) -> int:
    """Uncompressed framebuffer cost: 24 bits per pixel."""
    return int(UNCOMPRESSED_BPP) * _pixel_count(frame_srgb8)


def bd_bits(frame_srgb8: np.ndarray, tile_size: int = 4) -> int:
    """Base+Delta cost of the frame as-is."""
    tiles, grid = tile_frame(frame_srgb8, tile_size)
    return bd_breakdown(tiles, n_pixels=grid.height * grid.width).total_bits


def scc_bits(
    frame_srgb8: np.ndarray, eccentricity: float = DEFAULT_SCC_ECCENTRICITY
) -> int:
    """SCC cost: constant table-index width times the pixel count."""
    return scc_bits_per_pixel(eccentricity) * _pixel_count(frame_srgb8)


def baseline_bits(name: str, frame_srgb8: np.ndarray, tile_size: int = 4) -> int:
    """Dispatch a baseline by its Fig. 10 name."""
    frame = np.asarray(frame_srgb8)
    if frame.dtype != np.uint8:
        raise TypeError(f"baselines take uint8 sRGB frames, got dtype {frame.dtype}")
    if name == "NoCom":
        return nocom_bits(frame)
    if name == "BD":
        return bd_bits(frame, tile_size=tile_size)
    if name == "PNG":
        return png_compressed_bits(frame)
    if name == "SCC":
        return scc_bits(frame)
    raise ValueError(f"unknown baseline {name!r}; expected one of {BASELINE_NAMES}")
