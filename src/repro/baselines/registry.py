"""Uniform frame-size accounting across all baselines (paper Sec. 5.3).

Every baseline reduces to "how many bits does this frame cost":

* **NoCom** — raw sRGB, 24 bits/pixel;
* **BD** — Base+Delta on the unmodified frame;
* **PNG** — lossless filter+DEFLATE coding;
* **SCC** — constant index width from the set-cover table.

This module is now a thin back-compat shim over the unified codec
registry (:mod:`repro.codecs`): :func:`baseline_bits` resolves the
Fig. 10 name through :func:`repro.codecs.get_codec` and encodes a
shared :class:`~repro.codecs.FrameContext`.  Unlike the old dispatch,
per-codec keyword arguments are routed explicitly — ``tile_size`` is
forwarded to BD (the only baseline that tiles) and *rejected* for
NoCom/PNG/SCC, which used to silently ignore it.

The scalar helpers (:func:`nocom_bits`, :func:`bd_bits`,
:func:`scc_bits`) remain as primitive one-liners for direct use.
"""

from __future__ import annotations

import numpy as np

from ..codecs.context import FrameContext
from ..codecs.registry import get_codec, resolve_codec_name
from ..encoding.accounting import UNCOMPRESSED_BPP
from ..encoding.bd import bd_breakdown
from ..encoding.tiling import tile_frame
from .scc import DEFAULT_SCC_ECCENTRICITY, scc_bits_per_pixel

__all__ = ["BASELINE_NAMES", "baseline_bits", "nocom_bits", "bd_bits", "scc_bits"]

#: Baseline roster in the paper's plotting order.  Each entry resolves
#: to a registered codec (a test keeps this in sync with the registry).
BASELINE_NAMES = ("NoCom", "SCC", "BD", "PNG")


def _pixel_count(frame: np.ndarray) -> int:
    if frame.ndim != 3 or frame.shape[2] != 3:
        raise ValueError(f"frame must be (H, W, 3), got {frame.shape}")
    return frame.shape[0] * frame.shape[1]


def nocom_bits(frame_srgb8: np.ndarray) -> int:
    """Uncompressed framebuffer cost: 24 bits per pixel."""
    return int(UNCOMPRESSED_BPP) * _pixel_count(frame_srgb8)


def bd_bits(frame_srgb8: np.ndarray, tile_size: int = 4) -> int:
    """Base+Delta cost of the frame as-is."""
    tiles, grid = tile_frame(frame_srgb8, tile_size)
    return bd_breakdown(tiles, n_pixels=grid.height * grid.width).total_bits


def scc_bits(
    frame_srgb8: np.ndarray, eccentricity: float = DEFAULT_SCC_ECCENTRICITY
) -> int:
    """SCC cost: constant table-index width times the pixel count."""
    return scc_bits_per_pixel(eccentricity) * _pixel_count(frame_srgb8)


def baseline_bits(name: str, frame_srgb8: np.ndarray, tile_size: int | None = None) -> int:
    """Dispatch a baseline by its Fig. 10 name via the codec registry.

    ``tile_size`` is forwarded to the BD codec only; passing it for a
    baseline that does not tile (NoCom, PNG, SCC) raises ``TypeError``
    instead of being silently ignored, as the old dispatch did.
    """
    frame = np.asarray(frame_srgb8)
    if frame.dtype != np.uint8:
        raise TypeError(f"baselines take uint8 sRGB frames, got dtype {frame.dtype}")
    try:
        canonical = resolve_codec_name(name)
    except KeyError:
        canonical = None
    if canonical is None or name not in BASELINE_NAMES:
        raise ValueError(f"unknown baseline {name!r}; expected one of {BASELINE_NAMES}")
    kwargs = {}
    if canonical == "bd":
        kwargs["tile_size"] = 4 if tile_size is None else tile_size
    elif tile_size is not None:
        raise TypeError(
            f"baseline {name!r} does not tile the frame and takes no tile_size "
            f"(only BD does)"
        )
    ctx = FrameContext.from_srgb8(frame)
    return get_codec(canonical, **kwargs).encode(ctx).total_bits
