"""Set-Cover Coding (SCC) baseline (paper Sec. 5.3).

SCC exploits color discrimination differently from the paper's scheme:
find the smallest subset ``C`` of sRGB colors whose discrimination
regions jointly cover the whole color cube, then encode every pixel as
an index into ``C`` — ``ceil(log2 |C|)`` bits per pixel.  Set cover is
NP-complete, so the paper uses Chvatal's greedy heuristic; the
resulting tables (30 MB encode / 96 KB decode in the paper) are far too
large for a DRAM-path codec, which is the point of the baseline.

**Substitution note.**  Under our conservative parametric law the
RGB-space discrimination ellipsoids are extreme "pancakes": the
near-singular DKL matrix maps the two chromatic axes onto almost the
same RGB direction, leaving a residual direction where the ellipsoid is
only ~1e-5 wide.  Taken literally, *no* color cover smaller than the
universe exists (each ellipsoid's volume is below one 24-bit color
cell) — SCC would be impossible, when the paper's fitted model yields a
32k-color cover.  SCC here therefore uses an explicit **isotropic JND
proxy**: a sphere in *sRGB code space* whose radius is the geometric
mean of the three gamma-space channel half-widths, floored at one
8-bit code step (the display quantization floor).  Even with this
proxy our law's tight thresholds produce a table of ~2^23 colors
(~23 bits/pixel) instead of the paper's 32k (15 bits/pixel); the
deviation is recorded in EXPERIMENTS.md.  Every qualitative conclusion
survives and is in fact strengthened: SCC loses badly to BD, its
tables are far too large for a mobile SoC, and our scheme beats it by
an even wider margin.

Two implementations are provided:

* :func:`greedy_set_cover` — the literal Chvatal greedy algorithm over
  an explicit universe, exact but O(candidates x universe); used on
  reduced color sets (the full 2^24 is out of reach for pure Python).
* :func:`grid_cover` — a constructive cover marching the RGB cube in
  steps sized to the inscribed cube of the local JND sphere; provably
  covers the cube, runs in milliseconds, and approximates what greedy
  converges to at scale.  The experiments use it to size the full-cube
  table.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..color.srgb import linear_to_srgb, srgb_to_linear
from ..perception.geometry import channel_halfwidth
from ..perception.model import DiscriminationModel, default_model

__all__ = [
    "SCCTable",
    "jnd_radius",
    "greedy_set_cover",
    "grid_cover",
    "scc_bits_per_pixel",
    "DEFAULT_SCC_ECCENTRICITY",
]

#: Default eccentricity at which SCC builds its table.  SCC is a single
#: global table, so it must pick one operating point; we use the far
#: mid-periphery (the largest ellipsoids a wide-FoV display commonly
#: shows) to be maximally generous to the baseline.
DEFAULT_SCC_ECCENTRICITY = 40.0

#: Radius floor: one 8-bit sRGB code step (the display cannot express
#: finer differences).
RADIUS_FLOOR = 1.0 / 255.0


def jnd_radius(
    srgb_colors,
    eccentricity: float = DEFAULT_SCC_ECCENTRICITY,
    model: DiscriminationModel | None = None,
) -> np.ndarray:
    """Isotropic JND proxy radius per color, in normalized sRGB units.

    SCC indexes *sRGB* codes (the paper maps each 24-bit sRGB color),
    so the proxy lives in gamma space: each linear-RGB channel
    half-width of the discrimination ellipsoid is pushed through the
    local slope of the sRGB transfer, and the radius is the geometric
    mean of the three, floored at one code step.  See the module
    docstring for why SCC needs this isotropization.
    """
    model = model if model is not None else default_model()
    srgb = np.asarray(srgb_colors, dtype=np.float64)
    if srgb.shape[-1] != 3:
        raise ValueError(f"colors must have trailing axis 3, got {srgb.shape}")
    linear = srgb_to_linear(srgb)
    axes = model.semi_axes(linear, np.full(srgb.shape[:-1], float(eccentricity)))
    halfwidths = np.stack(
        [channel_halfwidth(axes, channel) for channel in range(3)], axis=-1
    )
    # Gamma-space image of the half-width at each channel's own level.
    srgb_halfwidths = linear_to_srgb(np.clip(linear + halfwidths, 0, 1)) - srgb
    srgb_halfwidths = np.maximum(srgb_halfwidths, 1e-6)
    return np.maximum(
        np.exp(np.log(srgb_halfwidths).mean(axis=-1)), RADIUS_FLOOR
    )


@dataclass(frozen=True)
class SCCTable:
    """A color cover: representative colors plus derived costs.

    ``representatives`` holds normalized sRGB colors; a count-only
    cover (see :func:`grid_cover`) stores an empty array and records
    ``n_representatives`` instead.
    """

    representatives: np.ndarray  # (n, 3) normalized sRGB
    universe_size: int
    method: str
    n_representatives: int | None = None

    @property
    def size(self) -> int:
        if self.n_representatives is not None:
            return self.n_representatives
        return self.representatives.shape[0]

    @property
    def bits_per_pixel(self) -> int:
        """Index width: ``ceil(log2 |C|)`` bits for every pixel."""
        if self.size < 1:
            raise ValueError("empty cover has no code")
        return max(1, int(np.ceil(np.log2(self.size))))

    @property
    def encode_table_bytes(self) -> int:
        """Size of the color -> index lookup over the universe."""
        index_bytes = max(1, -(-self.bits_per_pixel // 8))
        return self.universe_size * index_bytes

    @property
    def decode_table_bytes(self) -> int:
        """Size of the index -> 24-bit color table."""
        return self.size * 3


def greedy_set_cover(
    universe: np.ndarray,
    candidates: np.ndarray,
    model: DiscriminationModel | None = None,
    eccentricity: float = DEFAULT_SCC_ECCENTRICITY,
) -> SCCTable:
    """Chvatal's greedy heuristic on explicit point sets.

    ``universe`` and ``candidates`` are ``(n, 3)`` arrays of normalized
    sRGB colors.  Each candidate's set is the universe points within
    its JND-proxy radius (in sRGB space).  Iteratively picks the candidate covering the most
    uncovered points until everything is covered.

    Every universe point must be coverable (each point always covers
    itself, so passing ``candidates=universe`` guarantees termination).
    """
    model = model if model is not None else default_model()
    uni = np.asarray(universe, dtype=np.float64)
    cand = np.asarray(candidates, dtype=np.float64)
    if uni.ndim != 2 or uni.shape[1] != 3 or cand.ndim != 2 or cand.shape[1] != 3:
        raise ValueError("universe and candidates must be (n, 3) arrays")

    radii = jnd_radius(cand, eccentricity, model)
    # membership[i, j]: candidate i covers universe point j.
    distances = np.linalg.norm(uni[None, :, :] - cand[:, None, :], axis=-1)
    membership = distances <= radii[:, None]
    uncovered = np.ones(uni.shape[0], dtype=bool)
    chosen: list[int] = []
    while uncovered.any():
        gains = membership[:, uncovered].sum(axis=1)
        best = int(gains.argmax())
        if gains[best] == 0:
            raise ValueError(
                "universe contains points no candidate covers; include the "
                "universe itself among the candidates"
            )
        chosen.append(best)
        uncovered &= ~membership[best]
    return SCCTable(
        representatives=cand[chosen], universe_size=uni.shape[0], method="greedy"
    )


def _march(step_samples: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Walk [0, 1] taking locally-sampled steps.

    ``step_samples`` holds the step size at uniformly spaced positions.
    To stay conservative (never over-step a region where the true step
    is smaller) each move uses the minimum of the two samples bracketing
    the current position.  Returns ``(cell_starts, cell_widths)``.
    """
    n = step_samples.shape[0]
    padded = np.minimum(step_samples, np.roll(step_samples, -1))
    padded[-1] = step_samples[-1]
    starts, widths = [], []
    position = 0.0
    while position < 1.0:
        index = min(int(position * (n - 1)), n - 1)
        starts.append(position)
        widths.append(padded[index])
        position += padded[index]
    return np.asarray(starts), np.asarray(widths)


def grid_cover(
    model: DiscriminationModel | None = None,
    eccentricity: float = DEFAULT_SCC_ECCENTRICITY,
    universe_size: int = 1 << 24,
    samples_per_axis: int = 64,
    count_only: bool = False,
) -> SCCTable:
    """Constructive full-cube cover via locally-sized inscribed cubes.

    Marches the sRGB code cube axis by axis taking steps equal to the
    side of the cube inscribed in the local JND sphere (``2 r /
    sqrt(3)``), which guarantees every color of a cell lies within its
    representative's radius.  Representatives are normalized sRGB
    colors.  Step fields are sampled on a uniform grid
    per axis (batched through the model); the marches use the
    conservative bracketing minimum, so the construction remains a
    valid cover with three batched model evaluations total.
    """
    model = model if model is not None else default_model()
    positions = np.linspace(0.0, 1.0, samples_per_axis)
    # Safety margin absorbing the radius variation within a cell (the
    # probes sample the radius at cell corners, not its cell-wide min).
    safety = 0.9

    def steps_at(colors: np.ndarray) -> np.ndarray:
        return safety * 2.0 * jnd_radius(colors, eccentricity, model) / np.sqrt(3.0)

    # The sRGB-space radius is not monotone in the non-marching
    # channels (linear thresholds grow with luminance while the gamma
    # slope shrinks), so each march probes a small cross-section grid
    # in the free channels and keeps the minimum step.
    probe_levels = (0.0, 0.5, 1.0)

    # 1. Blue slabs (free channels: red, green).  All coordinates here
    # are normalized sRGB codes.
    blue_fields = []
    for red_level in probe_levels:
        for green_level in probe_levels:
            probe = np.column_stack(
                [
                    np.full(samples_per_axis, red_level),
                    np.full(samples_per_axis, green_level),
                    positions,
                ]
            )
            blue_fields.append(steps_at(probe))
    blue_starts, blue_widths = _march(np.min(blue_fields, axis=0))

    # 2. Red columns within every blue slab (free channel: green).
    red_fields = []
    for green_level in probe_levels:
        red_probe = np.empty((blue_starts.shape[0], samples_per_axis, 3))
        red_probe[..., 0] = positions
        red_probe[..., 1] = green_level
        red_probe[..., 2] = blue_starts[:, None]
        red_fields.append(steps_at(red_probe))
    red_steps = np.min(red_fields, axis=0)
    cells = []
    for b_index, blue in enumerate(blue_starts):
        red_starts, red_widths = _march(red_steps[b_index])
        for red, red_width in zip(red_starts, red_widths):
            cells.append((red, red_width, blue, blue_widths[b_index]))
    cell_array = np.asarray(cells)

    # 3. Green runs within every (red, blue) cell (batched across cells).
    green_probe = np.empty((cell_array.shape[0], samples_per_axis, 3))
    green_probe[..., 0] = cell_array[:, 0:1]
    green_probe[..., 1] = positions
    green_probe[..., 2] = cell_array[:, 2:3]
    green_steps = steps_at(green_probe)

    count = 0
    representatives: list[list[float]] = []
    for index, (red, red_width, blue, blue_width) in enumerate(cell_array):
        green_starts, green_widths = _march(green_steps[index])
        count += green_starts.shape[0]
        if not count_only:
            for green, green_width in zip(green_starts, green_widths):
                representatives.append(
                    [
                        min(red + red_width / 2, 1.0),
                        min(green + green_width / 2, 1.0),
                        min(blue + blue_width / 2, 1.0),
                    ]
                )
    return SCCTable(
        representatives=np.asarray(representatives, dtype=np.float64).reshape(-1, 3),
        universe_size=universe_size,
        method="grid",
        n_representatives=count if count_only else None,
    )


_GRID_COVER_CACHE: dict[tuple[float, int], SCCTable] = {}


def scc_bits_per_pixel(
    eccentricity: float = DEFAULT_SCC_ECCENTRICITY,
    model: DiscriminationModel | None = None,
) -> int:
    """Bits per pixel of the full-cube SCC table (cached).

    This is the constant per-pixel cost the SCC series of Fig. 10 pays
    regardless of content — SCC has no spatial redundancy stage.
    """
    key = (float(eccentricity), id(model) if model is not None else 0)
    if key not in _GRID_COVER_CACHE:
        _GRID_COVER_CACHE[key] = grid_cover(
            model=model, eccentricity=eccentricity, count_only=True
        )
    return _GRID_COVER_CACHE[key].bits_per_pixel
