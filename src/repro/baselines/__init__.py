"""Comparison baselines: NoCom, BD, PNG-class lossless, SCC, and the
foveated-resolution comparator of the paper's Sec. 7."""

from .foveated import FoveationConfig, foveate_frame, foveated_bd_bits

from .png_codec import (
    FILTER_NAMES,
    PNGEncoded,
    png_compressed_bits,
    png_decode,
    png_encode,
    png_filter_rows,
    png_unfilter_rows,
)
from .registry import BASELINE_NAMES, baseline_bits, bd_bits, nocom_bits, scc_bits
from .scc import (
    DEFAULT_SCC_ECCENTRICITY,
    SCCTable,
    greedy_set_cover,
    grid_cover,
    scc_bits_per_pixel,
)

__all__ = [
    "FoveationConfig",
    "foveate_frame",
    "foveated_bd_bits",
    "FILTER_NAMES",
    "PNGEncoded",
    "png_compressed_bits",
    "png_decode",
    "png_encode",
    "png_filter_rows",
    "png_unfilter_rows",
    "BASELINE_NAMES",
    "baseline_bits",
    "bd_bits",
    "nocom_bits",
    "scc_bits",
    "DEFAULT_SCC_ECCENTRICITY",
    "SCCTable",
    "greedy_set_cover",
    "grid_cover",
    "scc_bits_per_pixel",
]
