"""Foveated resolution reduction — the Sec. 7 comparator.

The most-studied perceptual optimization in VR is foveated rendering:
reduce *spatial resolution* in the periphery.  The paper positions its
color adjustment as orthogonal ("we focus on adjusting colors rather
than the spatial frequency") and compatible with existing framebuffer
compression.  This module implements a framebuffer-side analogue of
foveation so the two ideas can be compared and *composed*:

* the frame is split into eccentricity rings;
* rings beyond configurable thresholds are box-downsampled 2x or 4x
  (a display-side reconstruction upsamples them back);
* the downsampled rings cost proportionally fewer bits through BD.

Unlike the paper's scheme, foveation changes the decode path (it needs
an upsampler) and visibly blurs the periphery; the comparison bench
shows it buys traffic at a *spatial* quality cost where ours buys a
(smaller) amount at an invisible *color* cost — and that the two
compose, since color adjustment applies to whatever pixels remain.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..color.srgb import encode_srgb8
from ..encoding.bd import bd_breakdown
from ..encoding.tiling import tile_frame

__all__ = ["FoveationConfig", "foveate_frame", "foveated_bd_bits"]


@dataclass(frozen=True)
class FoveationConfig:
    """Ring thresholds of the peripheral downsampler.

    Pixels below ``half_rate_deg`` keep full resolution; between the
    two thresholds they are 2x downsampled; beyond ``quarter_rate_deg``
    4x.  Defaults follow common foveated-rendering practice.
    """

    half_rate_deg: float = 20.0
    quarter_rate_deg: float = 40.0

    def __post_init__(self):
        if self.half_rate_deg < 0 or self.quarter_rate_deg < 0:
            raise ValueError("ring thresholds must be non-negative")
        if self.quarter_rate_deg < self.half_rate_deg:
            raise ValueError(
                "quarter_rate_deg must be >= half_rate_deg "
                f"({self.quarter_rate_deg} < {self.half_rate_deg})"
            )


def _block_average(frame: np.ndarray, factor: int) -> np.ndarray:
    """Box-downsample then nearest-upsample by ``factor`` (pad-safe)."""
    height, width = frame.shape[:2]
    pad_h = (-height) % factor
    pad_w = (-width) % factor
    padded = np.pad(frame, [(0, pad_h), (0, pad_w), (0, 0)], mode="edge")
    ph, pw = padded.shape[:2]
    blocks = padded.reshape(ph // factor, factor, pw // factor, factor, 3)
    means = blocks.mean(axis=(1, 3))
    up = np.repeat(np.repeat(means, factor, axis=0), factor, axis=1)
    return up[:height, :width]


def foveate_frame(
    frame_linear: np.ndarray,
    eccentricity_deg: np.ndarray,
    config: FoveationConfig | None = None,
) -> np.ndarray:
    """Apply ring-wise peripheral resolution reduction.

    Returns the *reconstructed* frame (downsample + upsample), i.e.
    what the display would show; the bit accounting in
    :func:`foveated_bd_bits` charges only the reduced sample counts.
    """
    config = config or FoveationConfig()
    frame = np.asarray(frame_linear, dtype=np.float64)
    ecc = np.asarray(eccentricity_deg, dtype=np.float64)
    if frame.ndim != 3 or frame.shape[2] != 3:
        raise ValueError(f"frame must be (H, W, 3), got {frame.shape}")
    if ecc.shape != frame.shape[:2]:
        raise ValueError(
            f"eccentricity map {ecc.shape} does not match frame {frame.shape[:2]}"
        )
    half = _block_average(frame, 2)
    quarter = _block_average(frame, 4)
    out = frame.copy()
    ring2 = (ecc >= config.half_rate_deg) & (ecc < config.quarter_rate_deg)
    ring4 = ecc >= config.quarter_rate_deg
    out[ring2] = half[ring2]
    out[ring4] = quarter[ring4]
    return out


def _downsample(frame: np.ndarray, factor: int) -> np.ndarray:
    """Box-downsample to the actual low-resolution layer (pad-safe)."""
    height, width = frame.shape[:2]
    pad_h = (-height) % factor
    pad_w = (-width) % factor
    spec = [(0, pad_h), (0, pad_w)] + [(0, 0)] * (frame.ndim - 2)
    padded = np.pad(frame, spec, mode="edge")
    ph, pw = padded.shape[:2]
    if frame.ndim == 3:
        blocks = padded.reshape(ph // factor, factor, pw // factor, factor, 3)
        return blocks.mean(axis=(1, 3))
    blocks = padded.reshape(ph // factor, factor, pw // factor, factor)
    return blocks.mean(axis=(1, 3))


def foveated_bd_bits(
    frame_linear: np.ndarray,
    eccentricity_deg: np.ndarray,
    config: FoveationConfig | None = None,
    tile_size: int = 4,
    encoder=None,
) -> int:
    """BD cost of a foveated multi-resolution frame layout.

    Models the transport a foveated framebuffer actually uses: three
    resolution layers (full, 1/2, 1/4), of which each eccentricity ring
    ships only its own layer's samples.  The cost of a ring is the BD
    bits-per-pixel of its *downsampled layer image* times the ring's
    sample count (``ring_pixels / factor^2``) — measuring the layer
    image directly accounts for how well low-resolution content
    BD-compresses without double-charging the blur.

    Passing a :class:`~repro.core.pipeline.PerceptualEncoder` as
    ``encoder`` composes the paper's color adjustment with foveation:
    each layer is perceptually adjusted (against the correspondingly
    downsampled eccentricity map) before BD.
    """
    config = config or FoveationConfig()
    frame = np.asarray(frame_linear, dtype=np.float64)
    ecc = np.asarray(eccentricity_deg, dtype=np.float64)
    if frame.ndim != 3 or frame.shape[2] != 3:
        raise ValueError(f"frame must be (H, W, 3), got {frame.shape}")
    if ecc.shape != frame.shape[:2]:
        raise ValueError(
            f"eccentricity map {ecc.shape} does not match frame {frame.shape[:2]}"
        )

    ring2 = (ecc >= config.half_rate_deg) & (ecc < config.quarter_rate_deg)
    ring4 = ecc >= config.quarter_rate_deg
    ring_pixels = {
        1: int(frame.shape[0] * frame.shape[1] - ring2.sum() - ring4.sum()),
        2: int(ring2.sum()),
        4: int(ring4.sum()),
    }

    def layer_bpp(factor: int) -> float:
        layer = frame if factor == 1 else np.clip(_downsample(frame, factor), 0, 1)
        layer_ecc = ecc if factor == 1 else _downsample(ecc, factor)
        if encoder is not None:
            return encoder.encode_frame(layer, layer_ecc).breakdown.bits_per_pixel
        tiles, grid = tile_frame(encode_srgb8(layer), tile_size)
        return bd_breakdown(tiles, n_pixels=grid.height * grid.width).bits_per_pixel

    total_bits = 0.0
    for factor, pixels in ring_pixels.items():
        if pixels == 0:
            continue
        total_bits += layer_bpp(factor) * pixels / (factor * factor)
    return int(round(total_bits))
