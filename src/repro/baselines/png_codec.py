"""PNG-class lossless image codec (the paper's PNG baseline, Sec. 5.3).

A faithful software implementation of PNG's compression pipeline —
per-row adaptive filtering (None/Sub/Up/Average/Paeth, chosen by the
minimum-sum-of-absolute-differences heuristic the PNG spec recommends)
followed by DEFLATE — without the container chunks, which contribute
nothing to the bandwidth comparison.  The paper uses PNG as the
"offline lossless" reference point: high compression, far too slow for
real-time DRAM traffic (Sec. 5.3 cites a 20 FPS hardware IP).

Round-trip is exact; :func:`png_compressed_bits` is the accounting
entry the experiments use.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

__all__ = [
    "FILTER_NAMES",
    "png_filter_rows",
    "png_unfilter_rows",
    "png_encode",
    "png_decode",
    "png_compressed_bits",
    "PNGEncoded",
]

#: PNG filter type names, indexed by their on-wire code.
FILTER_NAMES = ("None", "Sub", "Up", "Average", "Paeth")


def _paeth_predictor(left: np.ndarray, up: np.ndarray, upleft: np.ndarray) -> np.ndarray:
    """The Paeth predictor of the PNG spec, vectorized (int16 inputs)."""
    p = left + up - upleft
    pa = np.abs(p - left)
    pb = np.abs(p - up)
    pc = np.abs(p - upleft)
    return np.where((pa <= pb) & (pa <= pc), left, np.where(pb <= pc, up, upleft))


def _shift_left(row: np.ndarray, channels: int) -> np.ndarray:
    """Row shifted right by one pixel (PNG's 'left' neighbor), zero fill."""
    out = np.zeros_like(row)
    out[channels:] = row[:-channels]
    return out


def png_filter_rows(frame: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Apply per-row adaptive PNG filtering.

    Returns ``(filter_ids, filtered)`` where ``filter_ids`` is the
    chosen filter per row and ``filtered`` the filtered bytes with the
    same shape as the flattened-row input.

    All five candidate filters read *unfiltered* neighbor rows (the
    PNG spec filters against raw scanlines), so the whole frame is
    filtered in one batch: stack the five candidate encodings for
    every row, one vectorized cost reduction, one ``argmin`` over the
    stack — no per-row Python.
    """
    if frame.ndim != 3 or frame.dtype != np.uint8:
        raise ValueError("png_filter_rows expects a (H, W, C) uint8 frame")
    height, width, channels = frame.shape
    rows = frame.reshape(height, width * channels).astype(np.int16)
    previous = np.zeros_like(rows)
    previous[1:] = rows[:-1]
    left = np.zeros_like(rows)
    left[:, channels:] = rows[:, :-channels]
    upleft = np.zeros_like(rows)
    upleft[:, channels:] = previous[:, :-channels]

    candidates = np.stack(
        (
            rows,
            rows - left,
            rows - previous,
            rows - (left + previous) // 2,
            rows - _paeth_predictor(left, previous, upleft),
        )
    )  # (5, height, width * channels)
    encoded = candidates & 0xFF
    # Spec heuristic: minimize the sum of absolute signed residuals.
    # For a residual byte e in [0, 256), |signed(e)| == min(e, 256 - e).
    costs = np.minimum(encoded, 256 - encoded).sum(axis=2)  # (5, height)
    filter_ids = np.argmin(costs, axis=0).astype(np.uint8)
    filtered = np.take_along_axis(
        encoded, filter_ids[None, :, None].astype(np.intp), axis=0
    )[0].astype(np.uint8)
    return filter_ids, filtered


def _unfilter_row_sequential(
    data: np.ndarray, previous: np.ndarray, mode: int, channels: int
) -> np.ndarray:
    """Reconstruct one Average/Paeth row, scanning left to right.

    These two filters predict from the *reconstructed* left neighbor,
    so the scan over a row is genuinely sequential.  Plain-int
    arithmetic over Python lists beats per-pixel NumPy slicing here —
    the operands are single bytes, far below vectorization's break-even.
    """
    d = data.tolist()
    prev = previous.tolist()
    row = [0] * len(d)
    if mode == 3:
        for x in range(len(d)):
            left = row[x - channels] if x >= channels else 0
            row[x] = (d[x] + (left + prev[x]) // 2) & 0xFF
    else:
        for x in range(len(d)):
            left = row[x - channels] if x >= channels else 0
            up = prev[x]
            upleft = prev[x - channels] if x >= channels else 0
            p = left + up - upleft
            pa = abs(p - left)
            pb = abs(p - up)
            pc = abs(p - upleft)
            if pa <= pb and pa <= pc:
                pred = left
            elif pb <= pc:
                pred = up
            else:
                pred = upleft
            row[x] = (d[x] + pred) & 0xFF
    return np.array(row, dtype=np.uint8)


def png_unfilter_rows(
    filter_ids: np.ndarray, filtered: np.ndarray, shape: tuple[int, int, int]
) -> np.ndarray:
    """Invert :func:`png_filter_rows`, reconstructing the exact frame.

    None rows are batch-copied and Sub rows batch-reconstructed (Sub
    only needs the decoded left neighbor, a wrapping prefix sum along
    the row, independent of other rows).  Runs of consecutive Up rows
    reconstruct in one wrapping ``np.add.accumulate`` down the run.
    Only Average and Paeth rows — whose predictors need the decoded
    left neighbor *and* the row above — fall back to the sequential
    per-pixel scan.
    """
    height, width, channels = shape
    if filtered.shape != (height, width * channels):
        raise ValueError(
            f"filtered rows {filtered.shape} do not match shape {shape}"
        )
    ids = np.asarray(filter_ids, dtype=np.int64)
    bad = np.nonzero(ids > 4)[0]
    if bad.size:
        raise ValueError(f"unknown PNG filter id {int(ids[bad[0]])}")
    data8 = np.asarray(filtered, dtype=np.uint8)
    rows = np.empty((height, width * channels), dtype=np.uint8)

    none_rows = np.nonzero(ids == 0)[0]
    rows[none_rows] = data8[none_rows]
    sub_rows = np.nonzero(ids == 1)[0]
    if sub_rows.size:
        # recon[x] = (data[x] + recon[x - channels]) mod 256: a wrapping
        # per-channel prefix sum along the row.
        sub = data8[sub_rows].reshape(sub_rows.size, width, channels)
        rows[sub_rows] = np.add.accumulate(sub, axis=1).reshape(sub_rows.size, -1)

    previous = np.zeros(width * channels, dtype=np.uint8)
    y = 0
    while y < height:
        mode = int(ids[y])
        if mode in (0, 1):
            y += 1
        elif mode == 2:
            run_end = y
            while run_end + 1 < height and ids[run_end + 1] == 2:
                run_end += 1
            # Each Up row adds its residuals to the row above, so a run
            # reconstructs as one wrapping cumulative sum seeded with
            # the last reconstructed row.
            block = np.concatenate([previous[None, :], data8[y : run_end + 1]])
            rows[y : run_end + 1] = np.add.accumulate(block, axis=0)[1:]
            y = run_end + 1
        else:
            rows[y] = _unfilter_row_sequential(data8[y], previous, mode, channels)
            y += 1
        previous = rows[y - 1]
    return rows.reshape(shape)


@dataclass(frozen=True)
class PNGEncoded:
    """A PNG-compressed frame: the DEFLATE payload plus geometry."""

    payload: bytes
    shape: tuple[int, int, int]

    @property
    def total_bits(self) -> int:
        """Compressed size in bits, including the per-row filter bytes
        (stored inside the payload, as in real PNG) and a small header."""
        return len(self.payload) * 8 + 40


def png_encode(frame: np.ndarray, level: int = 6) -> PNGEncoded:
    """Compress an ``(H, W, C)`` uint8 frame PNG-style."""
    filter_ids, filtered = png_filter_rows(frame)
    height, row_bytes = filtered.shape
    stream = np.empty((height, 1 + row_bytes), dtype=np.uint8)
    stream[:, 0] = filter_ids
    stream[:, 1:] = filtered
    return PNGEncoded(payload=zlib.compress(stream.tobytes(), level), shape=frame.shape)


def png_decode(encoded: PNGEncoded) -> np.ndarray:
    """Exactly reconstruct the frame from :func:`png_encode` output."""
    height, width, channels = encoded.shape
    stream = zlib.decompress(encoded.payload)
    row_bytes = width * channels
    expected = height * (1 + row_bytes)
    if len(stream) != expected:
        raise ValueError(f"corrupt PNG payload: {len(stream)} bytes, expected {expected}")
    scanlines = np.frombuffer(stream, np.uint8).reshape(height, 1 + row_bytes)
    return png_unfilter_rows(scanlines[:, 0], scanlines[:, 1:], encoded.shape)


def png_compressed_bits(frame: np.ndarray, level: int = 6) -> int:
    """Compressed size in bits — the PNG series of paper Fig. 10."""
    return png_encode(frame, level=level).total_bits
