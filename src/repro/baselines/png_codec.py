"""PNG-class lossless image codec (the paper's PNG baseline, Sec. 5.3).

A faithful software implementation of PNG's compression pipeline —
per-row adaptive filtering (None/Sub/Up/Average/Paeth, chosen by the
minimum-sum-of-absolute-differences heuristic the PNG spec recommends)
followed by DEFLATE — without the container chunks, which contribute
nothing to the bandwidth comparison.  The paper uses PNG as the
"offline lossless" reference point: high compression, far too slow for
real-time DRAM traffic (Sec. 5.3 cites a 20 FPS hardware IP).

Round-trip is exact; :func:`png_compressed_bits` is the accounting
entry the experiments use.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

__all__ = [
    "FILTER_NAMES",
    "png_filter_rows",
    "png_unfilter_rows",
    "png_encode",
    "png_decode",
    "png_compressed_bits",
    "PNGEncoded",
]

#: PNG filter type names, indexed by their on-wire code.
FILTER_NAMES = ("None", "Sub", "Up", "Average", "Paeth")


def _paeth_predictor(left: np.ndarray, up: np.ndarray, upleft: np.ndarray) -> np.ndarray:
    """The Paeth predictor of the PNG spec, vectorized (int16 inputs)."""
    p = left + up - upleft
    pa = np.abs(p - left)
    pb = np.abs(p - up)
    pc = np.abs(p - upleft)
    return np.where((pa <= pb) & (pa <= pc), left, np.where(pb <= pc, up, upleft))


def _shift_left(row: np.ndarray, channels: int) -> np.ndarray:
    """Row shifted right by one pixel (PNG's 'left' neighbor), zero fill."""
    out = np.zeros_like(row)
    out[channels:] = row[:-channels]
    return out


def png_filter_rows(frame: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Apply per-row adaptive PNG filtering.

    Returns ``(filter_ids, filtered)`` where ``filter_ids`` is the
    chosen filter per row and ``filtered`` the filtered bytes with the
    same shape as the flattened-row input.
    """
    if frame.ndim != 3 or frame.dtype != np.uint8:
        raise ValueError("png_filter_rows expects a (H, W, C) uint8 frame")
    height, width, channels = frame.shape
    rows = frame.reshape(height, width * channels).astype(np.int16)
    zero_row = np.zeros(width * channels, dtype=np.int16)

    filter_ids = np.empty(height, dtype=np.uint8)
    filtered = np.empty_like(rows, dtype=np.uint8)
    previous = zero_row
    for y in range(height):
        row = rows[y]
        left = _shift_left(row, channels)
        upleft = _shift_left(previous, channels)
        candidates = (
            row,
            row - left,
            row - previous,
            row - (left + previous) // 2,
            row - _paeth_predictor(left, previous, upleft),
        )
        encoded = [np.asarray(c, dtype=np.int16) & 0xFF for c in candidates]
        # Spec heuristic: minimize the sum of absolute signed residuals.
        costs = [
            int(np.abs(np.where(e > 127, e - 256, e)).sum()) for e in encoded
        ]
        best = int(np.argmin(costs))
        filter_ids[y] = best
        filtered[y] = encoded[best].astype(np.uint8)
        previous = row
    return filter_ids, filtered


def png_unfilter_rows(
    filter_ids: np.ndarray, filtered: np.ndarray, shape: tuple[int, int, int]
) -> np.ndarray:
    """Invert :func:`png_filter_rows`, reconstructing the exact frame."""
    height, width, channels = shape
    if filtered.shape != (height, width * channels):
        raise ValueError(
            f"filtered rows {filtered.shape} do not match shape {shape}"
        )
    rows = np.empty((height, width * channels), dtype=np.int16)
    previous = np.zeros(width * channels, dtype=np.int16)
    for y in range(height):
        data = filtered[y].astype(np.int16)
        mode = int(filter_ids[y])
        if mode == 0:
            row = data
        elif mode == 2:
            row = (data + previous) & 0xFF
        else:
            # Sub, Average and Paeth need the already-reconstructed left
            # neighbor, so scan pixel blocks sequentially.
            row = np.zeros_like(data)
            upleft_row = _shift_left(previous, channels)
            for x in range(0, width * channels, channels):
                left = row[x - channels : x] if x else np.zeros(channels, np.int16)
                if mode == 1:
                    row[x : x + channels] = (data[x : x + channels] + left) & 0xFF
                elif mode == 3:
                    avg = (left + previous[x : x + channels]) // 2
                    row[x : x + channels] = (data[x : x + channels] + avg) & 0xFF
                elif mode == 4:
                    pred = _paeth_predictor(
                        left, previous[x : x + channels], upleft_row[x : x + channels]
                    )
                    row[x : x + channels] = (data[x : x + channels] + pred) & 0xFF
                else:
                    raise ValueError(f"unknown PNG filter id {mode}")
        rows[y] = row
        previous = row
    return rows.astype(np.uint8).reshape(shape)


@dataclass(frozen=True)
class PNGEncoded:
    """A PNG-compressed frame: the DEFLATE payload plus geometry."""

    payload: bytes
    shape: tuple[int, int, int]

    @property
    def total_bits(self) -> int:
        """Compressed size in bits, including the per-row filter bytes
        (stored inside the payload, as in real PNG) and a small header."""
        return len(self.payload) * 8 + 40


def png_encode(frame: np.ndarray, level: int = 6) -> PNGEncoded:
    """Compress an ``(H, W, C)`` uint8 frame PNG-style."""
    filter_ids, filtered = png_filter_rows(frame)
    height = frame.shape[0]
    stream = bytearray()
    for y in range(height):
        stream.append(int(filter_ids[y]))
        stream.extend(filtered[y].tobytes())
    return PNGEncoded(payload=zlib.compress(bytes(stream), level), shape=frame.shape)


def png_decode(encoded: PNGEncoded) -> np.ndarray:
    """Exactly reconstruct the frame from :func:`png_encode` output."""
    height, width, channels = encoded.shape
    stream = zlib.decompress(encoded.payload)
    row_bytes = width * channels
    expected = height * (1 + row_bytes)
    if len(stream) != expected:
        raise ValueError(f"corrupt PNG payload: {len(stream)} bytes, expected {expected}")
    filter_ids = np.empty(height, dtype=np.uint8)
    filtered = np.empty((height, row_bytes), dtype=np.uint8)
    for y in range(height):
        offset = y * (1 + row_bytes)
        filter_ids[y] = stream[offset]
        filtered[y] = np.frombuffer(stream, np.uint8, row_bytes, offset + 1)
    return png_unfilter_rows(filter_ids, filtered, encoded.shape)


def png_compressed_bits(frame: np.ndarray, level: int = 6) -> int:
    """Compressed size in bits — the PNG series of paper Fig. 10."""
    return png_encode(frame, level=level).total_bits
