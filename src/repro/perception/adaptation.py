"""Dark-adaptation extension of the discrimination model (paper Sec. 7).

The paper's related-work section observes that "dark adaptation will
likely weaken the color discrimination even more, potentially further
improving the compression rate — an interesting future direction".
This module implements that direction as a model wrapper so the gain
can be measured.

Mechanism: as the visual system dark-adapts, rod vision takes over and
chromatic discrimination degrades, most strongly for dim stimuli (rods
saturate on bright content, leaving cone vision in charge there).  We
model an adaptation state in ``[0, 1]`` (0 = fully light-adapted, the
base model; 1 = fully dark-adapted) that inflates the base model's
thresholds by a factor growing with both the adaptation state and the
stimulus dimness:

    scale(L) = 1 + gain * state * (1 - L)^2

with ``L`` the pixel's relative luminance.  The quadratic keeps bright
pixels essentially untouched, matching the physiology (cones dominate
above ~3 cd/m^2 regardless of adaptation).
"""

from __future__ import annotations

import numpy as np

from ..color.utils import relative_luminance
from .model import DiscriminationModel

__all__ = ["DarkAdaptedModel"]


class DarkAdaptedModel:
    """Wrap a discrimination model with a dark-adaptation state.

    Parameters
    ----------
    base:
        The light-adapted model to inflate.
    adaptation:
        Adaptation state in ``[0, 1]``; 0 reproduces ``base`` exactly.
    gain:
        Maximum threshold inflation for a fully dark-adapted observer
        viewing a black stimulus.  The default doubles thresholds at
        that extreme — deliberately moderate, since quantitative
        dark-adaptation discrimination data is exactly what the paper
        says the community still needs.
    """

    def __init__(self, base: DiscriminationModel, adaptation: float, gain: float = 1.0):
        if not 0.0 <= adaptation <= 1.0:
            raise ValueError(f"adaptation must be in [0, 1], got {adaptation}")
        if gain < 0:
            raise ValueError(f"gain must be non-negative, got {gain}")
        self.base = base
        self.adaptation = float(adaptation)
        self.gain = float(gain)

    def semi_axes(self, rgb, eccentricity_deg) -> np.ndarray:
        axes = self.base.semi_axes(rgb, eccentricity_deg)
        if self.adaptation == 0.0 or self.gain == 0.0:
            return axes
        dimness = 1.0 - np.clip(relative_luminance(np.asarray(rgb, dtype=np.float64)), 0.0, 1.0)
        scale = 1.0 + self.gain * self.adaptation * np.square(dimness)
        return axes * scale[..., None]
