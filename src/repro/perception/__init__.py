"""Human color-discrimination model (paper Sec. 2.1, Eq. 3-4, 9-13).

Provides the eccentricity-dependent discrimination-ellipsoid function
``Phi(color, eccentricity) -> DKL semi-axes`` (parametric law and the
paper-faithful RBF network), the DKL-ellipsoid -> RGB-quadric geometry,
and per-user calibration.
"""

from .adaptation import DarkAdaptedModel
from .calibration import ObserverProfile, calibrated_model, sample_population
from .geometry import (
    ChannelExtrema,
    channel_extrema,
    channel_extrema_paper,
    channel_halfwidth,
    contains,
    mahalanobis,
    paper_normalized_coefficients,
    quadric_coefficients,
    quadric_matrix,
)
from .law import EllipsoidLawParameters, ParametricEllipsoidLaw
from .model import (
    DiscriminationModel,
    ParametricModel,
    RBFModel,
    ScaledModel,
    default_model,
)
from .rbf import RBFNetwork

__all__ = [
    "DarkAdaptedModel",
    "ObserverProfile",
    "calibrated_model",
    "sample_population",
    "ChannelExtrema",
    "channel_extrema",
    "channel_extrema_paper",
    "channel_halfwidth",
    "contains",
    "mahalanobis",
    "paper_normalized_coefficients",
    "quadric_coefficients",
    "quadric_matrix",
    "EllipsoidLawParameters",
    "ParametricEllipsoidLaw",
    "DiscriminationModel",
    "ParametricModel",
    "RBFModel",
    "ScaledModel",
    "default_model",
    "RBFNetwork",
]
