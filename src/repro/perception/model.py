"""Discrimination-ellipsoid models: the ``Phi`` of the paper's Eq. 3.

Two interchangeable implementations are provided:

* :class:`ParametricModel` — wraps the closed-form law directly; fast
  and exact, the default for large experiments.
* :class:`RBFModel` — a Gaussian RBF network fitted to the law,
  mirroring the paper's deployment (Sec. 2.1) where ``Phi`` runs as an
  RBF network on the GPU.  Tests assert it tracks the law closely, so
  the two are interchangeable in the encoder.

Both expose ``semi_axes(rgb, eccentricity_deg) -> (..., 3)`` returning
DKL-space semi-axis lengths.  :class:`ScaledModel` applies a global
sensitivity factor, the mechanism behind per-user calibration
(paper Sec. 6.5) and the simulated-observer study (Sec. 6.3).
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

from .law import EllipsoidLawParameters, ParametricEllipsoidLaw
from .rbf import RBFNetwork

__all__ = [
    "DiscriminationModel",
    "ParametricModel",
    "RBFModel",
    "ScaledModel",
    "default_model",
]


@runtime_checkable
class DiscriminationModel(Protocol):
    """Anything that maps (color, eccentricity) to DKL semi-axes."""

    def semi_axes(self, rgb, eccentricity_deg) -> np.ndarray:
        """Return DKL semi-axes ``(..., 3)`` for linear-RGB colors."""
        ...


class ParametricModel:
    """Direct evaluation of the parametric discrimination law."""

    def __init__(self, params: EllipsoidLawParameters | None = None):
        self.law = ParametricEllipsoidLaw(params)

    def semi_axes(self, rgb, eccentricity_deg) -> np.ndarray:
        return self.law(rgb, eccentricity_deg)


class RBFModel:
    """RBF-network approximation of the discrimination law.

    The network takes the 4-vector ``(R, G, B, eccentricity)`` and
    predicts the three semi-axes, scaled internally by ``1e5`` so the
    regression operates on O(1) targets.  Negative predictions (possible
    at the domain boundary of any smooth approximator) are clamped to
    the law's minimum semi-axis.
    """

    _TARGET_SCALE = 1e5

    def __init__(
        self,
        params: EllipsoidLawParameters | None = None,
        n_train: int = 6000,
        seed: int = 2024,
        grid_counts: tuple[int, int, int, int] = (4, 4, 4, 5),
        bandwidth: float = 0.55,
    ):
        self.law = ParametricEllipsoidLaw(params)
        rng = np.random.default_rng(seed)
        colors, ecc, axes = self.law.training_samples(n_train, rng)
        inputs = np.column_stack([colors, ecc])
        max_ecc = self.law.params.max_eccentricity
        centers = RBFNetwork.grid_centers(
            [(0.0, 1.0)] * 3 + [(0.0, max_ecc)], grid_counts
        )
        self.network = RBFNetwork(
            centers, bandwidth=bandwidth, input_scale=[1.0, 1.0, 1.0, max_ecc]
        )
        self.network.fit(inputs, axes * self._TARGET_SCALE, ridge=1e-6)

    def semi_axes(self, rgb, eccentricity_deg) -> np.ndarray:
        colors = np.asarray(rgb, dtype=np.float64)
        if colors.shape[-1] != 3:
            raise ValueError(f"rgb must have trailing axis 3, got {colors.shape}")
        lead_shape = colors.shape[:-1]
        ecc = np.broadcast_to(
            np.asarray(eccentricity_deg, dtype=np.float64), lead_shape
        )
        flat = np.column_stack([colors.reshape(-1, 3), ecc.reshape(-1)])
        predicted = self.network.predict(flat) / self._TARGET_SCALE
        predicted = np.maximum(predicted, ParametricEllipsoidLaw.MIN_SEMI_AXIS)
        return predicted.reshape(*lead_shape, 3)


class ScaledModel:
    """Wrap a model, scaling every semi-axis by a sensitivity factor.

    ``factor < 1`` models a more sensitive observer (smaller ellipsoids,
    e.g. the paper's "visual artist" participant); ``factor > 1`` a less
    sensitive one.  Also the hook for per-user calibration: a calibrated
    deployment simply swaps in the user's factor (paper Sec. 6.5).
    """

    def __init__(self, base: DiscriminationModel, factor: float):
        if factor <= 0:
            raise ValueError(f"sensitivity factor must be positive, got {factor}")
        self.base = base
        self.factor = float(factor)

    def semi_axes(self, rgb, eccentricity_deg) -> np.ndarray:
        return self.base.semi_axes(rgb, eccentricity_deg) * self.factor


_DEFAULT_CACHE: dict[str, DiscriminationModel] = {}


def default_model(kind: str = "parametric") -> DiscriminationModel:
    """Return a cached default discrimination model.

    ``kind`` is ``"parametric"`` (fast closed form, default) or
    ``"rbf"`` (the paper-faithful network; fitted once and cached).
    """
    if kind not in ("parametric", "rbf"):
        raise ValueError(f"unknown model kind {kind!r}; expected 'parametric' or 'rbf'")
    if kind not in _DEFAULT_CACHE:
        _DEFAULT_CACHE[kind] = ParametricModel() if kind == "parametric" else RBFModel()
    return _DEFAULT_CACHE[kind]
