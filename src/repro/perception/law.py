"""Parametric eccentricity-dependent color-discrimination law.

The paper consumes a psychophysically fitted function ``Phi(kappa, e) ->
(a, b, c)`` mapping a color and a retinal eccentricity to the semi-axis
lengths of its discrimination ellipsoid in DKL space (its Eq. 3).  The
fitted weights from Duinkharjav et al. 2022 are not published, so this
module provides a *parametric law* calibrated to the qualitative facts
the paper states and shows:

* semi-axes grow monotonically with eccentricity (Fig. 2: ellipsoids at
  25 deg are larger than at 5 deg);
* the green axis of the *RGB-space image* of the ellipsoid is the
  shortest ("human visual perception is most sensitive to green") and
  most ellipsoids are elongated along Red or Blue (Sec. 3.2);
* thresholds scale with luminance (Weber-like behaviour; the paper's
  user study notes dark scenes behave worst for the model).

The law is expressed directly as DKL semi-axes.  Because the published
RGB->DKL matrix is nearly singular, its two chromatic columns map to
almost the same RGB direction; the resulting RGB-space ellipsoids are
intrinsically blue-elongated (half-width ratio B:G around 7:1 for equal
chromatic semi-axes), which is exactly the anisotropy the paper
exploits.  A color-dependent boost of the first DKL axis adds red
elongation for reddish colors so that the encoder's R-vs-B axis choice
is exercised.

The RBF network in :mod:`repro.perception.rbf` is fitted to *this* law,
mirroring the paper's pipeline in which an RBF network approximates the
psychophysical data.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..color.utils import ensure_color_array, relative_luminance

__all__ = ["EllipsoidLawParameters", "ParametricEllipsoidLaw"]


@dataclass(frozen=True)
class EllipsoidLawParameters:
    """Tunable constants of the parametric discrimination law.

    Attributes
    ----------
    base_scale:
        Chromatic DKL semi-axis at zero eccentricity, mid luminance.
        Sized so the foveal green half-width is below one 8-bit code
        (perceptually safe), growing to several codes in the periphery.
    eccentricity_gain:
        Linear growth rate of thresholds per degree of eccentricity.
        0.045/deg roughly doubles thresholds between 0 and 22 deg,
        consistent with the Fig. 2 size difference between 5 and 25 deg.
    luminance_floor, luminance_gain:
        Thresholds scale with ``floor + gain * luminance`` (clipped to
        ``[floor, floor + gain]``), a Weber-like brightness dependence.
    red_axis_base, red_axis_gain:
        The first DKL semi-axis is ``(red_axis_base + red_axis_gain *
        redness) * chromatic_scale``; larger for reddish colors, which
        produces red-elongated RGB ellipsoids for them.
    max_eccentricity:
        Eccentricities are clamped here; beyond the display FoV the law
        has no psychophysical support.
    """

    base_scale: float = 1.0e-5
    eccentricity_gain: float = 0.045
    luminance_floor: float = 0.40
    luminance_gain: float = 1.20
    red_axis_base: float = 14.0
    red_axis_gain: float = 16.0
    max_eccentricity: float = 60.0


class ParametricEllipsoidLaw:
    """Closed-form implementation of ``Phi(kappa, e) -> (a, b, c)``.

    Instances are callable on batches: given ``(..., 3)`` linear-RGB
    colors and broadcast-compatible eccentricities in degrees, they
    return ``(..., 3)`` DKL semi-axes.  Semi-axes are strictly positive
    for strictly positive eccentricity scale; a zero floor is never
    returned (degenerate ellipsoids break the quadric algebra), instead
    a tiny epsilon keeps the geometry well conditioned.
    """

    #: Smallest semi-axis ever returned; keeps quadrics non-degenerate.
    MIN_SEMI_AXIS = 1e-9

    def __init__(self, params: EllipsoidLawParameters | None = None):
        self.params = params or EllipsoidLawParameters()

    def __call__(self, rgb, eccentricity_deg) -> np.ndarray:
        """Evaluate the law.

        Parameters
        ----------
        rgb:
            Linear-RGB colors, shape ``(..., 3)``.
        eccentricity_deg:
            Eccentricity in degrees, broadcastable against the leading
            shape of ``rgb``.  Negative values are rejected.

        Returns
        -------
        numpy.ndarray
            DKL semi-axes ``(a, b, c)`` with the same leading shape.
        """
        colors = ensure_color_array(rgb, "rgb")
        ecc = np.asarray(eccentricity_deg, dtype=np.float64)
        if ecc.size and ecc.min() < 0:
            raise ValueError("eccentricity must be non-negative degrees")
        p = self.params
        ecc = np.clip(ecc, 0.0, p.max_eccentricity)

        lum = relative_luminance(colors)
        lum_factor = np.clip(
            p.luminance_floor + p.luminance_gain * lum,
            p.luminance_floor,
            p.luminance_floor + p.luminance_gain,
        )
        chromatic = p.base_scale * (1.0 + p.eccentricity_gain * ecc) * lum_factor

        total = colors.sum(axis=-1)
        redness = np.divide(
            colors[..., 0],
            total,
            out=np.full(total.shape, 1.0 / 3.0),
            where=total > 1e-12,
        )
        red_ratio = p.red_axis_base + p.red_axis_gain * redness

        axes = np.empty(colors.shape, dtype=np.float64)
        axes[..., 0] = red_ratio * chromatic
        axes[..., 1] = chromatic
        axes[..., 2] = chromatic
        return np.maximum(axes, self.MIN_SEMI_AXIS)

    def training_samples(
        self, count: int, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Draw ``count`` random (color, eccentricity, semi-axes) samples.

        Used to fit the RBF approximation.  Colors are uniform in the
        unit RGB cube; eccentricities uniform in the supported range.
        """
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        colors = rng.uniform(0.0, 1.0, size=(count, 3))
        ecc = rng.uniform(0.0, self.params.max_eccentricity, size=count)
        return colors, ecc, self(colors, ecc)
