"""Gaussian Radial Basis Function regression network.

The paper implements the discrimination function ``Phi`` as an RBF
network because it is "extremely efficient to implement on GPUs in real
time" (its Sec. 2.1: 72 FPS at sub-1 mW on a Quest 2).  This module
provides the same functional form: a single hidden layer of Gaussian
kernels over the 4-D input ``(R, G, B, eccentricity)`` with a linear
read-out, trained by ridge-regularized least squares.

The network is generic (any input/output dimension); the perception
model fits it to the parametric law in :mod:`repro.perception.law`.
"""

from __future__ import annotations

import numpy as np

__all__ = ["RBFNetwork"]


class RBFNetwork:
    """Gaussian-kernel RBF regressor with a linear read-out and bias.

    Model: ``y(x) = W @ phi(x) + b`` where ``phi_j(x) =
    exp(-||x - c_j||^2 / (2 sigma_j^2))`` over fixed centers ``c_j``.

    Inputs are internally standardized by user-provided scales so that
    one bandwidth works across heterogeneous dimensions (unit color cube
    vs. tens of degrees of eccentricity).
    """

    def __init__(self, centers, bandwidth: float, input_scale=None):
        centers = np.atleast_2d(np.asarray(centers, dtype=np.float64))
        if centers.ndim != 2:
            raise ValueError(f"centers must be 2-D (n_centers, n_dims), got {centers.shape}")
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth}")
        self._raw_centers = centers
        self.bandwidth = float(bandwidth)
        if input_scale is None:
            input_scale = np.ones(centers.shape[1])
        self.input_scale = np.asarray(input_scale, dtype=np.float64)
        if self.input_scale.shape != (centers.shape[1],):
            raise ValueError(
                f"input_scale must have shape ({centers.shape[1]},), "
                f"got {self.input_scale.shape}"
            )
        if np.any(self.input_scale <= 0):
            raise ValueError("input_scale entries must be positive")
        self._centers = centers / self.input_scale
        self._weights: np.ndarray | None = None
        self._bias: np.ndarray | None = None

    @property
    def n_centers(self) -> int:
        """Number of Gaussian kernels in the hidden layer."""
        return self._centers.shape[0]

    @property
    def n_inputs(self) -> int:
        """Input dimensionality."""
        return self._centers.shape[1]

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has been called."""
        return self._weights is not None

    def _design_matrix(self, inputs: np.ndarray) -> np.ndarray:
        scaled = inputs / self.input_scale
        # Squared distances via the expansion ||x||^2 - 2 x.c + ||c||^2,
        # which avoids materializing the (n, m, d) difference tensor.
        sq = (
            np.sum(scaled**2, axis=1)[:, None]
            - 2.0 * scaled @ self._centers.T
            + np.sum(self._centers**2, axis=1)[None, :]
        )
        np.maximum(sq, 0.0, out=sq)
        return np.exp(-sq / (2.0 * self.bandwidth**2))

    def fit(self, inputs, targets, ridge: float = 1e-8) -> "RBFNetwork":
        """Fit read-out weights by ridge-regularized least squares.

        Parameters
        ----------
        inputs:
            Training inputs, shape ``(n_samples, n_inputs)``.
        targets:
            Training targets, shape ``(n_samples, n_outputs)`` or
            ``(n_samples,)``.
        ridge:
            Tikhonov regularization added to the normal equations; keeps
            the solve stable when kernels overlap heavily.

        Returns
        -------
        RBFNetwork
            ``self``, to allow ``RBFNetwork(...).fit(...)`` chaining.
        """
        x = np.atleast_2d(np.asarray(inputs, dtype=np.float64))
        y = np.asarray(targets, dtype=np.float64)
        if y.ndim == 1:
            y = y[:, None]
        if x.shape[0] != y.shape[0]:
            raise ValueError(
                f"inputs and targets disagree on sample count: {x.shape[0]} vs {y.shape[0]}"
            )
        if x.shape[1] != self.n_inputs:
            raise ValueError(f"expected {self.n_inputs}-D inputs, got {x.shape[1]}-D")
        if ridge < 0:
            raise ValueError(f"ridge must be non-negative, got {ridge}")

        phi = self._design_matrix(x)
        design = np.hstack([phi, np.ones((phi.shape[0], 1))])
        gram = design.T @ design
        gram[np.diag_indices_from(gram)] += ridge
        solution = np.linalg.solve(gram, design.T @ y)
        self._weights = solution[:-1]
        self._bias = solution[-1]
        return self

    def predict(self, inputs, chunk_size: int = 65536) -> np.ndarray:
        """Evaluate the network on a batch of inputs.

        Evaluation is chunked so that frame-sized batches (millions of
        pixels) never materialize a full ``(n, n_centers)`` matrix.
        """
        if not self.is_fitted:
            raise RuntimeError("RBFNetwork.predict called before fit")
        if chunk_size <= 0:
            raise ValueError(f"chunk_size must be positive, got {chunk_size}")
        x = np.atleast_2d(np.asarray(inputs, dtype=np.float64))
        if x.shape[1] != self.n_inputs:
            raise ValueError(f"expected {self.n_inputs}-D inputs, got {x.shape[1]}-D")
        outputs = np.empty((x.shape[0], self._weights.shape[1]), dtype=np.float64)
        for start in range(0, x.shape[0], chunk_size):
            block = x[start : start + chunk_size]
            outputs[start : start + block.shape[0]] = (
                self._design_matrix(block) @ self._weights + self._bias
            )
        return outputs

    @staticmethod
    def grid_centers(bounds, counts) -> np.ndarray:
        """Build a regular grid of centers inside axis-aligned ``bounds``.

        ``bounds`` is a sequence of ``(low, high)`` pairs, ``counts`` the
        number of grid points per dimension.
        """
        if len(bounds) != len(counts):
            raise ValueError("bounds and counts must have the same length")
        axes = []
        for (low, high), n in zip(bounds, counts):
            if n < 1:
                raise ValueError(f"each dimension needs >= 1 center, got {n}")
            if high < low:
                raise ValueError(f"invalid bounds ({low}, {high})")
            axes.append(np.linspace(low, high, n))
        mesh = np.meshgrid(*axes, indexing="ij")
        return np.stack([m.ravel() for m in mesh], axis=1)
