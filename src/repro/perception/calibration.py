"""Per-user calibration of the discrimination model (paper Sec. 6.5).

The paper notes that discrimination models target the population
average and proposes per-user calibration — analogous to IPD adjustment
— as the deployment answer to sensitive observers.  This module
implements that mechanism:

* :class:`ObserverProfile` — a named sensitivity factor (1.0 = average;
  smaller = more sensitive, e.g. the study's "visual artist");
* :func:`sample_population` — draw a population of profiles with
  log-normal sensitivity spread, used by the simulated user study;
* :func:`calibrated_model` — bind a profile to a base model, yielding
  the per-user ``Phi`` the encoder would run with after calibration.

Color-vision deficiency (CVD) is explicitly *not* modeled — matching
the paper, which states the underlying discrimination model does not
cover CVD and that the encoder should simply be bypassed for such
users.  Profiles can carry ``has_cvd=True`` to request that bypass.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .model import DiscriminationModel, ScaledModel, default_model

__all__ = [
    "ObserverProfile",
    "sample_population",
    "calibrated_model",
]


@dataclass(frozen=True)
class ObserverProfile:
    """A single observer's calibration result.

    Attributes
    ----------
    name:
        Identifier used in study reports.
    sensitivity:
        Multiplier on ellipsoid semi-axes.  ``1.0`` is the population
        average the published model targets; ``0.6`` would be a
        color-sensitive observer whose true thresholds are 40% tighter.
    has_cvd:
        If True the observer has a color-vision deficiency; the encoder
        must be bypassed (the model does not apply), per Sec. 6.5.
    """

    name: str
    sensitivity: float = 1.0
    has_cvd: bool = False

    def __post_init__(self):
        if self.sensitivity <= 0:
            raise ValueError(f"sensitivity must be positive, got {self.sensitivity}")


def sample_population(
    count: int,
    rng: np.random.Generator,
    spread: float = 0.22,
    sensitive_fraction: float = 0.1,
    sensitive_factor: float = 0.55,
) -> list[ObserverProfile]:
    """Draw a population of observer profiles.

    Sensitivities are log-normal around 1.0 with multiplicative spread
    ``spread``; a ``sensitive_fraction`` of observers additionally get
    their sensitivity multiplied by ``sensitive_factor``, modeling the
    markedly color-sensitive individuals (the paper's visual-artist
    participant) that population-average models miss.
    """
    if count <= 0:
        raise ValueError(f"count must be positive, got {count}")
    if not 0 <= sensitive_fraction <= 1:
        raise ValueError(f"sensitive_fraction must be in [0, 1], got {sensitive_fraction}")
    sensitivities = np.exp(rng.normal(0.0, spread, size=count))
    outliers = rng.random(count) < sensitive_fraction
    sensitivities[outliers] *= sensitive_factor
    return [
        ObserverProfile(name=f"P{i + 1:02d}", sensitivity=float(s))
        for i, s in enumerate(sensitivities)
    ]


def calibrated_model(
    profile: ObserverProfile, base: DiscriminationModel | None = None
) -> DiscriminationModel:
    """Bind an observer profile to a discrimination model.

    Returns the per-user ``Phi`` that a calibrated deployment would feed
    the encoder.  Raises for CVD profiles: the encoder must be disabled
    for them rather than run with an invalid model.
    """
    if profile.has_cvd:
        raise ValueError(
            f"observer {profile.name} has CVD; the discrimination model does not "
            "apply — bypass the perceptual encoder instead (paper Sec. 6.5)"
        )
    return ScaledModel(base if base is not None else default_model(), profile.sensitivity)
