"""Ellipsoid geometry in linear-RGB space (paper Eq. 9-13).

Discrimination ellipsoids are axis-aligned in DKL space but become
general (rotated) ellipsoids after the linear map to RGB, so they must
be handled as quadric surfaces.  With ``T = RGB_TO_DKL`` (DKL = T @ RGB)
and DKL semi-axes ``(a, b, c)`` around DKL center ``kappa = T @ center``,
the RGB-space surface is

    (p - center)^T Q (p - center) = 1,      Q = T^T diag(1/a^2,..) T.

This module provides, fully vectorized over batches of pixels:

* the center-form matrix ``Q`` and the general quadric coefficients
  ``A..I`` of the paper's Eq. 9 (both the raw polynomial and the paper's
  Eq. 10 normalization with unit constant term);
* per-channel extrema of an ellipsoid — the highest and lowest point
  along R, G or B — via the closed form ``p = center +/- Q^{-1} e_k /
  sqrt(e_k^T Q^{-1} e_k)``;
* the paper's own extrema recipe (Eq. 11-13: cross product of tangent
  planes, then line-ellipsoid intersection in DKL), retained as an
  independent cross-check of the closed form.

Channel indices follow numpy order: 0 = R, 1 = G, 2 = B.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..color.dkl import DKL_TO_RGB, RGB_TO_DKL

__all__ = [
    "ChannelExtrema",
    "quadric_matrix",
    "quadric_coefficients",
    "paper_normalized_coefficients",
    "channel_halfwidth",
    "channel_extrema",
    "channel_extrema_paper",
    "contains",
    "mahalanobis",
]

_CHANNELS = (0, 1, 2)


def _validate(centers, semi_axes):
    c = np.asarray(centers, dtype=np.float64)
    s = np.asarray(semi_axes, dtype=np.float64)
    if c.shape[-1] != 3 or s.shape[-1] != 3:
        raise ValueError(
            f"centers and semi_axes need trailing axis 3, got {c.shape} and {s.shape}"
        )
    if c.shape != s.shape:
        c, s = np.broadcast_arrays(c, s)
        c = np.ascontiguousarray(c, dtype=np.float64)
        s = np.ascontiguousarray(s, dtype=np.float64)
    if s.size and s.min() <= 0:
        raise ValueError("semi-axes must be strictly positive")
    return c, s


@dataclass(frozen=True)
class ChannelExtrema:
    """Extrema of ellipsoids along one RGB channel.

    Attributes
    ----------
    low, high:
        The lowest / highest surface points, shape ``(..., 3)``.  Both
        are full RGB points; ``high[..., axis] - low[..., axis]`` is
        twice the channel half-width.
    displacement:
        ``high - center`` — the "extrema vector" of the paper's Fig. 6
        along which colors are moved.  ``low = center - displacement``
        by central symmetry.
    axis:
        The channel that was extremized (0=R, 1=G, 2=B).
    """

    low: np.ndarray
    high: np.ndarray
    displacement: np.ndarray
    axis: int


def quadric_matrix(semi_axes) -> np.ndarray:
    """Center-form quadric matrix ``Q`` in RGB space, batched.

    ``Q`` depends only on the semi-axes (the center merely translates
    the surface).  Returns shape ``(..., 3, 3)``.
    """
    s = np.asarray(semi_axes, dtype=np.float64)
    if s.shape[-1] != 3:
        raise ValueError(f"semi_axes needs trailing axis 3, got {s.shape}")
    if s.size and s.min() <= 0:
        raise ValueError("semi-axes must be strictly positive")
    inv_sq = 1.0 / np.square(s)
    # Q = T^T diag(inv_sq) T, batched over leading dims.
    scaled = inv_sq[..., :, None] * RGB_TO_DKL
    return np.swapaxes(np.broadcast_to(RGB_TO_DKL, scaled.shape), -1, -2) @ scaled


def quadric_coefficients(centers, semi_axes) -> dict[str, np.ndarray]:
    """Raw polynomial coefficients of the RGB-space quadric.

    Expanding ``(p - c)^T Q (p - c) = 1`` gives

        A x^2 + B y^2 + C z^2 + G xy + H yz + I zx
        + D x + E y + F z + c0 = 0,

    with ``c0 = c^T Q c - 1``.  Keys mirror the paper's Eq. 9 letters
    plus ``"c0"``; each value has the batch's leading shape.  Unlike the
    paper's normalized form this representation is valid even when the
    ellipsoid contains the RGB origin.
    """
    c, s = _validate(centers, semi_axes)
    q = quadric_matrix(s)
    linear = -2.0 * np.einsum("...ij,...j->...i", q, c)
    c0 = np.einsum("...i,...ij,...j->...", c, q, c) - 1.0
    return {
        "A": q[..., 0, 0],
        "B": q[..., 1, 1],
        "C": q[..., 2, 2],
        "G": 2.0 * q[..., 0, 1],
        "H": 2.0 * q[..., 1, 2],
        "I": 2.0 * q[..., 0, 2],
        "D": linear[..., 0],
        "E": linear[..., 1],
        "F": linear[..., 2],
        "c0": c0,
    }


def paper_normalized_coefficients(centers, semi_axes) -> dict[str, np.ndarray]:
    """Eq. 10 form of the quadric: coefficients scaled to a ``+1`` constant.

    The paper divides the polynomial by ``-t`` with ``t = 1 - kappa^T S
    kappa`` so the constant term is exactly 1.  That normalization is
    undefined when the ellipsoid surface passes through the RGB origin
    (``c0 == 0``); practical discrimination ellipsoids are tiny and far
    from the origin so ``c0 > 0`` always holds, but we raise explicitly
    rather than divide by ~0.
    """
    coeffs = quadric_coefficients(centers, semi_axes)
    c0 = coeffs.pop("c0")
    if np.any(np.abs(c0) < 1e-12):
        raise ValueError(
            "quadric constant term vanishes; the paper's Eq. 10 normalization "
            "is undefined for ellipsoids through the RGB origin"
        )
    return {key: value / c0 for key, value in coeffs.items()}


def channel_halfwidth(semi_axes, axis: int) -> np.ndarray:
    """Half-width of the ellipsoid along one RGB channel.

    Closed form: ``h_k = sqrt(sum_i s_i^2 * B[k, i]^2)`` with
    ``B = DKL_TO_RGB``, since ``e_k^T Q^{-1} e_k = (B^T e_k)^T
    diag(s^2) (B^T e_k)``.
    """
    if axis not in _CHANNELS:
        raise ValueError(f"axis must be 0, 1 or 2, got {axis}")
    s = np.asarray(semi_axes, dtype=np.float64)
    if s.shape[-1] != 3:
        raise ValueError(f"semi_axes needs trailing axis 3, got {s.shape}")
    row = DKL_TO_RGB[axis]
    return np.sqrt(np.square(s) @ np.square(row))


def channel_extrema(centers, semi_axes, axis: int) -> ChannelExtrema:
    """Highest and lowest ellipsoid points along an RGB channel.

    Uses the Lagrange closed form ``displacement = Q^{-1} e_k /
    sqrt(e_k^T Q^{-1} e_k)``; with ``Q^{-1} = B diag(s^2) B^T`` this
    costs one scaled matmul per batch — no per-pixel solves.  The
    displacement's own ``axis`` component equals the channel half-width
    exactly, a property the unit tests rely on.
    """
    if axis not in _CHANNELS:
        raise ValueError(f"axis must be 0, 1 or 2, got {axis}")
    c, s = _validate(centers, semi_axes)
    row = DKL_TO_RGB[axis]
    weighted = np.square(s) * row  # diag(s^2) B^T e_k, batched
    unnormalized = weighted @ DKL_TO_RGB.T  # B @ weighted per pixel
    halfwidth = np.sqrt(weighted @ row)
    displacement = unnormalized / halfwidth[..., None]
    return ChannelExtrema(
        low=c - displacement, high=c + displacement, displacement=displacement, axis=axis
    )


def channel_extrema_paper(centers, semi_axes, axis: int) -> ChannelExtrema:
    """The paper's Eq. 11-13 extrema recipe, kept as a cross-check.

    Steps: build the quadric (Eq. 9-10 without normalization — the
    direction is scale invariant), intersect the two tangent-condition
    planes to get the extrema direction ``v`` (Eq. 12 generalized to any
    channel), convert ``v`` to DKL, scale it onto the ellipsoid (Eq.
    13b) and map the two surface points back to RGB (Eq. 13c).
    """
    if axis not in _CHANNELS:
        raise ValueError(f"axis must be 0, 1 or 2, got {axis}")
    c, s = _validate(centers, semi_axes)
    q = quadric_matrix(s)
    others = [j for j in _CHANNELS if j != axis]
    # Tangent-condition planes: rows `others` of 2M p + L = 0; their
    # normals are rows of 2Q.  The constant offsets do not affect the
    # direction of the intersection line.
    n1 = 2.0 * q[..., others[0], :]
    n2 = 2.0 * q[..., others[1], :]
    v = np.cross(n1, n2)
    # Eq. 13a: express the direction in DKL.
    x = v @ RGB_TO_DKL.T
    # Eq. 13b: scale so kappa +/- x*t lies on the axis-aligned ellipsoid.
    t = 1.0 / np.sqrt(np.sum(np.square(x / s), axis=-1))
    kappa = c @ RGB_TO_DKL.T
    step = x * t[..., None]
    high = (kappa + step) @ DKL_TO_RGB.T
    low = (kappa - step) @ DKL_TO_RGB.T
    # Orient so `high` really is the channel maximum (the cross product's
    # sign is arbitrary).
    flip = high[..., axis] < low[..., axis]
    high_fixed = np.where(flip[..., None], low, high)
    low_fixed = np.where(flip[..., None], high, low)
    return ChannelExtrema(
        low=low_fixed, high=high_fixed, displacement=high_fixed - c, axis=axis
    )


def mahalanobis(points, centers, semi_axes) -> np.ndarray:
    """Ellipsoid-normalized distance of RGB points from ellipsoid centers.

    Values ``<= 1`` mean the point is perceptually indistinguishable
    from the center under the model.  This is the quantity the encoder
    guarantees to keep at most 1 and the simulated observers threshold.
    """
    p = np.asarray(points, dtype=np.float64)
    c, s = _validate(centers, semi_axes)
    delta_dkl = (p - c) @ RGB_TO_DKL.T
    return np.sqrt(np.sum(np.square(delta_dkl / s), axis=-1))


def contains(points, centers, semi_axes, tolerance: float = 1e-9) -> np.ndarray:
    """Boolean mask: is each point inside (or on) its ellipsoid?"""
    return mahalanobis(points, centers, semi_axes) <= 1.0 + tolerance
