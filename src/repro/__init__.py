"""repro — perceptual color-discrimination image encoding for VR.

A full reproduction of "Exploiting Human Color Discrimination for
Memory- and Energy-Efficient Image Encoding in Virtual Reality"
(ASPLOS 2024): the eccentricity-dependent discrimination model, the
analytical per-tile color adjustment, the Base+Delta substrate it
feeds, the comparison baselines, the hardware/energy models, procedural
evaluation scenes, and a simulated user study.

Quick start::

    import numpy as np
    from repro import PerceptualEncoder, QUEST2_DISPLAY, render_scene

    frame = render_scene("fortnite", 256, 256)           # linear RGB
    ecc = QUEST2_DISPLAY.eccentricity_map(256, 256)       # centered gaze
    result = PerceptualEncoder().encode_frame(frame, ecc)
    print(result.breakdown.bits_per_pixel,
          result.bandwidth_reduction_vs_bd)
"""

from .core.pipeline import DEFAULT_FOVEAL_RADIUS_DEG, FrameResult, PerceptualEncoder
from .encoding.bd import BDCodec
from .perception.model import ParametricModel, RBFModel, ScaledModel, default_model
from .scenes.display import QUEST2_DISPLAY, DisplayGeometry
from .scenes.library import SCENE_NAMES, get_scene, render_scene

__version__ = "1.0.0"

__all__ = [
    "DEFAULT_FOVEAL_RADIUS_DEG",
    "FrameResult",
    "PerceptualEncoder",
    "BDCodec",
    "ParametricModel",
    "RBFModel",
    "ScaledModel",
    "default_model",
    "QUEST2_DISPLAY",
    "DisplayGeometry",
    "SCENE_NAMES",
    "get_scene",
    "render_scene",
    "__version__",
]
