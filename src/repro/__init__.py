"""repro — perceptual color-discrimination image encoding for VR.

A full reproduction of "Exploiting Human Color Discrimination for
Memory- and Energy-Efficient Image Encoding in Virtual Reality"
(ASPLOS 2024): the eccentricity-dependent discrimination model, the
analytical per-tile color adjustment, the Base+Delta substrate it
feeds, the comparison baselines, the hardware/energy models, procedural
evaluation scenes, and a simulated user study.

Every frame coster — ``nocom``/``raw``, ``bd``, ``variable-bd``,
``temporal-bd``, ``png``, ``scc``, and ``perceptual`` — lives behind
one codec registry and encodes a shared, lazily-cached
:class:`FrameContext`.

Quick start::

    from repro import FrameContext, get_codec, render_scene

    frame = render_scene("fortnite", 256, 256)    # linear RGB
    ctx = FrameContext(frame)                     # lazy sRGB / tiles / gaze
    result = get_codec("perceptual").encode(ctx)  # an EncodedFrame
    print(result.bits_per_pixel, result.bandwidth_reduction_vs_bd)

Sweep several codecs over a frame sequence with shared context work::

    from repro import encode_batch

    results = encode_batch(frames, codecs=("bd", "png", "perceptual"))
    print({name: sum(r.total_bits for r in rs) for name, rs in results.items()})

The lower-level entry points remain available:
``PerceptualEncoder().encode_frame(frame, eccentricity)`` returns the
same :class:`FrameResult` the codec API does.
"""

from .codecs import (
    Codec,
    CodecRegistry,
    EncodedFrame,
    FrameContext,
    QualityLadder,
    QualityRung,
    available_codecs,
    encode_batch,
    get_codec,
    make_contexts,
)
from .codecs import register as register_codec
from .core.pipeline import DEFAULT_FOVEAL_RADIUS_DEG, FrameResult, PerceptualEncoder
from .encoding.bd import BDCodec
from .perception.model import ParametricModel, RBFModel, ScaledModel, default_model
from .scenes.display import QUEST2_DISPLAY, DisplayGeometry
from .scenes.library import SCENE_NAMES, get_scene, render_scene
from .streaming import (
    WIFI6_LINK,
    WIGIG_LINK,
    BandwidthTrace,
    ClientConfig,
    FleetReport,
    WirelessLink,
    simulate_adaptive_session,
    simulate_fleet,
    simulate_session,
)

__version__ = "1.3.0"

__all__ = [
    "Codec",
    "CodecRegistry",
    "EncodedFrame",
    "FrameContext",
    "available_codecs",
    "encode_batch",
    "get_codec",
    "make_contexts",
    "register_codec",
    "DEFAULT_FOVEAL_RADIUS_DEG",
    "FrameResult",
    "PerceptualEncoder",
    "BDCodec",
    "ParametricModel",
    "RBFModel",
    "ScaledModel",
    "default_model",
    "QUEST2_DISPLAY",
    "DisplayGeometry",
    "SCENE_NAMES",
    "get_scene",
    "render_scene",
    "QualityLadder",
    "QualityRung",
    "WIFI6_LINK",
    "WIGIG_LINK",
    "BandwidthTrace",
    "ClientConfig",
    "FleetReport",
    "WirelessLink",
    "simulate_adaptive_session",
    "simulate_fleet",
    "simulate_session",
    "__version__",
]
