"""``python -m repro`` dispatches to the experiment CLI."""

from .cli import main

raise SystemExit(main())
