"""Per-user threshold calibration by adaptive staircase (paper Sec. 6.5).

The paper proposes building a per-user ellipsoid model with "a per-user
color calibration procedure ... laid out in prior work", analogous to
the IPD adjustment every headset already does.  This module implements
that procedure against our simulated observers:

* each trial shows a reference color and a probe displaced along a
  random ellipsoid direction by ``intensity`` times the *population*
  threshold; the observer answers whether they can tell them apart
  (2AFC with lapse/guess rates);
* a transformed 2-down-1-up staircase adapts the intensity, converging
  on the observer's ~70.7%-correct point;
* the mean of the final reversals estimates the observer's personal
  sensitivity factor, which :func:`repro.perception.calibration.
  calibrated_model` turns into their encoder model.

A 2-down-1-up staircase converges on the ~70.7%-correct intensity, not
the 50% threshold itself, so the estimator divides the reversal mean by
the analytically known offset of that convergence point on the
psychometric function.  The whole loop is deterministic given its RNG,
and tests verify the procedure recovers known sensitivities to within
~20% — the accuracy regime real QUEST-style calibrations achieve in a
few dozen trials.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..perception.calibration import ObserverProfile

__all__ = ["StaircaseConfig", "CalibrationRun", "run_staircase", "calibrate_profile"]


@dataclass(frozen=True)
class StaircaseConfig:
    """Parameters of the 2-down-1-up calibration staircase."""

    initial_intensity: float = 2.0
    step_up: float = 1.25
    step_down: float = 1.25
    n_reversals: int = 12
    discard_reversals: int = 4
    max_trials: int = 200
    lapse_rate: float = 0.02
    guess_rate: float = 0.02
    slope: float = 6.0

    def __post_init__(self):
        if self.initial_intensity <= 0:
            raise ValueError("initial_intensity must be positive")
        if self.step_up <= 1.0 or self.step_down <= 1.0:
            raise ValueError("staircase steps must be > 1 (multiplicative)")
        if self.n_reversals <= self.discard_reversals:
            raise ValueError("need more reversals than are discarded")
        if not 0 <= self.lapse_rate < 0.5 or not 0 <= self.guess_rate < 0.5:
            raise ValueError("lapse/guess rates must be in [0, 0.5)")


@dataclass
class CalibrationRun:
    """Trace and outcome of one staircase run."""

    intensities: list[float] = field(default_factory=list)
    responses: list[bool] = field(default_factory=list)
    reversal_intensities: list[float] = field(default_factory=list)
    estimated_sensitivity: float = float("nan")
    converged: bool = False

    @property
    def n_trials(self) -> int:
        return len(self.intensities)


def _detection_probability(
    intensity: float, sensitivity: float, config: StaircaseConfig
) -> float:
    """Psychometric function of a simulated observer in a trial.

    The observer's true threshold sits at ``intensity == sensitivity``
    (a displacement of exactly their personal ellipsoid).  A Weibull-
    like logistic in log-intensity gives the standard sigmoid shape;
    lapse and guess rates bound it away from 0 and 1.
    """
    log_ratio = np.log(max(intensity, 1e-9) / sensitivity)
    core = 1.0 / (1.0 + np.exp(-config.slope * log_ratio))
    return config.guess_rate + (1.0 - config.guess_rate - config.lapse_rate) * core


def run_staircase(
    profile: ObserverProfile,
    rng: np.random.Generator,
    config: StaircaseConfig | None = None,
) -> CalibrationRun:
    """Run a 2-down-1-up staircase against a simulated observer.

    Returns the full trial trace plus the sensitivity estimate (the
    mean of the retained reversal intensities).  ``converged`` is False
    if the trial budget ran out before enough reversals accumulated —
    the estimate is still reported from whatever reversals exist.
    """
    config = config or StaircaseConfig()
    run = CalibrationRun()
    intensity = config.initial_intensity
    consecutive_correct = 0
    direction = 0  # -1 going down, +1 going up

    while (
        len(run.reversal_intensities) < config.n_reversals
        and run.n_trials < config.max_trials
    ):
        p = _detection_probability(intensity, profile.sensitivity, config)
        detected = bool(rng.random() < p)
        run.intensities.append(intensity)
        run.responses.append(detected)

        if detected:
            consecutive_correct += 1
            if consecutive_correct >= 2:
                consecutive_correct = 0
                if direction == 1:
                    run.reversal_intensities.append(intensity)
                direction = -1
                intensity /= config.step_down
        else:
            consecutive_correct = 0
            if direction == -1:
                run.reversal_intensities.append(intensity)
            direction = 1
            intensity *= config.step_up

    retained = run.reversal_intensities[config.discard_reversals :]
    if retained:
        raw_estimate = float(np.exp(np.mean(np.log(retained))))
    elif run.reversal_intensities:
        raw_estimate = float(np.exp(np.mean(np.log(run.reversal_intensities))))
    else:
        raw_estimate = intensity
    run.estimated_sensitivity = raw_estimate / _convergence_offset(config)
    run.converged = len(run.reversal_intensities) >= config.n_reversals
    return run


def _convergence_offset(config: StaircaseConfig) -> float:
    """Known bias of a 2-down-1-up staircase on our psychometric curve.

    The staircase equilibrates where p(detect)^2 = 0.5, i.e. p =
    sqrt(0.5) ~= 70.7%.  On the logistic-in-log-intensity curve that
    point sits ``exp(logit(core)/slope)`` above the true threshold,
    where ``core`` maps the target probability back through the
    guess/lapse bounds.  Dividing the reversal mean by this factor
    de-biases the estimate.
    """
    target = np.sqrt(0.5)
    core = (target - config.guess_rate) / (1.0 - config.guess_rate - config.lapse_rate)
    core = float(np.clip(core, 1e-6, 1 - 1e-6))
    return float(np.exp(np.log(core / (1.0 - core)) / config.slope))


def calibrate_profile(
    profile: ObserverProfile,
    rng: np.random.Generator,
    config: StaircaseConfig | None = None,
) -> ObserverProfile:
    """Produce the *calibrated* profile a deployment would store.

    Runs the staircase and returns a new profile whose sensitivity is
    the staircase estimate — the value the encoder's per-user model
    would be built from (Sec. 6.5).
    """
    run = run_staircase(profile, rng, config)
    return ObserverProfile(
        name=f"{profile.name}-calibrated",
        sensitivity=run.estimated_sensitivity,
        has_cvd=profile.has_cvd,
    )
