"""Simulated observers for the user-study reproduction (paper Sec. 6.3).

The paper runs an IRB study with 11 participants; we cannot, so we
simulate the psychophysics the study probes.  The key quantity is the
*exceedance*: how far each pixel's color shift goes beyond the
observer's own discrimination threshold.  The encoder guarantees shifts
within the *population-average* model ellipsoids; an individual notices
artifacts when their personal thresholds are tighter than the model's.
Three mechanisms — all grounded in the paper's own analysis of why
participants noticed artifacts — produce that gap:

1. **Observer variation** — per-observer sensitivity factors
   (log-normal around 1, with rare markedly sensitive individuals like
   the paper's visual artist).
2. **Dark-luminance model error** — the paper concludes discrimination
   models need improving "in low-luminance conditions": dark scenes
   (dumbo, monkey) showed the most artifacts.  We model true thresholds
   that shrink below the published model's in the dark via a
   luminance-dependent *reliability* factor.
3. **Green masking** — no participant noticed artifacts in the green,
   bright fortnite scene because the scheme's green-hue shifts are
   masked by green content.  We widen effective thresholds with the
   pixel's greenness.

Detection of a 20-second free-viewing trial is driven by the robust
peak exceedance over all pixels and frames through a logistic
psychometric function.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..color.utils import ensure_color_array, relative_luminance
from ..perception.calibration import ObserverProfile
from ..perception.geometry import mahalanobis
from ..perception.model import DiscriminationModel, default_model

__all__ = [
    "PsychometricParameters",
    "reliability_factor",
    "green_masking_factor",
    "scene_exceedance",
    "SimulatedObserver",
]


@dataclass(frozen=True)
class PsychometricParameters:
    """Detection model constants.

    Attributes
    ----------
    threshold:
        Peak exceedance at which detection probability is 50%.  Above
        1.0 because a just-at-threshold shift (exceedance exactly 1)
        is by definition at the 50%-discrimination boundary for a
        *forced choice*, while free viewing with task load is less
        sensitive.
    slope:
        Logistic slope; smaller is steeper.
    peak_percentile:
        Robust-peak percentile over pixels x frames, guarding against
        a single rogue pixel deciding the trial.
    dark_floor, dark_gain:
        Reliability of the published thresholds vs. luminance:
        ``clip(dark_floor + dark_gain * luminance, dark_floor, 1)``.
    green_boost:
        Threshold widening per unit greenness.
    """

    threshold: float = 1.46
    slope: float = 0.06
    peak_percentile: float = 99.95
    dark_floor: float = 0.58
    dark_gain: float = 1.6
    green_boost: float = 0.45


def reliability_factor(
    rgb: np.ndarray, params: PsychometricParameters
) -> np.ndarray:
    """How much of the model's threshold actually holds, per pixel.

    1.0 where the published model is accurate; below 1.0 in the dark,
    where real thresholds are tighter than the model believes.
    """
    lum = relative_luminance(ensure_color_array(rgb, "rgb"))
    return np.clip(params.dark_floor + params.dark_gain * lum, params.dark_floor, 1.0)


def green_masking_factor(
    rgb: np.ndarray, params: PsychometricParameters
) -> np.ndarray:
    """Threshold widening from surrounding green content, per pixel."""
    colors = ensure_color_array(rgb, "rgb")
    total = colors.sum(axis=-1)
    greenness = np.divide(
        colors[..., 1], total, out=np.full(total.shape, 1.0 / 3.0), where=total > 1e-12
    )
    return 1.0 + params.green_boost * greenness


def scene_exceedance(
    original_frames: list[np.ndarray],
    adjusted_frames: list[np.ndarray],
    eccentricity_deg: np.ndarray,
    model: DiscriminationModel | None = None,
    params: PsychometricParameters | None = None,
) -> float:
    """Population-average peak exceedance of a frame sequence.

    Computes, per pixel, the color-shift Mahalanobis distance under the
    *effective true* thresholds (model axes x reliability x green
    masking) and returns the robust peak over all pixels and frames.
    An individual observer's exceedance is this value divided by their
    sensitivity factor.
    """
    if len(original_frames) != len(adjusted_frames) or not original_frames:
        raise ValueError("need equal, non-empty frame lists")
    model = model if model is not None else default_model()
    params = params or PsychometricParameters()
    peaks = []
    for original, adjusted in zip(original_frames, adjusted_frames):
        if original.shape != adjusted.shape:
            raise ValueError(
                f"frame shape mismatch: {original.shape} vs {adjusted.shape}"
            )
        axes = model.semi_axes(original, eccentricity_deg)
        effective = (
            axes
            * reliability_factor(original, params)[..., None]
            * green_masking_factor(original, params)[..., None]
        )
        distances = mahalanobis(adjusted, original, effective)
        peaks.append(np.percentile(distances, params.peak_percentile))
    return float(np.max(peaks))


@dataclass(frozen=True)
class SimulatedObserver:
    """One simulated participant."""

    profile: ObserverProfile
    params: PsychometricParameters = PsychometricParameters()

    def detection_probability(self, population_exceedance: float) -> float:
        """Probability this observer reports artifacts for a trial."""
        if population_exceedance < 0:
            raise ValueError("exceedance must be non-negative")
        personal = population_exceedance / self.profile.sensitivity
        z = (personal - self.params.threshold) / self.params.slope
        # Clamp the logit to keep exp() well-behaved for extreme trials.
        return float(1.0 / (1.0 + np.exp(-np.clip(z, -60.0, 60.0))))

    def notices_artifacts(
        self, population_exceedance: float, rng: np.random.Generator
    ) -> bool:
        """Bernoulli draw of the trial outcome."""
        return bool(rng.random() < self.detection_probability(population_exceedance))
