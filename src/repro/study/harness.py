"""User-study harness (paper Sec. 5.2 / 6.3, Fig. 14).

Reproduces the protocol shape of the paper's study: every participant
views every scene (a short free-viewing sequence) once, in randomized
order, and reports whether they saw artifacts.  The paper reports, per
scene, how many of the 11 participants did *not* notice artifacts.

Our participants are :class:`~repro.study.observer.SimulatedObserver`
instances drawn from a population with realistic sensitivity spread;
each scene's stimulus is actually encoded with the perceptual encoder
and the per-pixel color shifts drive detection.  The harness is
deterministic in its seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.pipeline import PerceptualEncoder
from ..perception.calibration import sample_population
from ..scenes.display import QUEST2_DISPLAY, DisplayGeometry
from ..scenes.library import SCENE_NAMES, get_scene
from .observer import PsychometricParameters, SimulatedObserver, scene_exceedance

__all__ = ["StudyConfig", "SceneOutcome", "StudyResult", "run_user_study"]


@dataclass(frozen=True)
class StudyConfig:
    """Parameters of a simulated study run."""

    n_observers: int = 11
    height: int = 192
    width: int = 192
    n_frames: int = 3
    seed: int = 7
    scene_names: tuple[str, ...] = SCENE_NAMES
    display: DisplayGeometry = QUEST2_DISPLAY
    psychometric: PsychometricParameters = PsychometricParameters()

    def __post_init__(self):
        if self.n_observers <= 0:
            raise ValueError(f"n_observers must be positive, got {self.n_observers}")
        if self.n_frames <= 0:
            raise ValueError(f"n_frames must be positive, got {self.n_frames}")


@dataclass(frozen=True)
class SceneOutcome:
    """Per-scene study outcome.

    ``not_noticing`` is the count the paper's Fig. 14 plots: observers
    who saw no artifacts.
    """

    scene: str
    exceedance: float
    detection_probabilities: list[float]
    noticed: list[bool]

    @property
    def n_observers(self) -> int:
        return len(self.noticed)

    @property
    def not_noticing(self) -> int:
        return sum(1 for outcome in self.noticed if not outcome)


@dataclass(frozen=True)
class StudyResult:
    """Full study outcome across scenes and observers."""

    outcomes: list[SceneOutcome]
    observer_sensitivities: list[float] = field(default_factory=list)

    @property
    def mean_noticing(self) -> float:
        """Average number of observers noticing artifacts per scene
        (the paper reports 2.8 of 11, std 1.5)."""
        return float(
            np.mean([o.n_observers - o.not_noticing for o in self.outcomes])
        )

    @property
    def std_noticing(self) -> float:
        return float(
            np.std([o.n_observers - o.not_noticing for o in self.outcomes])
        )

    def by_scene(self) -> dict[str, SceneOutcome]:
        return {outcome.scene: outcome for outcome in self.outcomes}


def run_user_study(
    encoder: PerceptualEncoder | None = None, config: StudyConfig | None = None
) -> StudyResult:
    """Run the simulated study and collate Fig. 14's statistics.

    Each scene is rendered (``n_frames`` animation frames, left eye),
    encoded with the perceptual encoder at a centered gaze, and shown
    to every observer; detection draws are independent per observer
    and scene, as the paper's trials were.
    """
    config = config or StudyConfig()
    encoder = encoder if encoder is not None else PerceptualEncoder()
    rng = np.random.default_rng(config.seed)
    profiles = sample_population(config.n_observers, rng)
    observers = [
        SimulatedObserver(profile=p, params=config.psychometric) for p in profiles
    ]
    eccentricity = config.display.eccentricity_map(config.height, config.width)

    outcomes = []
    for name in config.scene_names:
        scene = get_scene(name)
        originals, adjusteds = [], []
        for frame_index in range(config.n_frames):
            frame = scene.render(config.height, config.width, frame=frame_index, eye="left")
            result = encoder.encode_frame(frame, eccentricity)
            originals.append(frame)
            adjusteds.append(result.adjusted_frame)
        exceedance = scene_exceedance(
            originals, adjusteds, eccentricity, model=encoder.model,
            params=config.psychometric,
        )
        probabilities = [obs.detection_probability(exceedance) for obs in observers]
        noticed = [obs.notices_artifacts(exceedance, rng) for obs in observers]
        outcomes.append(
            SceneOutcome(
                scene=name,
                exceedance=exceedance,
                detection_probabilities=probabilities,
                noticed=noticed,
            )
        )
    return StudyResult(
        outcomes=outcomes,
        observer_sensitivities=[p.sensitivity for p in profiles],
    )
