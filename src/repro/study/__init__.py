"""Simulated human-subject study (paper Sec. 5.2, 6.3, Fig. 14)."""

from .harness import SceneOutcome, StudyConfig, StudyResult, run_user_study
from .staircase import CalibrationRun, StaircaseConfig, calibrate_profile, run_staircase
from .observer import (
    PsychometricParameters,
    SimulatedObserver,
    green_masking_factor,
    reliability_factor,
    scene_exceedance,
)

__all__ = [
    "CalibrationRun",
    "StaircaseConfig",
    "calibrate_profile",
    "run_staircase",
    "SceneOutcome",
    "StudyConfig",
    "StudyResult",
    "run_user_study",
    "PsychometricParameters",
    "SimulatedObserver",
    "green_masking_factor",
    "reliability_factor",
    "scene_exceedance",
]
