"""Minimal real PNG file writer/reader (RGB8, no dependencies).

The baselines package already implements PNG's *compression* (filters +
DEFLATE) for bandwidth accounting; this module adds the container —
signature, IHDR/IDAT/IEND chunks with CRCs — so frames can be written
as genuine ``.png`` files any viewer opens.  Used by the Fig. 9
example to export original/adjusted image pairs for visual inspection,
and by tests as an end-to-end check of the PNG pipeline.

Only the subset we produce is supported on read: 8-bit RGB, non-
interlaced, single IDAT sequence.
"""

from __future__ import annotations

import struct
import zlib
from pathlib import Path

import numpy as np

from ..baselines.png_codec import png_filter_rows, png_unfilter_rows

__all__ = ["write_png", "read_png"]

_SIGNATURE = b"\x89PNG\r\n\x1a\n"
_COLOR_TYPE_RGB = 2


def _chunk(tag: bytes, payload: bytes) -> bytes:
    return (
        struct.pack(">I", len(payload))
        + tag
        + payload
        + struct.pack(">I", zlib.crc32(tag + payload) & 0xFFFFFFFF)
    )


def write_png(path, frame: np.ndarray, level: int = 6) -> int:
    """Write an ``(H, W, 3)`` uint8 frame as a standard PNG file.

    Returns the number of bytes written.  Uses the same adaptive
    per-row filtering as the bandwidth baseline, so file sizes match
    the accounting (plus the fixed container overhead).
    """
    arr = np.asarray(frame)
    if arr.ndim != 3 or arr.shape[2] != 3 or arr.dtype != np.uint8:
        raise ValueError(f"write_png expects (H, W, 3) uint8, got {arr.shape} {arr.dtype}")
    height, width = arr.shape[:2]

    filter_ids, filtered = png_filter_rows(arr)
    raw = bytearray()
    for y in range(height):
        raw.append(int(filter_ids[y]))
        raw.extend(filtered[y].tobytes())

    ihdr = struct.pack(">IIBBBBB", width, height, 8, _COLOR_TYPE_RGB, 0, 0, 0)
    blob = (
        _SIGNATURE
        + _chunk(b"IHDR", ihdr)
        + _chunk(b"IDAT", zlib.compress(bytes(raw), level))
        + _chunk(b"IEND", b"")
    )
    path = Path(path)
    path.write_bytes(blob)
    return len(blob)


def read_png(path) -> np.ndarray:
    """Read back a PNG written by :func:`write_png` (8-bit RGB only)."""
    data = Path(path).read_bytes()
    if not data.startswith(_SIGNATURE):
        raise ValueError(f"{path}: not a PNG file")
    offset = len(_SIGNATURE)
    width = height = None
    idat = bytearray()
    while offset < len(data):
        (length,) = struct.unpack_from(">I", data, offset)
        tag = data[offset + 4 : offset + 8]
        payload = data[offset + 8 : offset + 8 + length]
        expected_crc = struct.unpack_from(">I", data, offset + 8 + length)[0]
        if zlib.crc32(tag + payload) & 0xFFFFFFFF != expected_crc:
            raise ValueError(f"{path}: CRC mismatch in {tag!r} chunk")
        if tag == b"IHDR":
            width, height, depth, color_type, _, _, interlace = struct.unpack(
                ">IIBBBBB", payload
            )
            if depth != 8 or color_type != _COLOR_TYPE_RGB or interlace != 0:
                raise ValueError(
                    f"{path}: unsupported PNG (need 8-bit RGB non-interlaced)"
                )
        elif tag == b"IDAT":
            idat.extend(payload)
        elif tag == b"IEND":
            break
        offset += 12 + length
    if width is None or not idat:
        raise ValueError(f"{path}: missing IHDR or IDAT")

    stream = zlib.decompress(bytes(idat))
    row_bytes = width * 3
    if len(stream) != height * (1 + row_bytes):
        raise ValueError(f"{path}: IDAT length mismatch")
    filter_ids = np.empty(height, dtype=np.uint8)
    filtered = np.empty((height, row_bytes), dtype=np.uint8)
    for y in range(height):
        start = y * (1 + row_bytes)
        filter_ids[y] = stream[start]
        filtered[y] = np.frombuffer(stream, np.uint8, row_bytes, start + 1)
    return png_unfilter_rows(filter_ids, filtered, (height, width, 3))
