"""Binary PPM (P6) writer/reader — the zero-dependency escape hatch.

PPM is the simplest interchange format every image tool understands;
useful when debugging pipelines where even our PNG writer is suspect.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

__all__ = ["write_ppm", "read_ppm"]


def write_ppm(path, frame: np.ndarray) -> int:
    """Write an ``(H, W, 3)`` uint8 frame as binary PPM; returns bytes written."""
    arr = np.asarray(frame)
    if arr.ndim != 3 or arr.shape[2] != 3 or arr.dtype != np.uint8:
        raise ValueError(f"write_ppm expects (H, W, 3) uint8, got {arr.shape} {arr.dtype}")
    height, width = arr.shape[:2]
    blob = f"P6\n{width} {height}\n255\n".encode("ascii") + arr.tobytes()
    Path(path).write_bytes(blob)
    return len(blob)


def read_ppm(path) -> np.ndarray:
    """Read a binary PPM written by :func:`write_ppm`."""
    data = Path(path).read_bytes()
    parts = data.split(b"\n", 3)
    if len(parts) != 4 or parts[0] != b"P6":
        raise ValueError(f"{path}: not a binary PPM (P6) file")
    try:
        width, height = (int(v) for v in parts[1].split())
        maxval = int(parts[2])
    except ValueError as error:
        raise ValueError(f"{path}: malformed PPM header") from error
    if maxval != 255:
        raise ValueError(f"{path}: only 8-bit PPM supported, got maxval {maxval}")
    pixels = np.frombuffer(parts[3], dtype=np.uint8, count=height * width * 3)
    return pixels.reshape(height, width, 3).copy()
