"""Image file I/O: real PNG files and binary PPM, dependency-free."""

from .png_file import read_png, write_png
from .ppm import read_ppm, write_ppm

__all__ = ["read_png", "write_png", "read_ppm", "write_ppm"]
