"""Unified codec API: one registry, one result type, shared context.

Every frame coster in the library — NoCom/raw, BD and its variable- and
temporal-width variants, PNG-class lossless, SCC, and the perceptual
adjustment — is reachable by name through one registry and speaks one
contract::

    from repro.codecs import FrameContext, get_codec

    ctx = FrameContext(frame_linear)          # lazy sRGB / tiles / gaze
    result = get_codec("perceptual").encode(ctx)
    print(result.total_bits, result.bits_per_pixel)

:func:`encode_batch` runs several codecs over a frame sequence while
sharing each frame's context, and is the hook batch/async scaling work
builds on.
"""

from .base import Codec, EncodedFrame
from .context import FrameContext
from .registry import (
    DEFAULT_REGISTRY,
    CodecRegistry,
    available_codecs,
    get_codec,
    register,
    resolve_codec_name,
    streaming_codec_names,
)

from .batch import encode_batch, make_contexts
from .ladder import (
    DEFAULT_LADDER_SPEC,
    LadderEncodeCache,
    QualityLadder,
    QualityRung,
)

# Importing the wrappers registers every built-in codec.
from .wrappers import (
    BDCostCodec,
    NoComCodec,
    PerceptualCodec,
    PNGCostCodec,
    SCCCodec,
    TemporalBDCodec,
    VariableBDCostCodec,
)

__all__ = [
    "Codec",
    "EncodedFrame",
    "FrameContext",
    "CodecRegistry",
    "DEFAULT_REGISTRY",
    "register",
    "get_codec",
    "available_codecs",
    "resolve_codec_name",
    "streaming_codec_names",
    "encode_batch",
    "make_contexts",
    "LadderEncodeCache",
    "QualityLadder",
    "QualityRung",
    "DEFAULT_LADDER_SPEC",
    "NoComCodec",
    "BDCostCodec",
    "PNGCostCodec",
    "SCCCodec",
    "PerceptualCodec",
    "VariableBDCostCodec",
    "TemporalBDCodec",
]
