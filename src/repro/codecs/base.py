"""The unified codec interface: one result type, one encode contract.

Every way the library can answer "what does this frame cost" —
NoCom/raw, Base+Delta and its variable- and temporal-width variants,
PNG-class lossless, SCC, and the perceptual adjustment itself — is a
:class:`Codec`: a named object with a single ``encode(ctx) ->
EncodedFrame`` method over a shared :class:`~repro.codecs.context.
FrameContext`.  Experiments, the streaming simulator, and the baseline
shim all dispatch through this contract instead of carrying their own
per-codec plumbing.

:class:`EncodedFrame` is the common result: total bits (always),
an optional :class:`~repro.encoding.accounting.SizeBreakdown` for
codecs with a base/metadata/delta decomposition, an optional
reconstruction (what a decoder would display), and a free-form
metadata mapping.  The perceptual pipeline's
:class:`~repro.core.pipeline.FrameResult` subclasses it, so the richest
result in the library *is* an ``EncodedFrame``.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable

import numpy as np

from ..encoding.accounting import UNCOMPRESSED_BPP, SizeBreakdown

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .context import FrameContext

__all__ = ["EncodedFrame", "Codec"]


@dataclass(frozen=True, kw_only=True)
class EncodedFrame:
    """Result of encoding one frame with any codec.

    Attributes
    ----------
    codec:
        Registry name of the codec that produced this result.
    total_bits:
        Total encoded size in bits — the one number every codec can
        report.
    n_pixels:
        Source pixel count, the denominator for bits-per-pixel.
    breakdown:
        Component accounting for codecs with a base/metadata/delta
        structure (BD and friends); ``None`` for codecs without one
        (PNG, SCC).
    reconstruction:
        What a decoder would display, if the codec is lossy or
        modifies pixels (the perceptual codec's adjusted sRGB frame);
        ``None`` for pure accounting codecs.
    metadata:
        Free-form codec-specific extras (e.g. PNG compression level,
        SCC table width).
    """

    codec: str
    total_bits: int
    n_pixels: int
    breakdown: SizeBreakdown | None = None
    reconstruction: np.ndarray | None = None
    metadata: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self):
        if self.total_bits < 0:
            raise ValueError(f"total_bits must be non-negative, got {self.total_bits}")
        if self.n_pixels <= 0:
            raise ValueError(f"n_pixels must be positive, got {self.n_pixels}")
        if self.breakdown is not None:
            if self.breakdown.total_bits != self.total_bits:
                raise ValueError(
                    f"breakdown totals {self.breakdown.total_bits} bits but the "
                    f"frame claims {self.total_bits}"
                )
            if self.breakdown.n_pixels != self.n_pixels:
                raise ValueError(
                    f"breakdown covers {self.breakdown.n_pixels} pixels but the "
                    f"frame claims {self.n_pixels}"
                )

    @property
    def bits_per_pixel(self) -> float:
        """Average encoded bits per source pixel."""
        return self.total_bits / self.n_pixels

    @property
    def reduction_vs_uncompressed(self) -> float:
        """Fractional bandwidth reduction against raw 24 bpp frames."""
        return 1.0 - self.bits_per_pixel / UNCOMPRESSED_BPP

    def reduction_vs(self, other: "EncodedFrame") -> float:
        """Fractional traffic reduction of ``self`` relative to ``other``."""
        if other.n_pixels != self.n_pixels:
            raise ValueError(
                f"cannot compare encodings over different pixel counts: "
                f"{self.n_pixels} vs {other.n_pixels}"
            )
        if other.total_bits == 0:
            raise ValueError("reference encoding has zero size")
        return 1.0 - self.total_bits / other.total_bits


class Codec(abc.ABC):
    """A registered frame coster: ``encode(ctx) -> EncodedFrame``.

    Codecs are cheap to construct; per-codec parameters (tile size,
    compression level, wrapped encoder) are constructor keyword
    arguments, routed explicitly by
    :func:`~repro.codecs.registry.get_codec`.  Stateful codecs
    (temporal BD) override :meth:`reset` to drop inter-frame state.
    """

    #: Registry name; set by ``@register`` at class registration.
    name: str = ""

    #: Whether :meth:`encode` carries state between frames (temporal
    #: BD references the previous frame).  Stateful codecs must see one
    #: stream in display order, so batch parallelism keeps them serial.
    stateful: bool = False

    @abc.abstractmethod
    def encode(self, ctx: "FrameContext") -> EncodedFrame:
        """Encode one frame described by a shared context."""

    def encode_batch(self, ctxs: Iterable["FrameContext"]) -> list[EncodedFrame]:
        """Encode a frame sequence; contexts carry all shared caches.

        The default implementation simply loops; stateful codecs rely
        on the ordering (temporal BD references the previous frame).
        """
        return [self.encode(ctx) for ctx in ctxs]

    def reset(self) -> None:
        """Drop inter-frame state (no-op for stateless codecs)."""
