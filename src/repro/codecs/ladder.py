"""Quality ladders: ordered codec rungs for adaptive rate control.

DASH-style streaming adapts by switching between *representations* of
the same content at different bitrates.  This library's equivalent of a
representation is a codec choice: the registry already spans a wide
bitrate range — uncompressed NoCom at 24 bpp down to the perceptual
encoder's foveated Base+Delta — so a :class:`QualityLadder` simply
orders registered codecs from most to least expensive and tags each
rung with a modeled delivered-quality score.  Rate controllers
(:mod:`repro.streaming.adaptive`) pick a rung per frame; the ladder
owns what the rungs *are* and how to build their codecs consistently.

The quality scores are nominal, not measured: ``1.0`` means the
display receives pixel-exact frames (NoCom, PNG, BD are lossless) and
lower values model the perceptual headroom a rung spends — the
perceptual codec alters peripheral colors the paper argues are
indistinguishable, so its score is high but below the lossless rungs.
They exist to give adaptive policies a quality axis to report against,
exactly like the per-representation quality tables in DASH work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterator, Sequence

from .context import FrameContext
from .registry import get_codec, resolve_codec_name

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.pipeline import PerceptualEncoder
    from ..scenes.display import DisplayGeometry
    from .base import Codec

__all__ = [
    "QualityRung",
    "QualityLadder",
    "DEFAULT_LADDER_SPEC",
    "encode_stereo_bits",
    "encode_frame_rungs",
    "LadderEncodeCache",
]

#: ``(codec name, nominal quality)`` pairs of the default ladder, in
#: descending-bitrate order.  Lossless rungs score slightly apart so the
#: quality axis stays strictly monotone with cost; the perceptual rung
#: sits just below them (its adjustments are modeled as imperceptible
#: but not pixel-exact).
DEFAULT_LADDER_SPEC: tuple[tuple[str, float], ...] = (
    ("nocom", 1.00),
    ("png", 0.99),
    ("bd", 0.98),
    ("variable-bd", 0.96),
    ("perceptual", 0.93),
)


@dataclass(frozen=True)
class QualityRung:
    """One step of a quality ladder: a codec at a quality level.

    Parameters
    ----------
    name:
        Rung label used in reports (defaults to the codec name).
    codec:
        Canonical codec-registry name this rung encodes with.
    quality:
        Modeled delivered perceptual quality in ``(0, 1]``; ``1.0`` is
        pixel-exact.
    codec_kwargs:
        Extra constructor keyword arguments for the codec, stored as a
        tuple of ``(key, value)`` pairs so the rung stays hashable.
    """

    name: str
    codec: str
    quality: float
    codec_kwargs: tuple[tuple[str, Any], ...] = ()

    def __post_init__(self):
        if not self.name:
            raise ValueError("rung name must be non-empty")
        if not 0.0 < self.quality <= 1.0:
            raise ValueError(
                f"rung {self.name!r}: quality must be in (0, 1], got {self.quality}"
            )
        object.__setattr__(self, "codec", resolve_codec_name(self.codec))

    def build(self, perceptual_encoder: "PerceptualEncoder | None" = None) -> "Codec":
        """Instantiate this rung's codec.

        Mirrors the routing of
        :func:`repro.streaming.session.build_streaming_codec` so a rung
        and a pinned streaming session construct bit-identical codecs:
        the perceptual rung wraps ``perceptual_encoder`` and the BD
        variants inherit its tile size, keeping every rung's tiling
        consistent within one ladder.

        Parameters
        ----------
        perceptual_encoder:
            The session's perceptual encoder; a default
            :class:`~repro.core.pipeline.PerceptualEncoder` is built
            when omitted.

        Returns
        -------
        Codec
            A fresh codec instance (stateful codecs are not shared
            across streams).
        """
        from ..core.pipeline import PerceptualEncoder  # cycle guard

        kwargs = dict(self.codec_kwargs)
        encoder = (
            perceptual_encoder if perceptual_encoder is not None else PerceptualEncoder()
        )
        if self.codec == "perceptual":
            kwargs.setdefault("encoder", encoder)
        elif self.codec in ("bd", "variable-bd", "temporal-bd"):
            kwargs.setdefault("tile_size", encoder.tile_size)
        return get_codec(self.codec, **kwargs)


@dataclass(frozen=True)
class QualityLadder:
    """An ordered set of rungs, best quality (highest bitrate) first.

    Index ``0`` is the most expensive, highest-quality rung; stepping
    *down* the ladder (increasing index) trades quality for bits.
    Rungs must carry unique names and non-increasing quality, so the
    index order is simultaneously the bitrate order and the quality
    order — the invariant every rate controller relies on.

    Parameters
    ----------
    rungs:
        The rungs, descending by bitrate and quality.
    """

    rungs: tuple[QualityRung, ...]

    def __post_init__(self):
        rungs = tuple(self.rungs)
        object.__setattr__(self, "rungs", rungs)
        if not rungs:
            raise ValueError("a ladder needs at least one rung")
        names = [rung.name for rung in rungs]
        if len(set(names)) != len(names):
            duplicates = sorted({n for n in names if names.count(n) > 1})
            raise ValueError(f"duplicate rung names: {duplicates}")
        qualities = [rung.quality for rung in rungs]
        if any(a < b for a, b in zip(qualities, qualities[1:])):
            raise ValueError(
                "rung quality must be non-increasing from index 0 "
                f"(best first), got {qualities}"
            )
        # Built-codec cache (not a dataclass field: it is mutable
        # bookkeeping, irrelevant to equality/hashing).  One
        # (encoder, codec) entry per rung index — bounded by the
        # ladder length, so a long-lived ladder never accumulates
        # references to every encoder it has seen.
        object.__setattr__(self, "_codec_cache", {})

    @classmethod
    def default(cls) -> "QualityLadder":
        """The registry-derived default ladder.

        Builds :data:`DEFAULT_LADDER_SPEC` — NoCom, PNG, BD,
        variable BD, perceptual at descending bitrates — skipping any
        codec missing from the registry, so downstream registries with
        a subset of the built-ins still get a working ladder.
        """
        rungs = []
        for codec_name, quality in DEFAULT_LADDER_SPEC:
            try:
                canonical = resolve_codec_name(codec_name)
            except KeyError:
                continue
            rungs.append(QualityRung(name=canonical, codec=canonical, quality=quality))
        return cls(rungs=tuple(rungs))

    @property
    def names(self) -> tuple[str, ...]:
        """Rung names, best quality first."""
        return tuple(rung.name for rung in self.rungs)

    def index_of(self, name: str) -> int:
        """Index of the rung named (or encoding with codec) ``name``.

        Accepts a rung name, a codec-registry name, or an alias
        (``raw`` finds the ``nocom`` rung), so a
        :class:`~repro.streaming.server.ClientConfig` codec maps
        straight onto its pinned rung.

        Raises
        ------
        KeyError
            If no rung matches.
        """
        for index, rung in enumerate(self.rungs):
            if rung.name == name:
                return index
        try:
            canonical = resolve_codec_name(name)
        except KeyError:
            canonical = None
        if canonical is not None:
            for index, rung in enumerate(self.rungs):
                if rung.codec == canonical:
                    return index
        raise KeyError(f"no rung named {name!r}; have {list(self.names)}")

    def build_codec(
        self, index: int, perceptual_encoder: "PerceptualEncoder | None" = None
    ) -> "Codec":
        """The codec instance for the rung at ``index``.

        Stateless codecs are cached: as long as a rung is requested
        with the same ``perceptual_encoder`` (identity) as last time,
        the same instance is returned — so a controller sweep that
        rebuilds its ladder codecs per run (or a fleet that builds
        them per client) reuses instances instead of reconstructing
        the whole ladder each time.  The cache keeps one entry per
        rung (a different encoder simply replaces it), so a long-lived
        ladder stays bounded.  Stateful codecs (``Codec.stateful``,
        e.g. temporal BD) carry per-stream history, so they are never
        cached: each call returns a fresh instance.
        """
        cache: dict = self._codec_cache  # type: ignore[attr-defined]
        hit = cache.get(index)
        if hit is not None and hit[0] is perceptual_encoder:
            return hit[1]
        codec = self.rungs[index].build(perceptual_encoder)
        if not codec.stateful:
            cache[index] = (perceptual_encoder, codec)
        return codec

    def __len__(self) -> int:
        return len(self.rungs)

    def __iter__(self) -> Iterator[QualityRung]:
        return iter(self.rungs)

    def __getitem__(self, index: int) -> QualityRung:
        return self.rungs[index]


def encode_stereo_bits(
    codecs: Sequence["Codec"],
    eyes,
    eccentricity,
    display: "DisplayGeometry",
) -> tuple[int, ...]:
    """Stereo-payload bits of one frame under each codec.

    The one ladder-encode loop every rung-stream producer shares (the
    adaptive session, the fleet engine, and the calibration sweep):
    each eye gets a single :class:`~repro.codecs.context.FrameContext`
    reused across all codecs, so quantization and tiling run at most
    once per eye however many rungs are encoded.

    Parameters
    ----------
    codecs:
        Codec instances, one per ladder rung (order preserved).
    eyes:
        The per-eye linear-RGB frames (typically the left/right pair).
    eccentricity:
        Shared per-pixel eccentricity map for both eyes.
    display:
        Headset geometry forwarded to the contexts.

    Returns
    -------
    tuple of int
        Summed both-eye payload bits, one entry per codec.
    """
    ctxs = [
        FrameContext(eye, eccentricity=eccentricity, display=display) for eye in eyes
    ]
    return tuple(
        sum(codec.encode(ctx).total_bits for ctx in ctxs) for codec in codecs
    )


def encode_frame_rungs(
    scene,
    codecs: Sequence["Codec"],
    height: int,
    width: int,
    display: "DisplayGeometry",
    frame_index: int,
    fixation: tuple[float, float] | None = None,
) -> tuple[int, ...]:
    """Render one stereo frame and encode it with each codec.

    The one render → eccentricity-map → encode step shared by every
    per-frame rung producer (:class:`LadderEncodeCache` here, the
    engine's ``CodecStreamSource``), so fixation handling and context
    sharing cannot drift between them.

    Parameters
    ----------
    scene:
        The scene to render.
    codecs:
        Codec instances, one per rung (order preserved).
    height, width:
        Per-eye render resolution.
    display:
        Headset geometry for the eccentricity map.
    frame_index:
        Animation frame to render.
    fixation:
        Normalized gaze point; ``None`` keeps the centered default
        (the exact call a fixation-less session makes, so cached maps
        are shared).

    Returns
    -------
    tuple of int
        Summed both-eye payload bits, one entry per codec.
    """
    eyes = scene.render_stereo(height, width, frame=frame_index)
    if fixation is None:
        eccentricity = display.eccentricity_map(height, width)
    else:
        eccentricity = display.eccentricity_map(height, width, fixation=fixation)
    return encode_stereo_bits(codecs, eyes, eccentricity, display)


class LadderEncodeCache:
    """Memoized per-frame ladder payload sizes for one content setup.

    A rate-control study sweeps many policies (and schedulers) over
    *identical* content, and every sweep needs the same numbers: the
    encoded size of each frame at each ladder rung.  This cache binds
    one ``(scene, ladder, resolution, display)`` configuration, builds
    the rung codecs once, and encodes each requested ``(frame,
    fixation)`` at most once — so a three-controller sweep pays the
    ladder-encode cost of a single run.

    Only stateless rung codecs are cacheable: a stateful codec's
    payload for frame *k* depends on the frames it saw before, so its
    sizes cannot be reused across independently-controlled streams.

    Parameters
    ----------
    scene:
        The scene to render (a :class:`~repro.scenes.library.Scene`).
    ladder:
        The :class:`QualityLadder` whose rungs are encoded.
    height, width:
        Per-eye render resolution.
    display:
        Headset geometry for the eccentricity map.
    perceptual_encoder:
        Shared perceptual encoder forwarded to
        :meth:`QualityRung.build`.

    Attributes
    ----------
    encode_count:
        How many unique ``(frame, fixation)`` keys were actually
        rendered and encoded.
    hits:
        How many requests were answered from memory.
    """

    def __init__(
        self,
        scene,
        ladder: QualityLadder,
        height: int,
        width: int,
        display: "DisplayGeometry",
        perceptual_encoder: "PerceptualEncoder | None" = None,
    ):
        codecs = [ladder.build_codec(i, perceptual_encoder) for i in range(len(ladder))]
        stateful = [
            ladder[i].name for i, codec in enumerate(codecs) if codec.stateful
        ]
        if stateful:
            raise ValueError(
                f"stateful rung codecs cannot be cached across sweeps: {stateful}"
            )
        self.scene = scene
        self.ladder = ladder
        self.height = height
        self.width = width
        self.display = display
        self.encode_count = 0
        self.hits = 0
        self._codecs = codecs
        self._bits: dict[tuple[int, tuple[float, float] | None], tuple[int, ...]] = {}

    def rung_bits(
        self, frame_index: int, fixation: tuple[float, float] | None = None
    ) -> tuple[int, ...]:
        """Payload bits of one frame at every rung, best rung first.

        Parameters
        ----------
        frame_index:
            Animation frame to render.
        fixation:
            Normalized gaze point; ``None`` keeps the centered default
            (and matches what a fixation-less session encodes).

        Returns
        -------
        tuple of int
            Summed both-eye payload bits per rung, computed on first
            request and replayed from memory afterwards.
        """
        key = (frame_index, fixation)
        cached = self._bits.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        bits = encode_frame_rungs(
            self.scene, self._codecs, self.height, self.width, self.display,
            frame_index, fixation,
        )
        self._bits[key] = bits
        self.encode_count += 1
        return bits
