"""Lazily-evaluated per-frame encoding context.

Before the unified codec API, every coster re-derived the same
intermediates per call: the sRGB quantization of the linear frame, the
tile stack, and the gaze-dependent eccentricity map.  A
:class:`FrameContext` computes each of these once, on first use, and
hands the cached value to every codec that asks — so sweeping six
codecs over a frame quantizes it once and tiles it once per tile size.

A context can start from a *linear* frame (the renderer's output; what
the perceptual codec needs) or directly from a uint8 *sRGB* frame (the
baseline shim's input).  ``ctx.stats`` counts the expensive
derivations, which the batch tests use to assert the amortization
actually happens.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..color.srgb import encode_srgb8
from ..encoding.tiling import TileGrid, tile_frame
from ..scenes.display import QUEST2_DISPLAY, DisplayGeometry

if TYPE_CHECKING:  # pragma: no cover - typing only
    pass

__all__ = ["FrameContext"]


class FrameContext:
    """Shared, cached view of one frame for any number of codecs.

    Parameters
    ----------
    frame_linear:
        ``(H, W, 3)`` linear-RGB frame in ``[0, 1]`` (optional if
        ``srgb8`` is given; required by the perceptual codec).
    srgb8:
        ``(H, W, 3)`` uint8 sRGB frame.  If omitted it is quantized
        lazily from ``frame_linear`` on first access.
    eccentricity:
        Per-pixel eccentricity map in degrees, or a scalar applied to
        every pixel.  If omitted it is derived lazily from ``display``
        and ``fixation``.
    display:
        Display geometry used to derive the eccentricity map; defaults
        to the Quest 2 model.
    fixation:
        Gaze point in normalized image coordinates for the derived
        eccentricity map.
    """

    def __init__(
        self,
        frame_linear=None,
        *,
        srgb8=None,
        eccentricity=None,
        display: DisplayGeometry | None = None,
        fixation: tuple[float, float] = (0.5, 0.5),
    ):
        if frame_linear is None and srgb8 is None:
            raise ValueError("FrameContext needs frame_linear, srgb8, or both")

        self._frame_linear = None
        if frame_linear is not None:
            self._frame_linear = np.asarray(frame_linear, dtype=np.float64)
            self._check_shape(self._frame_linear, "frame_linear")

        self._srgb8 = None
        if srgb8 is not None:
            arr = np.asarray(srgb8)
            self._check_shape(arr, "srgb8")
            if arr.dtype != np.uint8:
                raise TypeError(f"srgb8 must be uint8, got dtype {arr.dtype}")
            if self._frame_linear is not None and arr.shape != self._frame_linear.shape:
                raise ValueError(
                    f"srgb8 {arr.shape} does not match frame_linear "
                    f"{self._frame_linear.shape}"
                )
            self._srgb8 = arr

        shape = (self._frame_linear if self._frame_linear is not None else self._srgb8).shape
        self.height: int = shape[0]
        self.width: int = shape[1]

        self.display = display if display is not None else QUEST2_DISPLAY
        self.fixation = (float(fixation[0]), float(fixation[1]))

        self._eccentricity = None
        if eccentricity is not None:
            ecc = np.asarray(eccentricity, dtype=np.float64)
            if ecc.ndim == 0:
                ecc = np.full((self.height, self.width), float(ecc))
            if ecc.shape != (self.height, self.width):
                raise ValueError(
                    f"eccentricity map {ecc.shape} does not match frame "
                    f"{(self.height, self.width)}"
                )
            self._eccentricity = ecc

        self._tiles: dict[int, tuple[np.ndarray, TileGrid]] = {}
        #: Derivation counters: how often each expensive step actually ran.
        self.stats = {"quantize": 0, "tile": 0, "eccentricity": 0}

    @staticmethod
    def _check_shape(arr: np.ndarray, name: str) -> None:
        if arr.ndim != 3 or arr.shape[2] != 3:
            raise ValueError(f"{name} must be (H, W, 3), got {arr.shape}")

    @classmethod
    def from_linear(cls, frame_linear, **kwargs) -> "FrameContext":
        """Context over a renderer-produced linear-RGB frame."""
        return cls(frame_linear, **kwargs)

    @classmethod
    def from_srgb8(cls, srgb8, **kwargs) -> "FrameContext":
        """Context over an already-quantized uint8 sRGB frame."""
        return cls(srgb8=srgb8, **kwargs)

    @property
    def n_pixels(self) -> int:
        """Pixel count of the frame (the bits-per-pixel denominator)."""
        return self.height * self.width

    @property
    def has_linear(self) -> bool:
        """Whether a linear-RGB frame is available (perceptual codecs)."""
        return self._frame_linear is not None

    @property
    def frame_linear(self) -> np.ndarray:
        """The linear-RGB frame; required by perceptual codecs."""
        if self._frame_linear is None:
            raise ValueError(
                "this FrameContext was built from an sRGB frame only; "
                "codecs that need linear RGB (perceptual) require "
                "FrameContext(frame_linear, ...)"
            )
        return self._frame_linear

    @property
    def srgb8(self) -> np.ndarray:
        """uint8 sRGB quantization, computed at most once."""
        if self._srgb8 is None:
            self.stats["quantize"] += 1
            self._srgb8 = encode_srgb8(self._frame_linear)
        return self._srgb8

    @property
    def eccentricity(self) -> np.ndarray:
        """Per-pixel eccentricity map (degrees), derived at most once."""
        if self._eccentricity is None:
            self.stats["eccentricity"] += 1
            self._eccentricity = self.display.eccentricity_map(
                self.height, self.width, fixation=self.fixation
            )
        return self._eccentricity

    def tiles(self, tile_size: int) -> tuple[np.ndarray, TileGrid]:
        """sRGB tile stack for ``tile_size``, computed at most once each."""
        key = int(tile_size)
        if key not in self._tiles:
            self.stats["tile"] += 1
            self._tiles[key] = tile_frame(self.srgb8, key)
        return self._tiles[key]
