"""Batch encoding: amortize context construction, fan out over cores.

Sweeping several codecs over a frame sequence used to rebuild the same
intermediates per (codec, frame) pair.  :func:`encode_batch` builds one
:class:`~repro.codecs.context.FrameContext` per frame and runs every
requested codec over the shared contexts, so each frame is sRGB
quantized at most once and tiled at most once per tile size, and the
eccentricity map (cached on the display geometry) is derived once for
the whole sequence.

With ``n_jobs > 1`` the per-frame work of *stateless* codecs fans out
over a process pool: contexts are split into contiguous chunks and
each worker runs **every** stateless codec over its chunk, so a context
crosses the process boundary once per batch (not once per codec) and
the shared-context amortization happens inside the worker exactly as it
does serially.  Results are reassembled in input order — bit-identical
to the serial path, because every frame's encoding depends only on its
own context.  Stateful codecs (temporal BD) reference the previous
frame and therefore always run serially, in order, whatever ``n_jobs``
says.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from ..parallel import gather, worker_pool
from .base import Codec, EncodedFrame
from .context import FrameContext
from .registry import get_codec, resolve_codec_name

__all__ = ["make_contexts", "encode_batch"]


def make_contexts(
    frames: Iterable,
    *,
    srgb8: bool = False,
    **context_kwargs,
) -> list[FrameContext]:
    """One :class:`FrameContext` per frame, sharing display/gaze setup.

    ``frames`` are linear-RGB frames unless ``srgb8=True`` (uint8 sRGB).
    Remaining keyword arguments (``display``, ``fixation``,
    ``eccentricity``) are forwarded to every context.
    """
    if srgb8:
        return [FrameContext.from_srgb8(frame, **context_kwargs) for frame in frames]
    return [FrameContext(frame, **context_kwargs) for frame in frames]


def _resolve_options(
    codec_options: Mapping[str, Mapping] | None,
    named: set[str],
    instances: set[str],
) -> dict[str, Mapping]:
    """Canonicalize ``codec_options`` keys and reject ones that cannot
    apply: unknown codecs, codecs not listed in this batch, and codecs
    passed as ready instances (their constructors already ran)."""
    options: dict[str, Mapping] = {}
    for key, value in (codec_options or {}).items():
        try:
            canonical = resolve_codec_name(key)
        except KeyError as exc:
            raise ValueError(
                f"codec_options key {key!r} is not a registered codec: {exc.args[0]}"
            ) from None
        if canonical in options:
            raise ValueError(
                f"codec_options lists codec {canonical!r} twice (key {key!r})"
            )
        if canonical in instances and canonical not in named:
            raise ValueError(
                f"codec_options for {canonical!r} cannot apply: it was passed as a "
                f"ready instance; construct it with those options instead"
            )
        if canonical not in named:
            raise ValueError(
                f"codec_options key {key!r} does not match any codec in this "
                f"batch ({', '.join(sorted(named | instances)) or 'none'})"
            )
        options[canonical] = value
    return options


def _encode_chunk(
    codecs: Sequence[tuple[str, Codec]], ctxs: Sequence[FrameContext]
) -> dict[str, list[EncodedFrame]]:
    """Process-pool worker: run every codec over one chunk of contexts.

    Encoding all codecs inside one task means each context's derived
    caches (sRGB, tiles) are computed once in the worker and shared
    across codecs, and each context is pickled once per batch.
    """
    results: dict[str, list[EncodedFrame]] = {}
    for key, codec in codecs:
        codec.reset()
        results[key] = [codec.encode(ctx) for ctx in ctxs]
    return results


def _encode_parallel(
    codecs: Sequence[tuple[str, Codec]],
    ctxs: Sequence[FrameContext],
    n_jobs: int,
) -> dict[str, list[EncodedFrame]]:
    """Fan stateless codecs' frames out over a process pool, in order."""
    n_chunks = min(n_jobs, len(ctxs))
    bounds = [round(i * len(ctxs) / n_chunks) for i in range(n_chunks + 1)]
    chunks = [ctxs[bounds[i] : bounds[i + 1]] for i in range(n_chunks)]
    with worker_pool(n_chunks) as pool:
        futures = [pool.submit(_encode_chunk, codecs, chunk) for chunk in chunks]
        parts = gather(futures)
    return {
        key: [frame for part in parts for frame in part[key]]
        for key, _ in codecs
    }


def encode_batch(
    frames: Iterable | None = None,
    ctxs: Sequence[FrameContext] | None = None,
    codecs: Sequence = ("perceptual",),
    *,
    codec_options: Mapping[str, Mapping] | None = None,
    n_jobs: int = 1,
    **context_kwargs,
) -> dict[str, list[EncodedFrame]]:
    """Encode a frame sequence with one or more codecs, sharing context.

    Parameters
    ----------
    frames:
        Linear-RGB frames to encode (ignored if ``ctxs`` is given).
    ctxs:
        Pre-built contexts, e.g. from :func:`make_contexts`; pass these
        to reuse caches across separate ``encode_batch`` calls.
    codecs:
        Codec names (registry lookup) and/or ready :class:`Codec`
        instances.
    codec_options:
        Per-codec constructor kwargs keyed by codec name, e.g.
        ``{"bd": {"tile_size": 8}}``.  Every key must name (or alias) a
        codec listed in ``codecs`` — a typo'd key raises instead of the
        batch silently running with defaults.
    n_jobs:
        Process-pool width for stateless codecs.  ``1`` (default) runs
        everything serially in-process; higher values split the frames
        into chunks, each worker running every stateless codec over its
        chunk.  Results are identical either way.  Stateful codecs
        ignore ``n_jobs``.
    context_kwargs:
        Forwarded to :func:`make_contexts` (``display``, ``fixation``,
        ``eccentricity``, ``srgb8``).

    Returns
    -------
    dict
        Canonical codec name -> list of :class:`EncodedFrame`, one per
        frame, in input order.
    """
    if ctxs is None:
        if frames is None:
            raise ValueError("encode_batch needs frames or ctxs")
        ctxs = make_contexts(frames, **context_kwargs)
    elif context_kwargs:
        raise ValueError("context kwargs have no effect when ctxs are pre-built")
    if not isinstance(n_jobs, int) or n_jobs < 1:
        raise ValueError(f"n_jobs must be a positive integer, got {n_jobs!r}")

    # Resolve the roster up front so codec_options can be validated
    # against it before any encoding work starts.
    roster: list[tuple[str, Codec | None, object]] = []
    named: set[str] = set()
    instance_names: set[str] = set()
    for entry in codecs:
        if isinstance(entry, Codec):
            key = entry.name or type(entry).__name__
            instance_names.add(key)
            roster.append((key, entry, entry))
        else:
            key = resolve_codec_name(entry)
            named.add(key)
            roster.append((key, None, entry))
    options = _resolve_options(codec_options, named, instance_names)

    instances: list[tuple[str, Codec]] = []
    for key, instance, _entry in roster:
        if any(key == seen for seen, _ in instances):
            raise ValueError(f"codec {key!r} listed twice in one batch")
        codec = instance if instance is not None else get_codec(key, **dict(options.get(key, {})))
        instances.append((key, codec))

    stateless = [(key, codec) for key, codec in instances if not codec.stateful]
    results: dict[str, list[EncodedFrame]] = {}
    if n_jobs > 1 and len(ctxs) > 1 and stateless:
        results.update(_encode_parallel(stateless, ctxs, n_jobs))
    else:
        for key, codec in stateless:
            codec.reset()
            results[key] = codec.encode_batch(ctxs)
    for key, codec in instances:
        if codec.stateful:
            codec.reset()
            results[key] = codec.encode_batch(ctxs)
    # Return in roster order regardless of the serial/parallel split.
    return {key: results[key] for key, _ in instances}
