"""Batch encoding: amortize context construction across a sequence.

Sweeping several codecs over a frame sequence used to rebuild the same
intermediates per (codec, frame) pair.  :func:`encode_batch` builds one
:class:`~repro.codecs.context.FrameContext` per frame and runs every
requested codec over the shared contexts, so each frame is sRGB
quantized at most once and tiled at most once per tile size, and the
eccentricity map (cached on the display geometry) is derived once for
the whole sequence.  This is also the entry point later scaling work
(sharding, async pipelines) hooks into: a batch is an explicit unit of
work over explicit shared state.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from .base import Codec, EncodedFrame
from .context import FrameContext
from .registry import get_codec, resolve_codec_name

__all__ = ["make_contexts", "encode_batch"]


def make_contexts(
    frames: Iterable,
    *,
    srgb8: bool = False,
    **context_kwargs,
) -> list[FrameContext]:
    """One :class:`FrameContext` per frame, sharing display/gaze setup.

    ``frames`` are linear-RGB frames unless ``srgb8=True`` (uint8 sRGB).
    Remaining keyword arguments (``display``, ``fixation``,
    ``eccentricity``) are forwarded to every context.
    """
    if srgb8:
        return [FrameContext.from_srgb8(frame, **context_kwargs) for frame in frames]
    return [FrameContext(frame, **context_kwargs) for frame in frames]


def encode_batch(
    frames: Iterable | None = None,
    ctxs: Sequence[FrameContext] | None = None,
    codecs: Sequence = ("perceptual",),
    *,
    codec_options: Mapping[str, Mapping] | None = None,
    **context_kwargs,
) -> dict[str, list[EncodedFrame]]:
    """Encode a frame sequence with one or more codecs, sharing context.

    Parameters
    ----------
    frames:
        Linear-RGB frames to encode (ignored if ``ctxs`` is given).
    ctxs:
        Pre-built contexts, e.g. from :func:`make_contexts`; pass these
        to reuse caches across separate ``encode_batch`` calls.
    codecs:
        Codec names (registry lookup) and/or ready :class:`Codec`
        instances.
    codec_options:
        Per-codec constructor kwargs keyed by codec name, e.g.
        ``{"bd": {"tile_size": 8}}``.
    context_kwargs:
        Forwarded to :func:`make_contexts` (``display``, ``fixation``,
        ``eccentricity``, ``srgb8``).

    Returns
    -------
    dict
        Canonical codec name -> list of :class:`EncodedFrame`, one per
        frame, in input order.
    """
    if ctxs is None:
        if frames is None:
            raise ValueError("encode_batch needs frames or ctxs")
        ctxs = make_contexts(frames, **context_kwargs)
    elif context_kwargs:
        raise ValueError("context kwargs have no effect when ctxs are pre-built")

    options = dict(codec_options or {})
    results: dict[str, list[EncodedFrame]] = {}
    for entry in codecs:
        if isinstance(entry, Codec):
            codec, key = entry, entry.name or type(entry).__name__
        else:
            key = resolve_codec_name(entry)
            codec = get_codec(key, **dict(options.get(key, options.get(entry, {}))))
        if key in results:
            raise ValueError(f"codec {key!r} listed twice in one batch")
        codec.reset()
        results[key] = codec.encode_batch(ctxs)
    return results
