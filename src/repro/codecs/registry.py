"""Codec registry: one place every frame coster is looked up from.

The registry maps case-insensitive names (plus aliases like ``raw`` for
``nocom`` and the Fig. 10 spellings ``NoCom``/``SCC``/``BD``/``PNG``)
to codec factories.  Consumers ask :func:`get_codec` for an instance —
per-codec keyword arguments are routed to the factory explicitly, so a
parameter a codec does not take (``tile_size`` on PNG) raises instead
of being silently dropped.

Codecs meaningful as *per-frame streaming encoders* register with a
``streaming`` display name; :func:`streaming_codec_names` is what
``repro.streaming.session.ENCODER_CHOICES`` is derived from.
"""

from __future__ import annotations

from typing import Callable, Iterator

from .base import Codec

__all__ = [
    "CodecRegistry",
    "DEFAULT_REGISTRY",
    "register",
    "get_codec",
    "available_codecs",
    "resolve_codec_name",
    "streaming_codec_names",
]


class CodecRegistry:
    """Name -> codec-factory mapping with aliases and streaming roster."""

    def __init__(self):
        self._factories: dict[str, Callable[..., Codec]] = {}
        self._aliases: dict[str, str] = {}
        self._streaming: list[str] = []

    def register(
        self,
        name: str,
        *,
        aliases: tuple[str, ...] = (),
        streaming: str | None = None,
    ) -> Callable[[type], type]:
        """Class decorator registering a codec factory under ``name``.

        ``aliases`` are alternative lookup spellings (all names are
        case-insensitive).  ``streaming`` marks the codec as a valid
        per-frame streaming encoder under the given display name (e.g.
        ``nocom`` streams as ``"raw"``).
        """
        key = name.lower()

        def decorator(factory: type) -> type:
            if key in self._factories or key in self._aliases:
                raise ValueError(f"codec name {name!r} is already registered")
            self._factories[key] = factory
            factory.name = key
            for alias in aliases:
                alias_key = alias.lower()
                if alias_key in self._factories or alias_key in self._aliases:
                    raise ValueError(f"codec alias {alias!r} is already registered")
                self._aliases[alias_key] = key
            if streaming is not None:
                self._streaming.append(streaming)
            return factory

        return decorator

    def resolve(self, name: str) -> str:
        """Canonical registry name for ``name`` (case/alias tolerant)."""
        key = str(name).lower()
        if key in self._factories:
            return key
        if key in self._aliases:
            return self._aliases[key]
        raise KeyError(
            f"unknown codec {name!r}; available: {', '.join(self.names())}"
        )

    def get(self, name: str, **kwargs) -> Codec:
        """Instantiate the codec registered under ``name``.

        Keyword arguments are the codec's own constructor parameters;
        an argument the codec does not accept raises ``TypeError``
        naming the codec, rather than being ignored.
        """
        canonical = self.resolve(name)
        try:
            return self._factories[canonical](**kwargs)
        except TypeError as exc:
            raise TypeError(f"codec {canonical!r}: {exc}") from exc

    def names(self) -> tuple[str, ...]:
        """Canonical codec names in registration order."""
        return tuple(self._factories)

    def streaming_names(self) -> tuple[str, ...]:
        """Display names of per-frame streaming encoders, in order."""
        return tuple(self._streaming)

    def __contains__(self, name: object) -> bool:
        try:
            self.resolve(str(name))
        except KeyError:
            return False
        return True

    def __iter__(self) -> Iterator[str]:
        return iter(self._factories)

    def __len__(self) -> int:
        return len(self._factories)


#: The library-wide registry all built-in codecs register into.
DEFAULT_REGISTRY = CodecRegistry()


def register(name: str, **kwargs) -> Callable[[type], type]:
    """``@register("name")`` — add a codec class to the default registry."""
    return DEFAULT_REGISTRY.register(name, **kwargs)


def get_codec(name: str, **kwargs) -> Codec:
    """Instantiate a codec from the default registry by (alias) name."""
    return DEFAULT_REGISTRY.get(name, **kwargs)


def available_codecs() -> tuple[str, ...]:
    """Canonical names of every registered codec."""
    return DEFAULT_REGISTRY.names()


def resolve_codec_name(name: str) -> str:
    """Canonicalize a codec name or alias (raises ``KeyError`` if unknown)."""
    return DEFAULT_REGISTRY.resolve(name)


def streaming_codec_names() -> tuple[str, ...]:
    """Names valid as ``simulate_session`` encoders, registry-derived."""
    return DEFAULT_REGISTRY.streaming_names()
