"""Built-in codecs: every existing coster behind the unified interface.

Each class adapts one of the repo's frame costers to the ``Codec``
contract over a shared :class:`~repro.codecs.context.FrameContext`:

* ``nocom`` (alias ``raw``) — uncompressed 24 bpp framebuffer;
* ``scc`` — Set-Cover Coding's constant index width;
* ``bd`` — fixed-width Base+Delta accounting;
* ``png`` — PNG-class filter+DEFLATE lossless coding;
* ``perceptual`` — the paper's color adjustment in front of BD (its
  result, :class:`~repro.core.pipeline.FrameResult`, *is* an
  :class:`~repro.codecs.base.EncodedFrame`);
* ``variable-bd`` — footnote 1's per-group delta widths;
* ``temporal-bd`` — inter-frame BD choosing spatial vs temporal deltas
  per tile-channel (stateful; meaningful through ``encode_batch``).

Codecs that operate on sRGB tiles pull them from the context cache, so
running several of them over one frame quantizes and tiles it once.
"""

from __future__ import annotations

from ..baselines.png_codec import png_compressed_bits
from ..baselines.scc import DEFAULT_SCC_ECCENTRICITY, scc_bits_per_pixel
from ..encoding.accounting import SizeBreakdown
from ..encoding.bd import bd_breakdown, bd_stream_bytes
from ..encoding.bd_temporal import TemporalBDAccountant
from ..encoding.bd_variable import variable_bd_breakdown, variable_bd_stream_bytes
from .base import Codec, EncodedFrame
from .context import FrameContext
from .registry import register

__all__ = [
    "NoComCodec",
    "SCCCodec",
    "BDCostCodec",
    "PNGCostCodec",
    "PerceptualCodec",
    "VariableBDCostCodec",
    "TemporalBDCodec",
]


@register("nocom", aliases=("raw",), streaming="raw")
class NoComCodec(Codec):
    """Uncompressed framebuffer: 24 bits per pixel, no transform."""

    def encode(self, ctx: FrameContext) -> EncodedFrame:
        """Cost the frame at a flat 24 bits per pixel."""
        breakdown = SizeBreakdown.uncompressed(ctx.n_pixels)
        return EncodedFrame(
            codec=self.name,
            total_bits=breakdown.total_bits,
            n_pixels=ctx.n_pixels,
            breakdown=breakdown,
        )


@register("bd", streaming="bd")
class BDCostCodec(Codec):
    """Fixed-width Base+Delta on the frame as-is (the BD baseline).

    By default this is pure accounting (the experiments only need
    sizes).  With ``payload=True`` the encode also emits the real
    bitstream — serialized by the vectorized kernels of
    :mod:`repro.encoding.packing` from the context's cached tile stack
    — as ``metadata["payload"]``, decodable with
    :class:`repro.encoding.bd.BDCodec`.
    """

    def __init__(self, tile_size: int = 4, payload: bool = False):
        if tile_size < 1:
            raise ValueError(f"tile_size must be >= 1, got {tile_size}")
        self.tile_size = tile_size
        self.payload = payload

    def encode(self, ctx: FrameContext) -> EncodedFrame:
        """Cost the frame under fixed-width Base+Delta tiling."""
        tiles, grid = ctx.tiles(self.tile_size)
        breakdown = bd_breakdown(tiles, n_pixels=ctx.n_pixels)
        metadata = {"tile_size": self.tile_size}
        if self.payload:
            metadata["payload"] = bd_stream_bytes(tiles, grid)
        return EncodedFrame(
            codec=self.name,
            total_bits=breakdown.total_bits,
            n_pixels=ctx.n_pixels,
            breakdown=breakdown,
            metadata=metadata,
        )


@register("png")
class PNGCostCodec(Codec):
    """PNG-class lossless coding (adaptive filters + DEFLATE)."""

    def __init__(self, level: int = 6):
        if not 0 <= level <= 9:
            raise ValueError(f"DEFLATE level must be in [0, 9], got {level}")
        self.level = level

    def encode(self, ctx: FrameContext) -> EncodedFrame:
        """Cost the frame as PNG filter+DEFLATE output bits."""
        bits = png_compressed_bits(ctx.srgb8, level=self.level)
        return EncodedFrame(
            codec=self.name,
            total_bits=bits,
            n_pixels=ctx.n_pixels,
            metadata={"level": self.level},
        )


@register("scc")
class SCCCodec(Codec):
    """Set-Cover Coding: constant table-index width per pixel."""

    def __init__(self, eccentricity: float = DEFAULT_SCC_ECCENTRICITY, model=None):
        self.eccentricity = float(eccentricity)
        self.model = model

    def encode(self, ctx: FrameContext) -> EncodedFrame:
        """Cost the frame at SCC's constant per-pixel index width."""
        bpp = scc_bits_per_pixel(self.eccentricity, model=self.model)
        return EncodedFrame(
            codec=self.name,
            total_bits=bpp * ctx.n_pixels,
            n_pixels=ctx.n_pixels,
            metadata={"bits_per_pixel": bpp, "table_eccentricity": self.eccentricity},
        )


@register("perceptual", streaming="perceptual")
class PerceptualCodec(Codec):
    """The paper's perceptual color adjustment in front of Base+Delta.

    Wraps a :class:`~repro.core.pipeline.PerceptualEncoder` (an existing
    instance via ``encoder=...``, or one built from the remaining
    keyword arguments) and returns its
    :class:`~repro.core.pipeline.FrameResult` directly — ``FrameResult``
    subclasses :class:`~repro.codecs.base.EncodedFrame`.
    """

    def __init__(self, encoder=None, **encoder_kwargs):
        # Imported here: core.pipeline itself imports codecs.base.
        from ..core.pipeline import PerceptualEncoder

        if encoder is not None and encoder_kwargs:
            raise TypeError("pass either an encoder instance or its kwargs, not both")
        self.encoder = encoder if encoder is not None else PerceptualEncoder(**encoder_kwargs)

    def encode(self, ctx: FrameContext) -> EncodedFrame:
        """Adjust colors perceptually, then cost the frame under BD."""
        return self.encoder.encode_frame(ctx.frame_linear, ctx.eccentricity)


@register("variable-bd", aliases=("varbd",), streaming="variable-bd")
class VariableBDCostCodec(Codec):
    """Variable-width Base+Delta (footnote 1): per-group delta widths.

    As with :class:`BDCostCodec`, ``payload=True`` additionally emits
    the real bitstream (vectorized) as ``metadata["payload"]``,
    decodable with :class:`repro.encoding.bd_variable.VariableBDCodec`.
    """

    def __init__(self, tile_size: int = 4, group_size: int = 4, payload: bool = False):
        if tile_size < 1:
            raise ValueError(f"tile_size must be >= 1, got {tile_size}")
        if group_size < 1:
            raise ValueError(f"group_size must be >= 1, got {group_size}")
        self.tile_size = tile_size
        self.group_size = group_size
        self.payload = payload

    def encode(self, ctx: FrameContext) -> EncodedFrame:
        """Cost the frame under per-group variable-width Base+Delta."""
        tiles, grid = ctx.tiles(self.tile_size)
        breakdown = variable_bd_breakdown(tiles, self.group_size, n_pixels=ctx.n_pixels)
        metadata = {"tile_size": self.tile_size, "group_size": self.group_size}
        if self.payload:
            metadata["payload"] = variable_bd_stream_bytes(tiles, grid, self.group_size)
        return EncodedFrame(
            codec=self.name,
            total_bits=breakdown.total_bits,
            n_pixels=ctx.n_pixels,
            breakdown=breakdown,
            metadata=metadata,
        )


@register("temporal-bd", aliases=("tbd",))
class TemporalBDCodec(Codec):
    """Inter-frame BD: spatial vs previous-frame deltas per tile-channel.

    Stateful across :meth:`encode` calls — feed it one stream of frames
    in display order (``encode_batch`` resets first, so a batch is one
    clean sequence).  Call :meth:`reset` on a scene cut.
    """

    stateful = True

    def __init__(self, tile_size: int = 4):
        if tile_size < 1:
            raise ValueError(f"tile_size must be >= 1, got {tile_size}")
        self.tile_size = tile_size
        self._accountant = TemporalBDAccountant()

    def encode(self, ctx: FrameContext) -> EncodedFrame:
        """Cost the frame against spatial *and* previous-frame deltas."""
        tiles, _grid = ctx.tiles(self.tile_size)
        breakdown = self._accountant.push(tiles, n_pixels=ctx.n_pixels)
        return EncodedFrame(
            codec=self.name,
            total_bits=breakdown.total_bits,
            n_pixels=ctx.n_pixels,
            breakdown=breakdown,
            metadata={"tile_size": self.tile_size},
        )

    def encode_batch(self, ctxs) -> list[EncodedFrame]:
        """Encode a sequence as one clean stream (state reset first)."""
        self.reset()
        return super().encode_batch(ctxs)

    def reset(self) -> None:
        """Forget the previous frame (call on a scene cut)."""
        self._accountant = TemporalBDAccountant()
