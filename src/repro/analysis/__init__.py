"""Project-specific static analysis (``repro lint``).

An AST-based invariant linter for the conventions this codebase
depends on but no generic tool checks:

* **RPR1xx** — unit-suffix dimensional analysis (``_s`` vs ``_ms`` vs
  ``_bits`` mixing in arithmetic, call sites, and returns);
* **RPR2xx** — determinism (no wall clocks or global RNGs in the
  deterministic packages; seeds flow through
  ``numpy.random.Generator``/``SeedSequence``);
* **RPR3xx** — asyncio safety in the serving path (no blocking calls
  in ``async def``, no dropped tasks, no ``write()`` without
  ``drain()``);
* **RPR4xx** — kernel purity (no per-element Python loops in
  vectorized kernel modules).

Run ``python -m repro.analysis`` (stdlib-only, fast) or ``repro
lint``.  See ``docs/analysis.md`` for the catalog, suppression, and
baseline workflow.
"""

from .driver import (
    AnalysisReport,
    check_file,
    check_source,
    collect_files,
    load_baseline,
    run,
    write_baseline,
)
from .findings import Finding, ModuleContext, RULES, rule_catalog
from .cli import main

__all__ = [
    "AnalysisReport",
    "Finding",
    "ModuleContext",
    "RULES",
    "check_file",
    "check_source",
    "collect_files",
    "load_baseline",
    "main",
    "rule_catalog",
    "run",
    "write_baseline",
]
