"""Command line for the invariant linter: ``repro lint`` and
``python -m repro.analysis``.

Exit codes: 0 clean (or every finding baselined), 1 new findings,
2 usage error.  ``--json`` emits a machine-readable report for CI
artifacts; the default text form prints one clickable
``file:line:col: RULE message`` per finding.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

from .driver import run, write_baseline
from .findings import rule_catalog

__all__ = ["main"]

DEFAULT_BASELINE = "analysis-baseline.json"


def _default_jobs() -> int:
    return min(8, os.cpu_count() or 1)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="Project invariant linter: unit suffixes, determinism, "
                    "asyncio safety, kernel purity (rule ids RPR1xx-RPR4xx).",
    )
    parser.add_argument(
        "paths", nargs="*", default=None,
        help="files or directories to check (default: src/ under the cwd, "
             "else the installed repro package)",
    )
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit a machine-readable JSON report instead of text",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="PATH",
        help=f"baseline file of accepted findings (default: {DEFAULT_BASELINE} "
             "next to the checked tree when present)",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline to absorb every current finding and exit 0",
    )
    parser.add_argument(
        "--select", default=None, metavar="RPR1xx[,RPR2xx...]",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help=f"parallel file checkers (default: min(8, cpus) = {_default_jobs()})",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def _default_paths() -> list[str]:
    """``src/`` when run from a checkout, else the installed package."""
    src = Path.cwd() / "src"
    if src.is_dir():
        return [str(src)]
    return [str(Path(__file__).resolve().parent.parent)]


def _resolve_baseline(args: argparse.Namespace, paths: list[str]) -> Path | None:
    if args.baseline is not None:
        return Path(args.baseline)
    # Look next to the checked tree, then in the cwd.
    for candidate in (Path(paths[0]).resolve().parent / DEFAULT_BASELINE,
                      Path.cwd() / DEFAULT_BASELINE):
        if candidate.is_file():
            return candidate
    if args.update_baseline:
        return Path.cwd() / DEFAULT_BASELINE
    return None


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)

    if args.list_rules:
        width = max(len(rid) for rid, _ in rule_catalog())
        for rule_id, description in rule_catalog():
            print(f"{rule_id:<{width}}  {description}")
        return 0

    paths = list(args.paths) if args.paths else _default_paths()
    rules = None
    if args.select:
        rules = tuple(tok.strip().upper() for tok in args.select.split(",") if tok.strip())
        unknown = [r for r in rules if r not in dict(rule_catalog())]
        if unknown:
            print(f"unknown rule id {unknown[0]!r}; see --list-rules", file=sys.stderr)
            return 2
    baseline = _resolve_baseline(args, paths)
    jobs = args.jobs if args.jobs is not None else _default_jobs()
    if jobs < 1:
        print("--jobs must be >= 1", file=sys.stderr)
        return 2

    try:
        report = run(paths, baseline=baseline, rules=rules, jobs=jobs)
    except FileNotFoundError as exc:
        print(str(exc), file=sys.stderr)
        return 2

    if args.update_baseline:
        target = baseline if baseline is not None else Path.cwd() / DEFAULT_BASELINE
        write_baseline(target, report.fingerprints)
        print(
            f"baseline {target} updated with {len(report.fingerprints)} finding(s)",
            file=sys.stderr,
        )
        return 0

    if args.as_json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        for finding in report.findings:
            print(finding.format())
    summary = (
        f"repro lint: {len(report.findings)} finding(s) in {report.n_files} file(s)"
    )
    if report.baselined:
        summary += f" ({len(report.baselined)} baselined)"
    print(summary, file=sys.stderr)
    return report.exit_code


if __name__ == "__main__":
    raise SystemExit(main())
