"""``python -m repro.analysis`` — run the invariant linter."""

from .cli import main

raise SystemExit(main())
