"""RPR4xx — kernel purity (no per-element Python loops).

PR 5 replaced the per-field bitstream loops with NumPy bit-plane
kernels for an ~18x speedup; a kernel module regressing to a
per-element Python loop silently undoes that.  The discriminator is
the *extent* of the loop: iterating bit planes (``range(width)``) or
distinct widths (``np.unique(widths)``) is O(small-constant) and
fine; iterating an extent tied to the data size — ``range(len(x))``,
``range(x.size)``, ``range(x.shape[0])``, ``np.ndindex(...)``, or an
ndarray-annotated parameter directly — executes interpreter-level
Python once per element and is flagged as **RPR401**.

A module is a kernel module when the driver's configuration says so
(``repro.encoding.packing`` by default) or when it declares itself
with a ``# repro: kernel-module`` pragma comment.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .determinism import dotted_name
from .findings import Finding, ModuleContext, register_rule

__all__ = ["KERNEL_MODULES", "KERNEL_PRAGMA", "check_rpr401"]

#: Modules promising vectorized (no per-element Python) inner loops.
KERNEL_MODULES: tuple[str, ...] = ("repro.encoding.packing",)

#: Comment pragma opting any module into the RPR4xx checks.
KERNEL_PRAGMA = "# repro: kernel-module"

#: Attributes of an array whose appearance in a loop extent marks the
#: loop as data-sized.
_SIZE_ATTRS = frozenset({"size", "shape"})


def _mentions_data_extent(node: ast.AST) -> bool:
    """Whether an expression's value scales with an array's size."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call) and isinstance(sub.func, ast.Name):
            if sub.func.id == "len":
                return True
        if isinstance(sub, ast.Attribute) and sub.attr in _SIZE_ATTRS:
            return True
    return False


def _ndarray_params(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """Parameter names annotated as numpy arrays."""
    names: set[str] = set()
    for arg in (*fn.args.posonlyargs, *fn.args.args, *fn.args.kwonlyargs):
        if arg.annotation is None:
            continue
        text = ast.unparse(arg.annotation)
        if "np.ndarray" in text or "numpy.ndarray" in text:
            names.add(arg.arg)
    return names


def _loop_is_per_element(node: ast.For | ast.While, array_names: set[str]) -> str | None:
    """A reason string when the loop runs once per array element."""
    if isinstance(node, ast.While):
        if _mentions_data_extent(node.test):
            return "`while` over a data-sized extent"
        return None
    it = node.iter
    dotted = dotted_name(it.func) if isinstance(it, ast.Call) else None
    if dotted in ("range", "enumerate"):
        inner = it.args[0] if it.args else None
        if any(_mentions_data_extent(arg) for arg in it.args):
            return f"`{dotted}()` over a data-sized extent"
        if dotted == "enumerate" and isinstance(inner, ast.Name) and inner.id in array_names:
            return "`enumerate()` over an ndarray parameter"
        return None
    if dotted in ("np.ndindex", "numpy.ndindex", "np.nditer", "numpy.nditer"):
        return f"`{dotted}()` iterates every element"
    if isinstance(it, ast.Name) and it.id in array_names:
        return "direct iteration over an ndarray parameter"
    return None


def _scan(
    node: ast.AST, ctx: ModuleContext, scope: str, array_names: set[str]
) -> Iterator[Finding]:
    """Depth-first loop scan attributing each loop to its nearest scope."""
    for child in ast.iter_child_nodes(node):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield from _scan(child, ctx, child.name, _ndarray_params(child))
            continue
        if isinstance(child, (ast.For, ast.While)):
            reason = _loop_is_per_element(child, array_names)
            if reason:
                yield Finding(
                    ctx.path, child.lineno, child.col_offset, "RPR401",
                    f"{reason} in kernel `{scope}`: per-element Python "
                    "undoes the vectorized kernels; express this as array "
                    "operations (bit-plane/`np.packbits` style)",
                )
        yield from _scan(child, ctx, scope, array_names)


@register_rule("RPR401", "per-element Python loop in a kernel module")
def check_rpr401(tree: ast.Module, ctx: ModuleContext) -> Iterator[Finding]:
    if not ctx.kernel:
        return
    yield from _scan(tree, ctx, "<module>", set())
