"""RPR3xx — asyncio safety for the serving path.

``repro.serving`` runs every connection on one event loop; a single
blocking call stalls *all* clients, a dropped task reference lets the
garbage collector silently cancel work, and a ``write()`` that never
reaches ``drain()`` disables backpressure and buffers without bound.
All three are lexically checkable:

* **RPR301** — a known-blocking call (``time.sleep``, builtin
  ``open``, ``subprocess.*``, ``socket.create_connection``, a
  ``Future.result()``) in the immediate body of an ``async def``.
  Nested ``def``/``lambda`` bodies are exempt: wrapping blocking work
  in a callable for ``run_in_executor`` is the *fix*, not the bug.
* **RPR302** — ``asyncio.create_task(...)`` as a bare expression
  statement: the task is neither awaited nor retained, so it can be
  garbage-collected mid-flight and its exceptions vanish.
* **RPR303** — an ``async def`` that calls ``.write(...)`` but never
  calls ``.drain(...)`` anywhere in its body (nested sync helpers
  included): the transport buffer grows unboundedly under a slow
  reader.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .determinism import dotted_name
from .findings import Finding, ModuleContext, register_rule

__all__ = ["check_rpr301", "check_rpr302", "check_rpr303"]

_BLOCKING_DOTTED = frozenset({
    "time.sleep",
    "subprocess.run", "subprocess.call", "subprocess.check_call",
    "subprocess.check_output", "subprocess.Popen",
    "socket.create_connection", "socket.getaddrinfo",
    "urllib.request.urlopen",
})
_BLOCKING_BUILTINS = frozenset({"open", "input"})


def _immediate_body(fn: ast.AsyncFunctionDef) -> Iterator[ast.AST]:
    """Nodes lexically inside ``fn`` but not inside nested functions."""
    stack: list[ast.AST] = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _whole_body(fn: ast.AsyncFunctionDef) -> Iterator[ast.AST]:
    """Nodes inside ``fn`` including nested *sync* helpers (they run on
    the loop thread too); nested ``async def`` get their own check."""
    stack: list[ast.AST] = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        if isinstance(node, ast.AsyncFunctionDef):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _async_defs(tree: ast.Module) -> Iterator[ast.AsyncFunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, ast.AsyncFunctionDef):
            yield node


@register_rule("RPR301", "blocking call in the immediate body of an `async def`")
def check_rpr301(tree: ast.Module, ctx: ModuleContext) -> Iterator[Finding]:
    for fn in _async_defs(tree):
        for node in _immediate_body(fn):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func)
            if dotted in _BLOCKING_DOTTED or dotted in _BLOCKING_BUILTINS:
                yield Finding(
                    ctx.path, node.lineno, node.col_offset, "RPR301",
                    f"`{dotted}()` blocks the event loop inside "
                    f"`async def {fn.name}`; await the async equivalent or "
                    "push it through `run_in_executor`",
                )
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "result"
                and not node.args
            ):
                receiver = dotted_name(node.func.value) or "<expr>"
                yield Finding(
                    ctx.path, node.lineno, node.col_offset, "RPR301",
                    f"`{receiver}.result()` blocks (or raises) inside "
                    f"`async def {fn.name}`; await the future instead",
                )


@register_rule("RPR302", "`asyncio.create_task` result dropped (task may be GC'd)")
def check_rpr302(tree: ast.Module, ctx: ModuleContext) -> Iterator[Finding]:
    for node in ast.walk(tree):
        if not (isinstance(node, ast.Expr) and isinstance(node.value, ast.Call)):
            continue
        dotted = dotted_name(node.value.func)
        if dotted in ("asyncio.create_task", "asyncio.ensure_future"):
            yield Finding(
                ctx.path, node.lineno, node.col_offset, "RPR302",
                f"`{dotted}(...)` result is discarded: the event loop keeps "
                "only a weak reference, so the task can be garbage-collected "
                "mid-flight; retain it and await/cancel it on shutdown",
            )


@register_rule("RPR303", "`.write()` in an `async def` with no reachable `.drain()`")
def check_rpr303(tree: ast.Module, ctx: ModuleContext) -> Iterator[Finding]:
    for fn in _async_defs(tree):
        writes: list[ast.Call] = []
        has_drain = False
        for node in _whole_body(fn):
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                if node.func.attr == "write":
                    writes.append(node)
                elif node.func.attr == "drain":
                    has_drain = True
        if has_drain:
            continue
        for call in writes:
            receiver = dotted_name(call.func.value) or "<expr>"
            yield Finding(
                ctx.path, call.lineno, call.col_offset, "RPR303",
                f"`{receiver}.write(...)` in `async def {fn.name}` with no "
                "`drain()` anywhere in the function: backpressure is "
                "disabled and the send buffer can grow without bound",
            )
