"""Finding records and the rule registry for :mod:`repro.analysis`.

A *finding* is one violation at one source location; a *rule* is a
callable that takes a parsed module plus its :class:`ModuleContext`
and yields findings.  Rules register themselves by ID family
(``RPR1xx`` units, ``RPR2xx`` determinism, ``RPR3xx`` asyncio safety,
``RPR4xx`` kernel purity) so the driver can run them all, or a
selected subset, over any file.

Everything in this package is stdlib-only: the linter must run in a
bare interpreter (CI bootstrap, pre-commit) without importing numpy
or any of the modules it checks.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator

__all__ = [
    "Finding",
    "ModuleContext",
    "Rule",
    "RULES",
    "register_rule",
    "rule_catalog",
]


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    Ordering is (path, line, col, rule) so sorted output groups by
    file and reads top to bottom.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str

    def format(self) -> str:
        """Clickable ``file:line:col: RULE message`` text form."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def fingerprint(self, source_line: str = "") -> str:
        """Location-drift-tolerant identity used by the baseline file.

        Keyed on file, rule, and the *text* of the offending line
        rather than its number, so unrelated edits above a baselined
        finding do not resurrect it.
        """
        return f"{self.path}::{self.rule}::{source_line.strip()}"


@dataclass
class ModuleContext:
    """Everything a rule may need to know about the file under check."""

    #: Path as reported in findings (repo-relative when possible).
    path: str
    #: Dotted module name (``repro.streaming.engine``); drives the
    #: per-package scoping of the determinism rules.
    module: str
    #: Source text, for line lookups in messages/fingerprints.
    source: str
    #: True when the module is a vectorized-kernel module (RPR4xx).
    kernel: bool = False
    #: Source split into lines, computed lazily by the driver.
    lines: list[str] = field(default_factory=list)

    def in_package(self, packages: Iterable[str]) -> bool:
        """Whether :attr:`module` lives under any of ``packages``."""
        return any(
            self.module == pkg or self.module.startswith(pkg + ".")
            for pkg in packages
        )


#: A rule inspects one parsed module and yields findings.
Rule = Callable[[ast.Module, ModuleContext], Iterator[Finding]]

#: rule id -> (rule callable, one-line description).  Populated by the
#: rule modules at import time via :func:`register_rule`.
RULES: dict[str, tuple[Rule, str]] = {}


def register_rule(rule_id: str, description: str) -> Callable[[Rule], Rule]:
    """Class/function decorator adding a checker to :data:`RULES`."""

    def deco(fn: Rule) -> Rule:
        if rule_id in RULES:
            raise ValueError(f"duplicate rule id {rule_id!r}")
        RULES[rule_id] = (fn, description)
        return fn

    return deco


def rule_catalog() -> list[tuple[str, str]]:
    """``(rule id, description)`` pairs, sorted by id (for --list/docs)."""
    return sorted((rid, desc) for rid, (_, desc) in RULES.items())
