"""Unit-suffix vocabulary shared by the RPR1xx dimensional rules.

The codebase's convention: every quantity with a physical dimension
carries its unit as a trailing name token — ``time_s``, ``jitter_ms``,
``payload_bits``, ``bandwidth_mbps``.  This module parses that
convention: :func:`unit_of` maps an identifier to its unit suffix (or
``None``), and :data:`DIMENSIONS` groups suffixes into dimensions so
rules can distinguish a *convertible* mismatch (``_s`` vs ``_ms`` —
same dimension, factor missing) from a *nonsensical* one (``_s`` vs
``_bits``).
"""

from __future__ import annotations

import ast

__all__ = ["DIMENSIONS", "SUFFIX_DIMENSION", "unit_of", "unit_of_node", "describe"]

#: dimension -> unit suffixes, in the codebase's naming convention.
DIMENSIONS: dict[str, tuple[str, ...]] = {
    "time": ("s", "ms", "us", "ns"),
    "frequency": ("hz", "khz"),
    "data": ("bits", "bytes"),
    "data rate": ("bps", "kbps", "mbps", "gbps"),
    # Compound per-second suffixes used by throughput metrics; listed
    # so `encode_throughput_mpixels_s` is *not* mistaken for seconds.
    "pixel rate": ("pixels_s", "mpixels_s"),
}

#: suffix -> dimension, longest suffixes first so compound suffixes
#: (``mpixels_s``) win over their tails (``s``).
SUFFIX_DIMENSION: dict[str, str] = {
    suffix: dim for dim, suffixes in DIMENSIONS.items() for suffix in suffixes
}

_ORDERED_SUFFIXES = sorted(SUFFIX_DIMENSION, key=lambda s: -len(s))


def unit_of(name: str) -> str | None:
    """The unit suffix of ``name``, or ``None`` if it carries none.

    A suffix counts only when it is a complete trailing ``_``-token
    (``start_s`` yes, ``axis`` no, ``n_bits`` yes) and the name is
    more than the bare suffix (a variable literally named ``s`` or
    ``bits`` carries no unit claim).
    """
    for suffix in _ORDERED_SUFFIXES:
        if name == suffix:
            return None
        if name.endswith("_" + suffix):
            return suffix
    return None


def unit_of_node(node: ast.AST) -> tuple[str, str] | None:
    """``(identifier, suffix)`` for a name-like AST node, else ``None``.

    Resolves plain names, terminal attributes (``link.jitter_ms``),
    and subscripts of either (``times_s[0]`` is still seconds).
    Calls, arithmetic, and anything else return ``None`` — an
    expression that *computes* is assumed to convert.
    """
    if isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Name):
        ident = node.id
    elif isinstance(node, ast.Attribute):
        ident = node.attr
    else:
        return None
    suffix = unit_of(ident)
    return (ident, suffix) if suffix else None


def describe(suffix_a: str, suffix_b: str) -> str:
    """Human phrasing of a mismatch for rule messages."""
    dim_a = SUFFIX_DIMENSION[suffix_a]
    dim_b = SUFFIX_DIMENSION[suffix_b]
    if dim_a == dim_b:
        return (
            f"both are {dim_a} but in different units; "
            "convert explicitly (multiply/divide by the factor)"
        )
    return f"{dim_a} vs {dim_b} — these quantities are not comparable"
