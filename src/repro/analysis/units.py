"""RPR1xx — unit-suffix dimensional analysis.

The convention that ``_s``/``_ms``/``_bits``/... names carry their
unit is only worth anything if no expression silently mixes them.
These rules flag the three ways a mix-up enters the tree:

* **RPR101** — additive arithmetic or comparison between two names
  with conflicting unit suffixes (``backlog_s + jitter_ms``).
  Multiplication and division are exempt: they legitimately *change*
  dimension (``payload_bits / time_s`` is a rate).  An operand that is
  itself arithmetic (``jitter_ms / 1000.0``) is assumed to be the
  conversion and is not matched.
* **RPR102** — a call-site keyword whose name claims one unit bound to
  a value claiming another (``f(timeout_s=delay_ms)``).
* **RPR103** — a function whose *name* claims a unit returning a bare
  name that claims a different one (``def duration_ms(): return
  elapsed_s``).
* **RPR104** — a positional argument with a unit suffix passed to a
  parameter with a conflicting suffix, for callees resolvable inside
  the same module (module-level functions called by name, methods
  called via ``self.``).
"""

from __future__ import annotations

import ast
from typing import Iterator

from .findings import Finding, ModuleContext, register_rule
from .unitnames import describe, unit_of, unit_of_node

__all__ = ["check_rpr101", "check_rpr102", "check_rpr103", "check_rpr104"]

#: Operators whose operands must share a unit.  Mult/Div/Pow/etc. are
#: dimension-changing and deliberately absent.
_ADDITIVE = (ast.Add, ast.Sub)
_COMPARISONS = (ast.Lt, ast.LtE, ast.Gt, ast.GtE, ast.Eq, ast.NotEq)


def _mismatch(node_a: ast.AST, node_b: ast.AST) -> tuple[str, str, str, str] | None:
    """(name_a, unit_a, name_b, unit_b) when both sides claim units that differ."""
    a = unit_of_node(node_a)
    b = unit_of_node(node_b)
    if a is None or b is None or a[1] == b[1]:
        return None
    return a[0], a[1], b[0], b[1]


@register_rule("RPR101", "arithmetic/comparison mixes conflicting unit suffixes")
def check_rpr101(tree: ast.Module, ctx: ModuleContext) -> Iterator[Finding]:
    for node in ast.walk(tree):
        pairs: list[tuple[ast.AST, ast.AST, ast.AST]] = []
        if isinstance(node, ast.BinOp) and isinstance(node.op, _ADDITIVE):
            pairs.append((node.left, node.right, node))
        elif isinstance(node, ast.AugAssign) and isinstance(node.op, _ADDITIVE):
            pairs.append((node.target, node.value, node))
        elif isinstance(node, ast.Compare):
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if isinstance(op, _COMPARISONS):
                    pairs.append((left, right, node))
        for left, right, site in pairs:
            hit = _mismatch(left, right)
            if hit:
                name_a, unit_a, name_b, unit_b = hit
                yield Finding(
                    ctx.path, site.lineno, site.col_offset, "RPR101",
                    f"`{name_a}` (_{unit_a}) combined with `{name_b}` "
                    f"(_{unit_b}): {describe(unit_a, unit_b)}",
                )


@register_rule("RPR102", "keyword argument unit suffix conflicts with its value")
def check_rpr102(tree: ast.Module, ctx: ModuleContext) -> Iterator[Finding]:
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        for kw in node.keywords:
            if kw.arg is None:
                continue
            kw_unit = unit_of(kw.arg)
            if kw_unit is None:
                continue
            value = unit_of_node(kw.value)
            if value is None or value[1] == kw_unit:
                continue
            name, unit = value
            yield Finding(
                ctx.path, kw.value.lineno, kw.value.col_offset, "RPR102",
                f"keyword `{kw.arg}=` (_{kw_unit}) receives `{name}` "
                f"(_{unit}): {describe(kw_unit, unit)}",
            )


def _function_returns(fn: ast.AST) -> Iterator[ast.Return]:
    """Return statements belonging to ``fn`` itself (not nested defs)."""
    stack = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        if isinstance(node, ast.Return):
            yield node
        stack.extend(ast.iter_child_nodes(node))


@register_rule("RPR103", "function name unit suffix conflicts with returned name")
def check_rpr103(tree: ast.Module, ctx: ModuleContext) -> Iterator[Finding]:
    for fn in ast.walk(tree):
        if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        fn_unit = unit_of(fn.name)
        if fn_unit is None:
            continue
        for ret in _function_returns(fn):
            if ret.value is None:
                continue
            value = unit_of_node(ret.value)
            if value is None or value[1] == fn_unit:
                continue
            name, unit = value
            yield Finding(
                ctx.path, ret.lineno, ret.col_offset, "RPR103",
                f"`{fn.name}()` (_{fn_unit}) returns `{name}` "
                f"(_{unit}): {describe(fn_unit, unit)}",
            )


def _positional_params(
    fn: ast.FunctionDef | ast.AsyncFunctionDef, *, method: bool
) -> list[str] | None:
    """Positional parameter names, or ``None`` when *args defeats matching."""
    if fn.args.vararg is not None:
        return None
    names = [a.arg for a in (*fn.args.posonlyargs, *fn.args.args)]
    if method and names:
        names = names[1:]  # drop self/cls
    return names


#: name -> positional params, for callees resolvable without guessing.
_Callees = dict[str, "list[str] | None"]


def _collect_callees(tree: ast.Module) -> tuple[_Callees, _Callees]:
    """Maps of unambiguous same-module callees: by bare name, by ``self.`` name.

    A name defined more than once (overloads, per-class duplicates)
    maps to ``None`` params via a sentinel drop — ambiguity silences
    the rule rather than guessing.
    """
    functions: dict[str, list[str] | None] = {}
    methods: dict[str, list[str] | None] = {}
    seen_fn: set[str] = set()
    seen_method: set[str] = set()
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node.name in seen_fn:
                functions.pop(node.name, None)
            else:
                seen_fn.add(node.name)
                functions[node.name] = _positional_params(node, method=False)
        elif isinstance(node, ast.ClassDef):
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    if item.name in seen_method:
                        methods.pop(item.name, None)
                    else:
                        seen_method.add(item.name)
                        methods[item.name] = _positional_params(item, method=True)
    return functions, methods


@register_rule("RPR104", "positional argument unit suffix conflicts with the parameter")
def check_rpr104(tree: ast.Module, ctx: ModuleContext) -> Iterator[Finding]:
    functions, methods = _collect_callees(tree)
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        params: list[str] | None = None
        if isinstance(node.func, ast.Name):
            params = functions.get(node.func.id)
        elif (
            isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "self"
        ):
            params = methods.get(node.func.attr)
        if not params:
            continue
        for arg, param in zip(node.args, params):
            if isinstance(arg, ast.Starred):
                break
            param_unit = unit_of(param)
            if param_unit is None:
                continue
            value = unit_of_node(arg)
            if value is None or value[1] == param_unit:
                continue
            name, unit = value
            yield Finding(
                ctx.path, arg.lineno, arg.col_offset, "RPR104",
                f"parameter `{param}` (_{param_unit}) receives `{name}` "
                f"(_{unit}): {describe(param_unit, unit)}",
            )
