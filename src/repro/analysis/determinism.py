"""RPR2xx — determinism (no wall clocks, no unseeded global RNGs).

The engine, codecs, and perceptual model promise a *hyperproperty*:
two runs with the same seed produce bit-identical output.  No single
trace can witness it, but its standard violations are lexically
visible — a wall-clock read, the stdlib ``random`` module, or
numpy's legacy global RNG — so these rules ban the constructs
outright inside the deterministic packages.  Randomness must flow
through an injected ``numpy.random.Generator`` (spawned from
``SeedSequence``), and time must come from the simulated clock.

* **RPR201** — wall-clock reads (``time.time()``, ``perf_counter``,
  ``datetime.now()``...) inside a deterministic package.
* **RPR202** — the stdlib ``random`` module (import or call) inside a
  deterministic package.
* **RPR203** — numpy *legacy global* RNG calls (``np.random.rand``,
  ``np.random.seed``, ``np.random.normal``...) anywhere in the tree;
  only the ``Generator``/``SeedSequence`` construction surface is
  allowed.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .findings import Finding, ModuleContext, register_rule

__all__ = [
    "DETERMINISTIC_PACKAGES",
    "check_rpr201",
    "check_rpr202",
    "check_rpr203",
    "dotted_name",
]

#: Packages promising bit-for-bit determinism under a fixed seed.
DETERMINISTIC_PACKAGES: tuple[str, ...] = (
    "repro.streaming",
    "repro.codecs",
    "repro.encoding",
    "repro.perception",
)

#: Dotted call names that read a wall clock.  Bare forms cover
#: ``from datetime import datetime; datetime.now()``.
_WALL_CLOCK = frozenset({
    "time.time", "time.time_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "datetime.now", "datetime.utcnow", "datetime.today",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "date.today", "datetime.date.today",
})

#: The seedable construction surface of ``numpy.random`` — everything
#: else on the module is legacy global-state API.
_SEEDED_NP_RANDOM = frozenset({
    "default_rng", "Generator", "SeedSequence", "BitGenerator",
    "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937",
})


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


@register_rule("RPR201", "wall-clock read inside a deterministic package")
def check_rpr201(tree: ast.Module, ctx: ModuleContext) -> Iterator[Finding]:
    if not ctx.in_package(DETERMINISTIC_PACKAGES):
        return
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        dotted = dotted_name(node.func)
        if dotted in _WALL_CLOCK:
            yield Finding(
                ctx.path, node.lineno, node.col_offset, "RPR201",
                f"`{dotted}()` reads the wall clock; deterministic code "
                "must take time from the simulated clock",
            )


@register_rule("RPR202", "stdlib `random` module inside a deterministic package")
def check_rpr202(tree: ast.Module, ctx: ModuleContext) -> Iterator[Finding]:
    if not ctx.in_package(DETERMINISTIC_PACKAGES):
        return
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random" or alias.name.startswith("random."):
                    yield Finding(
                        ctx.path, node.lineno, node.col_offset, "RPR202",
                        "stdlib `random` is process-global state; inject a "
                        "`numpy.random.Generator` instead",
                    )
        elif isinstance(node, ast.ImportFrom):
            if node.module == "random" and node.level == 0:
                yield Finding(
                    ctx.path, node.lineno, node.col_offset, "RPR202",
                    "stdlib `random` is process-global state; inject a "
                    "`numpy.random.Generator` instead",
                )
        elif isinstance(node, ast.Call):
            dotted = dotted_name(node.func)
            if dotted is not None and dotted.startswith("random."):
                yield Finding(
                    ctx.path, node.lineno, node.col_offset, "RPR202",
                    f"`{dotted}()` draws from process-global state; inject "
                    "a `numpy.random.Generator` instead",
                )


@register_rule("RPR203", "numpy legacy global RNG call (seed does not flow)")
def check_rpr203(tree: ast.Module, ctx: ModuleContext) -> Iterator[Finding]:
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        dotted = dotted_name(node.func)
        if dotted is None:
            continue
        for prefix in ("np.random.", "numpy.random."):
            if dotted.startswith(prefix):
                tail = dotted[len(prefix):]
                if tail.split(".")[0] not in _SEEDED_NP_RANDOM:
                    yield Finding(
                        ctx.path, node.lineno, node.col_offset, "RPR203",
                        f"`{dotted}()` uses numpy's legacy global RNG; "
                        "seeds must flow through `default_rng`/`SeedSequence`",
                    )
                break
