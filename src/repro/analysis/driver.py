"""The analysis driver: walk files, run rules, filter, report.

The pipeline per file is parse → run every registered rule → drop
findings suppressed by an inline ``# noqa: RPR###`` → (at the run
level) drop findings matched by the committed baseline.  Files are
checked in parallel over :func:`repro.parallel.worker_pool` — each
file is independent, so results are reassembled in path order and
the output is identical for any worker count.

The baseline file exists so the linter could have been adopted on a
dirty tree; this repository keeps it **empty**, which makes every
finding a CI failure.  ``--update-baseline`` rewrites it from the
current findings when a rule must land before its cleanup.
"""

from __future__ import annotations

import ast
import json
import re
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from .findings import RULES, Finding, ModuleContext
from .kernels import KERNEL_MODULES, KERNEL_PRAGMA

# Importing the rule modules populates the registry.
from . import units as _units  # noqa: F401
from . import determinism as _determinism  # noqa: F401
from . import asyncsafe as _asyncsafe  # noqa: F401
from . import kernels as _kernels  # noqa: F401

__all__ = [
    "AnalysisReport",
    "check_source",
    "check_file",
    "collect_files",
    "load_baseline",
    "write_baseline",
    "run",
]

BASELINE_VERSION = 1

#: ``# noqa`` (suppress everything) or ``# noqa: RPR101, RPR203``.
_NOQA_RE = re.compile(
    r"#\s*noqa(?::\s*(?P<codes>[A-Z]+\d+(?:\s*,\s*[A-Z]+\d+)*))?",
    re.IGNORECASE,
)


def _noqa_rules(line: str) -> frozenset[str] | None:
    """Rule ids suppressed on ``line``: a set, ``ALL`` as empty-None, or no noqa.

    Returns ``None`` when the line has no ``noqa``, an empty frozenset
    for a bare ``# noqa`` (suppress every rule), else the listed ids.
    """
    match = _NOQA_RE.search(line)
    if match is None:
        return None
    codes = match.group("codes")
    if codes is None:
        return frozenset()
    return frozenset(code.strip().upper() for code in codes.split(","))


def _module_name(path: Path) -> str:
    """Dotted module name inferred from a ``src/``-rooted path."""
    parts = list(path.with_suffix("").parts)
    if "src" in parts:
        parts = parts[parts.index("src") + 1:]
    while parts and parts[0] in ("..", "."):
        parts = parts[1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def _is_kernel(module: str, source: str) -> bool:
    if module in KERNEL_MODULES:
        return True
    head = source[:4096]
    return KERNEL_PRAGMA in head


def check_source(
    source: str,
    *,
    path: str = "<string>",
    module: str | None = None,
    kernel: bool | None = None,
    rules: Iterable[str] | None = None,
) -> list[Finding]:
    """Run the rule set over source text; the unit of all testing.

    Parameters
    ----------
    source:
        Python source to check.
    path:
        Path reported in findings.
    module:
        Dotted module name; inferred from ``path`` when omitted.
        Drives the package scoping of the RPR2xx rules.
    kernel:
        Force kernel-module status (RPR4xx); inferred from the module
        name / pragma when omitted.
    rules:
        Restrict to these rule ids (default: all registered).
    """
    if module is None:
        module = _module_name(Path(path))
    if kernel is None:
        kernel = _is_kernel(module, source)
    tree = ast.parse(source, filename=path)
    lines = source.splitlines()
    ctx = ModuleContext(path=path, module=module, source=source, kernel=kernel, lines=lines)
    selected = RULES if rules is None else {r: RULES[r] for r in rules}
    findings: list[Finding] = []
    for rule_id, (rule, _desc) in selected.items():
        for finding in rule(tree, ctx):
            line_text = lines[finding.line - 1] if 0 < finding.line <= len(lines) else ""
            suppressed = _noqa_rules(line_text)
            if suppressed is not None and (not suppressed or finding.rule in suppressed):
                continue
            findings.append(finding)
    return sorted(findings)


def check_file(
    path: Path | str,
    *,
    root: Path | str | None = None,
    rules: Iterable[str] | None = None,
) -> list[Finding]:
    """Check one file; paths in findings are relative to ``root``."""
    path = Path(path)
    display = path
    if root is not None:
        try:
            display = path.resolve().relative_to(Path(root).resolve())
        except ValueError:
            display = path
    source = path.read_text(encoding="utf-8")
    try:
        return check_source(source, path=display.as_posix(), rules=rules)
    except SyntaxError as exc:
        return [
            Finding(
                display.as_posix(), exc.lineno or 1, (exc.offset or 1) - 1,
                "RPR000", f"syntax error: {exc.msg}",
            )
        ]


def collect_files(paths: Sequence[Path | str]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    files: set[Path] = set()
    for entry in paths:
        p = Path(entry)
        if p.is_dir():
            files.update(p.rglob("*.py"))
        elif p.is_file():
            files.add(p)
        else:
            raise FileNotFoundError(f"no such file or directory: {p}")
    return sorted(files)


# -- baseline -----------------------------------------------------------


def load_baseline(path: Path | str) -> Counter[str]:
    """Fingerprint multiset from a baseline file (empty if absent)."""
    p = Path(path)
    if not p.exists():
        return Counter()
    data = json.loads(p.read_text(encoding="utf-8"))
    if data.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"baseline {p} has version {data.get('version')!r}, "
            f"expected {BASELINE_VERSION}"
        )
    return Counter(data.get("fingerprints", []))


def write_baseline(path: Path | str, fingerprints: Iterable[str]) -> None:
    """Write a baseline file absorbing exactly ``fingerprints``."""
    payload = {
        "version": BASELINE_VERSION,
        "fingerprints": sorted(fingerprints),
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


# -- the run ------------------------------------------------------------


@dataclass
class AnalysisReport:
    """Outcome of one driver run over a file set."""

    #: New findings (not absorbed by the baseline), sorted.
    findings: list[Finding]
    #: Findings matched (and hidden) by the baseline.
    baselined: list[Finding]
    #: Fingerprints of *all* current findings, for ``--update-baseline``.
    fingerprints: list[str] = field(default_factory=list)
    #: Number of files checked.
    n_files: int = 0

    @property
    def exit_code(self) -> int:
        return 1 if self.findings else 0

    def to_dict(self) -> dict:
        return {
            "version": BASELINE_VERSION,
            "files": self.n_files,
            "findings": [
                {
                    "file": f.path,
                    "line": f.line,
                    "col": f.col,
                    "rule": f.rule,
                    "message": f.message,
                }
                for f in self.findings
            ],
            "baselined": len(self.baselined),
            "counts": dict(Counter(f.rule for f in self.findings)),
        }


def _check_one(args: tuple[str, str, tuple[str, ...] | None]) -> list[Finding]:
    """Picklable per-file worker for the process pool."""
    path, root, rules = args
    return check_file(path, root=root or None, rules=rules)


def _source_line(finding: Finding, root: Path) -> str:
    try:
        text = (root / finding.path).read_text(encoding="utf-8")
        lines = text.splitlines()
        return lines[finding.line - 1] if 0 < finding.line <= len(lines) else ""
    except OSError:
        return ""


def run(
    paths: Sequence[Path | str],
    *,
    root: Path | str | None = None,
    baseline: Path | str | None = None,
    rules: Iterable[str] | None = None,
    jobs: int = 1,
) -> AnalysisReport:
    """Check ``paths``, apply the baseline, and report.

    ``jobs > 1`` fans files over a process pool
    (:func:`repro.parallel.worker_pool`); output is identical for any
    worker count because per-file results are order-independent and
    globally re-sorted.
    """
    root = Path(root) if root is not None else Path.cwd()
    files = collect_files(paths)
    rule_tuple = tuple(rules) if rules is not None else None
    work = [(str(f), str(root), rule_tuple) for f in files]
    if jobs > 1 and len(files) > 1:
        from ..parallel import pool_map, worker_pool

        with worker_pool(min(jobs, len(files))) as pool:
            per_file = pool_map(pool, _check_one, work, chunksize=8)
    else:
        per_file = [_check_one(item) for item in work]

    all_findings = sorted(f for batch in per_file for f in batch)
    fingerprints = [f.fingerprint(_source_line(f, root)) for f in all_findings]

    absorbed = load_baseline(baseline) if baseline is not None else Counter()
    new: list[Finding] = []
    baselined: list[Finding] = []
    budget = Counter(absorbed)
    for finding, fingerprint in zip(all_findings, fingerprints):
        if budget[fingerprint] > 0:
            budget[fingerprint] -= 1
            baselined.append(finding)
        else:
            new.append(finding)
    return AnalysisReport(
        findings=new,
        baselined=baselined,
        fingerprints=fingerprints,
        n_files=len(files),
    )
