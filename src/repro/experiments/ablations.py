"""Ablations of the design choices DESIGN.md calls out.

Three sweeps, each isolating one decision of the paper's algorithm:

* **Axis choice** — optimize Blue only, Red only, Green only, or the
  paper's best-of-Red/Blue.  Quantifies what the per-tile axis pick
  buys and why Green is never worth it.
* **Foveal bypass radius** — 0 (adjust everything) to 20 degrees.
  Shows the compression cost of protecting the fovea.
* **Case-2 plane placement** — the paper's HL/LH mean vs. either
  extreme.  All collapse the optimized channel; they differ in how far
  the other channels drift, i.e. in total bit cost.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .common import ExperimentConfig, encoder_for, format_table, render_eval_frames

__all__ = [
    "AblationResult",
    "run_axis_ablation",
    "run_fovea_ablation",
    "run_plane_ablation",
]

#: Candidate-axis configurations of the axis ablation.
AXIS_VARIANTS = {
    "blue-only": (2,),
    "red-only": (0,),
    "green-only": (1,),
    "best-of-RB": (2, 0),
}

#: Foveal radii (deg) of the bypass ablation.
FOVEA_RADII = (0.0, 5.0, 10.0, 20.0)

#: Case-2 plane placements (paper uses "mid").
PLANE_PLACEMENTS = ("mid", "hl", "lh")


@dataclass(frozen=True)
class AblationResult:
    """Mean bits-per-pixel per variant, averaged over the scene suite."""

    name: str
    bpp_by_variant: dict[str, float]

    def best_variant(self) -> str:
        return min(self.bpp_by_variant, key=self.bpp_by_variant.get)

    def table(self) -> str:
        rows = [[variant, bpp] for variant, bpp in self.bpp_by_variant.items()]
        return (
            format_table([f"{self.name} variant", "mean bpp"], rows)
            + f"\nbest: {self.best_variant()}"
        )


def _mean_bpp(config: ExperimentConfig, **encoder_overrides) -> float:
    encoder = encoder_for(config, **encoder_overrides)
    eccentricity = config.eccentricity_map()
    bpps = []
    for name in config.scene_names:
        for frame in render_eval_frames(config, name):
            bpps.append(
                encoder.encode_frame(frame, eccentricity).breakdown.bits_per_pixel
            )
    return float(np.mean(bpps))


def run_axis_ablation(config: ExperimentConfig | None = None) -> AblationResult:
    """Sweep the candidate-axis configurations."""
    config = config or ExperimentConfig()
    return AblationResult(
        name="axis",
        bpp_by_variant={
            label: _mean_bpp(config, axes=axes) for label, axes in AXIS_VARIANTS.items()
        },
    )


def run_fovea_ablation(config: ExperimentConfig | None = None) -> AblationResult:
    """Sweep the foveal bypass radius."""
    config = config or ExperimentConfig()
    return AblationResult(
        name="fovea",
        bpp_by_variant={
            f"{radius:g} deg": _mean_bpp(config, foveal_radius_deg=radius)
            for radius in FOVEA_RADII
        },
    )


def run_plane_ablation(config: ExperimentConfig | None = None) -> AblationResult:
    """Sweep the case-2 common-plane placement."""
    config = config or ExperimentConfig()
    return AblationResult(
        name="plane",
        bpp_by_variant={
            placement: _mean_bpp(config, case2_placement=placement)
            for placement in PLANE_PLACEMENTS
        },
    )


if __name__ == "__main__":
    for runner in (run_axis_ablation, run_fovea_ablation, run_plane_ablation):
        print(runner().table())
        print()
