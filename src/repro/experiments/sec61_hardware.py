"""Sec. 6.1 — CAU performance, area and power numbers.

Reproduces the paper's hardware arithmetic: PE count derivation from
GPU throughput, compression latency at the highest Quest 2 resolution
(173.4 us, negligible in a 13.9 ms frame budget), PE-array area
(2.1 mm^2) and CAU power (201.6 uW).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hardware.cau import CAUModel, pe_count_for_gpu
from ..scenes.display import QUEST2_HIGH_RESOLUTION
from .common import format_table

__all__ = ["HardwareResult", "run", "PAPER_CONSTANTS"]

#: The numbers Sec. 6.1 reports, for side-by-side comparison.
PAPER_CONSTANTS = {
    "frequency_mhz": 166.7,
    "n_pes": 96,
    "latency_us_high_res": 173.4,
    "pe_array_area_mm2": 2.1,
    "buffer_area_mm2": 0.03,
    "cau_power_uw": 201.6,
    "frame_budget_ms_72fps": 13.9,
}


@dataclass(frozen=True)
class HardwareResult:
    """Model outputs next to the paper's reported constants."""

    frequency_mhz: float
    n_pes_derived: int
    latency_us_high_res: float
    pe_array_area_mm2: float
    total_area_mm2: float
    cau_power_uw: float
    latency_fraction_of_72fps_budget: float

    def table(self) -> str:
        rows = [
            ["frequency (MHz)", self.frequency_mhz, PAPER_CONSTANTS["frequency_mhz"]],
            ["PEs (derived)", self.n_pes_derived, PAPER_CONSTANTS["n_pes"]],
            ["latency @5408x2736 (us)", self.latency_us_high_res,
             PAPER_CONSTANTS["latency_us_high_res"]],
            ["PE array area (mm^2)", self.pe_array_area_mm2,
             PAPER_CONSTANTS["pe_array_area_mm2"]],
            ["CAU power (uW)", self.cau_power_uw, PAPER_CONSTANTS["cau_power_uw"]],
            ["latency / 72FPS budget", self.latency_fraction_of_72fps_budget, "-"],
        ]
        return format_table(["quantity", "model", "paper"], rows)


def run() -> HardwareResult:
    """Evaluate the CAU model at the paper's operating point."""
    model = CAUModel()
    height, width = QUEST2_HIGH_RESOLUTION
    return HardwareResult(
        frequency_mhz=model.frequency_mhz,
        n_pes_derived=pe_count_for_gpu(),
        latency_us_high_res=model.compression_latency_s(height, width) * 1e6,
        pe_array_area_mm2=model.total_pe_area_mm2,
        total_area_mm2=model.total_area_mm2,
        cau_power_uw=model.total_power_w * 1e6,
        latency_fraction_of_72fps_budget=model.latency_fraction_of_budget(
            height, width, 72.0
        ),
    )


if __name__ == "__main__":
    print(run().table())
