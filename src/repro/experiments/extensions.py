"""Extension experiments beyond the paper's evaluation section.

Each of these measures something the paper *names* but does not
evaluate:

* **Gaze latency** (Sec. 6.3): participants reported artifacts during
  rapid eye movement, attributed to rendering lag / slow gaze
  detection.  We encode with a *stale* fixation and score visibility
  under the true one, sweeping the gaze error.
* **Dark adaptation** (Sec. 7): weaker discrimination when
  dark-adapted should further improve compression.  We sweep the
  adaptation state on the dark scenes.
* **Variable-width BD** (footnote 1): finer width granularity inside a
  tile vs. the extra metadata it costs, with and without perceptual
  adjustment in front.
* **Remote rendering** (Sec. 2.2): per-frame streaming over modeled
  wireless links; which encoders sustain which refresh rates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..codecs.context import FrameContext
from ..codecs.registry import get_codec
from ..codecs.wrappers import PerceptualCodec
from ..perception.adaptation import DarkAdaptedModel
from ..perception.model import ParametricModel
from ..scenes.library import get_scene
from ..streaming.link import WIFI6_LINK, WIGIG_LINK, WirelessLink
from ..streaming.session import ENCODER_CHOICES, simulate_session
from ..study.observer import PsychometricParameters, scene_exceedance
from .common import ExperimentConfig, encoder_for, format_table, render_eval_frames

__all__ = [
    "GazeLatencyResult",
    "run_gaze_latency",
    "DarkAdaptationResult",
    "run_dark_adaptation",
    "VariableBDResult",
    "run_variable_bd",
    "StreamingResult",
    "run_streaming",
]

#: Gaze errors (degrees) swept by the gaze-latency experiment.  A 150
#: ms end-to-end gaze latency during a 300 deg/s saccade is ~45 deg of
#: error; the sweep covers steady fixation up to that regime.
GAZE_ERRORS_DEG = (0.0, 2.0, 5.0, 10.0, 20.0)

#: Dark-adaptation states swept (0 = light-adapted baseline).
ADAPTATION_STATES = (0.0, 0.25, 0.5, 0.75, 1.0)


@dataclass(frozen=True)
class GazeLatencyResult:
    """Peak artifact exceedance vs. gaze error, per scene."""

    gaze_errors_deg: tuple[float, ...]
    exceedance: dict[str, dict[float, float]]  # scene -> error -> value

    def mean_exceedance(self, error_deg: float) -> float:
        return float(np.mean([by[error_deg] for by in self.exceedance.values()]))

    def table(self) -> str:
        headers = ["scene"] + [f"{e:g} deg" for e in self.gaze_errors_deg]
        rows = [
            [scene] + [by[e] for e in self.gaze_errors_deg]
            for scene, by in self.exceedance.items()
        ]
        return format_table(headers, rows, precision=3)


def run_gaze_latency(config: ExperimentConfig | None = None) -> GazeLatencyResult:
    """Encode with a stale fixation, score with the true one.

    The encoder believes the user fixates the screen center; the user
    actually fixates ``error`` degrees away (we move the fixation point
    horizontally).  Visibility is the study harness's exceedance
    statistic computed against the *true* eccentricities.
    """
    config = config or ExperimentConfig()
    encoder = encoder_for(config)
    params = PsychometricParameters()
    half_fov = config.display.fov_horizontal_deg / 2.0

    stale = config.display.eccentricity_map(config.height, config.width)
    exceedance: dict[str, dict[float, float]] = {}
    for name in config.scene_names:
        frames = render_eval_frames(config, name)
        by_error: dict[float, float] = {}
        for error in GAZE_ERRORS_DEG:
            # True fixation displaced by `error` degrees of visual angle.
            offset = np.tan(np.radians(error)) / (2 * np.tan(np.radians(half_fov)))
            true_fix = (min(0.5 + offset, 1.0), 0.5)
            true_ecc = config.display.eccentricity_map(
                config.height, config.width, fixation=true_fix
            )
            peaks = []
            for frame in frames:
                result = encoder.encode_frame(frame, stale)
                peaks.append(
                    scene_exceedance(
                        [frame], [result.adjusted_frame], true_ecc,
                        model=encoder.model, params=params,
                    )
                )
            by_error[error] = float(np.max(peaks))
        exceedance[name] = by_error
    return GazeLatencyResult(gaze_errors_deg=GAZE_ERRORS_DEG, exceedance=exceedance)


@dataclass(frozen=True)
class DarkAdaptationResult:
    """Mean bpp vs. adaptation state, dark scenes vs. bright scenes."""

    states: tuple[float, ...]
    bpp_dark_scenes: dict[float, float]
    bpp_bright_scenes: dict[float, float]

    def dark_scene_gain(self) -> float:
        """Traffic saved on dark scenes by full dark adaptation."""
        return 1.0 - self.bpp_dark_scenes[self.states[-1]] / self.bpp_dark_scenes[0.0]

    def bright_scene_gain(self) -> float:
        return 1.0 - self.bpp_bright_scenes[self.states[-1]] / self.bpp_bright_scenes[0.0]

    def table(self) -> str:
        headers = ["adaptation", "dark scenes bpp", "bright scenes bpp"]
        rows = [
            [f"{s:g}", self.bpp_dark_scenes[s], self.bpp_bright_scenes[s]]
            for s in self.states
        ]
        return format_table(headers, rows) + (
            f"\nfull-adaptation gain: dark {100 * self.dark_scene_gain():.1f}% | "
            f"bright {100 * self.bright_scene_gain():.1f}%"
        )


def run_dark_adaptation(config: ExperimentConfig | None = None) -> DarkAdaptationResult:
    """Sweep the dark-adaptation state over dark and bright scenes."""
    config = config or ExperimentConfig()
    eccentricity = config.eccentricity_map()
    dark_scenes = [n for n in ("dumbo", "monkey") if n in config.scene_names]
    bright_scenes = [n for n in ("fortnite", "skyline") if n in config.scene_names]
    if not dark_scenes or not bright_scenes:
        raise ValueError("config must include at least one dark and one bright scene")

    base_model = ParametricModel()
    bpp_dark: dict[float, float] = {}
    bpp_bright: dict[float, float] = {}
    for state in ADAPTATION_STATES:
        model = base_model if state == 0.0 else DarkAdaptedModel(base_model, state)
        encoder = encoder_for(config, model=model)

        def mean_bpp(names):
            values = []
            for name in names:
                for frame in render_eval_frames(config, name):
                    values.append(
                        encoder.encode_frame(frame, eccentricity).breakdown.bits_per_pixel
                    )
            return float(np.mean(values))

        bpp_dark[state] = mean_bpp(dark_scenes)
        bpp_bright[state] = mean_bpp(bright_scenes)
    return DarkAdaptationResult(
        states=ADAPTATION_STATES, bpp_dark_scenes=bpp_dark, bpp_bright_scenes=bpp_bright
    )


@dataclass(frozen=True)
class VariableBDResult:
    """Fixed vs variable-width BD, with and without adjustment."""

    bpp: dict[str, float]  # variant name -> mean bpp

    def table(self) -> str:
        rows = [[name, value] for name, value in self.bpp.items()]
        return format_table(["variant", "mean bpp"], rows)


def run_variable_bd(
    config: ExperimentConfig | None = None, group_size: int = 4
) -> VariableBDResult:
    """Measure footnote 1's variable-width extension on the scene suite."""
    config = config or ExperimentConfig()
    perceptual = PerceptualCodec(encoder=encoder_for(config))
    fixed = get_codec("bd", tile_size=config.tile_size)
    variable = get_codec(
        "variable-bd", tile_size=config.tile_size, group_size=group_size
    )
    eccentricity = config.eccentricity_map()

    totals = {
        "BD fixed": 0.0,
        "BD variable": 0.0,
        "ours fixed": 0.0,
        "ours variable": 0.0,
    }
    count = 0
    for name in config.scene_names:
        for frame in render_eval_frames(config, name):
            # One context per frame (original) and per adjusted output:
            # fixed- and variable-width BD share each context's tiling.
            original = FrameContext(frame, eccentricity=eccentricity)
            result = perceptual.encode(original)
            adjusted = FrameContext.from_srgb8(result.adjusted_srgb)
            totals["BD fixed"] += fixed.encode(original).bits_per_pixel
            totals["BD variable"] += variable.encode(original).bits_per_pixel
            totals["ours fixed"] += fixed.encode(adjusted).bits_per_pixel
            totals["ours variable"] += variable.encode(adjusted).bits_per_pixel
            count += 1
    return VariableBDResult(bpp={k: v / count for k, v in totals.items()})


@dataclass(frozen=True)
class StreamingResult:
    """Sustainable frame rate per encoder per link."""

    fps: dict[str, dict[str, float]]  # link label -> encoder -> fps
    target_fps: float

    def table(self) -> str:
        encoders = list(ENCODER_CHOICES)
        headers = ["link"] + encoders
        rows = [
            [link] + [by[encoder] for encoder in encoders]
            for link, by in self.fps.items()
        ]
        return format_table(headers, rows, precision=0) + (
            f"\n(target: {self.target_fps:g} FPS)"
        )


def run_streaming(
    config: ExperimentConfig | None = None,
    links: dict[str, WirelessLink] | None = None,
    target_fps: float = 72.0,
) -> StreamingResult:
    """Remote-rendering sustainable FPS for raw / BD / perceptual."""
    config = config or ExperimentConfig()
    if links is None:
        links = {
            "WiFi6 (400 Mbps)": WIFI6_LINK,
            "WiGig (1.8 Gbps)": WIGIG_LINK,
            "congested (100 Mbps)": WirelessLink(bandwidth_mbps=100.0, propagation_ms=4.0),
        }
    scene = get_scene(config.scene_names[0])
    fps: dict[str, dict[str, float]] = {}
    for label, link in links.items():
        fps[label] = {}
        for encoder_name in ENCODER_CHOICES:
            report = simulate_session(
                scene,
                link,
                encoder=encoder_name,
                n_frames=config.n_frames,
                height=config.height,
                width=config.width,
                target_fps=target_fps,
                seed=config.seed,
            )
            fps[label][encoder_name] = report.sustainable_fps
    return StreamingResult(fps=fps, target_fps=target_fps)


if __name__ == "__main__":
    for runner in (run_gaze_latency, run_dark_adaptation, run_variable_bd, run_streaming):
        print(f"== {runner.__name__}")
        print(runner().table())
        print()
