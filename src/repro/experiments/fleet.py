"""Fleet contention study: N headsets sharing one wireless link.

The single-link streaming extension (``ext-streaming``) asks which
encoders sustain which refresh rates on a *dedicated* link.  This
experiment asks the deployment question behind the paper's Sec. 2.2
traffic argument: with several headsets behind one access point, how
much of each client's frame rate does contention take away, and how far
does perceptual compression go toward giving it back?

Each client gets its own scene, its own synthetic gaze trace, and a
codec from the configured roster (cycled); all contend for one link
under a fair-share or priority scheduler.  The table reports, per
client, the frame rate it would sustain alone versus inside the fleet,
and the aggregate utilization/tail-latency picture.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..codecs.ladder import QualityLadder
from ..codecs.registry import resolve_codec_name
from ..scenes.gaze import saccade_trace
from ..streaming.adaptive import RateController
from ..streaming.link import WIFI6_LINK, WirelessLink
from ..streaming.server import (
    ClientConfig,
    FleetReport,
    simulate_fleet,
    solo_sustainable_fps,
)
from ..streaming.session import ENCODER_CHOICES
from .common import ExperimentConfig, format_table

__all__ = [
    "DEFAULT_FLEET_CODECS",
    "FleetResult",
    "streaming_codec_name",
    "build_fleet_clients",
    "run",
    "run_fleet",
]

#: Codec roster cycled over clients when the config names none.
DEFAULT_FLEET_CODECS = ("perceptual", "bd", "variable-bd", "raw")


def streaming_codec_name(name: str) -> str:
    """Map a codec-registry name to its streaming-encoder spelling.

    The registry canonicalizes ``raw`` to ``nocom``; sessions speak
    streaming names.  Raises ``ValueError`` for codecs that are not
    per-frame streaming encoders (png, scc, temporal-bd).
    """
    canonical = resolve_codec_name(name)
    streaming = "raw" if canonical == "nocom" else canonical
    if streaming not in ENCODER_CHOICES:
        raise ValueError(
            f"codec {name!r} is not a streaming encoder; "
            f"expected one of {ENCODER_CHOICES}"
        )
    return streaming


@dataclass(frozen=True)
class FleetResult:
    """Per-client solo-vs-fleet frame rates plus fleet aggregates."""

    report: FleetReport
    solo_fps: dict[str, float]  # client name -> uncontended fps

    def table(self) -> str:
        """Per-client solo-vs-fleet table (plus adaptation columns)."""
        adaptive = self.report.is_adaptive
        headers = [
            "client", "scene", "codec", "kB/frame",
            "solo fps", "fleet fps", "target", "ok",
        ]
        if adaptive:
            headers += ["stall ms", "switches", "quality"]
        rows = []
        for client in self.report.clients:
            row = [
                client.name,
                client.scene,
                client.encoder,
                client.mean_payload_bits / 8e3,
                self.solo_fps[client.name],
                client.sustainable_fps,
                f"{client.target_fps:g}",
                "yes" if client.meets_target else "NO",
            ]
            if adaptive:
                stats = client.adaptive
                row += [
                    stats.stall_time_s * 1e3,
                    stats.rung_switches,
                    f"{stats.mean_quality:.3f}",
                ]
            rows.append(row)
        fleet = self.report
        return format_table(headers, rows, precision=1) + (
            f"\n{fleet.summary()}"
            f"\ntotal traffic: {fleet.total_traffic_bits / 8e6:.2f} MB over "
            f"{fleet.n_frames} frames on {fleet.link.bandwidth_mbps:g} Mbps"
        )


def build_fleet_clients(
    config: ExperimentConfig,
    n_clients: int,
    codecs: tuple[str, ...],
    target_fps: float = 72.0,
) -> list[ClientConfig]:
    """One client per slot: scenes and codecs cycle, gaze traces differ.

    Every client follows its own saccade trace (seeded from the config
    seed), so fixations — and therefore perceptual payloads — diverge
    the way real independent users' would.
    """
    if n_clients < 1:
        raise ValueError(f"n_clients must be >= 1, got {n_clients}")
    streaming_names = [streaming_codec_name(name) for name in codecs]
    clients = []
    for index in range(n_clients):
        trace = saccade_trace(
            duration_s=max(config.n_frames / target_fps, 0.1),
            rng=np.random.default_rng(config.seed + index),
        )
        clients.append(
            ClientConfig(
                name=f"client{index}",
                scene=config.scene_names[index % len(config.scene_names)],
                codec=streaming_names[index % len(streaming_names)],
                height=config.height,
                width=config.width,
                target_fps=target_fps,
                gaze_trace=tuple(trace),
            )
        )
    return clients


def run_fleet(
    config: ExperimentConfig | None = None,
    *,
    n_clients: int = 4,
    link: WirelessLink = WIFI6_LINK,
    scheduler: str = "fair",
    n_jobs: int = 1,
    target_fps: float = 72.0,
    lenient_codecs: bool = False,
    controller: str | RateController | None = None,
    ladder: QualityLadder | None = None,
    pricing: str = "backlog",
) -> FleetResult:
    """Simulate the fleet and compare solo vs contended frame rates.

    ``config.codec_names`` cycles over the clients.  By default a name
    that cannot stream per-frame (png, scc, temporal-bd) raises.  With
    ``lenient_codecs=True`` such names are dropped and, if none remain,
    the default roster is used — the CLI sets this for multi-experiment
    runs, where a shared ``--codecs`` filter aimed at the sweep
    experiments must not break the fleet leg of an ``all`` run.

    ``controller`` switches the fleet to adaptive rate control: every
    client starts on its cycled codec's rung and re-picks per frame
    from ``ladder`` (the CLI's ``--controller``/``--trace`` flags feed
    this path).  ``pricing`` selects the engine's transport pricing
    (``backlog`` per-stream queueing, or the legacy ``round``; the
    CLI's ``--pricing`` flag feeds it).
    """
    config = config or ExperimentConfig()
    codecs = tuple(config.codec_names or DEFAULT_FLEET_CODECS)
    if lenient_codecs:
        streamable = []
        for name in codecs:
            try:
                streamable.append(streaming_codec_name(name))
            except (KeyError, ValueError):
                continue
        if not streamable:
            streamable = [streaming_codec_name(n) for n in DEFAULT_FLEET_CODECS]
    else:
        streamable = [streaming_codec_name(name) for name in codecs]
    clients = build_fleet_clients(config, n_clients, tuple(streamable), target_fps)
    report = simulate_fleet(
        clients,
        link,
        scheduler=scheduler,
        n_frames=config.n_frames,
        n_jobs=n_jobs,
        display=config.display,
        seed=config.seed,
        controller=controller,
        ladder=ladder,
        pricing=pricing,
    )
    solo = {
        client.name: solo_sustainable_fps(client, link)
        for client in report.clients
    }
    return FleetResult(report=report, solo_fps=solo)


#: CLI-compatible alias (every experiment module exposes ``run``).
run = run_fleet


if __name__ == "__main__":
    print(run_fleet(ExperimentConfig(height=128, width=128)).table())
