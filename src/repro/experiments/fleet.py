"""Fleet contention study: N headsets sharing one wireless link.

The single-link streaming extension (``ext-streaming``) asks which
encoders sustain which refresh rates on a *dedicated* link.  This
experiment asks the deployment question behind the paper's Sec. 2.2
traffic argument: with several headsets behind one access point, how
much of each client's frame rate does contention take away, and how far
does perceptual compression go toward giving it back?

Each client gets its own scene, its own synthetic gaze trace, and a
codec from the configured roster (cycled); all contend for one link
under a fair-share or priority scheduler.  The table reports, per
client, the frame rate it would sustain alone versus inside the fleet,
and the aggregate utilization/tail-latency picture.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import lcm

import numpy as np

from ..codecs.ladder import QualityLadder
from ..codecs.registry import resolve_codec_name
from ..scenes.gaze import saccade_trace
from ..streaming.adaptive import FixedController, RateController, get_controller
from ..streaming.cohort import CohortFleetReport, CohortSpec, simulate_cohort_fleet
from ..streaming.link import WIFI6_LINK, WirelessLink
from ..streaming.server import (
    ClientConfig,
    FleetReport,
    _encode_streams,
    simulate_fleet,
    solo_sustainable_fps,
)
from ..streaming.session import ENCODER_CHOICES
from .common import ExperimentConfig, format_table

__all__ = [
    "DEFAULT_FLEET_CODECS",
    "FleetResult",
    "CohortFleetResult",
    "streaming_codec_name",
    "build_fleet_clients",
    "build_fleet_cohorts",
    "run",
    "run_fleet",
]

#: Codec roster cycled over clients when the config names none.
DEFAULT_FLEET_CODECS = ("perceptual", "bd", "variable-bd", "raw")


def streaming_codec_name(name: str) -> str:
    """Map a codec-registry name to its streaming-encoder spelling.

    The registry canonicalizes ``raw`` to ``nocom``; sessions speak
    streaming names.  Raises ``ValueError`` for codecs that are not
    per-frame streaming encoders (png, scc, temporal-bd).
    """
    canonical = resolve_codec_name(name)
    streaming = "raw" if canonical == "nocom" else canonical
    if streaming not in ENCODER_CHOICES:
        raise ValueError(
            f"codec {name!r} is not a streaming encoder; "
            f"expected one of {ENCODER_CHOICES}"
        )
    return streaming


@dataclass(frozen=True)
class FleetResult:
    """Per-client solo-vs-fleet frame rates plus fleet aggregates."""

    report: FleetReport
    solo_fps: dict[str, float]  # client name -> uncontended fps

    def table(self) -> str:
        """Per-client solo-vs-fleet table (plus adaptation columns)."""
        adaptive = self.report.is_adaptive
        headers = [
            "client", "scene", "codec", "kB/frame",
            "solo fps", "fleet fps", "target", "ok",
        ]
        if adaptive:
            headers += ["stall ms", "switches", "quality"]
        rows = []
        for client in self.report.clients:
            row = [
                client.name,
                client.scene,
                client.encoder,
                client.mean_payload_bits / 8e3,
                self.solo_fps[client.name],
                client.sustainable_fps,
                f"{client.target_fps:g}",
                "yes" if client.meets_target else "NO",
            ]
            if adaptive:
                stats = client.adaptive
                row += [
                    stats.stall_time_s * 1e3,
                    stats.rung_switches,
                    f"{stats.mean_quality:.3f}",
                ]
            rows.append(row)
        fleet = self.report
        return format_table(headers, rows, precision=1) + (
            f"\n{fleet.summary()}"
            f"\ntotal traffic: {fleet.total_traffic_bits / 8e6:.2f} MB over "
            f"{fleet.n_frames} frames on {fleet.link.bandwidth_mbps:g} Mbps"
        )


@dataclass(frozen=True)
class CohortFleetResult:
    """Per-cohort fleet outcome from the mean-field fast path."""

    report: CohortFleetReport

    def table(self) -> str:
        """Per-cohort table (plus adaptation columns) and fleet footer."""
        adaptive = self.report.is_adaptive
        headers = [
            "cohort", "scene", "codec", "members",
            "kB/frame", "fleet fps", "target", "ok",
        ]
        if adaptive:
            headers += ["stall ms", "switches", "quality"]
        rows = []
        for summary in self.report.cohorts:
            row = [
                summary.name,
                summary.scene,
                summary.codec,
                summary.n_members,
                summary.mean_payload_bits / 8e3,
                summary.sustainable_fps,
                f"{summary.target_fps:g}",
                "yes" if summary.meets_target else "NO",
            ]
            if adaptive:
                stats = summary.adaptive
                row += [
                    stats.stall_time_s * 1e3,
                    stats.rung_switches,
                    f"{stats.mean_quality:.3f}",
                ]
            rows.append(row)
        fleet = self.report
        return format_table(headers, rows, precision=1) + (
            f"\n{fleet.summary()}"
            f"\ntotal traffic: {fleet.total_traffic_bits / 8e6:.2f} MB "
            f"({len(fleet.tracers)} tracer clients) on "
            f"{fleet.link.bandwidth_mbps:g} Mbps"
        )


def build_fleet_clients(
    config: ExperimentConfig,
    n_clients: int,
    codecs: tuple[str, ...],
    target_fps: float = 72.0,
) -> list[ClientConfig]:
    """One client per slot: scenes and codecs cycle, gaze traces differ.

    Every client follows its own saccade trace (seeded from the config
    seed), so fixations — and therefore perceptual payloads — diverge
    the way real independent users' would.
    """
    if n_clients < 1:
        raise ValueError(f"n_clients must be >= 1, got {n_clients}")
    streaming_names = [streaming_codec_name(name) for name in codecs]
    clients = []
    for index in range(n_clients):
        trace = saccade_trace(
            duration_s=max(config.n_frames / target_fps, 0.1),
            rng=np.random.default_rng(config.seed + index),
        )
        clients.append(
            ClientConfig(
                name=f"client{index}",
                scene=config.scene_names[index % len(config.scene_names)],
                codec=streaming_names[index % len(streaming_names)],
                height=config.height,
                width=config.width,
                target_fps=target_fps,
                gaze_trace=tuple(trace),
            )
        )
    return clients


def build_fleet_cohorts(
    config: ExperimentConfig,
    n_clients: int,
    codecs: tuple[str, ...],
    target_fps: float = 72.0,
    *,
    n_jobs: int = 1,
    controller: str | RateController | None = None,
    ladder: QualityLadder | None = None,
    tracers_per_cohort: int = 1,
) -> list[CohortSpec]:
    """Fold ``n_clients`` into scene x codec equivalence classes.

    :func:`build_fleet_clients` cycles scenes and codecs over client
    indices, so the fleet repeats with period ``lcm(n_scenes,
    n_codecs)`` — every client in a class is statistically identical
    up to its gaze trace.  This builder renders and encodes **one
    representative per class** (the class's lowest client index, with
    that index's gaze seed) and carries the rest as cohort members,
    which is what makes million-client fleets affordable: encode cost
    is O(classes), not O(clients).

    Adaptive fleets replicate :func:`~repro.streaming.server.simulate_fleet`'s
    rung policy exactly: each cohort starts on the rung matching its
    codec, and a pinned :class:`~repro.streaming.adaptive.FixedController`
    encodes only the pinned rung.
    """
    if n_clients < 1:
        raise ValueError(f"n_clients must be >= 1, got {n_clients}")
    if tracers_per_cohort < 0:
        raise ValueError(
            f"tracers_per_cohort must be >= 0, got {tracers_per_cohort}"
        )
    streaming_names = [streaming_codec_name(name) for name in codecs]
    scenes = config.scene_names
    period = lcm(len(scenes), len(streaming_names))
    n_classes = min(period, n_clients)
    representatives = []
    for r in range(n_classes):
        trace = saccade_trace(
            duration_s=max(config.n_frames / target_fps, 0.1),
            rng=np.random.default_rng(config.seed + r),
        )
        representatives.append(
            ClientConfig(
                name=f"cohort{r:03d}",
                scene=scenes[r % len(scenes)],
                codec=streaming_names[r % len(streaming_names)],
                height=config.height,
                width=config.width,
                target_fps=target_fps,
                gaze_trace=tuple(trace),
            )
        )
    frame_counts = [config.n_frames] * n_classes

    rung_maps: list[tuple[int, ...]] | None = None
    start_rungs = [0] * n_classes
    if controller is not None:
        policy = get_controller(controller)
        ladder = ladder if ladder is not None else QualityLadder.default()
        start_rungs = [ladder.index_of(rep.codec) for rep in representatives]
        if isinstance(policy, FixedController):
            if policy.rung is None:
                pinned = start_rungs
            elif isinstance(policy.rung, str):
                pinned = [ladder.index_of(policy.rung)] * n_classes
            else:
                pinned = [int(policy.rung)] * n_classes
            rung_maps = [(rung,) for rung in pinned]
            start_rungs = pinned
        else:
            rung_maps = [tuple(range(len(ladder)))] * n_classes
        streams = _encode_streams(
            representatives, config.display, frame_counts, n_jobs, ladder, rung_maps
        )
    else:
        streams = _encode_streams(
            representatives, config.display, frame_counts, n_jobs
        )

    cohorts = []
    for r, rep in enumerate(representatives):
        count = (n_clients - r - 1) // period + 1
        cohorts.append(
            CohortSpec(
                name=rep.name,
                scene=rep.scene,
                codec=rep.codec,
                n_members=count,
                payloads=tuple(tuple(frame) for frame in streams[r]),
                n_frames=config.n_frames,
                target_fps=target_fps,
                encode_time_s=rep.encode_time_s,
                n_tracers=min(tracers_per_cohort, count),
                rung_map=rung_maps[r] if rung_maps is not None else None,
                start_rung=start_rungs[r],
            )
        )
    return cohorts


def run_fleet(
    config: ExperimentConfig | None = None,
    *,
    n_clients: int = 4,
    link: WirelessLink = WIFI6_LINK,
    scheduler: str = "fair",
    n_jobs: int = 1,
    target_fps: float = 72.0,
    lenient_codecs: bool = False,
    controller: str | RateController | None = None,
    ladder: QualityLadder | None = None,
    pricing: str = "backlog",
    recovery: str | None = None,
    cohorts: bool = False,
    n_shards: int = 1,
    tracers_per_cohort: int = 1,
) -> FleetResult | CohortFleetResult:
    """Simulate the fleet and compare solo vs contended frame rates.

    ``config.codec_names`` cycles over the clients.  By default a name
    that cannot stream per-frame (png, scc, temporal-bd) raises.  With
    ``lenient_codecs=True`` such names are dropped and, if none remain,
    the default roster is used — the CLI sets this for multi-experiment
    runs, where a shared ``--codecs`` filter aimed at the sweep
    experiments must not break the fleet leg of an ``all`` run.

    ``controller`` switches the fleet to adaptive rate control: every
    client starts on its cycled codec's rung and re-picks per frame
    from ``ladder`` (the CLI's ``--controller``/``--trace`` flags feed
    this path).  ``pricing`` selects the engine's transport pricing
    (``backlog`` per-stream queueing, or the legacy ``round``; the
    CLI's ``--pricing`` flag feeds it).

    ``recovery`` names the loss-recovery policy (``arq``, ``fec``, or
    ``skip``; the CLI's ``--recovery`` flag feeds it) and requires a
    link with a :class:`~repro.streaming.loss.LossTrace` attached —
    ``None`` on a lossy link defaults to ARQ.

    ``cohorts=True`` switches to the mean-field fast path
    (:mod:`repro.streaming.cohort`): clients fold into scene x codec
    equivalence classes via :func:`build_fleet_cohorts` and advance in
    O(classes) work, sharded ``n_shards`` ways with
    ``tracers_per_cohort`` fully-reported tracer clients each — the
    mode behind ``repro fleet --clients 1000000 --cohorts``.  Cohort
    mode prices contention by analytic waterfilling, so it composes
    with ``controller`` but not with ``pricing="round"``.
    """
    config = config or ExperimentConfig()
    codecs = tuple(config.codec_names or DEFAULT_FLEET_CODECS)
    if lenient_codecs:
        streamable = []
        for name in codecs:
            try:
                streamable.append(streaming_codec_name(name))
            except (KeyError, ValueError):
                continue
        if not streamable:
            streamable = [streaming_codec_name(n) for n in DEFAULT_FLEET_CODECS]
    else:
        streamable = [streaming_codec_name(name) for name in codecs]
    if cohorts:
        if pricing != "backlog":
            raise ValueError(
                "cohort mode prices contention by analytic waterfilling; "
                "pricing modes do not apply"
            )
        specs = build_fleet_cohorts(
            config,
            n_clients,
            tuple(streamable),
            target_fps,
            n_jobs=n_jobs,
            controller=controller,
            ladder=ladder,
            tracers_per_cohort=tracers_per_cohort,
        )
        report = simulate_cohort_fleet(
            specs,
            link,
            scheduler=scheduler,
            seed=config.seed,
            controller=controller,
            ladder=ladder,
            recovery=recovery,
            n_shards=n_shards,
            n_jobs=n_jobs,
        )
        return CohortFleetResult(report=report)
    if n_shards != 1 or tracers_per_cohort != 1:
        raise ValueError("n_shards and tracers_per_cohort require cohorts=True")
    clients = build_fleet_clients(config, n_clients, tuple(streamable), target_fps)
    report = simulate_fleet(
        clients,
        link,
        scheduler=scheduler,
        n_frames=config.n_frames,
        n_jobs=n_jobs,
        display=config.display,
        seed=config.seed,
        controller=controller,
        ladder=ladder,
        pricing=pricing,
        recovery=recovery,
    )
    solo = {
        client.name: solo_sustainable_fps(client, link)
        for client in report.clients
    }
    return FleetResult(report=report, solo_fps=solo)


#: CLI-compatible alias (every experiment module exposes ``run``).
run = run_fleet


if __name__ == "__main__":
    print(run_fleet(ExperimentConfig(height=128, width=128)).table())
