"""Quality-oriented analyses beyond the paper: rate-distortion,
temporal stability, and the foveation comparison.

* **Rate-distortion sweep** — the encoder has one knob the paper never
  sweeps: a global scale on the discrimination ellipsoids (the same
  mechanism as per-user calibration).  Sweeping it traces the
  bpp-vs-PSNR-vs-visibility frontier and shows the default (scale 1.0)
  sits exactly at the edge of invisibility.
* **Temporal flicker** — the adjustment is frame-independent; this
  measures whether static regions flicker across an animated sequence.
* **Foveation comparison** — Sec. 7's foveated rendering as a traffic
  reducer, alone and composed with our color adjustment.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..baselines.foveated import FoveationConfig, foveated_bd_bits
from ..color.srgb import encode_srgb8
from ..encoding.bd import bd_breakdown
from ..encoding.tiling import tile_frame
from ..metrics.psnr import psnr
from ..metrics.temporal import flicker_report
from ..perception.model import ParametricModel, ScaledModel
from ..scenes.library import get_scene
from ..study.observer import PsychometricParameters, scene_exceedance
from .common import ExperimentConfig, encoder_for, format_table, render_eval_frames

__all__ = [
    "RateDistortionResult",
    "run_rate_distortion",
    "FlickerResult",
    "run_flicker",
    "FoveationResult",
    "run_foveation_comparison",
]

#: Ellipsoid scales swept by the rate-distortion analysis.
RD_SCALES = (0.25, 0.5, 1.0, 2.0, 4.0)


@dataclass(frozen=True)
class RateDistortionResult:
    """bpp / PSNR / peak exceedance per ellipsoid scale."""

    scales: tuple[float, ...]
    bpp: dict[float, float]
    psnr_db: dict[float, float]
    exceedance: dict[float, float]

    def table(self) -> str:
        headers = ["scale", "bpp", "PSNR (dB)", "exceedance"]
        rows = [
            [f"{s:g}", self.bpp[s], self.psnr_db[s], self.exceedance[s]]
            for s in self.scales
        ]
        return format_table(headers, rows)


def run_rate_distortion(config: ExperimentConfig | None = None) -> RateDistortionResult:
    """Sweep a global ellipsoid scale and trace the RD frontier."""
    config = config or ExperimentConfig()
    eccentricity = config.eccentricity_map()
    base_model = ParametricModel()
    params = PsychometricParameters()

    bpp: dict[float, float] = {}
    quality: dict[float, float] = {}
    visibility: dict[float, float] = {}
    for scale in RD_SCALES:
        model = base_model if scale == 1.0 else ScaledModel(base_model, scale)
        encoder = encoder_for(config, model=model)
        bits, psnrs, peaks = [], [], []
        for name in config.scene_names:
            for frame in render_eval_frames(config, name):
                result = encoder.encode_frame(frame, eccentricity)
                bits.append(result.breakdown.bits_per_pixel)
                psnrs.append(psnr(result.original_srgb, result.adjusted_srgb))
                peaks.append(
                    scene_exceedance(
                        [frame], [result.adjusted_frame], eccentricity,
                        model=base_model, params=params,
                    )
                )
        bpp[scale] = float(np.mean(bits))
        quality[scale] = float(np.mean(psnrs))
        visibility[scale] = float(np.max(peaks))
    return RateDistortionResult(
        scales=RD_SCALES, bpp=bpp, psnr_db=quality, exceedance=visibility
    )


@dataclass(frozen=True)
class FlickerResult:
    """Temporal stability of the adjusted sequences, per scene."""

    amplification: dict[str, float]
    excess_codes: dict[str, float]

    def worst_amplification(self) -> float:
        return max(self.amplification.values())

    def table(self) -> str:
        headers = ["scene", "temporal amplification", "excess (codes)"]
        rows = [
            [scene, self.amplification[scene], self.excess_codes[scene]]
            for scene in self.amplification
        ]
        return format_table(headers, rows, precision=3)


def run_flicker(config: ExperimentConfig | None = None, n_frames: int = 4) -> FlickerResult:
    """Measure output-vs-input temporal variation on animated scenes."""
    config = config or ExperimentConfig()
    encoder = encoder_for(config)
    eccentricity = config.eccentricity_map()

    amplification: dict[str, float] = {}
    excess: dict[str, float] = {}
    for name in config.scene_names:
        scene = get_scene(name)
        inputs, outputs = [], []
        for index in range(n_frames):
            frame = scene.render(config.height, config.width, frame=index, eye="left")
            result = encoder.encode_frame(frame, eccentricity)
            inputs.append(result.original_srgb)
            outputs.append(result.adjusted_srgb)
        report = flicker_report(inputs, outputs)
        amplification[name] = report.amplification
        excess[name] = report.excess_variation
    return FlickerResult(amplification=amplification, excess_codes=excess)


@dataclass(frozen=True)
class FoveationResult:
    """Traffic of foveation vs. color adjustment vs. their composition."""

    bpp: dict[str, float]  # variant -> mean bpp

    def table(self) -> str:
        rows = [[name, value] for name, value in self.bpp.items()]
        return format_table(["variant", "mean bpp"], rows)


def run_foveation_comparison(
    config: ExperimentConfig | None = None,
    foveation: FoveationConfig | None = None,
) -> FoveationResult:
    """Compare BD, foveation, ours, and foveation+ours."""
    config = config or ExperimentConfig()
    foveation = foveation or FoveationConfig()
    encoder = encoder_for(config)
    eccentricity = config.eccentricity_map()
    n_pixels = config.height * config.width

    totals = {"BD": 0.0, "foveated": 0.0, "ours": 0.0, "foveated+ours": 0.0}
    count = 0
    for name in config.scene_names:
        for frame in render_eval_frames(config, name):
            tiles, _ = tile_frame(encode_srgb8(frame), config.tile_size)
            totals["BD"] += bd_breakdown(tiles, n_pixels=n_pixels).bits_per_pixel
            totals["foveated"] += foveated_bd_bits(
                frame, eccentricity, foveation, config.tile_size
            ) / n_pixels
            result = encoder.encode_frame(frame, eccentricity)
            totals["ours"] += result.breakdown.bits_per_pixel
            # Composition: each foveation layer is color-adjusted before
            # BD — the orthogonality claim of the paper's Sec. 7.
            totals["foveated+ours"] += foveated_bd_bits(
                frame, eccentricity, foveation, config.tile_size, encoder=encoder
            ) / n_pixels
            count += 1
    return FoveationResult(bpp={k: v / count for k, v in totals.items()})


if __name__ == "__main__":
    for runner in (run_rate_distortion, run_flicker, run_foveation_comparison):
        print(f"== {runner.__name__}")
        print(runner().table())
        print()
