"""Fig. 11 — bits-per-pixel decomposition: base / metadata / deltas.

The paper shows, per scene, side-by-side stacked bars for BD and for
the proposed scheme, demonstrating that the entire saving comes from
the delta component (base and metadata costs are format-fixed).

Runs through the unified codec API: the perceptual codec's
``encode_batch`` over one shared context per frame carries both our
breakdown and the BD baseline's.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..codecs.batch import make_contexts
from ..codecs.wrappers import PerceptualCodec
from .common import ExperimentConfig, encoder_for, format_table, render_eval_frames

__all__ = ["SceneBits", "BitsResult", "run"]

_COMPONENTS = ("base", "metadata", "deltas")


@dataclass(frozen=True)
class SceneBits:
    """Component bpp for BD and for our scheme, one scene."""

    scene: str
    bd: dict[str, float]
    ours: dict[str, float]

    @property
    def delta_saving_bpp(self) -> float:
        """Delta-component saving, where all the benefit lives."""
        return self.bd["deltas"] - self.ours["deltas"]


@dataclass(frozen=True)
class BitsResult:
    """Fig. 11 data across scenes."""

    scenes: list[SceneBits]

    def table(self) -> str:
        headers = ["scene"] + [f"BD {c}" for c in _COMPONENTS] + [
            f"ours {c}" for c in _COMPONENTS
        ]
        rows = [
            [s.scene]
            + [s.bd[c] for c in _COMPONENTS]
            + [s.ours[c] for c in _COMPONENTS]
            for s in self.scenes
        ]
        return format_table(headers, rows)


def run(config: ExperimentConfig | None = None) -> BitsResult:
    """Measure the component decomposition on every scene."""
    config = config or ExperimentConfig()
    codec = PerceptualCodec(encoder=encoder_for(config))
    eccentricity = config.eccentricity_map()

    scenes = []
    for name in config.scene_names:
        bd_totals = dict.fromkeys(_COMPONENTS, 0.0)
        ours_totals = dict.fromkeys(_COMPONENTS, 0.0)
        frames = render_eval_frames(config, name)
        ctxs = make_contexts(
            frames, eccentricity=eccentricity, display=config.display
        )
        for result in codec.encode_batch(ctxs):
            for component in _COMPONENTS:
                bd_totals[component] += result.baseline_breakdown.component_bpp()[component]
                ours_totals[component] += result.breakdown.component_bpp()[component]
        scenes.append(
            SceneBits(
                scene=name,
                bd={c: v / len(frames) for c, v in bd_totals.items()},
                ours={c: v / len(frames) for c, v in ours_totals.items()},
            )
        )
    return BitsResult(scenes=scenes)


if __name__ == "__main__":
    print(run().table())
