"""Fig. 15 — tile-size sensitivity of the compression rate.

The paper sweeps tile sizes T4..T16 and finds the bandwidth reduction
(vs. uncompressed) peaks at 4x4 and falls below plain 4x4 BD beyond
8x8: bigger tiles amortize base pixels but must accommodate the worst
pixel pair, eroding the adjustment opportunity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..color.srgb import encode_srgb8
from ..encoding.accounting import UNCOMPRESSED_BPP
from ..encoding.bd import bd_breakdown
from ..encoding.tiling import tile_frame
from .common import ExperimentConfig, encoder_for, format_table, render_eval_frames

__all__ = ["TileSweepResult", "run", "DEFAULT_TILE_SIZES"]

#: Tile sizes of the paper's sweep.
DEFAULT_TILE_SIZES = (4, 6, 8, 10, 12, 16)


@dataclass(frozen=True)
class TileSweepResult:
    """Reduction vs. NoCom per scene: BD reference plus our sweep."""

    tile_sizes: tuple[int, ...]
    bd_reduction: dict[str, float]  # scene -> BD(4x4) reduction
    ours_reduction: dict[str, dict[int, float]]  # scene -> tile -> reduction

    def best_tile_size(self, scene: str) -> int:
        by_tile = self.ours_reduction[scene]
        return max(by_tile, key=by_tile.get)

    def crossover_tile_sizes(self, scene: str) -> list[int]:
        """Tile sizes where our scheme falls below the BD reference."""
        return [
            t for t in self.tile_sizes
            if self.ours_reduction[scene][t] < self.bd_reduction[scene]
        ]

    def table(self) -> str:
        headers = ["scene", "BD"] + [f"T{t}" for t in self.tile_sizes]
        rows = [
            [scene, 100.0 * self.bd_reduction[scene]]
            + [100.0 * self.ours_reduction[scene][t] for t in self.tile_sizes]
            for scene in self.bd_reduction
        ]
        return format_table(headers, rows, precision=1)


def run(
    config: ExperimentConfig | None = None,
    tile_sizes: tuple[int, ...] = DEFAULT_TILE_SIZES,
) -> TileSweepResult:
    """Sweep our scheme over tile sizes, with 4x4 BD as the reference."""
    if not tile_sizes:
        raise ValueError("need at least one tile size")
    config = config or ExperimentConfig()
    eccentricity = config.eccentricity_map()
    n_pixels = config.height * config.width

    bd_reduction: dict[str, float] = {}
    ours_reduction: dict[str, dict[int, float]] = {}
    for name in config.scene_names:
        frames = render_eval_frames(config, name)
        bd_bpp = np.mean([
            bd_breakdown(tile_frame(encode_srgb8(f), 4)[0], n_pixels=n_pixels).bits_per_pixel
            for f in frames
        ])
        bd_reduction[name] = 1.0 - float(bd_bpp) / UNCOMPRESSED_BPP
        by_tile: dict[int, float] = {}
        for tile in tile_sizes:
            encoder = encoder_for(config, tile_size=tile)
            bpp = np.mean([
                encoder.encode_frame(f, eccentricity).breakdown.bits_per_pixel
                for f in frames
            ])
            by_tile[tile] = 1.0 - float(bpp) / UNCOMPRESSED_BPP
        ours_reduction[name] = by_tile
    return TileSweepResult(
        tile_sizes=tuple(tile_sizes),
        bd_reduction=bd_reduction,
        ours_reduction=ours_reduction,
    )


if __name__ == "__main__":
    print(run().table())
