"""Fig. 12 — distribution of adjustment cases c1 / c2 per scene.

Case 2 (a common plane cuts all ellipsoids, the channel collapses to a
single value) is the profitable one; the paper reports it covers 78.92%
of tiles on average.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .common import ExperimentConfig, encoder_for, format_table, render_eval_frames

__all__ = ["SceneCases", "CaseResult", "run"]


@dataclass(frozen=True)
class SceneCases:
    """Winning-adjustment case split for one scene."""

    scene: str
    case2_fraction: float

    @property
    def case1_fraction(self) -> float:
        return 1.0 - self.case2_fraction


@dataclass(frozen=True)
class CaseResult:
    """Fig. 12 data across scenes."""

    scenes: list[SceneCases]

    @property
    def mean_case2(self) -> float:
        return float(np.mean([s.case2_fraction for s in self.scenes]))

    def table(self) -> str:
        headers = ["scene", "c1 %", "c2 %"]
        rows = [
            [s.scene, 100.0 * s.case1_fraction, 100.0 * s.case2_fraction]
            for s in self.scenes
        ]
        return (
            format_table(headers, rows, precision=1)
            + f"\nmean c2 = {100 * self.mean_case2:.1f}%"
        )


def run(config: ExperimentConfig | None = None) -> CaseResult:
    """Measure the case split of the winning adjustment per scene."""
    config = config or ExperimentConfig()
    encoder = encoder_for(config)
    eccentricity = config.eccentricity_map()

    scenes = []
    for name in config.scene_names:
        fractions = [
            encoder.encode_frame(frame, eccentricity).case2_fraction
            for frame in render_eval_frames(config, name)
        ]
        scenes.append(SceneCases(scene=name, case2_fraction=float(np.mean(fractions))))
    return CaseResult(scenes=scenes)


if __name__ == "__main__":
    print(run().table())
