"""Fig. 13 — power saving over BD across resolutions and frame rates.

The paper sweeps the lowest and highest Quest 2 render resolutions
against its four refresh rates and prices the traffic delta with the
LPDDR4 energy model, subtracting the CAU's own power.  Savings range
from ~180 mW (lowest point, ~29.9% of measured system power) to
~514 mW (highest point), averaging ~307 mW.

Bits-per-pixel are measured on the evaluation scenes at the configured
evaluation size — per-pixel statistics, so they transfer to the target
resolutions — and the traffic is then scaled to each operating point.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..hardware.cau import CAUModel
from ..hardware.energy import SYSTEM_POWER_REFERENCE_W, OperatingPoint, power_saving_w
from ..scenes.display import (
    QUEST2_HIGH_RESOLUTION,
    QUEST2_LOW_RESOLUTION,
    QUEST2_REFRESH_RATES,
)
from .common import ExperimentConfig, encoder_for, format_table, render_eval_frames

__all__ = ["PowerCell", "PowerResult", "run"]


@dataclass(frozen=True)
class PowerCell:
    """Power saving at one resolution x frame-rate operating point."""

    point: OperatingPoint
    saving_w: float

    @property
    def fraction_of_reference_system_power(self) -> float:
        """Saving relative to the measured uncompressed system power."""
        return self.saving_w / SYSTEM_POWER_REFERENCE_W


@dataclass(frozen=True)
class PowerResult:
    """Fig. 13 grid plus the measured bpp that produced it."""

    cells: list[PowerCell]
    bd_bpp: float
    ours_bpp: float

    @property
    def mean_saving_w(self) -> float:
        return float(np.mean([c.saving_w for c in self.cells]))

    @property
    def min_saving_w(self) -> float:
        return float(np.min([c.saving_w for c in self.cells]))

    @property
    def max_saving_w(self) -> float:
        return float(np.max([c.saving_w for c in self.cells]))

    def table(self) -> str:
        headers = ["operating point", "saving (mW)"]
        rows = [[c.point.label, 1000.0 * c.saving_w] for c in self.cells]
        summary = (
            f"bpp BD={self.bd_bpp:.2f} ours={self.ours_bpp:.2f} | "
            f"saving mean={1000 * self.mean_saving_w:.1f} mW "
            f"min={1000 * self.min_saving_w:.1f} max={1000 * self.max_saving_w:.1f}"
        )
        return format_table(headers, rows, precision=1) + "\n" + summary


def run(config: ExperimentConfig | None = None) -> PowerResult:
    """Measure mean bpp over the scene suite, then sweep Fig. 13's grid."""
    config = config or ExperimentConfig()
    encoder = encoder_for(config)
    eccentricity = config.eccentricity_map()

    bd_bpps, ours_bpps = [], []
    for name in config.scene_names:
        for frame in render_eval_frames(config, name):
            result = encoder.encode_frame(frame, eccentricity)
            bd_bpps.append(result.baseline_breakdown.bits_per_pixel)
            ours_bpps.append(result.breakdown.bits_per_pixel)
    bd_bpp = float(np.mean(bd_bpps))
    ours_bpp = float(np.mean(ours_bpps))

    overhead = CAUModel().total_power_w
    cells = []
    for height, width in (QUEST2_LOW_RESOLUTION, QUEST2_HIGH_RESOLUTION):
        for fps in QUEST2_REFRESH_RATES:
            point = OperatingPoint(height=height, width=width, fps=fps)
            cells.append(
                PowerCell(
                    point=point,
                    saving_w=power_saving_w(
                        bd_bpp, ours_bpp, point, encoder_overhead_w=overhead
                    ),
                )
            )
    return PowerResult(cells=cells, bd_bpp=bd_bpp, ours_bpp=ours_bpp)


if __name__ == "__main__":
    print(run().table())
