"""Fig. 10 — bandwidth reduction over baselines, per scene.

For each scene the paper plots the bandwidth reduction (relative to the
uncompressed frame) achieved by SCC, BD, PNG and the proposed scheme.
Headline numbers: ours averages 66.9% over NoCom, 50.3% over SCC and
15.6% (up to 20.4%) over BD; PNG beats ours on two scenes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..baselines.registry import BASELINE_NAMES, baseline_bits
from ..color.srgb import encode_srgb8
from ..encoding.accounting import UNCOMPRESSED_BPP
from .common import ExperimentConfig, encoder_for, format_table, render_eval_frames

__all__ = ["SceneBandwidth", "BandwidthResult", "run"]


@dataclass(frozen=True)
class SceneBandwidth:
    """Average bits-per-pixel of every method on one scene."""

    scene: str
    bpp: dict[str, float]  # method name -> bits per pixel

    def reduction(self, method: str) -> float:
        """Bandwidth reduction of ``method`` vs. uncompressed frames."""
        return 1.0 - self.bpp[method] / UNCOMPRESSED_BPP

    def ours_reduction_vs(self, method: str) -> float:
        """Traffic reduction of our scheme relative to ``method``."""
        return 1.0 - self.bpp["Ours"] / self.bpp[method]


@dataclass(frozen=True)
class BandwidthResult:
    """Fig. 10 data across all scenes."""

    scenes: list[SceneBandwidth]

    def mean_reduction_vs(self, method: str) -> float:
        return float(np.mean([s.ours_reduction_vs(method) for s in self.scenes]))

    def max_reduction_vs(self, method: str) -> float:
        return float(np.max([s.ours_reduction_vs(method) for s in self.scenes]))

    def png_wins(self) -> int:
        """Scenes where lossless PNG out-compresses our scheme."""
        return sum(1 for s in self.scenes if s.bpp["PNG"] < s.bpp["Ours"])

    def table(self) -> str:
        headers = ["scene"] + [f"{m} red%" for m in ("SCC", "BD", "PNG", "Ours")]
        rows = [
            [s.scene] + [100.0 * s.reduction(m) for m in ("SCC", "BD", "PNG", "Ours")]
            for s in self.scenes
        ]
        summary = (
            f"ours vs NoCom {100 * self.mean_reduction_vs('NoCom'):.1f}% | "
            f"vs SCC {100 * self.mean_reduction_vs('SCC'):.1f}% | "
            f"vs BD mean {100 * self.mean_reduction_vs('BD'):.1f}% "
            f"max {100 * self.max_reduction_vs('BD'):.1f}% | PNG wins {self.png_wins()}"
        )
        return format_table(headers, rows, precision=1) + "\n" + summary


def run(config: ExperimentConfig | None = None) -> BandwidthResult:
    """Measure every method on every scene and collate Fig. 10."""
    config = config or ExperimentConfig()
    encoder = encoder_for(config)
    eccentricity = config.eccentricity_map()
    n_pixels = config.height * config.width

    scenes = []
    for name in config.scene_names:
        totals = {method: 0.0 for method in (*BASELINE_NAMES, "Ours")}
        frames = render_eval_frames(config, name)
        for frame in frames:
            srgb = encode_srgb8(frame)
            for method in BASELINE_NAMES:
                totals[method] += baseline_bits(method, srgb, tile_size=config.tile_size)
            result = encoder.encode_frame(frame, eccentricity)
            totals["Ours"] += result.breakdown.total_bits
        bpp = {
            method: bits / (n_pixels * len(frames)) for method, bits in totals.items()
        }
        scenes.append(SceneBandwidth(scene=name, bpp=bpp))
    return BandwidthResult(scenes=scenes)


if __name__ == "__main__":
    print(run().table())
