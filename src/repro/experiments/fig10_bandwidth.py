"""Fig. 10 — bandwidth reduction over baselines, per scene.

For each scene the paper plots the bandwidth reduction (relative to the
uncompressed frame) achieved by SCC, BD, PNG and the proposed scheme.
Headline numbers: ours averages 66.9% over NoCom, 50.3% over SCC and
15.6% (up to 20.4%) over BD; PNG beats ours on two scenes.

All methods dispatch through the unified codec registry and share one
:class:`~repro.codecs.FrameContext` per frame, so a frame is sRGB
quantized once and tiled once however many codecs sweep it.  The
baseline roster is configurable via ``ExperimentConfig.codec_names``
(the CLI's ``--codecs``); the default is the paper's Fig. 10 set.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..baselines.registry import BASELINE_NAMES
from ..codecs.context import FrameContext
from ..codecs.registry import get_codec, resolve_codec_name
from ..codecs.wrappers import PerceptualCodec
from ..encoding.accounting import UNCOMPRESSED_BPP
from .common import ExperimentConfig, encoder_for, format_table, render_eval_frames

__all__ = ["SceneBandwidth", "BandwidthResult", "run"]

#: Fig. 10 display names of the canonical codecs; other registry codecs
#: (e.g. ``variable-bd`` via ``--codecs``) are shown under their own name.
_DISPLAY_NAMES = {"nocom": "NoCom", "scc": "SCC", "bd": "BD", "png": "PNG"}

#: Codecs that take the experiment's tile size.
_TILED_CODECS = ("bd", "variable-bd", "temporal-bd")


@dataclass(frozen=True)
class SceneBandwidth:
    """Average bits-per-pixel of every method on one scene."""

    scene: str
    bpp: dict[str, float]  # method name -> bits per pixel

    def reduction(self, method: str) -> float:
        """Bandwidth reduction of ``method`` vs. uncompressed frames."""
        return 1.0 - self.bpp[method] / UNCOMPRESSED_BPP

    def ours_reduction_vs(self, method: str) -> float:
        """Traffic reduction of our scheme relative to ``method``."""
        return 1.0 - self.bpp["Ours"] / self.bpp[method]


@dataclass(frozen=True)
class BandwidthResult:
    """Fig. 10 data across all scenes."""

    scenes: list[SceneBandwidth]

    def methods(self) -> list[str]:
        """Method columns present in this run, "Ours" last."""
        ordered = [m for m in self.scenes[0].bpp if m != "Ours"]
        return ordered + ["Ours"]

    def mean_reduction_vs(self, method: str) -> float:
        return float(np.mean([s.ours_reduction_vs(method) for s in self.scenes]))

    def max_reduction_vs(self, method: str) -> float:
        return float(np.max([s.ours_reduction_vs(method) for s in self.scenes]))

    def png_wins(self) -> int:
        """Scenes where lossless PNG out-compresses our scheme."""
        return sum(1 for s in self.scenes if s.bpp["PNG"] < s.bpp["Ours"])

    def table(self) -> str:
        columns = [m for m in self.methods() if m != "NoCom"]
        headers = ["scene"] + [f"{m} red%" for m in columns]
        rows = [
            [s.scene] + [100.0 * s.reduction(m) for m in columns]
            for s in self.scenes
        ]
        present = set(self.methods())
        summary_parts = [
            f"ours vs {m} {100 * self.mean_reduction_vs(m):.1f}%"
            for m in ("NoCom", "SCC") if m in present
        ]
        if "BD" in present:
            summary_parts.append(
                f"vs BD mean {100 * self.mean_reduction_vs('BD'):.1f}% "
                f"max {100 * self.max_reduction_vs('BD'):.1f}%"
            )
        if "PNG" in present:
            summary_parts.append(f"PNG wins {self.png_wins()}")
        return format_table(headers, rows, precision=1) + "\n" + " | ".join(summary_parts)


def run(config: ExperimentConfig | None = None) -> BandwidthResult:
    """Measure every method on every scene and collate Fig. 10."""
    config = config or ExperimentConfig()
    roster = config.codec_names if config.codec_names else BASELINE_NAMES
    # "Ours" (the configured perceptual encoder) is always measured;
    # requesting "perceptual" in the roster would re-run it with
    # default parameters, so it is folded into the Ours column.
    canonical = [
        name
        for name in (resolve_codec_name(entry) for entry in roster)
        if name != "perceptual"
    ]
    labels = [_DISPLAY_NAMES.get(name, name) for name in canonical]
    codecs = {
        label: get_codec(
            name,
            **({"tile_size": config.tile_size} if name in _TILED_CODECS else {}),
        )
        for label, name in zip(labels, canonical)
    }
    codecs["Ours"] = PerceptualCodec(encoder=encoder_for(config))
    eccentricity = config.eccentricity_map()
    n_pixels = config.height * config.width

    scenes = []
    for name in config.scene_names:
        frames = render_eval_frames(config, name)
        # One shared context per frame for the whole codec roster.
        ctxs = [
            FrameContext(frame, eccentricity=eccentricity, display=config.display)
            for frame in frames
        ]
        bpp = {}
        for label, codec in codecs.items():
            codec.reset()
            total = sum(r.total_bits for r in codec.encode_batch(ctxs))
            bpp[label] = total / (n_pixels * len(frames))
        scenes.append(SceneBandwidth(scene=name, bpp=bpp))
    return BandwidthResult(scenes=scenes)


if __name__ == "__main__":
    print(run().table())
