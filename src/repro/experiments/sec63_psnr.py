"""Sec. 6.3 — objective quality (PSNR) of the compressed frames.

The paper's point: subjective quality is *not* objective quality.  The
adjusted frames average 46 dB PSNR with a huge standard deviation
(19.5) and all but two scenes sit below 37 dB — normally a visibly
degraded range — yet the study participants barely noticed anything in
the headset.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..metrics.psnr import psnr
from ..metrics.stats import Summary, summarize
from .common import ExperimentConfig, encoder_for, format_table, render_eval_frames

__all__ = ["ScenePSNR", "PSNRResult", "run"]


@dataclass(frozen=True)
class ScenePSNR:
    """Mean PSNR of the adjusted frames for one scene."""

    scene: str
    psnr_db: float


@dataclass(frozen=True)
class PSNRResult:
    """Sec. 6.3 data across scenes."""

    scenes: list[ScenePSNR]

    def summary(self) -> Summary:
        return summarize([s.psnr_db for s in self.scenes])

    def scenes_below(self, threshold_db: float = 37.0) -> list[str]:
        """Scenes under the paper's 'visible artifacts' PSNR mark."""
        return [s.scene for s in self.scenes if s.psnr_db < threshold_db]

    def table(self) -> str:
        rows = [[s.scene, s.psnr_db] for s in self.scenes]
        stats = self.summary()
        return (
            format_table(["scene", "PSNR (dB)"], rows, precision=1)
            + f"\nmean={stats.mean:.1f} dB std={stats.std:.1f}; "
            f"below 37 dB: {', '.join(self.scenes_below()) or 'none'}"
        )


def run(config: ExperimentConfig | None = None) -> PSNRResult:
    """PSNR of adjusted vs. original sRGB frames, per scene."""
    config = config or ExperimentConfig()
    encoder = encoder_for(config)
    eccentricity = config.eccentricity_map()

    scenes = []
    for name in config.scene_names:
        values = []
        for frame in render_eval_frames(config, name):
            result = encoder.encode_frame(frame, eccentricity)
            values.append(psnr(result.original_srgb, result.adjusted_srgb))
        scenes.append(ScenePSNR(scene=name, psnr_db=float(np.mean(values))))
    return PSNRResult(scenes=scenes)


if __name__ == "__main__":
    print(run().table())
