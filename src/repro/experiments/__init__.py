"""Experiment runners: one module per paper table/figure.

Each module exposes ``run(config) -> result`` returning a dataclass
with a ``table()`` rendering; the ``benchmarks/`` suite wraps these in
pytest-benchmark targets, and the modules are runnable directly
(``python -m repro.experiments.fig10_bandwidth``).
"""

from . import (
    ablations,
    adaptive,
    extensions,
    fleet,
    quality,
    fig02_ellipsoids,
    fig10_bandwidth,
    fig11_bits,
    fig12_cases,
    fig13_power,
    fig14_study,
    fig15_tilesize,
    sec61_hardware,
    sec63_psnr,
)
from .common import ExperimentConfig, encoder_for, format_table, render_eval_frames

__all__ = [
    "ablations",
    "adaptive",
    "extensions",
    "fleet",
    "quality",
    "fig02_ellipsoids",
    "fig10_bandwidth",
    "fig11_bits",
    "fig12_cases",
    "fig13_power",
    "fig14_study",
    "fig15_tilesize",
    "sec61_hardware",
    "sec63_psnr",
    "ExperimentConfig",
    "encoder_for",
    "format_table",
    "render_eval_frames",
]
