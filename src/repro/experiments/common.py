"""Shared configuration and reporting helpers for all experiments.

Every experiment runner takes an :class:`ExperimentConfig` and returns
a result dataclass with a ``table()`` method producing the rows the
paper's corresponding figure plots.  The default configuration runs at
a laptop-friendly resolution; the *content statistics* that drive
compression (per-tile ranges) are resolution-stable by construction of
the scene generator, so shapes match the paper's full-resolution runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.pipeline import PerceptualEncoder
from ..perception.model import DiscriminationModel, default_model
from ..scenes.display import QUEST2_DISPLAY, DisplayGeometry
from ..scenes.library import SCENE_NAMES, get_scene

__all__ = ["ExperimentConfig", "format_table", "render_eval_frames", "encoder_for"]


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by the experiment runners.

    Attributes
    ----------
    height, width:
        Evaluation frame size.  Experiments report per-pixel statistics
        so this mostly controls runtime, not conclusions.
    n_frames:
        Animation frames averaged per scene.
    tile_size:
        BD/adjustment tile edge (4 = the paper's hardware).
    model_kind:
        ``"parametric"`` or ``"rbf"`` discrimination model.
    scene_names:
        Scenes to evaluate, in plotting order.
    seed:
        Master seed for anything stochastic (the study harness).
    codec_names:
        Optional codec-registry filter for the sweep experiments
        (fig10's baseline roster); ``None`` runs each experiment's
        default roster.  Set from the CLI's ``--codecs`` flag.
    """

    height: int = 256
    width: int = 256
    n_frames: int = 2
    tile_size: int = 4
    model_kind: str = "parametric"
    scene_names: tuple[str, ...] = SCENE_NAMES
    display: DisplayGeometry = QUEST2_DISPLAY
    seed: int = 7
    codec_names: tuple[str, ...] | None = None

    def __post_init__(self):
        if self.height < 8 or self.width < 8:
            raise ValueError(f"evaluation frames must be >= 8x8, got {self.height}x{self.width}")
        if self.n_frames < 1:
            raise ValueError(f"n_frames must be >= 1, got {self.n_frames}")

    def eccentricity_map(self) -> np.ndarray:
        """Centered-gaze eccentricity map for the configured frame size."""
        return self.display.eccentricity_map(self.height, self.width)

    def model(self) -> DiscriminationModel:
        return default_model(self.model_kind)


def encoder_for(config: ExperimentConfig, **overrides) -> PerceptualEncoder:
    """Build the perceptual encoder the experiments evaluate."""
    kwargs = {"model": config.model(), "tile_size": config.tile_size}
    kwargs.update(overrides)
    return PerceptualEncoder(**kwargs)


def render_eval_frames(config: ExperimentConfig, scene_name: str) -> list[np.ndarray]:
    """The evaluation frames for one scene: left-eye, animated."""
    scene = get_scene(scene_name)
    return [
        scene.render(config.height, config.width, frame=index, eye="left")
        for index in range(config.n_frames)
    ]


def format_table(headers: Sequence[str], rows: Sequence[Sequence], precision: int = 2) -> str:
    """Render a small ASCII table (the benches print these)."""
    def fmt(cell) -> str:
        if isinstance(cell, float):
            return f"{cell:.{precision}f}"
        return str(cell)

    text_rows = [[fmt(cell) for cell in row] for row in rows]
    widths = [
        max(len(header), *(len(row[i]) for row in text_rows)) if text_rows else len(header)
        for i, header in enumerate(headers)
    ]
    lines = [
        "  ".join(header.ljust(width) for header, width in zip(headers, widths)),
        "  ".join("-" * width for width in widths),
    ]
    for row in text_rows:
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))
    return "\n".join(lines)
