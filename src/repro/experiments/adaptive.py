"""Fixed-vs-adaptive rate control under a fading wireless link.

The paper's encoder matters most exactly when the wireless path is the
bottleneck, and real wireless paths *fade*.  This experiment pits every
fixed quality-ladder rung (today's pinned-codec streaming) against the
adaptive controllers on one fading link and asks the DASH question:
who stalls, and what quality do they deliver while not stalling?

The link is **self-calibrated** from the content: each rung's demand
(mean payload x refresh rate) is measured first, the good phase of a
square-wave trace is set above the most expensive rung's demand and the
faded phase lands between the two cheapest rungs' demands.  During a
fade every fixed rung but the cheapest therefore oversubscribes the
link and accumulates stall, while an adaptive client can always step
down to a rung that fits — so adaptation should match the cheapest
rung's (near-zero) stall at far higher delivered quality, and beat
every other rung on both axes at once.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..codecs.ladder import LadderEncodeCache, QualityLadder
from ..scenes.library import get_scene
from ..streaming.adaptive import (
    AdaptiveSessionReport,
    FixedController,
    simulate_adaptive_session,
)
from ..streaming.link import WirelessLink
from ..streaming.traces import BandwidthTrace
from .common import ExperimentConfig, format_table

__all__ = ["AdaptiveResult", "run", "DEFAULT_SCENE", "FADE_PERIOD_S"]

#: Scene used for the sweep (high-entropy content separates the rungs).
DEFAULT_SCENE = "fortnite"

#: Dwell time of each square-wave phase, seconds.  Off a multiple of
#: the frame interval so fades do not phase-lock to frame boundaries.
FADE_PERIOD_S = 0.29

#: Frames streamed per policy (~2.3 s at 72 fps: four full fade cycles).
N_STREAM_FRAMES = 168

#: Unique animation frames encoded per run; the timeline cycles them.
N_LOOP_FRAMES = 8


@dataclass(frozen=True)
class AdaptiveResult:
    """Per-policy streaming outcomes on one fading link.

    Attributes
    ----------
    reports:
        Policy label (``fixed:<rung>``, ``buffer``, ``throughput``) to
        its :class:`~repro.streaming.adaptive.AdaptiveSessionReport`.
    trace:
        The calibrated bandwidth trace every policy streamed over.
    ladder_names:
        Rung names, best first.
    """

    reports: dict[str, AdaptiveSessionReport]
    trace: BandwidthTrace
    ladder_names: tuple[str, ...]

    def _fixed_labels(self) -> list[str]:
        return [label for label in self.reports if label.startswith("fixed:")]

    def _adaptive_labels(self) -> list[str]:
        return [label for label in self.reports if not label.startswith("fixed:")]

    def table(self) -> str:
        """Per-policy stall/quality table plus the adaptive-vs-fixed verdict."""
        headers = ["policy", "kB/frame", "stall ms", "switches", "quality", "p95 ms"]
        rows = []
        for label, report in self.reports.items():
            stats = report.adaptive
            latencies = [f.motion_to_photon_s for f in report.frames]
            rows.append([
                label,
                report.mean_payload_bits / 8e3,
                stats.stall_time_s * 1e3,
                stats.rung_switches,
                f"{stats.mean_quality:.3f}",
                float(np.percentile(latencies, 95.0)) * 1e3,
            ])
        lines = [format_table(headers, rows, precision=1)]
        lines.append(
            f"link: square wave {self.trace.bandwidth_mbps_at(0.0):.1f} /"
            f" {self.trace.min_mbps:.1f} Mbps, {FADE_PERIOD_S:g} s per phase"
        )
        lines.append(self.verdict())
        return "\n".join(lines)

    def verdict(self) -> str:
        """The acceptance readout: adaptive vs every fixed rung.

        Adaptation wins when its stall time is no worse than *every*
        fixed rung — strictly better than each rung that stalls at all
        — while its delivered quality stays within 10% of the best
        fixed rung's.
        """
        fixed = {label: self.reports[label].adaptive for label in self._fixed_labels()}
        best_quality = max(stats.mean_quality for stats in fixed.values())
        parts = []
        for label in self._adaptive_labels():
            stats = self.reports[label].adaptive
            no_worse = sum(
                stats.stall_time_s <= other.stall_time_s for other in fixed.values()
            )
            strict = sum(
                stats.stall_time_s < other.stall_time_s for other in fixed.values()
            )
            within = stats.mean_quality >= 0.9 * best_quality
            parts.append(
                f"{label}: stall no worse than {no_worse}/{len(fixed)} fixed rungs "
                f"({strict} strictly), quality {stats.mean_quality:.3f} "
                f"({'within' if within else 'OUTSIDE'} 10% of best {best_quality:.3f})"
            )
        return "adaptive vs fixed: " + "; ".join(parts)


def _measure_rung_bits(cache: LadderEncodeCache) -> np.ndarray:
    """Per-frame payload bits of each rung over the loop frames.

    Fills the shared :class:`~repro.codecs.ladder.LadderEncodeCache`,
    so the per-policy sweeps that follow replay these encodes instead
    of re-paying them.

    Returns
    -------
    numpy.ndarray
        Shape ``(n_rungs, N_LOOP_FRAMES)``.
    """
    return np.column_stack(
        [cache.rung_bits(index) for index in range(N_LOOP_FRAMES)]
    ).astype(float)


def _calibrate_trace(bits: np.ndarray, target_fps: float) -> BandwidthTrace:
    """A square-wave fade that only the cheapest rung survives.

    The good phase clears the most expensive rung's worst frame; the
    faded phase sits between the cheapest rung's *worst* frame and the
    second-cheapest rung's *best* frame (falling back to the midpoint
    of their means when frame-size variance makes those overlap), so
    the cheapest rung streams through fades stall-free while every
    other rung oversubscribes the link.
    """
    mean_demand = bits.mean(axis=1) * target_fps
    order = np.argsort(mean_demand)
    cheapest, second = int(order[0]), int(order[1])
    high_bps = 1.15 * bits.max() * target_fps
    floor_bps = bits[cheapest].max() * target_fps
    ceil_bps = bits[second].min() * target_fps
    if floor_bps < ceil_bps:
        low_bps = 0.5 * (floor_bps + ceil_bps)
    else:
        low_bps = 0.5 * (mean_demand[cheapest] + mean_demand[second])
    return BandwidthTrace.square(high_bps / 1e6, low_bps / 1e6, FADE_PERIOD_S)


def run(config: ExperimentConfig | None = None, target_fps: float = 72.0) -> AdaptiveResult:
    """Sweep every fixed rung and both adaptive policies on one fade.

    Parameters
    ----------
    config:
        Shared experiment knobs; ``height``/``width`` set the render
        size and ``seed`` the jitter stream.  The frame count is fixed
        (four fade cycles) so the CLI's animation-frame default does
        not truncate the fades.
    target_fps:
        Refresh rate of the simulated client.

    Returns
    -------
    AdaptiveResult
        One report per policy over the same calibrated fading link.
    """
    config = config or ExperimentConfig()
    scene_name = DEFAULT_SCENE if DEFAULT_SCENE in config.scene_names else config.scene_names[0]
    ladder = QualityLadder.default()

    scene = get_scene(scene_name)
    # Every policy streams the identical content, so one shared encode
    # cache serves both the calibration measurement and every sweep —
    # the ladder is encoded once, not once per policy.
    cache = LadderEncodeCache(
        scene, ladder, config.height, config.width, config.display
    )
    bits = _measure_rung_bits(cache)
    trace = _calibrate_trace(bits, target_fps)
    link = WirelessLink.traced(trace, propagation_ms=3.0)

    session_kwargs = dict(
        ladder=ladder,
        n_frames=N_STREAM_FRAMES,
        height=config.height,
        width=config.width,
        target_fps=target_fps,
        display=config.display,
        seed=config.seed,
        encode_cache=cache,
        loop_frames=N_LOOP_FRAMES,
    )
    reports: dict[str, AdaptiveSessionReport] = {}
    for index, rung in enumerate(ladder):
        reports[f"fixed:{rung.name}"] = simulate_adaptive_session(
            scene, link, FixedController(rung=index), start_rung=index, **session_kwargs
        )
    for policy in ("buffer", "throughput"):
        reports[policy] = simulate_adaptive_session(
            scene, link, policy, **session_kwargs
        )
    return AdaptiveResult(
        reports=reports, trace=trace, ladder_names=ladder.names
    )


if __name__ == "__main__":
    print(run(ExperimentConfig(height=128, width=128)).table())
