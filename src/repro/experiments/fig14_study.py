"""Fig. 14 — user study: participants not noticing artifacts per scene.

The paper's 11-participant study found on average 2.8 participants
(std 1.5) noticed artifacts; nobody noticed any in the bright-green
fortnite scene, while the dark scenes (dumbo, monkey) fared worst.
This runner drives the simulated-observer study harness and reports
the same per-scene counts.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..study.harness import StudyConfig, StudyResult, run_user_study
from .common import ExperimentConfig, encoder_for, format_table

__all__ = ["Fig14Result", "run"]


@dataclass(frozen=True)
class Fig14Result:
    """Wraps the study result with Fig. 14's reporting."""

    study: StudyResult

    def not_noticing_by_scene(self) -> dict[str, int]:
        return {o.scene: o.not_noticing for o in self.study.outcomes}

    def table(self) -> str:
        headers = ["scene", "not noticing", "noticing", "exceedance"]
        rows = [
            [o.scene, o.not_noticing, o.n_observers - o.not_noticing, o.exceedance]
            for o in self.study.outcomes
        ]
        summary = (
            f"mean noticing {self.study.mean_noticing:.2f} "
            f"(std {self.study.std_noticing:.2f}) of "
            f"{self.study.outcomes[0].n_observers} participants"
        )
        return format_table(headers, rows) + "\n" + summary


def run(config: ExperimentConfig | None = None) -> Fig14Result:
    """Run the simulated study at the experiment configuration."""
    config = config or ExperimentConfig()
    study_config = StudyConfig(
        height=min(config.height, 192),
        width=min(config.width, 192),
        n_frames=config.n_frames,
        seed=config.seed,
        scene_names=config.scene_names,
        display=config.display,
    )
    encoder = encoder_for(config)
    return Fig14Result(study=run_user_study(encoder=encoder, config=study_config))


if __name__ == "__main__":
    print(run().table())
