"""Fig. 2 — discrimination ellipsoid fields at 5 and 25 degrees.

The paper's Fig. 2 plots the discrimination ellipsoids of 27 colors
uniformly sampled in the linear-RGB cube between (0.2, 0.2, 0.2) and
(0.8, 0.8, 0.8), at 5 deg and at 25 deg eccentricity, showing the
peripheral ellipsoids are larger.  This runner produces the underlying
geometry: DKL semi-axes and RGB-space half-widths per color per
eccentricity, plus the volume growth factor.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..perception.geometry import channel_halfwidth
from .common import ExperimentConfig, format_table

__all__ = ["EllipsoidAtlas", "run", "sample_colors"]

#: Eccentricities of the two Fig. 2 panels.
FIG2_ECCENTRICITIES = (5.0, 25.0)


def sample_colors() -> np.ndarray:
    """The 27 colors of Fig. 2: a 3x3x3 grid over [0.2, 0.8]^3."""
    axis = np.linspace(0.2, 0.8, 3)
    grid = np.meshgrid(axis, axis, axis, indexing="ij")
    return np.stack([g.ravel() for g in grid], axis=1)


@dataclass(frozen=True)
class EllipsoidAtlas:
    """Per-color ellipsoid geometry at the two Fig. 2 eccentricities."""

    colors: np.ndarray  # (27, 3)
    semi_axes: dict[float, np.ndarray]  # ecc -> (27, 3) DKL semi-axes
    rgb_halfwidths: dict[float, np.ndarray]  # ecc -> (27, 3) per-channel

    def volume_growth(self) -> np.ndarray:
        """Per-color DKL volume ratio between 25 and 5 degrees."""
        low = np.prod(self.semi_axes[FIG2_ECCENTRICITIES[0]], axis=1)
        high = np.prod(self.semi_axes[FIG2_ECCENTRICITIES[1]], axis=1)
        return high / low

    def mean_halfwidths(self, eccentricity: float) -> np.ndarray:
        """Mean RGB half-widths (R, G, B) over the 27 colors."""
        return self.rgb_halfwidths[eccentricity].mean(axis=0)

    def table(self) -> str:
        rows = []
        for ecc in FIG2_ECCENTRICITIES:
            mean_h = self.mean_halfwidths(ecc)
            rows.append([f"{ecc:g} deg", *(255.0 * mean_h)])
        body = format_table(
            ["eccentricity", "R halfwidth (codes)", "G halfwidth (codes)",
             "B halfwidth (codes)"],
            rows,
        )
        growth = self.volume_growth()
        return body + (
            f"\nvolume growth 5->25 deg: mean {growth.mean():.1f}x "
            f"(min {growth.min():.1f}x)"
        )


def run(config: ExperimentConfig | None = None) -> EllipsoidAtlas:
    """Evaluate the discrimination model on the Fig. 2 sampling."""
    config = config or ExperimentConfig()
    model = config.model()
    colors = sample_colors()
    semi_axes = {}
    halfwidths = {}
    for ecc in FIG2_ECCENTRICITIES:
        axes = model.semi_axes(colors, np.full(colors.shape[0], ecc))
        semi_axes[ecc] = axes
        halfwidths[ecc] = np.stack(
            [channel_halfwidth(axes, channel) for channel in range(3)], axis=1
        )
    return EllipsoidAtlas(colors=colors, semi_axes=semi_axes, rgb_halfwidths=halfwidths)


if __name__ == "__main__":
    print(run().table())
