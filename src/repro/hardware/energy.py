"""DRAM traffic energy model (paper Sec. 5.1, Fig. 13).

The paper prices DRAM accesses with Micron's system power calculator
for a typical 8 Gb 32-bit LPDDR4 part: 3,477 pJ per (uncompressed,
3-byte) pixel, i.e. ~144.9 pJ per bit of traffic.  Power at a given
operating point is then

    P = bits_per_pixel x pixels_per_frame x fps x energy_per_bit

and the *saving* of one encoder over another is the traffic delta
priced the same way, minus the CAU's own power (201.6 uW), which the
paper "faithfully accounts for".
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "DRAM_ENERGY_PER_PIXEL_PJ",
    "DRAM_ENERGY_PER_BIT_J",
    "SYSTEM_POWER_REFERENCE_W",
    "dram_traffic_power_w",
    "power_saving_w",
    "OperatingPoint",
]

#: Energy to move one uncompressed 24-bit pixel through DRAM (pJ).
DRAM_ENERGY_PER_PIXEL_PJ = 3477.0

#: Energy per bit of DRAM traffic (J), derived from the per-pixel figure.
DRAM_ENERGY_PER_BIT_J = DRAM_ENERGY_PER_PIXEL_PJ * 1e-12 / 24.0

#: Total measured system power rendering without compression at the
#: lowest Quest 2 operating point; back-derived from the paper's
#: statement that a 180.3 mW saving is 29.9% of the total (Sec. 6.2).
SYSTEM_POWER_REFERENCE_W = 0.1803 / 0.299


@dataclass(frozen=True)
class OperatingPoint:
    """A display operating point: resolution and refresh rate."""

    height: int
    width: int
    fps: float

    def __post_init__(self):
        if self.height <= 0 or self.width <= 0:
            raise ValueError(f"resolution must be positive, got {self.height}x{self.width}")
        if self.fps <= 0:
            raise ValueError(f"fps must be positive, got {self.fps}")

    @property
    def pixels(self) -> int:
        return self.height * self.width

    @property
    def label(self) -> str:
        return f"{self.width}x{self.height}@{self.fps:g}FPS"


def dram_traffic_power_w(bits_per_pixel: float, point: OperatingPoint) -> float:
    """DRAM power of streaming frames at ``bits_per_pixel`` through memory."""
    if bits_per_pixel < 0:
        raise ValueError(f"bits_per_pixel must be non-negative, got {bits_per_pixel}")
    return bits_per_pixel * point.pixels * point.fps * DRAM_ENERGY_PER_BIT_J


def power_saving_w(
    baseline_bpp: float,
    ours_bpp: float,
    point: OperatingPoint,
    encoder_overhead_w: float = 201.6e-6,
) -> float:
    """Net power saved by our encoder over a baseline (paper Fig. 13).

    Positive when we save power; the encoder's own consumption is
    subtracted.  ``baseline_bpp < ours_bpp`` yields a negative value —
    callers decide whether that is an error for them.
    """
    if encoder_overhead_w < 0:
        raise ValueError(f"encoder_overhead_w must be >= 0, got {encoder_overhead_w}")
    gross = dram_traffic_power_w(baseline_bpp, point) - dram_traffic_power_w(
        ours_bpp, point
    )
    return gross - encoder_overhead_w
