"""Fixed-point functional model of the CAU datapath (paper Sec. 4.2).

The synthesized CAU computes the color adjustment with fixed-point
arithmetic (DesignWare pipelined dividers and square roots), not the
float64 of the reference implementation.  This module answers the
question every RTL implementer asks first: **how many fractional bits
does the datapath need?**

It mirrors the PE's three phases — Compute Extrema, Compute Planes,
Color Shift — quantizing every cross-stage value to a configurable
``Q2.f`` fixed-point grid (all the quantities that cross stage
boundaries are RGB-domain values in ``[-2, 2)``: pixel channels,
extrema displacements, plane heights, and the move steps).  Tests and
the precision-sweep benchmark then measure, against the float
reference:

* how far the output colors diverge (codes),
* whether the perceptual guarantee survives (Mahalanobis <= 1 + eps),
* what happens to the compressed size.

Finding (see the benchmark): 10-12 fractional bits already keep
outputs within one 8-bit *display code* of the reference, and 20 bits
are code-exact.  The strict Mahalanobis guarantee is much more
demanding — the published DKL matrix is near-singular, so each
ellipsoid has an oblique direction only ~1e-5 wide, and any
displacement rounding at coarser resolution leaves that pancake even
when the color change is far below a display code.  An RTL
implementation therefore either carries ~20 fractional bits through
the shift stage (still narrow for DesignWare operators) or accepts
that the guarantee holds at display precision rather than in exact
ellipsoid arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.adjust import AxisAdjustment, case2_plane
from ..perception.geometry import channel_extrema

__all__ = ["FixedPointSpec", "quantize_fixed", "adjust_tiles_fixed_point"]


@dataclass(frozen=True)
class FixedPointSpec:
    """A ``Q2.f`` signed fixed-point format.

    Attributes
    ----------
    frac_bits:
        Fractional bits; resolution is ``2**-frac_bits``.
    total_range:
        Symmetric representable range; values saturate at the rails,
        as hardware does.
    """

    frac_bits: int = 16
    total_range: float = 2.0

    def __post_init__(self):
        if not 1 <= self.frac_bits <= 52:
            raise ValueError(f"frac_bits must be in [1, 52], got {self.frac_bits}")
        if self.total_range <= 0:
            raise ValueError(f"total_range must be positive, got {self.total_range}")

    @property
    def resolution(self) -> float:
        return 2.0 ** -self.frac_bits


def quantize_fixed(values, spec: FixedPointSpec) -> np.ndarray:
    """Round to the fixed-point grid with saturating rails."""
    arr = np.asarray(values, dtype=np.float64)
    step = spec.resolution
    limit = spec.total_range - step
    return np.clip(np.round(arr / step) * step, -spec.total_range, limit)


def adjust_tiles_fixed_point(
    tiles_rgb, semi_axes, axis: int, spec: FixedPointSpec | None = None
) -> AxisAdjustment:
    """Run the Fig. 6 adjustment through a quantized datapath.

    Mirrors :func:`repro.core.adjust.adjust_tiles` stage by stage,
    quantizing every value that crosses a pipeline-stage boundary:

    1. **Compute Extrema** — per-pixel extrema displacement and channel
       half-width (outputs of the divider/sqrt block);
    2. **Compute Planes** — HL and LH from the comparator trees
       (comparisons are exact; the compared values are already on the
       grid);
    3. **Color Shift** — the move ratio (output of the divider) and the
       shifted colors.

    The ellipsoid *inputs* are taken at full precision: the paper's PE
    receives them from the GPU's RBF evaluation, whose own precision is
    a separate (upstream) concern.
    """
    spec = spec or FixedPointSpec()
    tiles = quantize_fixed(np.asarray(tiles_rgb, dtype=np.float64), spec)
    tiles = np.clip(tiles, 0.0, 1.0)

    # Phase 1: Compute Extrema.
    extrema = channel_extrema(tiles, semi_axes, axis)
    displacement = quantize_fixed(extrema.displacement, spec)
    halfwidth = quantize_fixed(extrema.displacement[..., axis], spec)

    z = tiles[..., axis]
    low = quantize_fixed(z - halfwidth, spec)
    high = quantize_fixed(z + halfwidth, spec)

    # Phase 2: Compute Planes (reduction trees).
    hl, lh, case2 = case2_plane(low, high)
    plane = quantize_fixed(0.5 * (hl + lh), spec)

    # Phase 3: Color Shift.
    target = np.where(
        case2[:, None], plane[:, None], np.clip(z, lh[:, None], hl[:, None])
    )
    target = quantize_fixed(target, spec)
    with np.errstate(divide="ignore", invalid="ignore"):
        step = np.where(halfwidth > 0, (target - z) / halfwidth, 0.0)
    step = quantize_fixed(np.clip(step, -1.0, 1.0), spec)
    moved = tiles + step[..., None] * displacement
    # Gamut clamp, as in the reference (pure comparisons + one multiply).
    delta = moved - tiles
    with np.errstate(divide="ignore", invalid="ignore"):
        scale_high = np.where(moved > 1.0, (1.0 - tiles) / delta, 1.0)
        scale_low = np.where(moved < 0.0, -tiles / delta, 1.0)
    scale = np.clip(np.minimum(scale_high, scale_low).min(axis=-1), 0.0, 1.0)
    adjusted = quantize_fixed(tiles + scale[..., None] * delta, spec)
    adjusted = np.clip(adjusted, 0.0, 1.0)

    z_after = adjusted[..., axis]
    return AxisAdjustment(
        adjusted=adjusted,
        case2=case2,
        span_before=z.max(axis=1) - z.min(axis=1),
        span_after=z_after.max(axis=1) - z_after.min(axis=1),
        axis=axis,
    )
