"""Color Adjustment Unit (CAU) hardware model (paper Sec. 4, 6.1).

The paper synthesizes the CAU in TSMC 7 nm and reports its operating
constants; this module implements the *analytical* performance/area/
power arithmetic the evaluation derives from them.  Published
constants (all from Sec. 6.1):

* cycle time 6 ns (~166.7 MHz);
* the Adreno 650 GPU (512 shader cores at 441 MHz) produces at most
  3 pixels per shader core per CAU cycle -> 512 x 3 = 1536 pixels =
  96 four-by-four tiles per cycle, hence 96 PEs;
* per-PE area 0.022 mm^2 (2.1 mm^2 total), pending buffers 36 KB /
  0.03 mm^2; per-PE-plus-buffer power 2.1 uW (201.6 uW total);
* compressing a 5408 x 2736 frame adds 173.4 us.

The 173.4 us figure corresponds to three pipeline-phase passes over
the 9,633 tile-batches (= ceil(924,768 tiles / 96 PEs)) at 6 ns:
batches x 3 x 6 ns = 173.4 us.  We model that explicitly with a
``pipeline_phases`` factor of 3, matching the CAU's three internally
pipelined phases (extrema, planes, shift) under the paper's
conservative non-overlapped accounting.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CAUConfig", "CAUModel", "pe_count_for_gpu"]


def pe_count_for_gpu(
    shader_cores: int = 512,
    gpu_frequency_hz: float = 441e6,
    cau_cycle_ns: float = 6.0,
    pixels_per_tile: int = 16,
) -> int:
    """PEs needed to keep up with a fully-utilized GPU (Sec. 6.1).

    Each shader core emits one pixel per GPU cycle; during one CAU
    cycle the GPU therefore produces ``cores * ceil(cycle_ratio)``
    pixels, which the CAU must consume as whole tiles.
    """
    if shader_cores <= 0 or gpu_frequency_hz <= 0 or cau_cycle_ns <= 0:
        raise ValueError("GPU parameters must be positive")
    if pixels_per_tile <= 0:
        raise ValueError(f"pixels_per_tile must be positive, got {pixels_per_tile}")
    gpu_cycles_per_cau_cycle = cau_cycle_ns * 1e-9 * gpu_frequency_hz
    pixels_per_cau_cycle = shader_cores * int(-(-gpu_cycles_per_cau_cycle // 1))
    return -(-pixels_per_cau_cycle // pixels_per_tile)


@dataclass(frozen=True)
class CAUConfig:
    """Synthesized constants of the CAU (TSMC 7 nm, paper Sec. 6.1)."""

    n_pes: int = 96
    cycle_ns: float = 6.0
    pipeline_phases: int = 3
    tile_size: int = 4
    pe_area_mm2: float = 0.022
    buffer_area_mm2: float = 0.03
    pe_power_w: float = 2.1e-6
    buffer_bytes: int = 36 * 1024

    def __post_init__(self):
        if self.n_pes <= 0:
            raise ValueError(f"n_pes must be positive, got {self.n_pes}")
        if self.cycle_ns <= 0:
            raise ValueError(f"cycle_ns must be positive, got {self.cycle_ns}")
        if self.pipeline_phases <= 0:
            raise ValueError(f"pipeline_phases must be positive, got {self.pipeline_phases}")
        if self.tile_size <= 0:
            raise ValueError(f"tile_size must be positive, got {self.tile_size}")


class CAUModel:
    """Analytical latency/area/power model of the CAU."""

    def __init__(self, config: CAUConfig | None = None):
        self.config = config or CAUConfig()

    @property
    def frequency_mhz(self) -> float:
        """Operating frequency implied by the cycle time."""
        return 1e3 / self.config.cycle_ns

    @property
    def total_pe_area_mm2(self) -> float:
        """Area of the PE array (2.1 mm^2 for the default config)."""
        return self.config.n_pes * self.config.pe_area_mm2

    @property
    def total_area_mm2(self) -> float:
        """PE array plus pending buffers."""
        return self.total_pe_area_mm2 + self.config.buffer_area_mm2

    @property
    def total_power_w(self) -> float:
        """Encoding power: PEs with their buffers (201.6 uW default)."""
        return self.config.n_pes * self.config.pe_power_w

    def tiles_for_resolution(self, height: int, width: int) -> int:
        """Number of tiles in one frame (partial tiles round up)."""
        if height <= 0 or width <= 0:
            raise ValueError(f"resolution must be positive, got {height}x{width}")
        t = self.config.tile_size
        return (-(-height // t)) * (-(-width // t))

    def compression_latency_s(self, height: int, width: int) -> float:
        """Added latency to compress one frame (173.4 us at 5408x2736).

        ``ceil(tiles / PEs)`` batches, each spending ``pipeline_phases``
        CAU cycles under the paper's conservative accounting.
        """
        tiles = self.tiles_for_resolution(height, width)
        batches = -(-tiles // self.config.n_pes)
        return batches * self.config.pipeline_phases * self.config.cycle_ns * 1e-9

    def supports_frame_rate(self, height: int, width: int, fps: float) -> bool:
        """Whether compression latency fits within the frame budget."""
        if fps <= 0:
            raise ValueError(f"fps must be positive, got {fps}")
        return self.compression_latency_s(height, width) < 1.0 / fps

    def latency_fraction_of_budget(self, height: int, width: int, fps: float) -> float:
        """Compression latency as a fraction of the frame time."""
        if fps <= 0:
            raise ValueError(f"fps must be positive, got {fps}")
        return self.compression_latency_s(height, width) * fps
