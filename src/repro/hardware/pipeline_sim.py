"""Cycle-approximate simulator of the CAU's place in the SoC (Sec. 4).

The paper's hardware argument is not just arithmetic: the Pending
Buffers between GPU and CAU "must be properly sized so as to not stall
or starve the CAU pipeline", and the PE count must match the GPU's
peak pixel rate (Sec. 4.2).  This module simulates that dataflow at
tile granularity so both claims can be *checked* rather than assumed:

    GPU (produces tiles at a configurable rate)
      -> Pending Buffer (finite, double-buffered in the paper)
      -> CAU PE array (fixed tiles/cycle throughput, pipelined)
      -> BD encoder -> DRAM (assumed never the bottleneck, as in the
         paper: the whole point is that post-CAU traffic is small)

The simulator advances in CAU cycles.  Each cycle the GPU deposits the
tiles it produced (stalling when the buffer is full — the back-pressure
real SoCs apply), and the CAU drains up to ``n_pes`` tiles.  Reported
metrics: total cycles, GPU stall cycles, CAU idle cycles, and peak
buffer occupancy, which together validate the paper's sizing: with 96
PEs and a double buffer the GPU never stalls and the CAU never starves
while a frame is in flight.
"""

from __future__ import annotations

from dataclasses import dataclass

from .cau import CAUConfig

__all__ = ["PipelineConfig", "PipelineStats", "simulate_frame"]


@dataclass(frozen=True)
class PipelineConfig:
    """Dataflow parameters of the GPU -> CAU path.

    Attributes
    ----------
    cau:
        The CAU being fed (PE count = tiles drained per cycle).
    gpu_tiles_per_cycle:
        Tiles the GPU produces per CAU cycle at full utilization.  The
        paper's derivation: 512 shader cores x 3 pixels per CAU cycle
        = 96 tiles/cycle for 4x4 tiles.
    buffer_tiles:
        Pending Buffer capacity in tiles.  The paper double-buffers
        per PE: capacity = 2 x n_pes.
    gpu_duty_cycle:
        Fraction of cycles the GPU actually produces (1.0 = the
        conservative full-utilization assumption of Sec. 4.2).
    """

    cau: CAUConfig = CAUConfig()
    gpu_tiles_per_cycle: int = 96
    buffer_tiles: int = 192
    gpu_duty_cycle: float = 1.0

    def __post_init__(self):
        if self.gpu_tiles_per_cycle <= 0:
            raise ValueError(
                f"gpu_tiles_per_cycle must be positive, got {self.gpu_tiles_per_cycle}"
            )
        if self.buffer_tiles <= 0:
            raise ValueError(f"buffer_tiles must be positive, got {self.buffer_tiles}")
        if not 0.0 < self.gpu_duty_cycle <= 1.0:
            raise ValueError(
                f"gpu_duty_cycle must be in (0, 1], got {self.gpu_duty_cycle}"
            )


@dataclass(frozen=True)
class PipelineStats:
    """Outcome of simulating one frame through the GPU -> CAU path."""

    total_cycles: int
    gpu_active_cycles: int
    gpu_stall_cycles: int
    cau_busy_cycles: int
    cau_idle_cycles: int
    peak_buffer_occupancy: int
    tiles_processed: int

    @property
    def gpu_stalled(self) -> bool:
        """Did back-pressure ever halt the GPU?  (Must be False for a
        correctly sized design, per Sec. 4.2.)"""
        return self.gpu_stall_cycles > 0

    @property
    def cau_utilization(self) -> float:
        """Fraction of cycles the CAU array was processing tiles."""
        return self.cau_busy_cycles / self.total_cycles if self.total_cycles else 0.0

    def latency_seconds(self, cycle_ns: float) -> float:
        """Wall-clock time for the frame at a given cycle time."""
        if cycle_ns <= 0:
            raise ValueError(f"cycle_ns must be positive, got {cycle_ns}")
        return self.total_cycles * cycle_ns * 1e-9


def simulate_frame(n_tiles: int, config: PipelineConfig | None = None) -> PipelineStats:
    """Push one frame's tiles through the GPU -> buffer -> CAU path.

    The GPU produces ``gpu_tiles_per_cycle`` tiles on each active cycle
    (a deterministic duty-cycle pattern covers partial utilization),
    but only as many as the Pending Buffer can accept — the remainder
    stalls to the next cycle.  The CAU drains up to ``n_pes`` tiles per
    cycle.  Simulation runs until every tile has been drained.
    """
    if n_tiles <= 0:
        raise ValueError(f"n_tiles must be positive, got {n_tiles}")
    config = config or PipelineConfig()

    remaining_to_render = n_tiles
    buffered = 0
    drained = 0
    cycle = 0
    gpu_active = 0
    gpu_stalls = 0
    cau_busy = 0
    cau_idle = 0
    peak_occupancy = 0
    produced_credit = 0.0  # fractional duty-cycle accumulator

    while drained < n_tiles:
        # GPU phase: produce into the buffer, subject to capacity.
        if remaining_to_render > 0:
            produced_credit += config.gpu_duty_cycle
            if produced_credit >= 1.0:
                produced_credit -= 1.0
                want = min(config.gpu_tiles_per_cycle, remaining_to_render)
                space = config.buffer_tiles - buffered
                accepted = min(want, space)
                buffered += accepted
                remaining_to_render -= accepted
                gpu_active += 1
                if accepted < want:
                    gpu_stalls += 1
        peak_occupancy = max(peak_occupancy, buffered)

        # CAU phase: drain up to one tile per PE.
        take = min(config.cau.n_pes, buffered)
        if take > 0:
            cau_busy += 1
        else:
            cau_idle += 1
        buffered -= take
        drained += take
        cycle += 1

        if cycle > 100 * (n_tiles // min(config.cau.n_pes, config.gpu_tiles_per_cycle) + 10):
            raise RuntimeError(
                "pipeline simulation failed to converge; configuration "
                f"{config} cannot drain {n_tiles} tiles"
            )

    return PipelineStats(
        total_cycles=cycle,
        gpu_active_cycles=gpu_active,
        gpu_stall_cycles=gpu_stalls,
        cau_busy_cycles=cau_busy,
        cau_idle_cycles=cau_idle,
        peak_buffer_occupancy=peak_occupancy,
        tiles_processed=drained,
    )
