"""Analytical hardware models: the CAU and the DRAM energy accounting."""

from .cau import CAUConfig, CAUModel, pe_count_for_gpu
from .datapath import FixedPointSpec, adjust_tiles_fixed_point, quantize_fixed
from .pipeline_sim import PipelineConfig, PipelineStats, simulate_frame
from .energy import (
    DRAM_ENERGY_PER_BIT_J,
    DRAM_ENERGY_PER_PIXEL_PJ,
    SYSTEM_POWER_REFERENCE_W,
    OperatingPoint,
    dram_traffic_power_w,
    power_saving_w,
)

__all__ = [
    "FixedPointSpec",
    "adjust_tiles_fixed_point",
    "quantize_fixed",
    "PipelineConfig",
    "PipelineStats",
    "simulate_frame",
    "CAUConfig",
    "CAUModel",
    "pe_count_for_gpu",
    "DRAM_ENERGY_PER_BIT_J",
    "DRAM_ENERGY_PER_PIXEL_PJ",
    "SYSTEM_POWER_REFERENCE_W",
    "OperatingPoint",
    "dram_traffic_power_w",
    "power_saving_w",
]
