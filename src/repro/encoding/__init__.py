"""Base+Delta framebuffer compression substrate (paper Sec. 2.2).

Tiling, bit-level I/O, the BD codec itself (bit-exact round trip), and
the size accounting every experiment reports.
"""

from .accounting import UNCOMPRESSED_BPP, SizeBreakdown
from .bd import (
    BASE_FIELD_BITS,
    HEADER_BITS,
    WIDTH_FIELD_BITS,
    BDCodec,
    EncodedFrame,
    bd_breakdown,
    delta_widths,
)
from .bd_temporal import MODE_FIELD_BITS, TemporalBDAccountant, temporal_delta_widths
from .bd_variable import (
    VariableBDCodec,
    VariableEncodedFrame,
    group_delta_widths,
    variable_bd_breakdown,
)
from .bitio import BitReader, BitWriter
from .tiling import TileGrid, tile_frame, tile_scalar_field, untile_frame

__all__ = [
    "UNCOMPRESSED_BPP",
    "SizeBreakdown",
    "BASE_FIELD_BITS",
    "HEADER_BITS",
    "WIDTH_FIELD_BITS",
    "BDCodec",
    "EncodedFrame",
    "bd_breakdown",
    "delta_widths",
    "MODE_FIELD_BITS",
    "TemporalBDAccountant",
    "temporal_delta_widths",
    "VariableBDCodec",
    "VariableEncodedFrame",
    "group_delta_widths",
    "variable_bd_breakdown",
    "BitReader",
    "BitWriter",
    "TileGrid",
    "tile_frame",
    "tile_scalar_field",
    "untile_frame",
]
