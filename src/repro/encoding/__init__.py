"""Base+Delta framebuffer compression substrate (paper Sec. 2.2).

Tiling, bit-level I/O (a per-field reference path plus NumPy-vectorized
packing kernels), the BD codec itself (bit-exact round trip), and the
size accounting every experiment reports.
"""

from .accounting import UNCOMPRESSED_BPP, SizeBreakdown
from .bd import (
    BASE_FIELD_BITS,
    HEADER_BITS,
    WIDTH_FIELD_BITS,
    BDCodec,
    EncodedFrame,
    bd_breakdown,
    bd_stream_bytes,
    delta_widths,
)
from .bd_temporal import MODE_FIELD_BITS, TemporalBDAccountant, temporal_delta_widths
from .bd_variable import (
    VariableBDCodec,
    VariableEncodedFrame,
    group_delta_widths,
    variable_bd_breakdown,
    variable_bd_stream_bytes,
)
from .bitio import BitReader, BitWriter
from .packing import (
    bits_to_bytes,
    bytes_to_bits,
    gather_field_runs,
    gather_fields,
    pack_fields,
    pack_segments,
    scatter_field_runs,
    scatter_fields,
    sliding_field_values,
    unpack_fields,
    unpack_segments,
)
from .tiling import TileGrid, tile_frame, tile_scalar_field, untile_frame

__all__ = [
    "UNCOMPRESSED_BPP",
    "SizeBreakdown",
    "BASE_FIELD_BITS",
    "HEADER_BITS",
    "WIDTH_FIELD_BITS",
    "BDCodec",
    "EncodedFrame",
    "bd_breakdown",
    "bd_stream_bytes",
    "delta_widths",
    "MODE_FIELD_BITS",
    "TemporalBDAccountant",
    "temporal_delta_widths",
    "VariableBDCodec",
    "VariableEncodedFrame",
    "group_delta_widths",
    "variable_bd_breakdown",
    "variable_bd_stream_bytes",
    "BitReader",
    "BitWriter",
    "bits_to_bytes",
    "bytes_to_bits",
    "gather_field_runs",
    "gather_fields",
    "pack_fields",
    "pack_segments",
    "scatter_field_runs",
    "scatter_fields",
    "sliding_field_values",
    "unpack_fields",
    "unpack_segments",
    "TileGrid",
    "tile_frame",
    "tile_scalar_field",
    "untile_frame",
]
