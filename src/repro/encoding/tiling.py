"""Frame tiling utilities.

Base+Delta compression and the perceptual adjustment both operate on
square pixel tiles (4x4 by default, the paper's hardware tile).  These
helpers convert between ``(H, W, C)`` frames and ``(n_tiles,
tile_size**2, C)`` tile stacks, handling frames whose dimensions are not
multiples of the tile size by edge replication (the choice real
framebuffer compressors make: replicated pixels compress for free and
are cropped away on decode).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["TileGrid", "tile_frame", "untile_frame", "tile_scalar_field"]


@dataclass(frozen=True)
class TileGrid:
    """Geometry of a tiled frame.

    Records the original frame size, the tile size, and the padded size
    actually tiled, so that :func:`untile_frame` can restore the exact
    original frame.
    """

    height: int
    width: int
    tile_size: int

    def __post_init__(self):
        if self.tile_size < 1:
            raise ValueError(f"tile_size must be >= 1, got {self.tile_size}")
        if self.height < 1 or self.width < 1:
            raise ValueError(f"frame must be non-empty, got {self.height}x{self.width}")

    @property
    def padded_height(self) -> int:
        return -(-self.height // self.tile_size) * self.tile_size

    @property
    def padded_width(self) -> int:
        return -(-self.width // self.tile_size) * self.tile_size

    @property
    def tiles_down(self) -> int:
        return self.padded_height // self.tile_size

    @property
    def tiles_across(self) -> int:
        return self.padded_width // self.tile_size

    @property
    def n_tiles(self) -> int:
        return self.tiles_down * self.tiles_across

    @property
    def pixels_per_tile(self) -> int:
        return self.tile_size * self.tile_size


def _pad_to_grid(frame: np.ndarray, grid: TileGrid) -> np.ndarray:
    pad_h = grid.padded_height - grid.height
    pad_w = grid.padded_width - grid.width
    if pad_h == 0 and pad_w == 0:
        return frame
    pad_spec = [(0, pad_h), (0, pad_w)] + [(0, 0)] * (frame.ndim - 2)
    return np.pad(frame, pad_spec, mode="edge")


def tile_frame(frame, tile_size: int) -> tuple[np.ndarray, TileGrid]:
    """Split an ``(H, W, C)`` frame into a ``(n_tiles, t*t, C)`` stack.

    Tiles are ordered row-major over the tile grid; pixels within a tile
    are row-major as well.  Returns the stack and the :class:`TileGrid`
    needed to invert the operation.
    """
    arr = np.asarray(frame)
    if arr.ndim != 3:
        raise ValueError(f"frame must be (H, W, C), got shape {arr.shape}")
    grid = TileGrid(height=arr.shape[0], width=arr.shape[1], tile_size=tile_size)
    padded = _pad_to_grid(arr, grid)
    t = tile_size
    stacked = (
        padded.reshape(grid.tiles_down, t, grid.tiles_across, t, arr.shape[2])
        .swapaxes(1, 2)
        .reshape(grid.n_tiles, t * t, arr.shape[2])
    )
    return np.ascontiguousarray(stacked), grid


def untile_frame(tiles, grid: TileGrid) -> np.ndarray:
    """Reassemble a tile stack produced by :func:`tile_frame`.

    The padding added for non-multiple frame sizes is cropped away, so
    the result has exactly the grid's original ``(height, width)``.
    """
    arr = np.asarray(tiles)
    expected = (grid.n_tiles, grid.pixels_per_tile)
    if arr.ndim != 3 or arr.shape[:2] != expected:
        raise ValueError(f"tiles must have shape ({expected[0]}, {expected[1]}, C), got {arr.shape}")
    t = grid.tile_size
    frame = (
        arr.reshape(grid.tiles_down, grid.tiles_across, t, t, arr.shape[2])
        .swapaxes(1, 2)
        .reshape(grid.padded_height, grid.padded_width, arr.shape[2])
    )
    return np.ascontiguousarray(frame[: grid.height, : grid.width])


def tile_scalar_field(field, tile_size: int) -> tuple[np.ndarray, TileGrid]:
    """Tile a per-pixel scalar field (e.g. eccentricity) to ``(n, t*t)``."""
    arr = np.asarray(field)
    if arr.ndim != 2:
        raise ValueError(f"field must be (H, W), got shape {arr.shape}")
    tiles, grid = tile_frame(arr[..., None], tile_size)
    return tiles[..., 0], grid
