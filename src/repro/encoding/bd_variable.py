"""Variable-width Base+Delta: the footnote-1 extension.

The paper assumes one delta bit-width per tile per channel, noting that
varying the width within a tile "is possible, but uncommon ... with
more hardware overhead" (its footnote 1) and calling it orthogonal.
This module implements that orthogonal idea so the trade-off can be
measured: each tile channel is split into fixed *groups* of pixels and
every group carries its own 4-bit width field.

    fixed    bits = 8 + 4 + pixels * w(tile)
    variable bits = 8 + groups * (4 + group_size * w(group))

Variable wins when delta magnitudes are spatially skewed inside a tile
(an edge crossing one corner); it loses the extra width fields on
uniform tiles.  The ablation benchmark quantifies the net effect on
the evaluation scenes.

A full bitstream codec (:class:`VariableBDCodec`) with exact round-trip
is provided alongside the fast accounting, mirroring the fixed-width
module: encode and decode run on the vectorized kernels of
:mod:`repro.encoding.packing`, and the per-field ``BitWriter`` /
``BitReader`` reference implementation is retained as
:meth:`VariableBDCodec.encode_legacy` /
:meth:`VariableBDCodec.decode_legacy` with property tests asserting
byte-identical streams.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .accounting import SizeBreakdown
from .bd import (
    BASE_FIELD_BITS,
    HEADER_BITS,
    WIDTH_FIELD_BITS,
    _header_bits,
    _read_header,
    _validate_frame,
    _WIDTH_LUT,
)
from .bitio import BitReader, BitWriter
from .packing import (
    bits_to_bytes,
    gather_field_runs,
    gather_fields,
    scatter_field_runs,
    scatter_fields,
    sliding_field_values,
)
from .tiling import TileGrid, tile_frame, untile_frame

__all__ = [
    "group_delta_widths",
    "variable_bd_breakdown",
    "variable_bd_stream_bytes",
    "VariableEncodedFrame",
    "VariableBDCodec",
]


def _validate_tiles(tiles, group_size: int) -> np.ndarray:
    arr = np.asarray(tiles)
    if arr.ndim != 3 or arr.shape[2] != 3:
        raise ValueError(f"tiles must be (n_tiles, pixels, 3), got {arr.shape}")
    if arr.dtype != np.uint8:
        raise TypeError(f"BD operates on uint8 sRGB codes, got dtype {arr.dtype}")
    if group_size <= 0:
        raise ValueError(f"group_size must be positive, got {group_size}")
    if arr.shape[1] % group_size:
        raise ValueError(
            f"pixels per tile ({arr.shape[1]}) must be divisible by "
            f"group_size ({group_size})"
        )
    return arr


def group_delta_widths(tiles, group_size: int = 4) -> np.ndarray:
    """Per-group delta widths, shape ``(n_tiles, n_groups, 3)``.

    Deltas are taken against the *tile* base (the per-channel minimum),
    exactly as in fixed-width BD — only the width field granularity
    changes, which is what keeps the decoder hardware almost identical.
    """
    arr = _validate_tiles(tiles, group_size)
    bases = arr.min(axis=1)  # (n_tiles, 3)
    deltas = arr - bases[:, None, :]  # uint8: arr >= bases elementwise
    n_tiles, pixels, _ = arr.shape
    grouped = deltas.reshape(n_tiles, pixels // group_size, group_size, 3)
    ranges = grouped.max(axis=2).astype(np.int64)
    return _WIDTH_LUT[ranges]


def variable_bd_breakdown(
    tiles, group_size: int = 4, n_pixels: int | None = None
) -> SizeBreakdown:
    """Vectorized size accounting for variable-width BD."""
    arr = _validate_tiles(tiles, group_size)
    n_tiles, pixels = arr.shape[0], arr.shape[1]
    n_groups = pixels // group_size
    widths = group_delta_widths(arr, group_size)
    return SizeBreakdown(
        base_bits=BASE_FIELD_BITS * 3 * n_tiles,
        metadata_bits=WIDTH_FIELD_BITS * 3 * n_tiles * n_groups,
        delta_bits=int(widths.sum()) * group_size,
        header_bits=HEADER_BITS,
        n_pixels=n_pixels if n_pixels is not None else n_tiles * pixels,
    )


def variable_bd_stream_bytes(tiles: np.ndarray, grid: TileGrid, group_size: int) -> bytes:
    """Serialize a tile stack into the variable-BD bitstream, vectorized.

    Mirrors :func:`repro.encoding.bd.bd_stream_bytes`: the layout is
    fully determined by the per-group widths, so one zeroed bit array
    is allocated and each field family — bases, the per-group width
    fields, the delta runs of each distinct width — is scattered into
    place with :func:`~repro.encoding.packing.scatter_fields`.  Bytes
    are identical to the per-field ``BitWriter`` loop
    (:meth:`VariableBDCodec.encode_legacy`).
    """
    arr = _validate_tiles(tiles, group_size)
    n_tiles, p = arr.shape[0], arr.shape[1]
    n_groups = p // group_size
    n_tc = n_tiles * 3
    bases = arr.min(axis=1)  # (n_tiles, 3) uint8
    deltas = arr - bases[:, None, :]
    grouped = deltas.reshape(n_tiles, n_groups, group_size, 3)
    widths = _WIDTH_LUT[grouped.max(axis=2).astype(np.int64)]  # (n_tiles, n_groups, 3)

    # Flatten to stream order: tile-major, channel, then group.
    flat_w = widths.transpose(0, 2, 1).reshape(n_tc, n_groups)
    group_bits = WIDTH_FIELD_BITS + group_size * flat_w  # (n_tc, n_groups)
    block_bits = BASE_FIELD_BITS + group_bits.sum(axis=1)
    block_starts = HEADER_BITS + np.concatenate(
        [np.zeros(1, dtype=np.int64), np.cumsum(block_bits)[:-1]]
    )
    group_starts = (
        block_starts[:, None]
        + BASE_FIELD_BITS
        + np.concatenate(
            [np.zeros((n_tc, 1), dtype=np.int64), np.cumsum(group_bits, axis=1)[:, :-1]],
            axis=1,
        )
    )
    total_bits = HEADER_BITS + int(block_bits.sum())
    bits = np.zeros(total_bits, dtype=np.uint8)
    bits[:HEADER_BITS] = _header_bits(grid)
    scatter_fields(bits, block_starts, bases.reshape(n_tc), BASE_FIELD_BITS, validate=False)
    scatter_fields(
        bits, group_starts.reshape(-1), flat_w.reshape(-1), WIDTH_FIELD_BITS,
        validate=False,
    )

    run_starts = (group_starts + WIDTH_FIELD_BITS).reshape(-1)
    run_widths = flat_w.reshape(-1)
    run_deltas = (
        grouped.transpose(0, 3, 1, 2).reshape(n_tc * n_groups, group_size)
    )
    scatter_field_runs(bits, run_starts, run_widths, run_deltas, group_size)
    return bits_to_bytes(bits)


@dataclass(frozen=True)
class VariableEncodedFrame:
    """A variable-width-BD-encoded frame."""

    data: bytes
    grid: TileGrid
    group_size: int
    breakdown: SizeBreakdown


class VariableBDCodec:
    """Bitstream codec for the variable-width extension.

    Layout per tile per channel: 8-bit base, then for each pixel group
    a 4-bit width followed by ``group_size`` deltas of that width.
    Round-trip is exact; a test asserts stream length against the
    accounting, as for the fixed codec.  :meth:`encode` /
    :meth:`decode` are vectorized; :meth:`encode_legacy` /
    :meth:`decode_legacy` retain the per-field reference path that the
    byte-equality property tests compare against.
    """

    def __init__(self, tile_size: int = 4, group_size: int = 4):
        if tile_size < 1:
            raise ValueError(f"tile_size must be >= 1, got {tile_size}")
        if group_size < 1:
            raise ValueError(f"group_size must be >= 1, got {group_size}")
        if (tile_size * tile_size) % group_size:
            raise ValueError(
                f"tile pixels ({tile_size * tile_size}) must be divisible "
                f"by group_size ({group_size})"
            )
        self.tile_size = tile_size
        self.group_size = group_size

    def encode(self, frame_srgb8) -> VariableEncodedFrame:
        """Encode an ``(H, W, 3)`` uint8 sRGB frame (vectorized)."""
        frame = _validate_frame(frame_srgb8)
        tiles, grid = tile_frame(frame, self.tile_size)
        data = variable_bd_stream_bytes(tiles, grid, self.group_size)
        breakdown = variable_bd_breakdown(
            tiles, self.group_size, n_pixels=grid.height * grid.width
        )
        return VariableEncodedFrame(
            data=data, grid=grid, group_size=self.group_size, breakdown=breakdown,
        )

    def decode(self, encoded: VariableEncodedFrame) -> np.ndarray:
        """Decode back to the exact ``(H, W, 3)`` uint8 frame (vectorized).

        As in :meth:`repro.encoding.bd.BDCodec.decode`, only the width
        fields are read in the sequential walk (each against a
        precomputed sliding-value table); bases and the delta runs of
        each distinct width are then gathered vectorized.
        """
        bits, grid = _read_header(encoded.data)
        if grid != encoded.grid:
            raise ValueError("bitstream header disagrees with the encoded frame's grid")
        gs = encoded.group_size
        p = grid.pixels_per_tile
        n_groups = p // gs
        n_tc = grid.n_tiles * 3
        width_at = sliding_field_values(bits, WIDTH_FIELD_BITS).tobytes()
        width_list: list[int] = []
        offset = HEADER_BITS
        try:
            for _ in range(n_tc):
                offset += BASE_FIELD_BITS
                for _ in range(n_groups):
                    w = width_at[offset]
                    width_list.append(w)
                    offset += WIDTH_FIELD_BITS + gs * w
        except IndexError:
            raise EOFError(
                f"bitstream exhausted: need group width at position {offset}, "
                f"stream has {bits.size} bits"
            ) from None
        if offset > bits.size:
            raise EOFError(
                f"bitstream exhausted: need {offset} bits, stream has {bits.size}"
            )
        widths = np.array(width_list, dtype=np.int64)  # (n_tc * n_groups,)
        # Derive every offset from the walked widths: group k (global,
        # tile-channel-major) starts after k width fields, gs bits per
        # accumulated width, and one 8-bit base per started block.
        k = np.arange(n_tc * n_groups, dtype=np.int64)
        blocks_started = k // n_groups + 1
        cum_w = np.cumsum(widths)
        run_starts = (
            HEADER_BITS
            + BASE_FIELD_BITS * blocks_started
            + WIDTH_FIELD_BITS * (k + 1)
            + gs * (cum_w - widths)
        )
        block_starts = run_starts[::n_groups] - WIDTH_FIELD_BITS - BASE_FIELD_BITS
        bases = gather_fields(bits, block_starts, BASE_FIELD_BITS)
        deltas = gather_field_runs(bits, run_starts, widths, gs)
        flat = bases[:, None] + deltas.reshape(n_tc, p)
        tiles = flat.reshape(grid.n_tiles, 3, p).transpose(0, 2, 1)
        return untile_frame(np.ascontiguousarray(tiles), grid)

    def encode_legacy(self, frame_srgb8) -> VariableEncodedFrame:
        """Reference encoder: one ``BitWriter`` call per field.

        Retained as the executable definition of the stream format;
        property tests assert :meth:`encode` matches it byte for byte.
        """
        frame = _validate_frame(frame_srgb8)
        tiles, grid = tile_frame(frame, self.tile_size)
        bases = tiles.min(axis=1)
        widths = group_delta_widths(tiles, self.group_size)
        deltas = tiles.astype(np.int64) - bases[:, None, :]

        writer = BitWriter()
        writer.write(grid.height, 16)
        writer.write(grid.width, 16)
        writer.write(self.tile_size, 8)
        n_groups = grid.pixels_per_tile // self.group_size
        for tile_index in range(tiles.shape[0]):
            for channel in range(3):
                writer.write(int(bases[tile_index, channel]), BASE_FIELD_BITS)
                for group in range(n_groups):
                    width = int(widths[tile_index, group, channel])
                    writer.write(width, WIDTH_FIELD_BITS)
                    if width:
                        start = group * self.group_size
                        writer.write_many(
                            deltas[tile_index, start : start + self.group_size, channel],
                            width,
                        )
        breakdown = variable_bd_breakdown(
            tiles, self.group_size, n_pixels=grid.height * grid.width
        )
        return VariableEncodedFrame(
            data=writer.getvalue(), grid=grid, group_size=self.group_size,
            breakdown=breakdown,
        )

    def decode_legacy(self, encoded: VariableEncodedFrame) -> np.ndarray:
        """Reference decoder: one ``BitReader`` call per field run."""
        reader = BitReader(encoded.data)
        height = reader.read(16)
        width = reader.read(16)
        tile_size = reader.read(8)
        grid = TileGrid(height=height, width=width, tile_size=tile_size)
        if grid != encoded.grid:
            raise ValueError("bitstream header disagrees with the encoded frame's grid")
        pixels = grid.pixels_per_tile
        n_groups = pixels // encoded.group_size
        tiles = np.empty((grid.n_tiles, pixels, 3), dtype=np.uint8)
        for tile_index in range(grid.n_tiles):
            for channel in range(3):
                base = reader.read(BASE_FIELD_BITS)
                for group in range(n_groups):
                    delta_width = reader.read(WIDTH_FIELD_BITS)
                    start = group * encoded.group_size
                    if delta_width:
                        values = reader.read_many(encoded.group_size, delta_width)
                        tiles[tile_index, start : start + encoded.group_size, channel] = (
                            base + values
                        )
                    else:
                        tiles[
                            tile_index, start : start + encoded.group_size, channel
                        ] = base
        return untile_frame(tiles, grid)
