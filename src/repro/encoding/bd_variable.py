"""Variable-width Base+Delta: the footnote-1 extension.

The paper assumes one delta bit-width per tile per channel, noting that
varying the width within a tile "is possible, but uncommon ... with
more hardware overhead" (its footnote 1) and calling it orthogonal.
This module implements that orthogonal idea so the trade-off can be
measured: each tile channel is split into fixed *groups* of pixels and
every group carries its own 4-bit width field.

    fixed    bits = 8 + 4 + pixels * w(tile)
    variable bits = 8 + groups * (4 + group_size * w(group))

Variable wins when delta magnitudes are spatially skewed inside a tile
(an edge crossing one corner); it loses the extra width fields on
uniform tiles.  The ablation benchmark quantifies the net effect on
the evaluation scenes.

A full bitstream codec (:class:`VariableBDCodec`) with exact round-trip
is provided alongside the fast accounting, mirroring the fixed-width
module.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .accounting import SizeBreakdown
from .bd import BASE_FIELD_BITS, HEADER_BITS, WIDTH_FIELD_BITS
from .bitio import BitReader, BitWriter
from .tiling import TileGrid, tile_frame, untile_frame

__all__ = [
    "group_delta_widths",
    "variable_bd_breakdown",
    "VariableEncodedFrame",
    "VariableBDCodec",
]


def _validate_tiles(tiles, group_size: int) -> np.ndarray:
    arr = np.asarray(tiles)
    if arr.ndim != 3 or arr.shape[2] != 3:
        raise ValueError(f"tiles must be (n_tiles, pixels, 3), got {arr.shape}")
    if arr.dtype != np.uint8:
        raise TypeError(f"BD operates on uint8 sRGB codes, got dtype {arr.dtype}")
    if group_size <= 0:
        raise ValueError(f"group_size must be positive, got {group_size}")
    if arr.shape[1] % group_size:
        raise ValueError(
            f"pixels per tile ({arr.shape[1]}) must be divisible by "
            f"group_size ({group_size})"
        )
    return arr


def group_delta_widths(tiles, group_size: int = 4) -> np.ndarray:
    """Per-group delta widths, shape ``(n_tiles, n_groups, 3)``.

    Deltas are taken against the *tile* base (the per-channel minimum),
    exactly as in fixed-width BD — only the width field granularity
    changes, which is what keeps the decoder hardware almost identical.
    """
    arr = _validate_tiles(tiles, group_size).astype(np.int64)
    bases = arr.min(axis=1)  # (n_tiles, 3)
    deltas = arr - bases[:, None, :]
    n_tiles, pixels, _ = arr.shape
    grouped = deltas.reshape(n_tiles, pixels // group_size, group_size, 3)
    ranges = grouped.max(axis=2)
    return np.ceil(np.log2(ranges + 1.0)).astype(np.int64)


def variable_bd_breakdown(
    tiles, group_size: int = 4, n_pixels: int | None = None
) -> SizeBreakdown:
    """Vectorized size accounting for variable-width BD."""
    arr = _validate_tiles(tiles, group_size)
    n_tiles, pixels = arr.shape[0], arr.shape[1]
    n_groups = pixels // group_size
    widths = group_delta_widths(arr, group_size)
    return SizeBreakdown(
        base_bits=BASE_FIELD_BITS * 3 * n_tiles,
        metadata_bits=WIDTH_FIELD_BITS * 3 * n_tiles * n_groups,
        delta_bits=int(widths.sum()) * group_size,
        header_bits=HEADER_BITS,
        n_pixels=n_pixels if n_pixels is not None else n_tiles * pixels,
    )


@dataclass(frozen=True)
class VariableEncodedFrame:
    """A variable-width-BD-encoded frame."""

    data: bytes
    grid: TileGrid
    group_size: int
    breakdown: SizeBreakdown


class VariableBDCodec:
    """Bitstream codec for the variable-width extension.

    Layout per tile per channel: 8-bit base, then for each pixel group
    a 4-bit width followed by ``group_size`` deltas of that width.
    Round-trip is exact; a test asserts stream length against the
    accounting, as for the fixed codec.
    """

    def __init__(self, tile_size: int = 4, group_size: int = 4):
        if tile_size < 1:
            raise ValueError(f"tile_size must be >= 1, got {tile_size}")
        if group_size < 1:
            raise ValueError(f"group_size must be >= 1, got {group_size}")
        if (tile_size * tile_size) % group_size:
            raise ValueError(
                f"tile pixels ({tile_size * tile_size}) must be divisible "
                f"by group_size ({group_size})"
            )
        self.tile_size = tile_size
        self.group_size = group_size

    def encode(self, frame_srgb8) -> VariableEncodedFrame:
        """Encode an ``(H, W, 3)`` uint8 sRGB frame."""
        frame = np.asarray(frame_srgb8)
        if frame.ndim != 3 or frame.shape[2] != 3:
            raise ValueError(f"frame must be (H, W, 3), got {frame.shape}")
        if frame.dtype != np.uint8:
            raise TypeError(f"BD encodes uint8 sRGB frames, got dtype {frame.dtype}")
        tiles, grid = tile_frame(frame, self.tile_size)
        bases = tiles.min(axis=1)
        widths = group_delta_widths(tiles, self.group_size)
        deltas = tiles.astype(np.int64) - bases[:, None, :]

        writer = BitWriter()
        writer.write(grid.height, 16)
        writer.write(grid.width, 16)
        writer.write(self.tile_size, 8)
        n_groups = grid.pixels_per_tile // self.group_size
        for tile_index in range(tiles.shape[0]):
            for channel in range(3):
                writer.write(int(bases[tile_index, channel]), BASE_FIELD_BITS)
                for group in range(n_groups):
                    width = int(widths[tile_index, group, channel])
                    writer.write(width, WIDTH_FIELD_BITS)
                    if width:
                        start = group * self.group_size
                        writer.write_many(
                            deltas[tile_index, start : start + self.group_size, channel],
                            width,
                        )
        breakdown = variable_bd_breakdown(
            tiles, self.group_size, n_pixels=grid.height * grid.width
        )
        return VariableEncodedFrame(
            data=writer.getvalue(), grid=grid, group_size=self.group_size,
            breakdown=breakdown,
        )

    def decode(self, encoded: VariableEncodedFrame) -> np.ndarray:
        """Decode back to the exact ``(H, W, 3)`` uint8 frame."""
        reader = BitReader(encoded.data)
        height = reader.read(16)
        width = reader.read(16)
        tile_size = reader.read(8)
        grid = TileGrid(height=height, width=width, tile_size=tile_size)
        if grid != encoded.grid:
            raise ValueError("bitstream header disagrees with the encoded frame's grid")
        pixels = grid.pixels_per_tile
        n_groups = pixels // encoded.group_size
        tiles = np.empty((grid.n_tiles, pixels, 3), dtype=np.uint8)
        for tile_index in range(grid.n_tiles):
            for channel in range(3):
                base = reader.read(BASE_FIELD_BITS)
                for group in range(n_groups):
                    delta_width = reader.read(WIDTH_FIELD_BITS)
                    start = group * encoded.group_size
                    if delta_width:
                        values = reader.read_many(encoded.group_size, delta_width)
                        tiles[tile_index, start : start + encoded.group_size, channel] = [
                            base + v for v in values
                        ]
                    else:
                        tiles[
                            tile_index, start : start + encoded.group_size, channel
                        ] = base
        return untile_frame(tiles, grid)
