"""Base+Delta (BD) framebuffer codec (paper Sec. 2.2, Eq. 5-6).

BD is the numerically lossless compression that today's mobile SoCs
apply to all DRAM framebuffer traffic (e.g. Arm AFBC; the paper assumes
the format of Zhang et al. [76]).  Per tile and per channel it stores a
*base* value and fixed-width *deltas* of every pixel from the base:

    bits(tile, channel) = 8 (base) + 4 (width field) + t^2 * w

with ``w = ceil(log2(range + 1))`` the smallest width that can hold the
largest delta in the tile.  Choosing the base as the tile minimum makes
all deltas non-negative, which is both what minimizes ``w`` (the paper's
Eq. 6 remark: any base inside ``[Min, Max]`` is optimal) and what keeps
the format sign-free.

Two interfaces are provided:

* :class:`BDCodec` — a real bitstream encoder/decoder with exact
  round-trip.  Encode and decode run through the vectorized kernels of
  :mod:`repro.encoding.packing` (bit-plane decomposition +
  ``np.packbits``), emitting whole per-(tile, channel) delta runs per
  kernel call instead of one ``BitWriter`` call per field; the
  per-field reference implementation is retained as
  :meth:`BDCodec.encode_legacy` / :meth:`BDCodec.decode_legacy` and
  property tests assert the two produce *byte-identical* streams.
* :func:`bd_breakdown` / :func:`delta_widths` — fast vectorized bit
  *accounting* over tile stacks, used by the frame-scale experiments
  (the stream contents are irrelevant for bandwidth numbers).

All agree bit-for-bit on total size; tests assert it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .accounting import SizeBreakdown
from .bitio import BitReader, BitWriter
from .packing import (
    bits_to_bytes,
    bytes_to_bits,
    gather_field_runs,
    gather_fields,
    pack_fields,
    scatter_field_runs,
    scatter_fields,
    sliding_field_values,
)
from .tiling import TileGrid, tile_frame, untile_frame

__all__ = [
    "BASE_FIELD_BITS",
    "WIDTH_FIELD_BITS",
    "HEADER_BITS",
    "delta_widths",
    "bd_breakdown",
    "bd_stream_bytes",
    "EncodedFrame",
    "BDCodec",
]

#: Bits to store one base value (8-bit sRGB channel).
BASE_FIELD_BITS = 8
#: Bits of per-tile-per-channel metadata: the delta width (0..8 fits in 4).
WIDTH_FIELD_BITS = 4
#: Stream header: 16-bit height, 16-bit width, 8-bit tile size.
HEADER_BITS = 40


def _validate_tiles(tiles) -> np.ndarray:
    arr = np.asarray(tiles)
    if arr.ndim != 3 or arr.shape[2] != 3:
        raise ValueError(f"tiles must be (n_tiles, pixels, 3), got {arr.shape}")
    if arr.dtype != np.uint8:
        raise TypeError(f"BD operates on uint8 sRGB codes, got dtype {arr.dtype}")
    return arr


def _validate_frame(frame_srgb8) -> np.ndarray:
    frame = np.asarray(frame_srgb8)
    if frame.ndim != 3 or frame.shape[2] != 3:
        raise ValueError(f"frame must be (H, W, 3), got {frame.shape}")
    if frame.dtype != np.uint8:
        raise TypeError(f"BD encodes uint8 sRGB frames, got dtype {frame.dtype}")
    return frame


#: ``_WIDTH_LUT[r]`` is the delta width for a tile-channel range of ``r``
#: — ``ceil(log2(r + 1))``, tabulated once for every possible uint8
#: range so the hot paths index instead of taking float logs.
_WIDTH_LUT = np.ceil(np.log2(np.arange(256, dtype=np.float64) + 1.0)).astype(np.int64)


def delta_widths(tiles) -> np.ndarray:
    """Per-tile per-channel delta bit widths, shape ``(n_tiles, 3)``.

    ``w = ceil(log2(max - min + 1))``; a constant channel needs zero
    delta bits.  Matches the paper's Eq. 6 (its floor is a typo — a
    range of 2 needs 2 bits, not 1).
    """
    arr = _validate_tiles(tiles)
    ranges = arr.max(axis=1).astype(np.int64) - arr.min(axis=1)
    return _WIDTH_LUT[ranges]


def bd_breakdown(tiles, n_pixels: int | None = None) -> SizeBreakdown:
    """Vectorized BD bit accounting for a tile stack.

    Parameters
    ----------
    tiles:
        ``(n_tiles, pixels_per_tile, 3)`` uint8 sRGB tile stack.
    n_pixels:
        Source pixel count for the bits-per-pixel denominator; defaults
        to the padded tile-stack pixel count.
    """
    arr = _validate_tiles(tiles)
    n_tiles, pixels_per_tile = arr.shape[0], arr.shape[1]
    widths = delta_widths(arr)
    return SizeBreakdown(
        base_bits=BASE_FIELD_BITS * 3 * n_tiles,
        metadata_bits=WIDTH_FIELD_BITS * 3 * n_tiles,
        delta_bits=int(widths.sum()) * pixels_per_tile,
        header_bits=HEADER_BITS,
        n_pixels=n_pixels if n_pixels is not None else n_tiles * pixels_per_tile,
    )


def _header_bits(grid: TileGrid) -> np.ndarray:
    """The 40-bit stream header as a bit array."""
    return np.concatenate(
        [
            pack_fields([grid.height], 16),
            pack_fields([grid.width], 16),
            pack_fields([grid.tile_size], 8),
        ]
    )


def bd_stream_bytes(tiles: np.ndarray, grid: TileGrid) -> bytes:
    """Serialize a tile stack into the BD bitstream, vectorized.

    The stream layout is fully determined by the per-(tile, channel)
    delta widths, so the encoder allocates one zeroed bit array and
    scatters each field family into place
    (:func:`~repro.encoding.packing.scatter_fields`): all bases at
    once, all width fields at once, then the delta runs of each
    distinct width (at most 8 passes).  The bytes are identical to
    what the per-field ``BitWriter`` loop produces
    (:meth:`BDCodec.encode_legacy`).

    Parameters
    ----------
    tiles:
        ``(n_tiles, pixels_per_tile, 3)`` uint8 tile stack matching
        ``grid`` (e.g. from a cached
        :meth:`repro.codecs.context.FrameContext.tiles`).
    grid:
        The tiling geometry to record in the header.
    """
    arr = _validate_tiles(tiles)
    bases = arr.min(axis=1)  # (n_tiles, 3) uint8
    ranges = arr.max(axis=1).astype(np.int64) - bases
    widths = _WIDTH_LUT[ranges]
    return _stream_from_plan(arr, grid, bases, widths)


def _stream_from_plan(
    arr: np.ndarray, grid: TileGrid, bases: np.ndarray, widths: np.ndarray
) -> bytes:
    """Scatter-pack the stream given precomputed bases and widths."""
    n_tiles, p = arr.shape[0], arr.shape[1]
    n_tc = n_tiles * 3
    flat_widths = widths.reshape(n_tc)

    block_bits = (BASE_FIELD_BITS + WIDTH_FIELD_BITS) + p * flat_widths
    block_starts = HEADER_BITS + np.concatenate(
        [np.zeros(1, dtype=np.int64), np.cumsum(block_bits)[:-1]]
    )
    total_bits = HEADER_BITS + int(block_bits.sum())
    bits = np.zeros(total_bits, dtype=np.uint8)
    bits[:HEADER_BITS] = _header_bits(grid)
    scatter_fields(bits, block_starts, bases.reshape(n_tc), BASE_FIELD_BITS, validate=False)
    scatter_fields(
        bits, block_starts + BASE_FIELD_BITS, flat_widths, WIDTH_FIELD_BITS, validate=False
    )

    # Deltas are value - channel-min, so they are non-negative and fit
    # their computed width by construction.
    deltas = arr - bases[:, None, :]
    delta_runs = deltas.transpose(0, 2, 1).reshape(n_tc, p)
    delta_starts = block_starts + (BASE_FIELD_BITS + WIDTH_FIELD_BITS)
    scatter_field_runs(bits, delta_starts, flat_widths, delta_runs, p)
    return bits_to_bytes(bits)


def _read_header(data: bytes) -> tuple[np.ndarray, TileGrid]:
    bits = bytes_to_bits(data)
    reader = BitReader(data)
    height = reader.read(16)
    width = reader.read(16)
    tile_size = reader.read(8)
    return bits, TileGrid(height=height, width=width, tile_size=tile_size)


@dataclass(frozen=True)
class EncodedFrame:
    """A BD-encoded frame: the bitstream plus its size decomposition."""

    data: bytes
    grid: TileGrid
    breakdown: SizeBreakdown


class BDCodec:
    """Bitstream Base+Delta codec over square tiles.

    The codec is numerically lossless: ``decode(encode(frame))`` returns
    the input exactly.  The perceptual encoder plugs in *before* this
    codec, adjusting pixels so the deltas shrink (paper Fig. 7).

    :meth:`encode` and :meth:`decode` run on the vectorized kernels of
    :mod:`repro.encoding.packing`; :meth:`encode_legacy` and
    :meth:`decode_legacy` retain the per-field ``BitWriter`` /
    ``BitReader`` reference implementation.  Both directions are
    interchangeable — the streams are byte-identical and either decoder
    accepts either encoder's output (property-tested).
    """

    def __init__(self, tile_size: int = 4):
        if tile_size < 1:
            raise ValueError(f"tile_size must be >= 1, got {tile_size}")
        self.tile_size = tile_size

    def encode(self, frame_srgb8) -> EncodedFrame:
        """Encode an ``(H, W, 3)`` uint8 sRGB frame (vectorized)."""
        frame = _validate_frame(frame_srgb8)
        tiles, grid = tile_frame(frame, self.tile_size)
        bases = tiles.min(axis=1)
        ranges = tiles.max(axis=1).astype(np.int64) - bases
        widths = _WIDTH_LUT[ranges]
        data = _stream_from_plan(tiles, grid, bases, widths)
        breakdown = SizeBreakdown(
            base_bits=BASE_FIELD_BITS * 3 * grid.n_tiles,
            metadata_bits=WIDTH_FIELD_BITS * 3 * grid.n_tiles,
            delta_bits=int(widths.sum()) * grid.pixels_per_tile,
            header_bits=HEADER_BITS,
            n_pixels=grid.height * grid.width,
        )
        return EncodedFrame(data=data, grid=grid, breakdown=breakdown)

    def decode(self, encoded: EncodedFrame) -> np.ndarray:
        """Decode back to the exact ``(H, W, 3)`` uint8 frame (vectorized).

        Walking the stream is inherently sequential — each (tile,
        channel) block's position depends on the delta width stored in
        the block before it — but only the 12-bit headers are read in
        that walk, against precomputed sliding-value tables
        (:func:`~repro.encoding.packing.sliding_field_values`).  The
        delta payload, which dominates the stream, is then gathered in
        at most one vectorized pass per distinct width.
        """
        bits, grid = _read_header(encoded.data)
        if grid != encoded.grid:
            raise ValueError("bitstream header disagrees with the encoded frame's grid")
        p = grid.pixels_per_tile
        n_tc = grid.n_tiles * 3
        # The walk below does one random-access width lookup per block;
        # a bytes table (a 4-bit value fits a byte) makes each lookup a
        # plain C-level index returning a Python int.
        width_at = sliding_field_values(bits, WIDTH_FIELD_BITS).tobytes()
        width_list: list[int] = []
        offset = HEADER_BITS
        header_bits = BASE_FIELD_BITS + WIDTH_FIELD_BITS
        try:
            for _ in range(n_tc):
                w = width_at[offset + BASE_FIELD_BITS]
                width_list.append(w)
                offset += header_bits + p * w
        except IndexError:
            raise EOFError(
                f"bitstream exhausted: need block header at position {offset}, "
                f"stream has {bits.size} bits"
            ) from None
        if offset > bits.size:
            raise EOFError(
                f"bitstream exhausted: need {offset} bits, stream has {bits.size}"
            )
        widths = np.array(width_list, dtype=np.int64)
        # Block i starts after i full blocks: i headers plus p bits per
        # accumulated delta width.
        block_ends = header_bits * np.arange(1, n_tc + 1, dtype=np.int64) + p * np.cumsum(
            widths
        )
        starts = HEADER_BITS + block_ends - p * widths
        bases = gather_fields(bits, starts - header_bits, BASE_FIELD_BITS)
        deltas = gather_field_runs(bits, starts, widths, p)
        flat = bases[:, None] + deltas
        tiles = flat.reshape(grid.n_tiles, 3, p).transpose(0, 2, 1)
        return untile_frame(np.ascontiguousarray(tiles), grid)

    def encode_legacy(self, frame_srgb8) -> EncodedFrame:
        """Reference encoder: one ``BitWriter`` call per field.

        Retained as the executable definition of the stream format;
        property tests assert :meth:`encode` matches it byte for byte.
        """
        frame = _validate_frame(frame_srgb8)
        tiles, grid = tile_frame(frame, self.tile_size)
        bases = tiles.min(axis=1)  # (n_tiles, 3)
        widths = delta_widths(tiles)

        writer = BitWriter()
        writer.write(grid.height, 16)
        writer.write(grid.width, 16)
        writer.write(self.tile_size, 8)
        deltas = tiles.astype(np.int64) - bases[:, None, :]
        for tile_index in range(tiles.shape[0]):
            for channel in range(3):
                writer.write(int(bases[tile_index, channel]), BASE_FIELD_BITS)
                width = int(widths[tile_index, channel])
                writer.write(width, WIDTH_FIELD_BITS)
                if width:
                    writer.write_many(deltas[tile_index, :, channel], width)

        breakdown = bd_breakdown(tiles, n_pixels=grid.height * grid.width)
        return EncodedFrame(data=writer.getvalue(), grid=grid, breakdown=breakdown)

    def decode_legacy(self, encoded: EncodedFrame) -> np.ndarray:
        """Reference decoder: one ``BitReader`` call per field run."""
        reader = BitReader(encoded.data)
        height = reader.read(16)
        width = reader.read(16)
        tile_size = reader.read(8)
        grid = TileGrid(height=height, width=width, tile_size=tile_size)
        if grid != encoded.grid:
            raise ValueError("bitstream header disagrees with the encoded frame's grid")
        pixels_per_tile = grid.pixels_per_tile
        tiles = np.empty((grid.n_tiles, pixels_per_tile, 3), dtype=np.uint8)
        for tile_index in range(grid.n_tiles):
            for channel in range(3):
                base = reader.read(BASE_FIELD_BITS)
                delta_width = reader.read(WIDTH_FIELD_BITS)
                if delta_width:
                    values = reader.read_many(pixels_per_tile, delta_width)
                    tiles[tile_index, :, channel] = base + values
                else:
                    tiles[tile_index, :, channel] = base
        return untile_frame(tiles, grid)
