"""Base+Delta (BD) framebuffer codec (paper Sec. 2.2, Eq. 5-6).

BD is the numerically lossless compression that today's mobile SoCs
apply to all DRAM framebuffer traffic (e.g. Arm AFBC; the paper assumes
the format of Zhang et al. [76]).  Per tile and per channel it stores a
*base* value and fixed-width *deltas* of every pixel from the base:

    bits(tile, channel) = 8 (base) + 4 (width field) + t^2 * w

with ``w = ceil(log2(range + 1))`` the smallest width that can hold the
largest delta in the tile.  Choosing the base as the tile minimum makes
all deltas non-negative, which is both what minimizes ``w`` (the paper's
Eq. 6 remark: any base inside ``[Min, Max]`` is optimal) and what keeps
the format sign-free.

Two interfaces are provided:

* :class:`BDCodec` — a real bitstream encoder/decoder with exact
  round-trip, used by tests and small-frame paths;
* :func:`bd_breakdown` / :func:`delta_widths` — fast vectorized bit
  *accounting* over tile stacks, used by the frame-scale experiments
  (the stream contents are irrelevant for bandwidth numbers).

Both agree bit-for-bit on total size; a test asserts it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .accounting import SizeBreakdown
from .bitio import BitReader, BitWriter
from .tiling import TileGrid, tile_frame, untile_frame

__all__ = [
    "BASE_FIELD_BITS",
    "WIDTH_FIELD_BITS",
    "HEADER_BITS",
    "delta_widths",
    "bd_breakdown",
    "EncodedFrame",
    "BDCodec",
]

#: Bits to store one base value (8-bit sRGB channel).
BASE_FIELD_BITS = 8
#: Bits of per-tile-per-channel metadata: the delta width (0..8 fits in 4).
WIDTH_FIELD_BITS = 4
#: Stream header: 16-bit height, 16-bit width, 8-bit tile size.
HEADER_BITS = 40


def _validate_tiles(tiles) -> np.ndarray:
    arr = np.asarray(tiles)
    if arr.ndim != 3 or arr.shape[2] != 3:
        raise ValueError(f"tiles must be (n_tiles, pixels, 3), got {arr.shape}")
    if arr.dtype != np.uint8:
        raise TypeError(f"BD operates on uint8 sRGB codes, got dtype {arr.dtype}")
    return arr


def delta_widths(tiles) -> np.ndarray:
    """Per-tile per-channel delta bit widths, shape ``(n_tiles, 3)``.

    ``w = ceil(log2(max - min + 1))``; a constant channel needs zero
    delta bits.  Matches the paper's Eq. 6 (its floor is a typo — a
    range of 2 needs 2 bits, not 1).
    """
    arr = _validate_tiles(tiles).astype(np.int64)
    ranges = arr.max(axis=1) - arr.min(axis=1)
    return np.ceil(np.log2(ranges + 1.0)).astype(np.int64)


def bd_breakdown(tiles, n_pixels: int | None = None) -> SizeBreakdown:
    """Vectorized BD bit accounting for a tile stack.

    Parameters
    ----------
    tiles:
        ``(n_tiles, pixels_per_tile, 3)`` uint8 sRGB tile stack.
    n_pixels:
        Source pixel count for the bits-per-pixel denominator; defaults
        to the padded tile-stack pixel count.
    """
    arr = _validate_tiles(tiles)
    n_tiles, pixels_per_tile = arr.shape[0], arr.shape[1]
    widths = delta_widths(arr)
    return SizeBreakdown(
        base_bits=BASE_FIELD_BITS * 3 * n_tiles,
        metadata_bits=WIDTH_FIELD_BITS * 3 * n_tiles,
        delta_bits=int(widths.sum()) * pixels_per_tile,
        header_bits=HEADER_BITS,
        n_pixels=n_pixels if n_pixels is not None else n_tiles * pixels_per_tile,
    )


@dataclass(frozen=True)
class EncodedFrame:
    """A BD-encoded frame: the bitstream plus its size decomposition."""

    data: bytes
    grid: TileGrid
    breakdown: SizeBreakdown


class BDCodec:
    """Bitstream Base+Delta codec over square tiles.

    The codec is numerically lossless: ``decode(encode(frame))`` returns
    the input exactly.  The perceptual encoder plugs in *before* this
    codec, adjusting pixels so the deltas shrink (paper Fig. 7).
    """

    def __init__(self, tile_size: int = 4):
        if tile_size < 1:
            raise ValueError(f"tile_size must be >= 1, got {tile_size}")
        self.tile_size = tile_size

    def encode(self, frame_srgb8) -> EncodedFrame:
        """Encode an ``(H, W, 3)`` uint8 sRGB frame."""
        frame = np.asarray(frame_srgb8)
        if frame.ndim != 3 or frame.shape[2] != 3:
            raise ValueError(f"frame must be (H, W, 3), got {frame.shape}")
        if frame.dtype != np.uint8:
            raise TypeError(f"BD encodes uint8 sRGB frames, got dtype {frame.dtype}")
        tiles, grid = tile_frame(frame, self.tile_size)
        bases = tiles.min(axis=1)  # (n_tiles, 3)
        widths = delta_widths(tiles)

        writer = BitWriter()
        writer.write(grid.height, 16)
        writer.write(grid.width, 16)
        writer.write(self.tile_size, 8)
        deltas = tiles.astype(np.int64) - bases[:, None, :]
        for tile_index in range(tiles.shape[0]):
            for channel in range(3):
                writer.write(int(bases[tile_index, channel]), BASE_FIELD_BITS)
                width = int(widths[tile_index, channel])
                writer.write(width, WIDTH_FIELD_BITS)
                if width:
                    writer.write_many(deltas[tile_index, :, channel], width)

        breakdown = bd_breakdown(tiles, n_pixels=grid.height * grid.width)
        return EncodedFrame(data=writer.getvalue(), grid=grid, breakdown=breakdown)

    def decode(self, encoded: EncodedFrame) -> np.ndarray:
        """Decode back to the exact ``(H, W, 3)`` uint8 frame."""
        reader = BitReader(encoded.data)
        height = reader.read(16)
        width = reader.read(16)
        tile_size = reader.read(8)
        grid = TileGrid(height=height, width=width, tile_size=tile_size)
        if grid != encoded.grid:
            raise ValueError("bitstream header disagrees with the encoded frame's grid")
        pixels_per_tile = grid.pixels_per_tile
        tiles = np.empty((grid.n_tiles, pixels_per_tile, 3), dtype=np.uint8)
        for tile_index in range(grid.n_tiles):
            for channel in range(3):
                base = reader.read(BASE_FIELD_BITS)
                delta_width = reader.read(WIDTH_FIELD_BITS)
                if delta_width:
                    values = reader.read_many(pixels_per_tile, delta_width)
                    tiles[tile_index, :, channel] = [base + v for v in values]
                else:
                    tiles[tile_index, :, channel] = base
        return untile_frame(tiles, grid)
