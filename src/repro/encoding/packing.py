"""NumPy-vectorized MSB-first bit packing/unpacking kernels.

:mod:`repro.encoding.bitio` defines the library's bitstream format
operationally: :class:`~repro.encoding.bitio.BitWriter` appends
unsigned fields MSB-first and zero-pads the final byte.  That
per-field Python loop is exact but runs once per tile x channel x
pixel — millions of interpreter-level calls per frame on the
encode-heavy paths (fig10/fig11 sweeps, the fleet and adaptive
engines, ladder calibration).

This module re-expresses the same format as array kernels: a field
sequence becomes a flat ``uint8`` array of 0/1 *bits* built by
bit-plane decomposition (shift-and-mask against every bit position at
once), and ``np.packbits``/``np.unpackbits`` convert between bit
arrays and the byte stream.  ``np.packbits`` zero-fills the final
partial byte exactly like ``BitWriter.getvalue``, so streams produced
here are byte-identical to the legacy writer — property tests in
``tests/encoding/test_packing.py`` pin that equivalence.

Two field layouts are supported:

* equal width — :func:`pack_fields` / :func:`unpack_fields`, the
  per-run shape of fixed-width Base+Delta deltas;
* per-run variable width via segment descriptors —
  :func:`pack_segments` / :func:`unpack_segments`, where segment ``s``
  carries ``counts[s]`` fields of ``widths[s]`` bits.  A whole BD
  frame (header, per-tile bases, width fields, delta runs) is one such
  descriptor list, so an encode is a single kernel call.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "bits_to_bytes",
    "bytes_to_bits",
    "pack_fields",
    "unpack_fields",
    "pack_segments",
    "unpack_segments",
    "scatter_fields",
    "scatter_field_runs",
    "gather_fields",
    "gather_field_runs",
    "sliding_field_values",
]


def bytes_to_bits(data) -> np.ndarray:
    """Expand a byte stream into its MSB-first bit array (0/1 uint8)."""
    return np.unpackbits(np.frombuffer(data, dtype=np.uint8))


def bits_to_bytes(bits) -> bytes:
    """Pack a 0/1 bit array MSB-first, zero-padding the final byte.

    The padding matches :meth:`repro.encoding.bitio.BitWriter.getvalue`
    exactly, so kernel-built streams are byte-identical to the legacy
    writer's.
    """
    return np.packbits(np.asarray(bits, dtype=np.uint8)).tobytes()


def _validate_width(width: int) -> None:
    if width < 0:
        raise ValueError(f"width must be non-negative, got {width}")


def pack_fields(values, width: int) -> np.ndarray:
    """Pack equal-width unsigned fields into an MSB-first bit array.

    Parameters
    ----------
    values:
        1-D array of unsigned field values.
    width:
        Bits per field.  ``0`` yields an empty bit array (a zero-width
        field writes nothing, as in ``BitWriter.write``).

    Returns
    -------
    numpy.ndarray
        ``uint8`` array of ``len(values) * width`` bits, each 0 or 1.

    Raises
    ------
    ValueError
        If any value does not fit in ``width`` bits (the same contract
        ``BitWriter.write`` enforces per field).
    """
    _validate_width(width)
    arr = np.asarray(values, dtype=np.int64)
    if width == 0:
        if arr.size and np.any(arr):
            bad = int(arr[np.nonzero(arr)[0][0]])
            raise ValueError(f"value {bad} does not fit in 0 bits")
        return np.zeros(0, dtype=np.uint8)
    if arr.size and (np.any(arr < 0) or np.any(arr >> width)):
        bad_index = int(np.nonzero((arr < 0) | (arr >> width != 0))[0][0])
        raise ValueError(f"value {int(arr[bad_index])} does not fit in {width} bits")
    shifts = np.arange(width - 1, -1, -1, dtype=np.int64)
    planes = (arr[:, None] >> shifts[None, :]) & 1
    return planes.astype(np.uint8).reshape(-1)


def unpack_fields(data, bit_offset: int, count: int, width: int) -> np.ndarray:
    """Read ``count`` equal-width fields starting at ``bit_offset``.

    Parameters
    ----------
    data:
        Either a byte stream (``bytes``) or an already-expanded 0/1 bit
        array from :func:`bytes_to_bits` (pass the bit array when doing
        many reads from one stream — the expansion then happens once).
    bit_offset:
        Bit position of the first field.
    count, width:
        Number of fields and bits per field.

    Returns
    -------
    numpy.ndarray
        ``int64`` array of ``count`` field values (zeros for
        ``width == 0``, matching ``BitReader.read``).

    Raises
    ------
    EOFError
        If the stream ends before ``count * width`` bits are available
        (the ``BitReader`` contract).
    """
    _validate_width(width)
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if width == 0 or count == 0:
        return np.zeros(count, dtype=np.int64)
    bits = data if isinstance(data, np.ndarray) else bytes_to_bits(data)
    end = bit_offset + count * width
    if end > bits.size:
        raise EOFError(
            f"bitstream exhausted: need {count * width} bits at position "
            f"{bit_offset}, stream has {bits.size}"
        )
    weights = np.left_shift(1, np.arange(width - 1, -1, -1, dtype=np.int64))
    window = bits[bit_offset:end].reshape(count, width).astype(np.int64)
    return window @ weights


def _segment_arrays(widths, counts) -> tuple[np.ndarray, np.ndarray]:
    w = np.asarray(widths, dtype=np.int64)
    c = np.asarray(counts, dtype=np.int64)
    if w.ndim != 1 or c.ndim != 1 or w.shape != c.shape:
        raise ValueError(
            f"widths and counts must be matching 1-D arrays, got {w.shape} and {c.shape}"
        )
    if w.size and np.any(w < 0):
        raise ValueError("segment widths must be non-negative")
    if c.size and np.any(c < 0):
        raise ValueError("segment counts must be non-negative")
    return w, c


def pack_segments(values, widths, counts) -> np.ndarray:
    """Pack runs of fields where each run shares one width.

    Segment ``s`` consists of ``counts[s]`` consecutive fields of
    ``widths[s]`` bits; ``values`` holds all fields concatenated in
    stream order.  This is the general variable-width kernel: the whole
    BD bitstream (8-bit bases, 4-bit width fields, w-bit delta runs)
    is one descriptor list, packed in a single call.

    Returns
    -------
    numpy.ndarray
        The MSB-first 0/1 bit array of the packed stream.
    """
    w, c = _segment_arrays(widths, counts)
    arr = np.asarray(values, dtype=np.int64)
    if int(c.sum()) != arr.size:
        raise ValueError(
            f"segment counts sum to {int(c.sum())} fields but got {arr.size} values"
        )
    field_widths = np.repeat(w, c)
    if arr.size and (np.any(arr < 0) or np.any((arr >> field_widths) != 0)):
        bad = int(np.nonzero((arr < 0) | ((arr >> field_widths) != 0))[0][0])
        raise ValueError(
            f"value {int(arr[bad])} does not fit in {int(field_widths[bad])} bits"
        )
    total = int(field_widths.sum())
    if total == 0:
        return np.zeros(0, dtype=np.uint8)
    ends = np.cumsum(field_widths)
    starts = ends - field_widths
    # Bit-plane decomposition: bit j of field i is (value_i >> (w_i-1-j)) & 1.
    spread_values = np.repeat(arr, field_widths)
    within = np.arange(total, dtype=np.int64) - np.repeat(starts, field_widths)
    shifts = np.repeat(field_widths, field_widths) - 1 - within
    return ((spread_values >> shifts) & 1).astype(np.uint8)


def unpack_segments(data, bit_offset: int, widths, counts) -> np.ndarray:
    """Inverse of :func:`pack_segments`: read described runs of fields.

    Parameters
    ----------
    data:
        Byte stream or 0/1 bit array (see :func:`unpack_fields`).
    bit_offset:
        Bit position where the first segment starts.
    widths, counts:
        Segment descriptors: ``counts[s]`` fields of ``widths[s]`` bits.

    Returns
    -------
    numpy.ndarray
        ``int64`` values of all fields, concatenated in stream order
        (zero-width fields decode to 0).
    """
    w, c = _segment_arrays(widths, counts)
    bits = data if isinstance(data, np.ndarray) else bytes_to_bits(data)
    field_widths = np.repeat(w, c)
    n_fields = field_widths.size
    total = int(field_widths.sum())
    if bit_offset + total > bits.size:
        raise EOFError(
            f"bitstream exhausted: need {total} bits at position "
            f"{bit_offset}, stream has {bits.size}"
        )
    values = np.zeros(n_fields, dtype=np.int64)
    if total == 0:
        return values
    nonzero = field_widths > 0
    nz_widths = field_widths[nonzero]
    ends = np.cumsum(nz_widths)
    starts = ends - nz_widths
    within = np.arange(total, dtype=np.int64) - np.repeat(starts, nz_widths)
    shifts = np.repeat(nz_widths, nz_widths) - 1 - within
    gathered = bits[bit_offset : bit_offset + total].astype(np.int64)
    contributions = gathered << shifts
    values[nonzero] = np.add.reduceat(contributions, starts)
    return values


def scatter_fields(bits: np.ndarray, starts, values, width: int, validate: bool = True) -> None:
    """Write equal-width fields at arbitrary bit offsets, in place.

    The scatter complement of :func:`pack_fields`: field ``i``'s
    ``width`` bits land at ``bits[starts[i] : starts[i] + width]``
    MSB-first.  Encoders that know their field offsets up front (the
    BD stream layout is fully determined by the per-tile delta widths)
    allocate one zeroed bit array and scatter each field family —
    bases, width fields, the delta runs of each distinct width — in a
    handful of these calls.

    Parameters
    ----------
    bits:
        Preallocated 0/1 ``uint8`` bit array, modified in place.
    starts:
        1-D array of bit offsets, one per field.  Offsets may be in
        any order but fields must not overlap.
    values:
        1-D array of unsigned field values, same length as ``starts``.
    width:
        Bits per field; ``0`` writes nothing.
    validate:
        Skip the fits-in-``width``-bits check when ``False`` — for
        callers whose values fit by construction (BD deltas are
        ``value - min``, so they fit their computed width).  With
        ``width <= 8`` an oversized value is then silently truncated
        to its low byte instead of raising.

    Raises
    ------
    ValueError
        If ``validate`` and any value does not fit in ``width`` bits.
    """
    _validate_width(width)
    arr = np.asarray(values)
    if validate and arr.size:
        low, high = int(arr.min()), int(arr.max())
        if low < 0 or (width < 64 and high >> width):
            bad = low if low < 0 else high
            raise ValueError(f"value {bad} does not fit in {width} bits")
    if width == 0 or arr.size == 0:
        return
    # int32 offsets halve the index-matrix memory traffic; any frame's
    # bitstream is far below 2**31 bits.
    index_dtype = np.int32 if bits.size < 2**31 else np.int64
    positions = np.asarray(starts, dtype=index_dtype)[:, None] + np.arange(
        width, dtype=index_dtype
    )
    if width <= 8:
        # Byte-or-narrower fields: bit-plane extraction runs in uint8
        # (validation above guarantees every value fits a byte).
        work = arr.astype(np.uint8, copy=False)
        shifts = np.arange(width - 1, -1, -1, dtype=np.uint8)
        bits[positions] = (work[:, None] >> shifts) & np.uint8(1)
    else:
        work = arr.astype(np.int64, copy=False)
        shifts = np.arange(width - 1, -1, -1, dtype=np.int64)
        bits[positions] = (work[:, None] >> shifts) & 1


def scatter_field_runs(
    bits: np.ndarray, starts, widths, values: np.ndarray, run_length: int
) -> None:
    """Scatter equal-length field runs grouped by their shared width.

    Run ``i`` writes ``values[i]`` (``run_length`` fields) at bit
    offset ``starts[i]``, each field ``widths[i]`` bits wide — the
    shape of a BD delta run.  Runs sharing a width are scattered
    together (one :func:`scatter_fields` call per distinct width, at
    most 8 for byte data), so no per-field Python executes.  Values
    must fit their widths by construction (no validation), as BD
    deltas do.

    Parameters
    ----------
    bits:
        Preallocated 0/1 ``uint8`` bit array, modified in place.
    starts, widths:
        1-D arrays: bit offset and field width of each run.
    values:
        ``(n_runs, run_length)`` unsigned field values.
    run_length:
        Fields per run.
    """
    starts = np.asarray(starts, dtype=np.int64)
    widths = np.asarray(widths)
    for w in np.unique(widths):
        w = int(w)
        if w == 0:
            continue
        sel = np.nonzero(widths == w)[0]
        field_starts = (
            starts[sel][:, None] + np.arange(run_length, dtype=np.int64) * w
        ).reshape(-1)
        scatter_fields(bits, field_starts, values[sel].reshape(-1), w, validate=False)


def gather_fields(bits: np.ndarray, starts, width: int) -> np.ndarray:
    """Read one ``width``-bit field (``width <= 8``) at each offset.

    The gather complement of :func:`scatter_fields` for byte-or-
    narrower fields: returns a ``uint8`` array of field values, one
    per offset, computed by bit-plane accumulation (no per-field
    Python).  BD decoders use it to pull every block's 8-bit base out
    of the stream in one call.

    Raises
    ------
    EOFError
        If any field extends past the end of ``bits``.
    ValueError
        If ``width`` is negative or wider than 8 bits.
    """
    _validate_width(width)
    if width > 8:
        raise ValueError(f"gather_fields reads byte-or-narrower fields, got {width}")
    starts = np.asarray(starts, dtype=np.int64)
    if width == 0 or starts.size == 0:
        return np.zeros(starts.size, dtype=np.uint8)
    last = int(starts.max()) + width
    if last > bits.size:
        raise EOFError(
            f"bitstream exhausted: field needs bit {last - 1}, stream has {bits.size}"
        )
    runs = bits[starts[:, None] + np.arange(width, dtype=np.int64)]
    values = np.zeros(starts.size, dtype=np.uint8)
    for j in range(width):
        values += runs[:, j] << np.uint8(width - 1 - j)
    return values


def gather_field_runs(
    bits: np.ndarray, starts, widths, run_length: int
) -> np.ndarray:
    """Decode equal-length field runs grouped by their shared width.

    The inverse of :func:`scatter_field_runs`: ``starts[i]`` is the
    bit offset of run ``i``, which holds ``run_length`` fields of
    ``widths[i]`` bits.  Runs sharing a width are gathered together
    (one fancy-index + bit-plane accumulation per distinct width), so
    no per-field Python executes.  Returns ``(n_runs, run_length)``
    uint8 values modulo 256 — exactly what reaches a uint8 pixel;
    zero-width runs decode to zeros.  ``starts`` must be ascending
    (stream order), as a decoder's walk produces.

    Raises
    ------
    EOFError
        If any run extends past the end of ``bits``.
    """
    starts = np.asarray(starts, dtype=np.int64)
    widths = np.asarray(widths)
    values = np.zeros((starts.size, run_length), dtype=np.uint8)
    for w in np.unique(widths):
        w = int(w)
        if w == 0:
            continue
        sel = np.nonzero(widths == w)[0]
        idx = starts[sel][:, None] + np.arange(run_length * w, dtype=np.int64)[None, :]
        if idx.size and int(idx[-1, -1]) >= bits.size:
            raise EOFError(
                f"bitstream exhausted: field run needs bit {int(idx[-1, -1])}, "
                f"stream has {bits.size}"
            )
        runs = bits[idx].reshape(sel.size, run_length, w)
        acc = np.zeros((sel.size, run_length), dtype=np.uint8)
        # Bit planes with shift >= 8 contribute multiples of 256, which
        # vanish modulo 256 (widths > 8 only occur in corrupt streams).
        for j in range(max(0, w - 8), w):
            acc += runs[:, :, j] << np.uint8(w - 1 - j)
        values[sel] = acc
    return values


def sliding_field_values(bits: np.ndarray, width: int) -> np.ndarray:
    """Field value at *every* bit offset of a stream, vectorized.

    ``result[i]`` is the ``width``-bit unsigned value of
    ``bits[i : i + width]`` — what ``BitReader.read(width)`` would
    return from position ``i``.  Decoders whose field positions depend
    on in-stream metadata (the BD width fields) precompute this table
    once and then walk offsets with cheap integer arithmetic instead of
    per-field bit extraction.

    Returns an unsigned array of length ``len(bits) - width + 1``
    (empty if the stream is shorter than one field), in the narrowest
    dtype that holds a ``width``-bit value — ``uint8`` for the 4-bit
    BD width fields, so the table converts to a random-access ``bytes``
    object with a plain ``tobytes()``.
    """
    _validate_width(width)
    if width == 0:
        return np.zeros(bits.size + 1, dtype=np.uint8)
    n = bits.size - width + 1
    if width <= 8:
        dtype: type = np.uint8
    elif width <= 16:
        dtype = np.uint16
    elif width <= 32:
        dtype = np.uint32
    else:
        dtype = np.uint64
    if n <= 0:
        return np.zeros(0, dtype=dtype)
    out = np.zeros(n, dtype=dtype)
    scratch = np.empty(n, dtype=dtype)
    for j in range(width):
        np.left_shift(bits[j : j + n], dtype(width - 1 - j), out=scratch, casting="unsafe")
        out += scratch
    return out
