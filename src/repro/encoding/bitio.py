"""Bit-level stream writer and reader.

The Base+Delta codec produces fields of non-byte widths (4-bit delta
widths, w-bit deltas), so encoded frames are genuine bitstreams.  These
classes implement MSB-first bit packing; the writer pads the final byte
with zeros, and the reader tracks its position exactly so codecs can
assert they consumed what they produced.
"""

from __future__ import annotations

import numpy as np

__all__ = ["BitWriter", "BitReader"]


class BitWriter:
    """Accumulate an MSB-first bitstream."""

    def __init__(self):
        self._bytes = bytearray()
        self._current = 0
        self._filled = 0  # bits used in _current

    def write(self, value: int, width: int) -> None:
        """Append ``value`` as a ``width``-bit unsigned field."""
        if width < 0:
            raise ValueError(f"width must be non-negative, got {width}")
        if width == 0:
            return
        if value < 0 or value >> width:
            raise ValueError(f"value {value} does not fit in {width} bits")
        remaining = width
        while remaining > 0:
            take = min(8 - self._filled, remaining)
            chunk = (value >> (remaining - take)) & ((1 << take) - 1)
            self._current = (self._current << take) | chunk
            self._filled += take
            remaining -= take
            if self._filled == 8:
                self._bytes.append(self._current)
                self._current = 0
                self._filled = 0

    def write_many(self, values, width: int) -> None:
        """Append a sequence of equal-width fields."""
        for value in values:
            self.write(int(value), width)

    @property
    def bit_length(self) -> int:
        """Total number of bits written so far."""
        return len(self._bytes) * 8 + self._filled

    def getvalue(self) -> bytes:
        """Return the stream, zero-padding the final partial byte."""
        out = bytearray(self._bytes)
        if self._filled:
            out.append(self._current << (8 - self._filled))
        return bytes(out)


class BitReader:
    """Consume an MSB-first bitstream produced by :class:`BitWriter`."""

    def __init__(self, data: bytes):
        self._data = data
        self._pos = 0  # bit position

    def read(self, width: int) -> int:
        """Read a ``width``-bit unsigned field."""
        if width < 0:
            raise ValueError(f"width must be non-negative, got {width}")
        if width == 0:
            return 0
        if self._pos + width > len(self._data) * 8:
            raise EOFError(
                f"bitstream exhausted: need {width} bits at position {self._pos}, "
                f"stream has {len(self._data) * 8}"
            )
        value = 0
        remaining = width
        while remaining > 0:
            byte_index, bit_offset = divmod(self._pos, 8)
            take = min(8 - bit_offset, remaining)
            byte = self._data[byte_index]
            chunk = (byte >> (8 - bit_offset - take)) & ((1 << take) - 1)
            value = (value << take) | chunk
            self._pos += take
            remaining -= take
        return value

    def read_many(self, count: int, width: int) -> "np.ndarray":
        """Read ``count`` equal-width fields into an int64 array.

        Returning an array (rather than a list of Python ints) lets
        callers apply the fields in bulk — ``base + values`` in the BD
        decoders adds whole delta runs without allocating per-pixel
        Python integers.
        """
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        return np.fromiter(
            (self.read(width) for _ in range(count)), dtype=np.int64, count=count
        )

    @property
    def bit_position(self) -> int:
        """Bits consumed so far."""
        return self._pos
