"""Temporal Base+Delta: inter-frame framebuffer compression.

The paper's traffic taxonomy (Fig. 3) includes video traffic, and its
related work cites content caches exploiting inter-frame value
similarity.  Spatial BD ignores the strongest structure a framebuffer
stream has — consecutive frames are nearly identical wherever nothing
moved.  This module adds the canonical temporal mode on top of the
spatial codec:

Per tile and per channel, the encoder chooses between

* **spatial mode** — base + deltas within the tile (the paper's BD);
* **temporal mode** — deltas against the co-located tile of the
  *previous decoded* frame (signed, stored with one sign bit plus
  magnitude), worthwhile when the tile barely changed.

One mode bit per tile-channel records the choice; the decoder needs
the previous frame (which the display path holds anyway) and the same
delta reconstruction it already has — the hardware delta is one frame
buffer read, which is why real compressors (and the paper's cited
content caches) consider this the cheap direction to extend.

Works with the perceptual adjustment unchanged: adjusted frames are
*more* temporally stable than their inputs (see the flicker audit), so
the two compose well — measured by the temporal-BD extension bench.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .accounting import SizeBreakdown
from .bd import BASE_FIELD_BITS, HEADER_BITS, WIDTH_FIELD_BITS, delta_widths

__all__ = ["MODE_FIELD_BITS", "temporal_delta_widths", "TemporalBDAccountant"]

#: One bit per tile-channel selects spatial vs temporal mode.
MODE_FIELD_BITS = 1


def temporal_delta_widths(tiles, previous_tiles) -> np.ndarray:
    """Per-tile-channel widths for signed deltas vs the previous frame.

    The temporal delta of a pixel is ``current - previous`` (range
    -255..255); it is stored as sign + magnitude, so the width is
    ``ceil(log2(max|delta| + 1)) + 1`` bits, with identical tiles
    needing zero bits.
    """
    current = np.asarray(tiles)
    previous = np.asarray(previous_tiles)
    if current.shape != previous.shape:
        raise ValueError(
            f"tile stacks must match: {current.shape} vs {previous.shape}"
        )
    if current.dtype != np.uint8 or previous.dtype != np.uint8:
        raise TypeError("temporal BD operates on uint8 sRGB tiles")
    magnitude = np.abs(current.astype(np.int64) - previous.astype(np.int64)).max(axis=1)
    widths = np.ceil(np.log2(magnitude + 1.0)).astype(np.int64)
    return np.where(magnitude > 0, widths + 1, 0)


@dataclass
class TemporalBDAccountant:
    """Stateful per-stream size accounting with temporal mode choice.

    Feed it the tile stacks of consecutive frames (all tiled with the
    same grid); it returns a :class:`SizeBreakdown` per frame, choosing
    the cheaper mode per tile-channel.  The first frame is always fully
    spatial.
    """

    pixels_per_tile: int | None = None
    _previous: np.ndarray | None = None

    def reset(self) -> None:
        """Forget the previous frame (e.g. on scene cut)."""
        self._previous = None

    def push(self, tiles, n_pixels: int | None = None) -> SizeBreakdown:
        """Account one frame's tiles and remember them for the next."""
        arr = np.asarray(tiles)
        if arr.ndim != 3 or arr.shape[2] != 3:
            raise ValueError(f"tiles must be (n_tiles, pixels, 3), got {arr.shape}")
        if arr.dtype != np.uint8:
            raise TypeError("temporal BD operates on uint8 sRGB tiles")
        if self.pixels_per_tile is None:
            self.pixels_per_tile = arr.shape[1]
        elif arr.shape[1] != self.pixels_per_tile:
            raise ValueError(
                f"tile size changed mid-stream: {arr.shape[1]} vs {self.pixels_per_tile}"
            )
        n_tiles, pixels = arr.shape[0], arr.shape[1]

        spatial_widths = delta_widths(arr)  # (n_tiles, 3)
        spatial_bits = BASE_FIELD_BITS + WIDTH_FIELD_BITS + pixels * spatial_widths

        if self._previous is not None and self._previous.shape == arr.shape:
            temporal_widths = temporal_delta_widths(arr, self._previous)
            # Temporal mode needs no base field (the reference is the
            # previous frame) but still a width field.
            temporal_bits = WIDTH_FIELD_BITS + pixels * temporal_widths
            use_temporal = temporal_bits < spatial_bits
        else:
            temporal_bits = np.zeros_like(spatial_bits)
            use_temporal = np.zeros_like(spatial_bits, dtype=bool)

        chosen_delta_bits = np.where(
            use_temporal, pixels * temporal_widths if self._previous is not None else 0,
            pixels * spatial_widths,
        )
        base_bits = int((~use_temporal).sum()) * BASE_FIELD_BITS
        metadata_bits = (
            n_tiles * 3 * (WIDTH_FIELD_BITS + MODE_FIELD_BITS)
        )
        self._previous = arr.copy()
        return SizeBreakdown(
            base_bits=base_bits,
            metadata_bits=metadata_bits,
            delta_bits=int(chosen_delta_bits.sum()),
            header_bits=HEADER_BITS,
            n_pixels=n_pixels if n_pixels is not None else n_tiles * pixels,
        )
