"""Compressed-size bookkeeping shared by all codecs.

The paper's evaluation reasons about three per-tile cost components
(its Fig. 11): the *base* pixels, the per-tile *metadata* (delta bit
widths), and the *deltas* themselves.  :class:`SizeBreakdown` carries
those components plus any stream header, and provides the derived
quantities every experiment reports: bits per pixel and bandwidth
reduction relative to a baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SizeBreakdown", "UNCOMPRESSED_BPP"]

#: Bits per pixel of an uncompressed sRGB framebuffer (3 x 8-bit).
UNCOMPRESSED_BPP = 24.0


@dataclass(frozen=True)
class SizeBreakdown:
    """Bit-cost decomposition of one encoded frame.

    Attributes
    ----------
    base_bits, metadata_bits, delta_bits, header_bits:
        Component costs in bits.
    n_pixels:
        Number of *source* pixels (before any tiling pad), the
        denominator for bits-per-pixel.
    """

    base_bits: int
    metadata_bits: int
    delta_bits: int
    header_bits: int
    n_pixels: int

    def __post_init__(self):
        for name in ("base_bits", "metadata_bits", "delta_bits", "header_bits"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if self.n_pixels <= 0:
            raise ValueError(f"n_pixels must be positive, got {self.n_pixels}")

    @property
    def total_bits(self) -> int:
        """Total encoded size in bits."""
        return self.base_bits + self.metadata_bits + self.delta_bits + self.header_bits

    @property
    def total_bytes(self) -> int:
        """Total encoded size in whole bytes (rounded up)."""
        return -(-self.total_bits // 8)

    @property
    def bits_per_pixel(self) -> float:
        """Average encoded bits per source pixel."""
        return self.total_bits / self.n_pixels

    def component_bpp(self) -> dict[str, float]:
        """Per-component bits per pixel — the quantity of paper Fig. 11."""
        return {
            "base": self.base_bits / self.n_pixels,
            "metadata": self.metadata_bits / self.n_pixels,
            "deltas": self.delta_bits / self.n_pixels,
            "header": self.header_bits / self.n_pixels,
        }

    def reduction_vs_uncompressed(self) -> float:
        """Fractional bandwidth reduction against raw 24 bpp frames."""
        return 1.0 - self.bits_per_pixel / UNCOMPRESSED_BPP

    def reduction_vs(self, other: "SizeBreakdown") -> float:
        """Fractional traffic reduction of ``self`` relative to ``other``.

        Positive means ``self`` is smaller.  Both breakdowns must refer
        to the same pixel count for the comparison to be meaningful.
        """
        if other.n_pixels != self.n_pixels:
            raise ValueError(
                f"cannot compare breakdowns over different pixel counts: "
                f"{self.n_pixels} vs {other.n_pixels}"
            )
        if other.total_bits == 0:
            raise ValueError("reference breakdown has zero size")
        return 1.0 - self.total_bits / other.total_bits

    @staticmethod
    def uncompressed(n_pixels: int) -> "SizeBreakdown":
        """Breakdown of a raw (NoCom) frame: 24 bpp, all 'base'."""
        if n_pixels <= 0:
            raise ValueError(f"n_pixels must be positive, got {n_pixels}")
        return SizeBreakdown(
            base_bits=int(UNCOMPRESSED_BPP) * n_pixels,
            metadata_bits=0,
            delta_bits=0,
            header_bits=0,
            n_pixels=n_pixels,
        )
