"""Tests for the iterative reference solver (unrelaxed Eq. 7)."""

import numpy as np
import pytest

from repro.color.dkl import RGB_TO_DKL
from repro.core.adjust import adjust_tiles
from repro.core.optimizer import optimize_tiles
from repro.core.reference_solver import solve_tile_reference, true_objective_bits
from repro.perception.model import ParametricModel


def _tile(rng, pixels=4, ecc=30.0, spread=0.02):
    model = ParametricModel()
    base = rng.uniform(0.3, 0.6, 3)
    tile = np.clip(base + rng.normal(0, spread, (pixels, 3)), 0, 1)
    axes = model.semi_axes(tile, np.full(pixels, ecc))
    return tile, axes


class TestTrueObjective:
    def test_constant_tile_is_zero(self):
        tile = np.full((8, 3), 0.5)
        assert true_objective_bits(tile) == pytest.approx(0.0)

    def test_wider_spread_costs_more(self, rng):
        narrow = np.clip(0.5 + rng.normal(0, 0.01, (8, 3)), 0, 1)
        wide = np.clip(0.5 + rng.normal(0, 0.1, (8, 3)), 0, 1)
        assert true_objective_bits(wide) > true_objective_bits(narrow)

    def test_full_range_cost(self):
        tile = np.array([[0.0, 0.0, 0.0], [1.0, 1.0, 1.0]])
        assert true_objective_bits(tile) == pytest.approx(3 * np.log2(256.0))


@pytest.mark.slow  # scipy-grade iterative reference solver
class TestSolver:
    def test_respects_constraints(self, rng):
        tile, axes = _tile(rng)
        solution = solve_tile_reference(tile, axes, maxiter=80)
        dkl = (solution.adjusted - tile) @ RGB_TO_DKL.T
        norms = np.sqrt(np.sum(np.square(dkl / axes), axis=1))
        assert norms.max() <= 1.0 + 1e-6

    def test_improves_objective(self, rng):
        tile, axes = _tile(rng)
        solution = solve_tile_reference(tile, axes, maxiter=80)
        assert solution.objective_bits <= solution.initial_bits + 1e-6

    def test_output_in_gamut(self, rng):
        tile, axes = _tile(rng)
        solution = solve_tile_reference(tile, axes, maxiter=50)
        assert solution.adjusted.min() >= 0.0
        assert solution.adjusted.max() <= 1.0

    def test_analytical_solution_is_competitive(self, rng):
        """The relaxed analytical solution should capture most of what
        the expensive iterative solver finds on easy tiles."""
        gaps = []
        for seed in range(4):
            tile, axes = _tile(np.random.default_rng(seed))
            iterative = solve_tile_reference(tile, axes, maxiter=80)
            analytical = optimize_tiles(tile[None], axes[None])
            analytical_bits = true_objective_bits(analytical.adjusted[0])
            gaps.append(analytical_bits - iterative.objective_bits)
        # Analytical may be slightly worse (it is a relaxation) but not
        # catastrophically so.
        assert np.mean(gaps) < 3.0

    def test_validates_shapes(self, rng):
        with pytest.raises(ValueError, match=r"\(pixels, 3\)"):
            solve_tile_reference(np.zeros((4, 2)), np.zeros((4, 2)))
        with pytest.raises(ValueError, match="match"):
            solve_tile_reference(np.zeros((4, 3)), np.full((5, 3), 1e-4))

    def test_blue_adjustment_reduces_true_objective(self, rng):
        """Sanity: the analytical adjustment helps the *unrelaxed*
        objective too, not just the relaxed one."""
        improvements = []
        for seed in range(5):
            tile, axes = _tile(np.random.default_rng(100 + seed), pixels=8)
            adjusted = adjust_tiles(tile[None], axes[None], 2).adjusted[0]
            improvements.append(
                true_objective_bits(tile) - true_objective_bits(adjusted)
            )
        assert np.mean(improvements) > 0.0
