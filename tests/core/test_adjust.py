"""Tests for the analytical per-tile color adjustment (Fig. 6)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.adjust import CASE2_PLACEMENTS, adjust_tiles, case2_plane
from repro.perception.geometry import channel_extrema, mahalanobis
from repro.perception.model import ParametricModel


def _tiles_and_axes(rng, n_tiles=30, pixels=16, ecc=25.0, low=0.2, high=0.8):
    model = ParametricModel()
    tiles = rng.uniform(low, high, (n_tiles, pixels, 3))
    axes = model.semi_axes(tiles, np.full((n_tiles, pixels), ecc))
    return tiles, axes


class TestPerceptualConstraint:
    @pytest.mark.parametrize("axis", [0, 1, 2])
    def test_never_leaves_ellipsoid(self, rng, axis):
        tiles, axes = _tiles_and_axes(rng)
        result = adjust_tiles(tiles, axes, axis)
        distances = mahalanobis(result.adjusted, tiles, axes)
        assert distances.max() <= 1.0 + 1e-9

    def test_output_in_gamut(self, rng):
        tiles, axes = _tiles_and_axes(rng, low=0.0, high=1.0)
        result = adjust_tiles(tiles, axes, 2)
        assert result.adjusted.min() >= 0.0
        assert result.adjusted.max() <= 1.0

    def test_gamut_edge_tiles_stay_constrained(self, rng):
        """Tiles hugging the cube boundary get clamped *and* stay inside
        their ellipsoids."""
        tiles, axes = _tiles_and_axes(rng, low=0.97, high=1.0)
        result = adjust_tiles(tiles, axes, 2)
        assert result.adjusted.max() <= 1.0
        assert mahalanobis(result.adjusted, tiles, axes).max() <= 1.0 + 1e-9

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=2), st.integers(min_value=2, max_value=25))
    def test_constraint_random_tiles(self, axis, pixels):
        rng = np.random.default_rng(axis * 100 + pixels)
        tiles, axes = _tiles_and_axes(rng, n_tiles=5, pixels=pixels)
        result = adjust_tiles(tiles, axes, axis)
        assert mahalanobis(result.adjusted, tiles, axes).max() <= 1.0 + 1e-9
        assert result.adjusted.min() >= 0.0 and result.adjusted.max() <= 1.0


class TestSpanReduction:
    @pytest.mark.parametrize("axis", [0, 2])
    def test_span_never_grows(self, rng, axis):
        tiles, axes = _tiles_and_axes(rng)
        result = adjust_tiles(tiles, axes, axis)
        assert np.all(result.span_after <= result.span_before + 1e-12)

    def test_case2_collapses_span(self, rng):
        # Nearly-identical pixels guarantee a common plane.
        base = rng.uniform(0.3, 0.7, (10, 1, 3))
        tiles = np.clip(base + rng.normal(0, 1e-4, (10, 16, 3)), 0, 1)
        model = ParametricModel()
        axes = model.semi_axes(tiles, np.full((10, 16), 30.0))
        result = adjust_tiles(tiles, axes, 2)
        assert result.case2.all()
        assert np.all(result.span_after < 1e-9)

    def test_case1_span_is_hl_minus_lh(self, rng):
        # A high-contrast tile forces case 1; the optimal span equals
        # HL - LH exactly (pre-quantization).
        tiles, axes = _tiles_and_axes(rng, low=0.05, high=0.95)
        extrema = channel_extrema(tiles, axes, 2)
        hl, lh, case2 = case2_plane(
            extrema.low[..., 2], extrema.high[..., 2]
        )
        result = adjust_tiles(tiles, axes, 2)
        case1 = ~result.case2
        assert case1.any()  # premise: contrast actually forced case 1
        assert np.allclose(result.span_after[case1], (hl - lh)[case1], atol=1e-9)

    def test_case_flags_match_plane_geometry(self, rng):
        tiles, axes = _tiles_and_axes(rng, low=0.1, high=0.9)
        extrema = channel_extrema(tiles, axes, 2)
        _, _, expected_case2 = case2_plane(extrema.low[..., 2], extrema.high[..., 2])
        result = adjust_tiles(tiles, axes, 2)
        assert np.array_equal(result.case2, expected_case2)


class TestFovealPinning:
    def test_tiny_axes_pin_pixels(self, rng):
        tiles, axes = _tiles_and_axes(rng)
        axes[:, :8, :] = 1e-9  # half of each tile is foveal
        result = adjust_tiles(tiles, axes, 2)
        assert np.allclose(result.adjusted[:, :8, :], tiles[:, :8, :], atol=1e-7)

    def test_pinned_pixels_constrain_tile(self, rng):
        # Two pinned pixels with different blue values put a floor on
        # the achievable span.
        tiles, axes = _tiles_and_axes(rng, n_tiles=5)
        axes[:, :2, :] = 1e-9
        tiles[:, 0, 2] = 0.2
        tiles[:, 1, 2] = 0.6
        result = adjust_tiles(tiles, axes, 2)
        assert np.all(result.span_after >= 0.4 - 1e-6)
        assert not result.case2.any()


class TestCase2Placement:
    def test_all_placements_collapse_span(self, rng):
        base = rng.uniform(0.3, 0.7, (8, 1, 3))
        tiles = np.clip(base + rng.normal(0, 1e-4, (8, 16, 3)), 0, 1)
        axes = ParametricModel().semi_axes(tiles, np.full((8, 16), 30.0))
        for placement in CASE2_PLACEMENTS:
            result = adjust_tiles(tiles, axes, 2, case2_placement=placement)
            assert result.case2.all()
            assert np.all(result.span_after < 1e-9), placement

    def test_placements_differ_in_target(self, rng):
        base = rng.uniform(0.3, 0.7, (8, 1, 3))
        tiles = np.clip(base + rng.normal(0, 1e-4, (8, 16, 3)), 0, 1)
        axes = ParametricModel().semi_axes(tiles, np.full((8, 16), 30.0))
        hl = adjust_tiles(tiles, axes, 2, case2_placement="hl").adjusted
        lh = adjust_tiles(tiles, axes, 2, case2_placement="lh").adjusted
        assert np.all(lh[..., 2].mean(axis=1) > hl[..., 2].mean(axis=1))

    def test_invalid_placement(self, rng):
        tiles, axes = _tiles_and_axes(rng, n_tiles=1)
        with pytest.raises(ValueError, match="case2_placement"):
            adjust_tiles(tiles, axes, 2, case2_placement="median")


class TestValidation:
    def test_rejects_bad_tile_shape(self, rng):
        with pytest.raises(ValueError, match="tiles_rgb"):
            adjust_tiles(np.zeros((4, 16)), np.zeros((4, 16)), 2)

    def test_rejects_out_of_range_colors(self, rng):
        tiles = np.full((1, 4, 3), 1.5)
        axes = np.full((1, 4, 3), 1e-4)
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            adjust_tiles(tiles, axes, 2)

    def test_single_pixel_tile_unchanged_span(self, rng):
        tiles, axes = _tiles_and_axes(rng, n_tiles=3, pixels=1)
        result = adjust_tiles(tiles, axes, 2)
        # One pixel is always case 2 with zero span before and after.
        assert result.case2.all()
        assert np.all(result.span_before == 0)


class TestCase2PlaneHelper:
    def test_shapes_and_values(self):
        low = np.array([[0.1, 0.3], [0.2, 0.2]])
        high = np.array([[0.5, 0.6], [0.3, 0.25]])
        hl, lh, case2 = case2_plane(low, high)
        assert np.allclose(hl, [0.3, 0.2])
        assert np.allclose(lh, [0.5, 0.25])
        assert case2.all()

    def test_case1_detection(self):
        low = np.array([[0.1, 0.6]])
        high = np.array([[0.3, 0.9]])  # intervals [0.1,0.3] and [0.6,0.9]
        hl, lh, case2 = case2_plane(low, high)
        assert hl[0] == 0.6 and lh[0] == 0.3
        assert not case2[0]

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError, match="matching"):
            case2_plane(np.zeros((2, 3)), np.zeros((3, 2)))
