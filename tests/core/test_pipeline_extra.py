"""Additional pipeline behaviors: gaze interplay, models, bookkeeping."""

import numpy as np
import pytest

from repro.core.pipeline import PerceptualEncoder
from repro.perception.adaptation import DarkAdaptedModel
from repro.perception.calibration import ObserverProfile, calibrated_model
from repro.perception.model import ParametricModel
from repro.scenes.display import QUEST2_DISPLAY
from repro.scenes.gaze import LastSamplePredictor, saccade_trace
from repro.scenes.library import render_scene


@pytest.fixture(scope="module")
def frame():
    return render_scene("office", 64, 64, eye="left")


class TestGazeDrivenEncoding:
    def test_trace_driven_fixations_produce_valid_encodings(self, frame):
        """End-to-end: gaze trace -> predictor -> eccentricity map ->
        encoder, the loop a real system runs per frame."""
        trace = saccade_trace(0.5, rng=np.random.default_rng(2))
        predictor = LastSamplePredictor()
        encoder = PerceptualEncoder()
        for now in (0.1, 0.3, 0.45):
            fixation = predictor.predict(trace, now, latency_s=0.01)
            ecc = QUEST2_DISPLAY.eccentricity_map(64, 64, fixation=fixation)
            result = encoder.encode_frame(frame, ecc)
            assert result.max_mahalanobis <= 1.0 + 1e-9
            assert result.breakdown.total_bits > 0

    def test_extreme_corner_fixation(self, frame):
        ecc = QUEST2_DISPLAY.eccentricity_map(64, 64, fixation=(0.0, 0.0))
        result = PerceptualEncoder().encode_frame(frame, ecc)
        # Whole frame peripheral except the corner: strong compression.
        assert result.bandwidth_reduction_vs_bd > 0.0


class TestModelVariants:
    def test_calibrated_sensitive_user_costs_bits(self, frame):
        base = ParametricModel()
        sensitive = calibrated_model(
            ObserverProfile("artist", sensitivity=0.5), base=base
        )
        normal = PerceptualEncoder(model=base).encode_frame(frame, 25.0)
        careful = PerceptualEncoder(model=sensitive).encode_frame(frame, 25.0)
        assert careful.breakdown.total_bits >= normal.breakdown.total_bits

    def test_dark_adapted_model_helps_dark_frame(self):
        dark_frame = render_scene("monkey", 64, 64)
        base = ParametricModel()
        normal = PerceptualEncoder(model=base).encode_frame(dark_frame, 25.0)
        adapted = PerceptualEncoder(
            model=DarkAdaptedModel(base, adaptation=1.0)
        ).encode_frame(dark_frame, 25.0)
        assert adapted.breakdown.total_bits <= normal.breakdown.total_bits

    def test_model_stack_composes(self, frame):
        """Calibration on top of dark adaptation on top of the law."""
        stacked = calibrated_model(
            ObserverProfile("p", sensitivity=0.9),
            base=DarkAdaptedModel(ParametricModel(), adaptation=0.5),
        )
        result = PerceptualEncoder(model=stacked).encode_frame(frame, 25.0)
        assert result.max_mahalanobis <= 1.0 + 1e-9


class TestBookkeeping:
    def test_baseline_breakdown_matches_standalone_bd(self, frame):
        from repro.baselines.registry import bd_bits
        from repro.color.srgb import encode_srgb8

        result = PerceptualEncoder().encode_frame(frame, 25.0)
        assert result.baseline_breakdown.total_bits == bd_bits(encode_srgb8(frame))

    def test_original_srgb_is_quantized_input(self, frame):
        from repro.color.srgb import encode_srgb8

        result = PerceptualEncoder().encode_frame(frame, 25.0)
        assert np.array_equal(result.original_srgb, encode_srgb8(frame))

    def test_grid_metadata(self, frame):
        result = PerceptualEncoder(tile_size=8).encode_frame(frame, 25.0)
        assert result.grid.tile_size == 8
        assert result.grid.height == 64
        assert result.grid.n_tiles == 64
