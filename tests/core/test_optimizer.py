"""Tests for the per-tile axis optimizer."""

import numpy as np
import pytest

from repro.color.srgb import encode_srgb8
from repro.core.adjust import adjust_tiles
from repro.core.optimizer import optimize_tiles, tile_bd_bits
from repro.encoding.bd import bd_breakdown
from repro.perception.model import ParametricModel


def _tiles_and_axes(rng, n_tiles=25, pixels=16, ecc=25.0):
    model = ParametricModel()
    tiles = rng.uniform(0.2, 0.8, (n_tiles, pixels, 3))
    axes = model.semi_axes(tiles, np.full((n_tiles, pixels), ecc))
    return tiles, axes


class TestTileBDBits:
    def test_constant_tile_minimum_cost(self):
        tiles = np.full((1, 16, 3), 128, dtype=np.uint8)
        # Three channels of (8-bit base + 4-bit width), zero delta bits.
        assert tile_bd_bits(tiles)[0] == 36

    def test_full_range_tile_maximum_cost(self):
        tiles = np.zeros((1, 16, 3), dtype=np.uint8)
        tiles[0, 0, :] = 255
        assert tile_bd_bits(tiles)[0] == 36 + 3 * 16 * 8

    def test_agrees_with_frame_accounting(self, rng):
        tiles = rng.integers(0, 256, (12, 16, 3), dtype=np.uint8)
        per_tile = tile_bd_bits(tiles)
        breakdown = bd_breakdown(tiles)
        assert per_tile.sum() == breakdown.total_bits - breakdown.header_bits


class TestOptimizeTiles:
    def test_picks_minimum_bits(self, rng):
        tiles, axes = _tiles_and_axes(rng)
        optimized = optimize_tiles(tiles, axes, axes=(2, 0))
        for axis in (2, 0):
            candidate = adjust_tiles(tiles, axes, axis)
            candidate_bits = tile_bd_bits(encode_srgb8(candidate.adjusted))
            assert np.all(optimized.bits <= candidate_bits)

    def test_bits_match_selected_tiles(self, rng):
        tiles, axes = _tiles_and_axes(rng)
        optimized = optimize_tiles(tiles, axes)
        assert np.array_equal(optimized.bits, tile_bd_bits(optimized.adjusted_srgb))

    def test_adjusted_srgb_is_quantized_adjusted(self, rng):
        tiles, axes = _tiles_and_axes(rng)
        optimized = optimize_tiles(tiles, axes)
        assert np.array_equal(optimized.adjusted_srgb, encode_srgb8(optimized.adjusted))

    def test_single_axis_mode(self, rng):
        tiles, axes = _tiles_and_axes(rng)
        optimized = optimize_tiles(tiles, axes, axes=(2,))
        assert set(np.unique(optimized.chosen_axis)) == {2}
        reference = adjust_tiles(tiles, axes, 2)
        assert np.allclose(optimized.adjusted, reference.adjusted)

    def test_chosen_axis_values_legal(self, rng):
        tiles, axes = _tiles_and_axes(rng)
        optimized = optimize_tiles(tiles, axes, axes=(2, 0))
        assert set(np.unique(optimized.chosen_axis)) <= {0, 2}

    def test_tie_break_prefers_first_listed(self, rng):
        # Identical-color tiles: both axes reach the same (minimal)
        # cost, so the tie must fall to the first listed axis.
        tiles = np.full((4, 16, 3), 0.5)
        axes_len = ParametricModel().semi_axes(tiles, np.full((4, 16), 25.0))
        optimized = optimize_tiles(tiles, axes_len, axes=(0, 2))
        assert set(np.unique(optimized.chosen_axis)) == {0}

    def test_per_axis_results_exposed(self, rng):
        tiles, axes = _tiles_and_axes(rng)
        optimized = optimize_tiles(tiles, axes, axes=(2, 0))
        assert set(optimized.per_axis) == {0, 2}
        assert optimized.per_axis[2].axis == 2

    def test_case2_taken_from_winner(self, rng):
        tiles, axes = _tiles_and_axes(rng)
        optimized = optimize_tiles(tiles, axes, axes=(2, 0))
        for index in range(tiles.shape[0]):
            winner = int(optimized.chosen_axis[index])
            assert optimized.case2[index] == optimized.per_axis[winner].case2[index]

    def test_rejects_empty_axes(self, rng):
        tiles, axes = _tiles_and_axes(rng, n_tiles=1)
        with pytest.raises(ValueError, match="at least one"):
            optimize_tiles(tiles, axes, axes=())

    def test_rejects_duplicate_axes(self, rng):
        tiles, axes = _tiles_and_axes(rng, n_tiles=1)
        with pytest.raises(ValueError, match="duplicate"):
            optimize_tiles(tiles, axes, axes=(2, 2))

    def test_never_worse_than_unadjusted(self, rng):
        """On smooth tiles the winner's cost is at most the plain-BD cost."""
        base = rng.uniform(0.3, 0.7, (20, 1, 3))
        tiles = np.clip(base + rng.normal(0, 0.005, (20, 16, 3)), 0, 1)
        model = ParametricModel()
        axes_len = model.semi_axes(tiles, np.full((20, 16), 25.0))
        optimized = optimize_tiles(tiles, axes_len)
        unadjusted_bits = tile_bd_bits(encode_srgb8(tiles))
        # sRGB re-quantization can cost a code occasionally; allow a
        # one-bit-width slack per tile rather than exact dominance.
        assert (optimized.bits <= unadjusted_bits + 16).all()
        assert optimized.bits.sum() < unadjusted_bits.sum()
