"""Tests for the frame-level perceptual encoding pipeline."""

import numpy as np
import pytest

from repro.core.pipeline import DEFAULT_FOVEAL_RADIUS_DEG, PerceptualEncoder
from repro.perception.model import ParametricModel, ScaledModel
from repro.scenes.display import QUEST2_DISPLAY


@pytest.fixture(scope="module")
def encoder():
    return PerceptualEncoder()


@pytest.fixture(scope="module")
def result(encoder, ecc_map_64_module):
    frame = _smooth(np.random.default_rng(7))
    return encoder.encode_frame(frame, ecc_map_64_module)


@pytest.fixture(scope="module")
def ecc_map_64_module():
    return QUEST2_DISPLAY.eccentricity_map(64, 64)


def _smooth(rng, size=64):
    ys = np.linspace(0.2, 0.6, size)[:, None, None]
    xs = np.linspace(0.0, 0.2, size)[None, :, None]
    base = ys + xs * np.array([1.0, 0.5, 0.25])
    return np.clip(base + rng.normal(0, 0.004, (size, size, 3)), 0.0, 1.0)


class TestFrameResult:
    def test_improves_on_bd_for_smooth_content(self, result):
        assert result.breakdown.total_bits < result.baseline_breakdown.total_bits

    def test_perceptual_guarantee(self, result):
        assert result.max_mahalanobis <= 1.0 + 1e-9

    def test_frames_have_original_shape(self, result):
        assert result.adjusted_frame.shape == (64, 64, 3)
        assert result.adjusted_srgb.shape == (64, 64, 3)
        assert result.original_srgb.shape == (64, 64, 3)

    def test_srgb_dtypes(self, result):
        assert result.adjusted_srgb.dtype == np.uint8
        assert result.original_srgb.dtype == np.uint8

    def test_axis_fractions_sum_to_one(self, result):
        assert sum(result.axis_fractions.values()) == pytest.approx(1.0)

    def test_case2_fraction_in_range(self, result):
        assert 0.0 <= result.case2_fraction <= 1.0

    def test_reduction_properties_consistent(self, result):
        vs_raw = result.bandwidth_reduction_vs_uncompressed
        assert vs_raw == pytest.approx(1 - result.breakdown.bits_per_pixel / 24.0)
        vs_bd = result.bandwidth_reduction_vs_bd
        assert vs_bd == pytest.approx(
            1 - result.breakdown.total_bits / result.baseline_breakdown.total_bits
        )


class TestFovealBypass:
    def test_foveal_pixels_untouched(self, rng):
        frame = _smooth(rng)
        ecc = QUEST2_DISPLAY.eccentricity_map(64, 64)
        result = PerceptualEncoder().encode_frame(frame, ecc)
        foveal = ecc < DEFAULT_FOVEAL_RADIUS_DEG
        assert foveal.any()
        shift = np.abs(result.adjusted_frame - frame)[foveal]
        assert shift.max() < 1e-6

    def test_zero_radius_adjusts_everything(self, rng):
        frame = _smooth(rng)
        ecc = QUEST2_DISPLAY.eccentricity_map(64, 64)
        bypass = PerceptualEncoder().encode_frame(frame, ecc)
        adjust_all = PerceptualEncoder(foveal_radius_deg=0.0).encode_frame(frame, ecc)
        assert adjust_all.breakdown.total_bits <= bypass.breakdown.total_bits

    def test_everything_foveal_is_identity(self, rng):
        frame = _smooth(rng)
        result = PerceptualEncoder(foveal_radius_deg=90.0).encode_frame(frame, 5.0)
        assert np.allclose(result.adjusted_frame, frame, atol=1e-7)
        assert result.max_mahalanobis == 0.0

    def test_negative_radius_rejected(self):
        with pytest.raises(ValueError, match="foveal_radius_deg"):
            PerceptualEncoder(foveal_radius_deg=-1.0)


class TestInputHandling:
    def test_scalar_eccentricity_broadcast(self, encoder, rng):
        frame = _smooth(rng)
        result = encoder.encode_frame(frame, 25.0)
        assert result.grid.height == 64

    def test_mismatched_eccentricity_shape(self, encoder, rng):
        frame = _smooth(rng)
        with pytest.raises(ValueError, match="does not match"):
            encoder.encode_frame(frame, np.zeros((32, 32)))

    def test_bad_frame_shape(self, encoder):
        with pytest.raises(ValueError, match=r"\(H, W, 3\)"):
            encoder.encode_frame(np.zeros((64, 64)), 25.0)

    def test_non_multiple_of_tile_size(self, encoder, rng):
        frame = np.clip(_smooth(rng)[:50, :37], 0, 1)
        result = encoder.encode_frame(frame, 25.0)
        assert result.adjusted_frame.shape == (50, 37, 3)
        assert result.breakdown.n_pixels == 50 * 37

    def test_larger_tile_size(self, rng):
        frame = _smooth(rng)
        result = PerceptualEncoder(tile_size=8).encode_frame(frame, 25.0)
        assert result.grid.tile_size == 8
        assert result.max_mahalanobis <= 1.0 + 1e-9


class TestModelInjection:
    def test_smaller_ellipsoids_compress_less(self, rng):
        frame = _smooth(rng)
        base = ParametricModel()
        sensitive = ScaledModel(base, 0.25)
        normal = PerceptualEncoder(model=base).encode_frame(frame, 25.0)
        tight = PerceptualEncoder(model=sensitive).encode_frame(frame, 25.0)
        assert tight.breakdown.total_bits >= normal.breakdown.total_bits

    def test_case2_placement_forwarded(self, rng):
        frame = _smooth(rng)
        a = PerceptualEncoder(case2_placement="hl").encode_frame(frame, 25.0)
        b = PerceptualEncoder(case2_placement="lh").encode_frame(frame, 25.0)
        assert not np.array_equal(a.adjusted_srgb, b.adjusted_srgb)

    def test_deterministic(self, encoder, rng):
        frame = _smooth(rng)
        first = encoder.encode_frame(frame, 25.0)
        second = encoder.encode_frame(frame, 25.0)
        assert np.array_equal(first.adjusted_srgb, second.adjusted_srgb)
