"""Tests for batch encoding and its shared-context amortization."""

import multiprocessing
import os

import numpy as np
import pytest

from repro.codecs import (
    encode_batch,
    get_codec,
    make_contexts,
)
from repro.core.pipeline import FrameResult
from repro.scenes.library import render_scene


@pytest.fixture(scope="module")
def frames():
    return [render_scene("office", 32, 32, frame=i) for i in range(8)]


class TestAmortization:
    def test_eight_frames_quantize_and_tile_once_each(self, frames):
        """The acceptance criterion: sweeping several codecs over 8
        frames derives each frame's shared context at most once."""
        ctxs = make_contexts(frames)
        results = encode_batch(
            ctxs=ctxs, codecs=("nocom", "bd", "png", "variable-bd", "temporal-bd")
        )
        assert all(len(per_frame) == 8 for per_frame in results.values())
        for ctx in ctxs:
            assert ctx.stats["quantize"] <= 1
            # bd, variable-bd and temporal-bd all share one 4x4 pass.
            assert ctx.stats["tile"] <= 1
            assert ctx.stats["eccentricity"] == 0  # nobody needed gaze

    def test_contexts_reusable_across_calls(self, frames):
        ctxs = make_contexts(frames[:2])
        encode_batch(ctxs=ctxs, codecs=("bd",))
        encode_batch(ctxs=ctxs, codecs=("variable-bd",))
        for ctx in ctxs:
            assert ctx.stats["tile"] == 1

    def test_eccentricity_shared_when_passed(self, frames):
        ecc = np.full((32, 32), 20.0)
        ctxs = make_contexts(frames[:2], eccentricity=ecc)
        for ctx in ctxs:
            assert ctx.eccentricity is ecc


class TestSemantics:
    def test_results_keyed_by_canonical_name(self, frames):
        results = encode_batch(frames[:2], codecs=("raw", "BD"))
        assert set(results) == {"nocom", "bd"}

    def test_codec_options_routed(self, frames):
        fine = encode_batch(frames[:1], codecs=("bd",))
        coarse = encode_batch(
            frames[:1], codecs=("bd",), codec_options={"bd": {"tile_size": 16}}
        )
        assert fine["bd"][0].total_bits != coarse["bd"][0].total_bits

    def test_codec_instances_accepted(self, frames):
        codec = get_codec("bd", tile_size=8)
        results = encode_batch(frames[:2], codecs=(codec,))
        assert set(results) == {"bd"}

    def test_duplicate_codec_rejected(self, frames):
        with pytest.raises(ValueError, match="twice"):
            encode_batch(frames[:1], codecs=("bd", "BD"))

    def test_needs_frames_or_ctxs(self):
        with pytest.raises(ValueError, match="frames or ctxs"):
            encode_batch()

    def test_context_kwargs_conflict_with_prebuilt_ctxs(self, frames):
        ctxs = make_contexts(frames[:1])
        with pytest.raises(ValueError, match="no effect"):
            encode_batch(ctxs=ctxs, codecs=("bd",), fixation=(0.2, 0.2))

    def test_perceptual_batch_returns_frame_results(self, frames):
        ecc = np.full((32, 32), 25.0)
        results = encode_batch(frames[:2], codecs=("perceptual",), eccentricity=ecc)
        for result in results["perceptual"]:
            assert isinstance(result, FrameResult)
            assert result.total_bits == result.breakdown.total_bits


class TestOptionsValidation:
    """Regression: a typo'd codec_options key used to run silently."""

    def test_typo_key_raises(self, frames):
        with pytest.raises(ValueError, match="percptual.*not a registered codec"):
            encode_batch(
                frames[:1], codecs=("perceptual",),
                codec_options={"percptual": {"encoder": None}},
            )

    def test_key_not_in_batch_raises(self, frames):
        with pytest.raises(ValueError, match="does not match any codec"):
            encode_batch(
                frames[:1], codecs=("bd",), codec_options={"png": {"level": 2}}
            )

    def test_alias_keys_accepted(self, frames):
        # "BD" aliases "bd": options must follow the canonicalization.
        fine = encode_batch(frames[:1], codecs=("BD",))
        coarse = encode_batch(
            frames[:1], codecs=("BD",), codec_options={"bd": {"tile_size": 16}}
        )
        assert fine["bd"][0].total_bits != coarse["bd"][0].total_bits

    def test_duplicate_canonical_keys_raise(self, frames):
        with pytest.raises(ValueError, match="twice"):
            encode_batch(
                frames[:1], codecs=("bd",),
                codec_options={"bd": {"tile_size": 8}, "BD": {"tile_size": 16}},
            )

    def test_options_for_ready_instance_raise(self, frames):
        codec = get_codec("bd", tile_size=8)
        with pytest.raises(ValueError, match="ready instance"):
            encode_batch(
                frames[:1], codecs=(codec,), codec_options={"bd": {"tile_size": 4}}
            )


class TestParallel:
    def test_bit_identical_to_serial(self, frames):
        codecs = ("nocom", "bd", "png", "variable-bd")
        serial = encode_batch(frames, codecs=codecs)
        parallel = encode_batch(frames, codecs=codecs, n_jobs=3)
        for name in serial:
            assert [r.total_bits for r in serial[name]] == [
                r.total_bits for r in parallel[name]
            ]

    def test_perceptual_parallel_identical(self, frames):
        ecc = np.full((32, 32), 25.0)
        serial = encode_batch(frames[:4], codecs=("perceptual",), eccentricity=ecc)
        parallel = encode_batch(
            frames[:4], codecs=("perceptual",), eccentricity=ecc, n_jobs=2
        )
        for a, b in zip(serial["perceptual"], parallel["perceptual"]):
            assert a.total_bits == b.total_bits
            assert np.array_equal(a.reconstruction, b.reconstruction)

    def test_stateful_codec_stays_serial_and_identical(self, frames):
        serial = encode_batch(frames, codecs=("temporal-bd",))
        parallel = encode_batch(frames, codecs=("temporal-bd",), n_jobs=4)
        assert [r.total_bits for r in serial["temporal-bd"]] == [
            r.total_bits for r in parallel["temporal-bd"]
        ]

    def test_more_jobs_than_frames(self, frames):
        results = encode_batch(frames[:2], codecs=("bd",), n_jobs=8)
        assert len(results["bd"]) == 2

    def test_rejects_bad_n_jobs(self, frames):
        with pytest.raises(ValueError, match="n_jobs"):
            encode_batch(frames[:1], codecs=("bd",), n_jobs=0)
        with pytest.raises(ValueError, match="n_jobs"):
            encode_batch(frames[:1], codecs=("bd",), n_jobs=1.5)

    @pytest.mark.slow
    @pytest.mark.skipif(
        (os.cpu_count() or 1) < 4,
        reason="parallel speedup needs multiple cores",
    )
    @pytest.mark.skipif(
        "fork" not in multiprocessing.get_all_start_methods(),
        reason="spawn start-up costs dwarf a 16-frame batch",
    )
    def test_parallel_faster_on_16_frame_batch(self):
        """Acceptance: n_jobs > 1 beats serial on a 16-frame batch.

        A 256px workload keeps the compute-to-pool-overhead ratio high
        (expected speedup ~3x on 4 cores), and both sides take their
        best of two runs so one noisy-neighbor hiccup on a shared CI
        runner cannot flake the suite.
        """
        import time

        big = [render_scene("thai", 256, 256, frame=i) for i in range(16)]
        ecc = np.full((256, 256), 25.0)
        encode_batch(big[:1], codecs=("perceptual",), eccentricity=ecc)  # warm caches

        def best_of_two(**kwargs):
            best = float("inf")
            for _ in range(2):
                start = time.perf_counter()
                encode_batch(big, codecs=("perceptual",), eccentricity=ecc, **kwargs)
                best = min(best, time.perf_counter() - start)
            return best

        assert best_of_two(n_jobs=4) < best_of_two()


class TestNonTileMultipleFrames:
    def test_190x190_parallel_matches_serial(self):
        ragged = [render_scene("office", 190, 190, frame=i) for i in range(2)]
        codecs = ("bd", "variable-bd")
        serial = encode_batch(ragged, codecs=codecs)
        parallel = encode_batch(ragged, codecs=codecs, n_jobs=2)
        for name in codecs:
            assert [r.total_bits for r in serial[name]] == [
                r.total_bits for r in parallel[name]
            ]
            # Billed per source pixel (190x190), not the padded grid.
            assert all(r.n_pixels == 190 * 190 for r in serial[name])

    def test_190x190_perceptual_reconstruction_cropped(self):
        # The untile path must crop the pad back off: the decoder
        # displays exactly the source-size frame.
        ragged = [render_scene("office", 190, 190)]
        ecc = np.full((190, 190), 25.0)
        result = encode_batch(ragged, codecs=("perceptual",), eccentricity=ecc)
        frame = result["perceptual"][0]
        assert frame.reconstruction.shape == (190, 190, 3)
        assert frame.n_pixels == 190 * 190


class TestTemporalState:
    def test_temporal_bd_exploits_still_frames(self, frames):
        still = [frames[0], frames[0], frames[0]]
        results = encode_batch(still, codecs=("temporal-bd", "bd"))
        temporal = [r.total_bits for r in results["temporal-bd"]]
        spatial = [r.total_bits for r in results["bd"]]
        # First frame has no reference; later identical frames are
        # far cheaper than spatial BD.
        assert temporal[1] < spatial[1]
        assert temporal[2] < spatial[2]

    def test_batches_do_not_leak_state(self, frames):
        codec = get_codec("temporal-bd")
        first = codec.encode_batch(make_contexts([frames[0]]))[0]
        again = codec.encode_batch(make_contexts([frames[0]]))[0]
        # encode_batch resets: the second batch's first frame is fully
        # spatial again, not temporal against the previous batch.
        assert first.total_bits == again.total_bits
