"""Tests for batch encoding and its shared-context amortization."""

import numpy as np
import pytest

from repro.codecs import (
    FrameContext,
    encode_batch,
    get_codec,
    make_contexts,
)
from repro.core.pipeline import FrameResult
from repro.scenes.library import render_scene


@pytest.fixture(scope="module")
def frames():
    return [render_scene("office", 32, 32, frame=i) for i in range(8)]


class TestAmortization:
    def test_eight_frames_quantize_and_tile_once_each(self, frames):
        """The acceptance criterion: sweeping several codecs over 8
        frames derives each frame's shared context at most once."""
        ctxs = make_contexts(frames)
        results = encode_batch(
            ctxs=ctxs, codecs=("nocom", "bd", "png", "variable-bd", "temporal-bd")
        )
        assert all(len(per_frame) == 8 for per_frame in results.values())
        for ctx in ctxs:
            assert ctx.stats["quantize"] <= 1
            # bd, variable-bd and temporal-bd all share one 4x4 pass.
            assert ctx.stats["tile"] <= 1
            assert ctx.stats["eccentricity"] == 0  # nobody needed gaze

    def test_contexts_reusable_across_calls(self, frames):
        ctxs = make_contexts(frames[:2])
        encode_batch(ctxs=ctxs, codecs=("bd",))
        encode_batch(ctxs=ctxs, codecs=("variable-bd",))
        for ctx in ctxs:
            assert ctx.stats["tile"] == 1

    def test_eccentricity_shared_when_passed(self, frames):
        ecc = np.full((32, 32), 20.0)
        ctxs = make_contexts(frames[:2], eccentricity=ecc)
        for ctx in ctxs:
            assert ctx.eccentricity is ecc


class TestSemantics:
    def test_results_keyed_by_canonical_name(self, frames):
        results = encode_batch(frames[:2], codecs=("raw", "BD"))
        assert set(results) == {"nocom", "bd"}

    def test_codec_options_routed(self, frames):
        fine = encode_batch(frames[:1], codecs=("bd",))
        coarse = encode_batch(
            frames[:1], codecs=("bd",), codec_options={"bd": {"tile_size": 16}}
        )
        assert fine["bd"][0].total_bits != coarse["bd"][0].total_bits

    def test_codec_instances_accepted(self, frames):
        codec = get_codec("bd", tile_size=8)
        results = encode_batch(frames[:2], codecs=(codec,))
        assert set(results) == {"bd"}

    def test_duplicate_codec_rejected(self, frames):
        with pytest.raises(ValueError, match="twice"):
            encode_batch(frames[:1], codecs=("bd", "BD"))

    def test_needs_frames_or_ctxs(self):
        with pytest.raises(ValueError, match="frames or ctxs"):
            encode_batch()

    def test_context_kwargs_conflict_with_prebuilt_ctxs(self, frames):
        ctxs = make_contexts(frames[:1])
        with pytest.raises(ValueError, match="no effect"):
            encode_batch(ctxs=ctxs, codecs=("bd",), fixation=(0.2, 0.2))

    def test_perceptual_batch_returns_frame_results(self, frames):
        ecc = np.full((32, 32), 25.0)
        results = encode_batch(frames[:2], codecs=("perceptual",), eccentricity=ecc)
        for result in results["perceptual"]:
            assert isinstance(result, FrameResult)
            assert result.total_bits == result.breakdown.total_bits


class TestTemporalState:
    def test_temporal_bd_exploits_still_frames(self, frames):
        still = [frames[0], frames[0], frames[0]]
        results = encode_batch(still, codecs=("temporal-bd", "bd"))
        temporal = [r.total_bits for r in results["temporal-bd"]]
        spatial = [r.total_bits for r in results["bd"]]
        # First frame has no reference; later identical frames are
        # far cheaper than spatial BD.
        assert temporal[1] < spatial[1]
        assert temporal[2] < spatial[2]

    def test_batches_do_not_leak_state(self, frames):
        codec = get_codec("temporal-bd")
        first = codec.encode_batch(make_contexts([frames[0]]))[0]
        again = codec.encode_batch(make_contexts([frames[0]]))[0]
        # encode_batch resets: the second batch's first frame is fully
        # spatial again, not temporal against the previous batch.
        assert first.total_bits == again.total_bits
