"""Tests for QualityLadder codec-instance caching and payload wiring."""

import numpy as np
import pytest

from repro.codecs import FrameContext, get_codec
from repro.codecs.ladder import QualityLadder, QualityRung
from repro.core.pipeline import PerceptualEncoder
from repro.encoding.bd import BDCodec
from repro.encoding.bd_variable import VariableBDCodec


class TestLadderCodecCache:
    def test_repeated_builds_reuse_instances(self):
        ladder = QualityLadder.default()
        for index in range(len(ladder)):
            assert ladder.build_codec(index) is ladder.build_codec(index)

    def test_sweep_style_rebuilds_share_instances(self):
        """A multi-policy sweep building the rung codecs once per run
        must get the same instances every run."""
        ladder = QualityLadder.default()
        first = [ladder.build_codec(i) for i in range(len(ladder))]
        second = [ladder.build_codec(i) for i in range(len(ladder))]
        assert all(a is b for a, b in zip(first, second))

    def test_same_encoder_reuses_different_encoder_rebuilds(self):
        ladder = QualityLadder.default()
        index = ladder.index_of("bd")
        enc_a = PerceptualEncoder()
        enc_b = PerceptualEncoder()
        assert ladder.build_codec(index, enc_a) is ladder.build_codec(index, enc_a)
        assert ladder.build_codec(index, enc_a) is not ladder.build_codec(index, enc_b)
        assert ladder.build_codec(index, None) is not ladder.build_codec(index, enc_a)

    def test_stateful_rungs_never_cached(self):
        ladder = QualityLadder(
            rungs=(QualityRung(name="temporal-bd", codec="temporal-bd", quality=0.9),)
        )
        assert ladder.build_codec(0) is not ladder.build_codec(0)

    def test_separate_ladders_have_separate_caches(self):
        a = QualityLadder.default()
        b = QualityLadder.default()
        assert a.build_codec(0) is not b.build_codec(0)


class TestPayloadWiring:
    def test_bd_payload_decodes_to_context_frame(self, rng):
        frame = rng.integers(0, 256, (12, 20, 3), dtype=np.uint8)
        codec = get_codec("bd", tile_size=4, payload=True)
        encoded = codec.encode(FrameContext(srgb8=frame))
        payload = encoded.metadata["payload"]
        assert isinstance(payload, bytes)
        assert len(payload) == -(-encoded.total_bits // 8)
        decoder = BDCodec(tile_size=4)
        reference = decoder.encode(frame)
        assert payload == reference.data
        assert np.array_equal(decoder.decode(reference), frame)

    def test_variable_bd_payload_matches_bitstream_codec(self, rng):
        frame = rng.integers(0, 256, (8, 8, 3), dtype=np.uint8)
        codec = get_codec("variable-bd", tile_size=4, group_size=4, payload=True)
        encoded = codec.encode(FrameContext(srgb8=frame))
        reference = VariableBDCodec(tile_size=4, group_size=4).encode(frame)
        assert encoded.metadata["payload"] == reference.data
        assert len(encoded.metadata["payload"]) == -(-encoded.total_bits // 8)

    @pytest.mark.parametrize("name", ["bd", "variable-bd"])
    def test_payload_off_by_default(self, rng, name):
        frame = rng.integers(0, 256, (8, 8, 3), dtype=np.uint8)
        encoded = get_codec(name).encode(FrameContext(srgb8=frame))
        assert "payload" not in encoded.metadata
