"""Tests for the lazy FrameContext and the display-side map cache."""

import numpy as np
import pytest

from repro.codecs import FrameContext
from repro.color.srgb import encode_srgb8
from repro.scenes.display import QUEST2_DISPLAY, DisplayGeometry
from repro.scenes.library import render_scene


@pytest.fixture()
def frame():
    return render_scene("office", 24, 24)


class TestLazyDerivation:
    def test_srgb8_computed_once(self, frame):
        ctx = FrameContext(frame)
        assert ctx.stats["quantize"] == 0
        first = ctx.srgb8
        second = ctx.srgb8
        assert first is second
        assert ctx.stats["quantize"] == 1
        assert np.array_equal(first, encode_srgb8(frame))

    def test_tiles_cached_per_tile_size(self, frame):
        ctx = FrameContext(frame)
        tiles4a, grid4 = ctx.tiles(4)
        tiles4b, _ = ctx.tiles(4)
        tiles8, grid8 = ctx.tiles(8)
        assert tiles4a is tiles4b
        assert ctx.stats["tile"] == 2  # one pass per distinct tile size
        assert grid4.tile_size == 4 and grid8.tile_size == 8

    def test_eccentricity_derived_once_from_display(self, frame):
        ctx = FrameContext(frame)
        ecc = ctx.eccentricity
        assert ecc is ctx.eccentricity
        assert ctx.stats["eccentricity"] == 1
        assert ecc.shape == (24, 24)

    def test_provided_eccentricity_is_not_rederived(self, frame):
        given = np.full((24, 24), 30.0)
        ctx = FrameContext(frame, eccentricity=given)
        assert ctx.eccentricity is given
        assert ctx.stats["eccentricity"] == 0

    def test_scalar_eccentricity_broadcasts(self, frame):
        ctx = FrameContext(frame, eccentricity=25.0)
        assert ctx.eccentricity.shape == (24, 24)
        assert (ctx.eccentricity == 25.0).all()


class TestConstruction:
    def test_needs_some_frame(self):
        with pytest.raises(ValueError, match="frame_linear, srgb8"):
            FrameContext()

    def test_srgb8_only_context(self, frame):
        srgb = encode_srgb8(frame)
        ctx = FrameContext.from_srgb8(srgb)
        assert not ctx.has_linear
        assert ctx.srgb8 is srgb
        assert ctx.stats["quantize"] == 0
        with pytest.raises(ValueError, match="linear"):
            _ = ctx.frame_linear

    def test_rejects_float_srgb(self, frame):
        with pytest.raises(TypeError, match="uint8"):
            FrameContext.from_srgb8(np.zeros((8, 8, 3)))

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError, match=r"\(H, W, 3\)"):
            FrameContext(np.zeros((8, 8)))

    def test_rejects_mismatched_eccentricity(self, frame):
        with pytest.raises(ValueError, match="does not match"):
            FrameContext(frame, eccentricity=np.zeros((4, 4)))

    def test_geometry(self, frame):
        ctx = FrameContext(frame)
        assert (ctx.height, ctx.width, ctx.n_pixels) == (24, 24, 576)


class TestDisplayMapCache:
    def test_same_request_returns_cached_readonly_array(self):
        a = QUEST2_DISPLAY.eccentricity_map(40, 40)
        b = QUEST2_DISPLAY.eccentricity_map(40, 40)
        assert a is b
        assert not a.flags.writeable

    def test_distinct_fixations_distinct_maps(self):
        center = QUEST2_DISPLAY.eccentricity_map(16, 16)
        corner = QUEST2_DISPLAY.eccentricity_map(16, 16, fixation=(0.0, 0.0))
        assert not np.array_equal(center, corner)

    def test_equal_geometries_have_independent_caches(self):
        # Per-instance caches: equal geometries agree on values but do
        # not share storage, so no instance outlives its own cache.
        a = DisplayGeometry().eccentricity_map(20, 20)
        b = DisplayGeometry().eccentricity_map(20, 20)
        assert a is not b
        assert np.array_equal(a, b)

    def test_values_unchanged_by_caching(self):
        ecc = DisplayGeometry(
            fov_horizontal_deg=90.0, fov_vertical_deg=90.0
        ).eccentricity_map(9, 9)
        # Center pixel looks straight at the gaze point.
        assert ecc[4, 4] == pytest.approx(0.0, abs=1e-9)

    def test_huge_maps_bypass_cache(self):
        """Headset-resolution maps stay transient (no multi-GB pinning)."""
        display = DisplayGeometry()
        a = display.eccentricity_map(1100, 1100)  # ~9.7 MB > 8 MB limit
        b = display.eccentricity_map(1100, 1100)
        assert a is not b
        assert np.array_equal(a, b)
