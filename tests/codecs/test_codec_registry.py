"""Tests for the unified codec registry and its shims."""

import pytest

from repro.baselines.registry import BASELINE_NAMES, baseline_bits
from repro.codecs import (
    Codec,
    CodecRegistry,
    EncodedFrame,
    FrameContext,
    available_codecs,
    get_codec,
    resolve_codec_name,
    streaming_codec_names,
)
from repro.color.srgb import encode_srgb8
from repro.core.pipeline import FrameResult
from repro.scenes.library import render_scene
from repro.streaming.session import ENCODER_CHOICES


@pytest.fixture(scope="module")
def scene_frame():
    return render_scene("office", 32, 32)


@pytest.fixture(scope="module")
def scene_ctx(scene_frame):
    return FrameContext(scene_frame)


@pytest.fixture(scope="module")
def encoded_by_name(scene_ctx):
    return {name: get_codec(name).encode(scene_ctx) for name in available_codecs()}


class TestRoster:
    def test_all_six_plus_codecs_registered(self):
        for name in ("nocom", "bd", "png", "scc", "perceptual", "variable-bd"):
            assert name in available_codecs()

    def test_every_codec_returns_encoded_frame(self, encoded_by_name):
        for name, result in encoded_by_name.items():
            assert isinstance(result, EncodedFrame), name
            assert result.codec == name
            assert result.total_bits > 0
            assert result.n_pixels == 32 * 32

    def test_monotone_sane_bits(self, encoded_by_name):
        """NoCom is the ceiling; the compressors all beat it."""
        nocom = encoded_by_name["nocom"].total_bits
        for name in ("png", "bd", "perceptual", "variable-bd"):
            assert 0 < encoded_by_name[name].total_bits < nocom, name

    def test_perceptual_beats_bd(self, encoded_by_name):
        assert (
            encoded_by_name["perceptual"].total_bits
            < encoded_by_name["bd"].total_bits
        )

    def test_perceptual_returns_frame_result(self, encoded_by_name):
        result = encoded_by_name["perceptual"]
        assert isinstance(result, FrameResult)
        assert result.reconstruction is result.adjusted_srgb
        assert result.breakdown.total_bits == result.total_bits


class TestLookup:
    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown codec"):
            get_codec("h265")

    def test_raw_alias_resolves_to_nocom(self):
        assert resolve_codec_name("raw") == "nocom"
        assert get_codec("raw").name == "nocom"

    def test_case_insensitive(self):
        assert resolve_codec_name("NoCom") == "nocom"
        assert resolve_codec_name("PNG") == "png"

    def test_duplicate_registration_rejected(self):
        registry = CodecRegistry()

        @registry.register("x")
        class XCodec(Codec):
            def encode(self, ctx):
                raise NotImplementedError

        with pytest.raises(ValueError, match="already registered"):
            registry.register("x")(XCodec)
        with pytest.raises(ValueError, match="already registered"):
            registry.register("y", aliases=("x",))(XCodec)


class TestKwargRouting:
    """Per-codec kwargs are routed explicitly, never silently dropped."""

    def test_codec_kwargs_forwarded(self, scene_ctx):
        small = get_codec("bd", tile_size=4).encode(scene_ctx)
        large = get_codec("bd", tile_size=16).encode(scene_ctx)
        assert small.total_bits != large.total_bits

    def test_unknown_kwarg_rejected_with_codec_name(self):
        with pytest.raises(TypeError, match="png"):
            get_codec("png", tile_size=4)
        with pytest.raises(TypeError, match="nocom"):
            get_codec("nocom", level=3)

    def test_shim_routes_tile_size_to_bd_only(self, scene_frame):
        srgb = encode_srgb8(scene_frame)
        assert baseline_bits("BD", srgb, tile_size=8) != baseline_bits(
            "BD", srgb, tile_size=4
        )
        for name in ("NoCom", "PNG", "SCC"):
            with pytest.raises(TypeError, match="tile_size"):
                baseline_bits(name, srgb, tile_size=8)


class TestShimSync:
    """The legacy rosters stay derived from / verified against the registry."""

    def test_baseline_names_resolve_to_registered_codecs(self):
        resolved = {resolve_codec_name(name) for name in BASELINE_NAMES}
        assert resolved <= set(available_codecs())
        assert resolved == {"nocom", "scc", "bd", "png"}

    def test_encoder_choices_are_the_streaming_roster(self):
        assert ENCODER_CHOICES == streaming_codec_names()
        for name in ENCODER_CHOICES:
            # Every streaming choice resolves to a registered codec.
            assert resolve_codec_name(name) in available_codecs()

    def test_shim_agrees_with_direct_codec_calls(self, scene_frame):
        srgb = encode_srgb8(scene_frame)
        ctx = FrameContext.from_srgb8(srgb)
        for name in BASELINE_NAMES:
            direct = get_codec(name).encode(ctx).total_bits
            assert baseline_bits(name, srgb) == direct, name
