"""Tests for compressed-size bookkeeping."""

import pytest

from repro.encoding.accounting import UNCOMPRESSED_BPP, SizeBreakdown


def _breakdown(base=960, metadata=480, deltas=3000, header=40, pixels=1600):
    return SizeBreakdown(
        base_bits=base,
        metadata_bits=metadata,
        delta_bits=deltas,
        header_bits=header,
        n_pixels=pixels,
    )


class TestTotals:
    def test_total_bits(self):
        assert _breakdown().total_bits == 960 + 480 + 3000 + 40

    def test_total_bytes_rounds_up(self):
        breakdown = _breakdown(base=1, metadata=0, deltas=0, header=0)
        assert breakdown.total_bytes == 1

    def test_bits_per_pixel(self):
        assert _breakdown().bits_per_pixel == pytest.approx(4480 / 1600)

    def test_component_bpp_sums_to_total(self):
        breakdown = _breakdown()
        assert sum(breakdown.component_bpp().values()) == pytest.approx(
            breakdown.bits_per_pixel
        )


class TestReductions:
    def test_vs_uncompressed(self):
        breakdown = _breakdown(base=1600 * 12, metadata=0, deltas=0, header=0)
        assert breakdown.reduction_vs_uncompressed() == pytest.approx(0.5)

    def test_vs_other(self):
        ours = _breakdown(deltas=1000)
        bd = _breakdown(deltas=3000)
        assert ours.reduction_vs(bd) == pytest.approx(
            1 - ours.total_bits / bd.total_bits
        )

    def test_vs_other_requires_same_pixels(self):
        with pytest.raises(ValueError, match="different pixel counts"):
            _breakdown().reduction_vs(_breakdown(pixels=99))

    def test_vs_zero_size_rejected(self):
        zero = SizeBreakdown(0, 0, 0, 0, 1600)
        with pytest.raises(ValueError, match="zero size"):
            _breakdown().reduction_vs(zero)

    def test_uncompressed_constructor(self):
        raw = SizeBreakdown.uncompressed(100)
        assert raw.bits_per_pixel == UNCOMPRESSED_BPP
        assert raw.reduction_vs_uncompressed() == 0.0


class TestValidation:
    def test_negative_component_rejected(self):
        with pytest.raises(ValueError, match="base_bits"):
            SizeBreakdown(-1, 0, 0, 0, 10)

    def test_nonpositive_pixels_rejected(self):
        with pytest.raises(ValueError, match="n_pixels"):
            SizeBreakdown(0, 0, 0, 0, 0)
        with pytest.raises(ValueError, match="n_pixels"):
            SizeBreakdown.uncompressed(0)
