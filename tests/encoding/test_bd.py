"""Tests for the Base+Delta codec (paper Sec. 2.2, Eq. 5-6)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.color.srgb import encode_srgb8
from repro.encoding.bd import (
    BASE_FIELD_BITS,
    HEADER_BITS,
    WIDTH_FIELD_BITS,
    BDCodec,
    EncodedFrame,
    bd_breakdown,
    delta_widths,
)
from repro.encoding.tiling import tile_frame
from repro.scenes.library import render_scene


class TestDeltaWidths:
    def test_constant_channel_needs_zero_bits(self):
        tiles = np.full((2, 16, 3), 77, dtype=np.uint8)
        assert np.array_equal(delta_widths(tiles), np.zeros((2, 3), dtype=np.int64))

    @pytest.mark.parametrize(
        "value_range,expected_width",
        [(1, 1), (2, 2), (3, 2), (4, 3), (7, 3), (8, 4), (255, 8)],
    )
    def test_known_ranges(self, value_range, expected_width):
        tiles = np.zeros((1, 16, 3), dtype=np.uint8)
        tiles[0, 0, :] = value_range
        assert delta_widths(tiles)[0, 0] == expected_width

    def test_per_channel_independence(self):
        tiles = np.zeros((1, 4, 3), dtype=np.uint8)
        tiles[0, :, 0] = [0, 0, 0, 0]
        tiles[0, :, 1] = [10, 11, 12, 13]
        tiles[0, :, 2] = [0, 128, 200, 255]
        assert list(delta_widths(tiles)[0]) == [0, 2, 8]

    def test_rejects_float_tiles(self):
        with pytest.raises(TypeError, match="uint8"):
            delta_widths(np.zeros((1, 4, 3)))

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError, match=r"\(n_tiles, pixels, 3\)"):
            delta_widths(np.zeros((4, 4), dtype=np.uint8))


class TestBreakdown:
    def test_component_arithmetic(self, rng):
        tiles = rng.integers(0, 256, (10, 16, 3), dtype=np.uint8)
        breakdown = bd_breakdown(tiles)
        assert breakdown.base_bits == BASE_FIELD_BITS * 3 * 10
        assert breakdown.metadata_bits == WIDTH_FIELD_BITS * 3 * 10
        assert breakdown.header_bits == HEADER_BITS
        widths = delta_widths(tiles)
        assert breakdown.delta_bits == int(widths.sum()) * 16

    def test_custom_pixel_count(self, rng):
        tiles = rng.integers(0, 256, (4, 16, 3), dtype=np.uint8)
        breakdown = bd_breakdown(tiles, n_pixels=50)
        assert breakdown.n_pixels == 50


class TestCodecRoundTrip:
    @pytest.mark.parametrize("shape", [(8, 8), (16, 12), (13, 17), (4, 4), (1, 1)])
    def test_random_frames(self, rng, shape):
        frame = rng.integers(0, 256, (*shape, 3), dtype=np.uint8)
        codec = BDCodec(tile_size=4)
        encoded = codec.encode(frame)
        assert np.array_equal(codec.decode(encoded), frame)

    def test_scene_frame(self):
        frame = encode_srgb8(render_scene("office", 32, 32))
        codec = BDCodec(tile_size=4)
        assert np.array_equal(codec.decode(codec.encode(frame)), frame)

    @pytest.mark.parametrize("tile_size", [1, 2, 4, 8])
    def test_tile_sizes(self, rng, tile_size):
        frame = rng.integers(0, 256, (16, 16, 3), dtype=np.uint8)
        codec = BDCodec(tile_size=tile_size)
        assert np.array_equal(codec.decode(codec.encode(frame)), frame)

    def test_constant_frame_compresses_hard(self):
        frame = np.full((16, 16, 3), 200, dtype=np.uint8)
        encoded = BDCodec(tile_size=4).encode(frame)
        # 16 tiles x 3 channels x 12 bits + header, and nothing else.
        assert encoded.breakdown.total_bits == 16 * 3 * 12 + HEADER_BITS

    def test_stream_length_matches_breakdown(self, rng):
        frame = rng.integers(0, 256, (12, 12, 3), dtype=np.uint8)
        encoded = BDCodec(tile_size=4).encode(frame)
        expected_bytes = -(-encoded.breakdown.total_bits // 8)
        assert len(encoded.data) == expected_bytes

    def test_gradient_beats_noise(self, rng):
        gradient = np.broadcast_to(
            np.arange(16, dtype=np.uint8)[:, None, None] * 3 + 100, (16, 16, 3)
        ).copy()
        noise = rng.integers(0, 256, (16, 16, 3), dtype=np.uint8)
        codec = BDCodec(tile_size=4)
        assert (
            codec.encode(gradient).breakdown.total_bits
            < codec.encode(noise).breakdown.total_bits
        )

    @settings(max_examples=15, deadline=None)
    @given(
        st.integers(min_value=1, max_value=20),
        st.integers(min_value=1, max_value=20),
        st.integers(min_value=1, max_value=6),
    )
    def test_round_trip_property(self, height, width, tile_size):
        rng = np.random.default_rng(height * 100 + width)
        frame = rng.integers(0, 256, (height, width, 3), dtype=np.uint8)
        codec = BDCodec(tile_size=tile_size)
        assert np.array_equal(codec.decode(codec.encode(frame)), frame)


def _edge_case_frames(rng):
    """The bitstream edge geometries every BD codec must survive.

    Covers: tile_size=1, frame dims not divisible by the tile size,
    1x1 frames, all-flat tiles (delta width 0), and max-width (8-bit)
    deltas.
    """
    flat = np.full((16, 16, 3), 127, dtype=np.uint8)
    maxwidth = np.zeros((16, 16, 3), dtype=np.uint8)
    maxwidth[::2, ::2] = 255  # range 255 in every tile -> 8-bit deltas
    return [
        ("tile_size_1", rng.integers(0, 256, (8, 8, 3), dtype=np.uint8), 1),
        ("non_divisible", rng.integers(0, 256, (13, 17, 3), dtype=np.uint8), 4),
        ("one_by_one", rng.integers(0, 256, (1, 1, 3), dtype=np.uint8), 4),
        ("one_by_one_tile_1", rng.integers(0, 256, (1, 1, 3), dtype=np.uint8), 1),
        ("all_flat", flat, 4),
        ("max_width", maxwidth, 4),
        ("tall_sliver", rng.integers(0, 256, (31, 2, 3), dtype=np.uint8), 8),
    ]


class TestVectorizedMatchesLegacy:
    """The vectorized kernels must reproduce the legacy bitstream exactly."""

    def test_scene_frame_byte_identical(self):
        frame = encode_srgb8(render_scene("office", 48, 48))
        codec = BDCodec(tile_size=4)
        vectorized = codec.encode(frame)
        legacy = codec.encode_legacy(frame)
        assert vectorized.data == legacy.data
        assert vectorized.breakdown == legacy.breakdown

    def test_edge_geometries_byte_identical_and_round_trip(self, rng):
        for label, frame, tile_size in _edge_case_frames(rng):
            codec = BDCodec(tile_size=tile_size)
            vectorized = codec.encode(frame)
            legacy = codec.encode_legacy(frame)
            assert vectorized.data == legacy.data, label
            assert vectorized.breakdown == legacy.breakdown, label
            assert np.array_equal(codec.decode(vectorized), frame), label
            assert np.array_equal(codec.decode_legacy(vectorized), frame), label
            assert np.array_equal(codec.decode(legacy), frame), label

    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(min_value=1, max_value=24),
        st.integers(min_value=1, max_value=24),
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=0, max_value=10_000),
    )
    def test_byte_equality_property(self, height, width, tile_size, seed):
        rng = np.random.default_rng(seed)
        frame = rng.integers(0, 256, (height, width, 3), dtype=np.uint8)
        codec = BDCodec(tile_size=tile_size)
        vectorized = codec.encode(frame)
        legacy = codec.encode_legacy(frame)
        assert vectorized.data == legacy.data
        assert np.array_equal(codec.decode(vectorized), frame)
        assert np.array_equal(codec.decode_legacy(vectorized), frame)

    def test_truncated_stream_raises_eof(self, rng):
        frame = rng.integers(0, 256, (8, 8, 3), dtype=np.uint8)
        codec = BDCodec(tile_size=4)
        encoded = codec.encode(frame)
        truncated = EncodedFrame(
            data=encoded.data[: len(encoded.data) // 2],
            grid=encoded.grid,
            breakdown=encoded.breakdown,
        )
        with pytest.raises(EOFError, match="exhausted"):
            codec.decode(truncated)
        with pytest.raises(EOFError, match="exhausted"):
            codec.decode_legacy(truncated)

    def test_header_grid_mismatch_raises(self, rng):
        frame = rng.integers(0, 256, (8, 8, 3), dtype=np.uint8)
        other = rng.integers(0, 256, (12, 8, 3), dtype=np.uint8)
        codec = BDCodec(tile_size=4)
        encoded = codec.encode(frame)
        mismatched = EncodedFrame(
            data=codec.encode(other).data,
            grid=encoded.grid,
            breakdown=encoded.breakdown,
        )
        with pytest.raises(ValueError, match="header disagrees"):
            codec.decode(mismatched)


class TestCodecValidation:
    def test_rejects_float_frame(self):
        with pytest.raises(TypeError, match="uint8"):
            BDCodec().encode(np.zeros((8, 8, 3)))

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError, match=r"\(H, W, 3\)"):
            BDCodec().encode(np.zeros((8, 8), dtype=np.uint8))

    def test_rejects_bad_tile_size(self):
        with pytest.raises(ValueError, match="tile_size"):
            BDCodec(tile_size=0)

    def test_accounting_matches_fast_path(self, rng):
        """The bitstream codec and the vectorized accounting agree."""
        frame = rng.integers(0, 256, (20, 24, 3), dtype=np.uint8)
        encoded = BDCodec(tile_size=4).encode(frame)
        tiles, grid = tile_frame(frame, 4)
        fast = bd_breakdown(tiles, n_pixels=grid.height * grid.width)
        assert fast.total_bits == encoded.breakdown.total_bits
