"""Tests for the variable-width BD extension (paper footnote 1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.encoding.bd import bd_breakdown
from repro.encoding.bd_variable import (
    VariableBDCodec,
    group_delta_widths,
    variable_bd_breakdown,
)
from repro.encoding.tiling import tile_frame


class TestGroupWidths:
    def test_uniform_tile_zero_widths(self):
        tiles = np.full((2, 16, 3), 50, dtype=np.uint8)
        widths = group_delta_widths(tiles, group_size=4)
        assert widths.shape == (2, 4, 3)
        assert widths.sum() == 0

    def test_skewed_tile_localizes_width(self):
        """An edge confined to one group should cost width only there."""
        tiles = np.full((1, 16, 3), 100, dtype=np.uint8)
        tiles[0, :4, :] = 200  # only the first group carries the edge
        widths = group_delta_widths(tiles, group_size=4)
        assert (widths[0, 0] == 7).all()  # range 100 -> 7 bits
        assert widths[0, 1:].sum() == 0

    def test_deltas_relative_to_tile_base(self):
        """Widths use the tile-wide minimum, not per-group minima."""
        tiles = np.full((1, 8, 3), 0, dtype=np.uint8)
        tiles[0, 4:, :] = 16  # second group constant, but offset from base
        widths = group_delta_widths(tiles, group_size=4)
        assert (widths[0, 1] == 5).all()  # delta 16 needs 5 bits

    def test_rejects_indivisible_groups(self):
        tiles = np.zeros((1, 16, 3), dtype=np.uint8)
        with pytest.raises(ValueError, match="divisible"):
            group_delta_widths(tiles, group_size=5)

    def test_rejects_float_tiles(self):
        with pytest.raises(TypeError, match="uint8"):
            group_delta_widths(np.zeros((1, 16, 3)), group_size=4)


class TestBreakdown:
    def test_metadata_scales_with_groups(self, rng):
        tiles = rng.integers(0, 256, (10, 16, 3), dtype=np.uint8)
        fine = variable_bd_breakdown(tiles, group_size=2)
        coarse = variable_bd_breakdown(tiles, group_size=8)
        assert fine.metadata_bits > coarse.metadata_bits

    def test_variable_deltas_never_exceed_fixed(self, rng):
        """Group widths are bounded by the tile width, so the delta
        component can only shrink."""
        tiles = rng.integers(0, 256, (30, 16, 3), dtype=np.uint8)
        fixed = bd_breakdown(tiles)
        variable = variable_bd_breakdown(tiles, group_size=4)
        assert variable.delta_bits <= fixed.delta_bits
        assert variable.base_bits == fixed.base_bits

    def test_wins_on_skewed_content(self):
        tiles = np.full((50, 16, 3), 100, dtype=np.uint8)
        tiles[:, 0, :] = 228  # single outlier pixel per tile
        fixed = bd_breakdown(tiles)
        variable = variable_bd_breakdown(tiles, group_size=4)
        assert variable.total_bits < fixed.total_bits

    def test_loses_on_uniformly_noisy_content(self, rng):
        """When every group spans the full range, the extra width
        fields are pure overhead."""
        tiles = rng.integers(0, 256, (50, 16, 3), dtype=np.uint8)
        fixed = bd_breakdown(tiles)
        variable = variable_bd_breakdown(tiles, group_size=4)
        assert variable.total_bits >= fixed.total_bits - 50 * 12


class TestCodecRoundTrip:
    @pytest.mark.parametrize("shape", [(8, 8), (13, 17), (4, 4)])
    def test_random_frames(self, rng, shape):
        frame = rng.integers(0, 256, (*shape, 3), dtype=np.uint8)
        codec = VariableBDCodec(tile_size=4, group_size=4)
        assert np.array_equal(codec.decode(codec.encode(frame)), frame)

    @pytest.mark.parametrize("group_size", [1, 2, 4, 8, 16])
    def test_group_sizes(self, rng, group_size):
        frame = rng.integers(0, 256, (8, 8, 3), dtype=np.uint8)
        codec = VariableBDCodec(tile_size=4, group_size=group_size)
        assert np.array_equal(codec.decode(codec.encode(frame)), frame)

    def test_stream_length_matches_breakdown(self, rng):
        frame = rng.integers(0, 256, (12, 12, 3), dtype=np.uint8)
        encoded = VariableBDCodec().encode(frame)
        assert len(encoded.data) == -(-encoded.breakdown.total_bits // 8)

    def test_breakdown_matches_fast_path(self, rng):
        frame = rng.integers(0, 256, (16, 20, 3), dtype=np.uint8)
        encoded = VariableBDCodec().encode(frame)
        tiles, grid = tile_frame(frame, 4)
        fast = variable_bd_breakdown(tiles, 4, n_pixels=grid.height * grid.width)
        assert fast.total_bits == encoded.breakdown.total_bits

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=1, max_value=20), st.integers(min_value=1, max_value=20))
    def test_round_trip_property(self, height, width):
        rng = np.random.default_rng(height * 100 + width)
        frame = rng.integers(0, 256, (height, width, 3), dtype=np.uint8)
        codec = VariableBDCodec(tile_size=4, group_size=4)
        assert np.array_equal(codec.decode(codec.encode(frame)), frame)


class TestVectorizedMatchesLegacy:
    """Vectorized variable-BD must reproduce the legacy bitstream exactly."""

    def test_edge_geometries_byte_identical_and_round_trip(self, rng):
        flat = np.full((16, 16, 3), 80, dtype=np.uint8)
        maxwidth = np.zeros((16, 16, 3), dtype=np.uint8)
        maxwidth[::2, ::2] = 255
        cases = [
            ("tile_size_1", rng.integers(0, 256, (8, 8, 3), dtype=np.uint8), 1, 1),
            ("non_divisible", rng.integers(0, 256, (13, 17, 3), dtype=np.uint8), 4, 4),
            ("one_by_one", rng.integers(0, 256, (1, 1, 3), dtype=np.uint8), 4, 2),
            ("one_by_one_tile_1", rng.integers(0, 256, (1, 1, 3), dtype=np.uint8), 1, 1),
            ("all_flat", flat, 4, 4),
            ("max_width", maxwidth, 4, 4),
            ("whole_tile_group", rng.integers(0, 256, (9, 5, 3), dtype=np.uint8), 4, 16),
        ]
        for label, frame, tile_size, group_size in cases:
            codec = VariableBDCodec(tile_size=tile_size, group_size=group_size)
            vectorized = codec.encode(frame)
            legacy = codec.encode_legacy(frame)
            assert vectorized.data == legacy.data, label
            assert vectorized.breakdown == legacy.breakdown, label
            assert np.array_equal(codec.decode(vectorized), frame), label
            assert np.array_equal(codec.decode_legacy(vectorized), frame), label
            assert np.array_equal(codec.decode(legacy), frame), label

    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(min_value=1, max_value=20),
        st.integers(min_value=1, max_value=20),
        st.sampled_from([(1, 1), (2, 2), (4, 2), (4, 4), (4, 16), (3, 9)]),
        st.integers(min_value=0, max_value=10_000),
    )
    def test_byte_equality_property(self, height, width, sizes, seed):
        tile_size, group_size = sizes
        rng = np.random.default_rng(seed)
        frame = rng.integers(0, 256, (height, width, 3), dtype=np.uint8)
        codec = VariableBDCodec(tile_size=tile_size, group_size=group_size)
        vectorized = codec.encode(frame)
        legacy = codec.encode_legacy(frame)
        assert vectorized.data == legacy.data
        assert np.array_equal(codec.decode(vectorized), frame)
        assert np.array_equal(codec.decode_legacy(vectorized), frame)

    def test_truncated_stream_raises_eof(self, rng):
        from repro.encoding.bd_variable import VariableEncodedFrame

        frame = rng.integers(0, 256, (8, 8, 3), dtype=np.uint8)
        codec = VariableBDCodec(tile_size=4, group_size=4)
        encoded = codec.encode(frame)
        truncated = VariableEncodedFrame(
            data=encoded.data[: len(encoded.data) // 2],
            grid=encoded.grid,
            group_size=encoded.group_size,
            breakdown=encoded.breakdown,
        )
        with pytest.raises(EOFError, match="exhausted"):
            codec.decode(truncated)
        with pytest.raises(EOFError, match="exhausted"):
            codec.decode_legacy(truncated)


class TestValidation:
    def test_rejects_indivisible_tile_group_combo(self):
        with pytest.raises(ValueError, match="divisible"):
            VariableBDCodec(tile_size=3, group_size=4)

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError, match="tile_size"):
            VariableBDCodec(tile_size=0)
        with pytest.raises(ValueError, match="group_size"):
            VariableBDCodec(group_size=0)

    def test_rejects_float_frame(self):
        with pytest.raises(TypeError, match="uint8"):
            VariableBDCodec().encode(np.zeros((8, 8, 3)))
