"""Tests for frame tiling and untiling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.encoding.tiling import TileGrid, tile_frame, tile_scalar_field, untile_frame


class TestTileGrid:
    def test_exact_multiple(self):
        grid = TileGrid(height=16, width=32, tile_size=4)
        assert grid.padded_height == 16
        assert grid.padded_width == 32
        assert grid.n_tiles == 4 * 8
        assert grid.pixels_per_tile == 16

    def test_padding_rounds_up(self):
        grid = TileGrid(height=17, width=30, tile_size=4)
        assert grid.padded_height == 20
        assert grid.padded_width == 32
        assert grid.tiles_down == 5
        assert grid.tiles_across == 8

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError, match="tile_size"):
            TileGrid(height=4, width=4, tile_size=0)
        with pytest.raises(ValueError, match="non-empty"):
            TileGrid(height=0, width=4, tile_size=4)


class TestTileFrame:
    def test_first_tile_is_top_left_block(self, rng):
        frame = rng.random((8, 8, 3))
        tiles, grid = tile_frame(frame, 4)
        expected = frame[:4, :4].reshape(16, 3)
        assert np.array_equal(tiles[0], expected)

    def test_tile_order_row_major(self, rng):
        frame = rng.random((8, 12, 3))
        tiles, grid = tile_frame(frame, 4)
        # Second tile should be columns 4..8 of the top row of blocks.
        assert np.array_equal(tiles[1], frame[:4, 4:8].reshape(16, 3))
        # First tile of second block-row.
        assert np.array_equal(tiles[3], frame[4:8, :4].reshape(16, 3))

    def test_padding_replicates_edges(self, rng):
        frame = rng.random((5, 5, 3))
        tiles, grid = tile_frame(frame, 4)
        assert grid.n_tiles == 4
        # The bottom-right tile's far corner replicates pixel (4, 4).
        assert np.array_equal(tiles[-1][-1], frame[4, 4])

    def test_rejects_2d_input(self):
        with pytest.raises(ValueError, match=r"\(H, W, C\)"):
            tile_frame(np.zeros((4, 4)), 4)

    def test_dtype_preserved(self):
        frame = np.zeros((4, 4, 3), dtype=np.uint8)
        tiles, _ = tile_frame(frame, 4)
        assert tiles.dtype == np.uint8


class TestUntileFrame:
    def test_round_trip_exact_multiple(self, rng):
        frame = rng.random((16, 24, 3))
        tiles, grid = tile_frame(frame, 4)
        assert np.array_equal(untile_frame(tiles, grid), frame)

    def test_round_trip_with_padding(self, rng):
        frame = rng.random((13, 19, 3))
        tiles, grid = tile_frame(frame, 4)
        assert np.array_equal(untile_frame(tiles, grid), frame)

    def test_rejects_wrong_stack_shape(self, rng):
        frame = rng.random((8, 8, 3))
        tiles, grid = tile_frame(frame, 4)
        with pytest.raises(ValueError, match="tiles must have shape"):
            untile_frame(tiles[:-1], grid)

    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(min_value=1, max_value=40),
        st.integers(min_value=1, max_value=40),
        st.integers(min_value=1, max_value=9),
        st.integers(min_value=1, max_value=4),
    )
    def test_round_trip_property(self, height, width, tile_size, channels):
        rng = np.random.default_rng(height * 1000 + width * 10 + tile_size)
        frame = rng.random((height, width, channels))
        tiles, grid = tile_frame(frame, tile_size)
        assert np.array_equal(untile_frame(tiles, grid), frame)


class TestScalarField:
    def test_matches_frame_tiling(self, rng):
        field = rng.random((12, 12))
        tiles, grid = tile_scalar_field(field, 4)
        assert tiles.shape == (9, 16)
        frame_tiles, _ = tile_frame(field[..., None], 4)
        assert np.array_equal(tiles, frame_tiles[..., 0])

    def test_rejects_3d_input(self):
        with pytest.raises(ValueError, match=r"\(H, W\)"):
            tile_scalar_field(np.zeros((4, 4, 3)), 4)
