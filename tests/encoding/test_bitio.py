"""Tests for the bit-level stream writer/reader."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.encoding.bitio import BitReader, BitWriter


class TestBitWriter:
    def test_single_byte(self):
        writer = BitWriter()
        writer.write(0xAB, 8)
        assert writer.getvalue() == b"\xab"

    def test_sub_byte_fields_pack_msb_first(self):
        writer = BitWriter()
        writer.write(0b101, 3)
        writer.write(0b01, 2)
        writer.write(0b011, 3)
        assert writer.getvalue() == bytes([0b10101011])

    def test_partial_byte_zero_padded(self):
        writer = BitWriter()
        writer.write(0b11, 2)
        assert writer.getvalue() == bytes([0b11000000])

    def test_zero_width_is_noop(self):
        writer = BitWriter()
        writer.write(0, 0)
        assert writer.bit_length == 0
        assert writer.getvalue() == b""

    def test_bit_length_tracks_writes(self):
        writer = BitWriter()
        writer.write(1, 3)
        writer.write(1, 11)
        assert writer.bit_length == 14

    def test_value_too_large_rejected(self):
        writer = BitWriter()
        with pytest.raises(ValueError, match="does not fit"):
            writer.write(4, 2)

    def test_negative_value_rejected(self):
        writer = BitWriter()
        with pytest.raises(ValueError, match="does not fit"):
            writer.write(-1, 4)

    def test_negative_width_rejected(self):
        writer = BitWriter()
        with pytest.raises(ValueError, match="non-negative"):
            writer.write(0, -1)

    def test_write_many(self):
        writer = BitWriter()
        writer.write_many([1, 2, 3], 4)
        assert writer.bit_length == 12

    def test_wide_field(self):
        writer = BitWriter()
        writer.write(0xDEADBEEF, 32)
        assert writer.getvalue() == b"\xde\xad\xbe\xef"


class TestBitReader:
    def test_round_trip_mixed_widths(self):
        writer = BitWriter()
        fields = [(5, 3), (200, 8), (1, 1), (4095, 12), (0, 5)]
        for value, width in fields:
            writer.write(value, width)
        reader = BitReader(writer.getvalue())
        for value, width in fields:
            assert reader.read(width) == value

    def test_eof_detection(self):
        reader = BitReader(b"\xff")
        reader.read(8)
        with pytest.raises(EOFError, match="exhausted"):
            reader.read(1)

    def test_zero_width_read(self):
        reader = BitReader(b"")
        assert reader.read(0) == 0

    def test_negative_width_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            BitReader(b"\x00").read(-2)

    def test_read_many_returns_ndarray(self):
        import numpy as np

        writer = BitWriter()
        writer.write_many([3, 1, 2], 2)
        reader = BitReader(writer.getvalue())
        values = reader.read_many(3, 2)
        assert isinstance(values, np.ndarray)
        assert values.dtype == np.int64
        assert values.tolist() == [3, 1, 2]

    def test_read_many_negative_count(self):
        with pytest.raises(ValueError, match="non-negative"):
            BitReader(b"\x00").read_many(-1, 2)

    def test_bit_position_tracks(self):
        reader = BitReader(b"\xff\xff")
        reader.read(5)
        reader.read(6)
        assert reader.bit_position == 11

    @given(
        st.lists(
            st.tuples(st.integers(min_value=1, max_value=24), st.data()),
            min_size=1,
            max_size=40,
        ).flatmap(
            lambda pairs: st.tuples(
                st.just([w for w, _ in pairs]),
                st.tuples(*(st.integers(min_value=0, max_value=(1 << w) - 1) for w, _ in pairs)),
            )
        )
    )
    def test_round_trip_property(self, widths_values):
        widths, values = widths_values
        writer = BitWriter()
        for value, width in zip(values, widths):
            writer.write(value, width)
        reader = BitReader(writer.getvalue())
        recovered = [reader.read(width) for width in widths]
        assert list(values) == recovered
        assert reader.bit_position == writer.bit_length
