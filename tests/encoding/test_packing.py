"""Tests for the vectorized bit packing/unpacking kernels.

The kernels re-express the ``BitWriter``/``BitReader`` format as NumPy
array operations; these tests pin the equivalence — every packed
stream must be byte-identical to what the per-field writer produces,
and every unpack must read back what the per-field reader reads.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.encoding.bitio import BitReader, BitWriter
from repro.encoding.packing import (
    bits_to_bytes,
    bytes_to_bits,
    gather_field_runs,
    gather_fields,
    pack_fields,
    pack_segments,
    scatter_field_runs,
    scatter_fields,
    sliding_field_values,
    unpack_fields,
    unpack_segments,
)


def _segments_strategy():
    """Random segment descriptors: (width, count, values) triples."""
    return st.lists(
        st.integers(min_value=0, max_value=12).flatmap(
            lambda w: st.tuples(
                st.just(w),
                st.lists(
                    st.integers(min_value=0, max_value=(1 << w) - 1 if w else 0),
                    min_size=0,
                    max_size=12,
                ),
            )
        ),
        min_size=0,
        max_size=12,
    )


def _write_segments(segments) -> bytes:
    writer = BitWriter()
    for width, values in segments:
        for value in values:
            writer.write(value, width)
    return writer.getvalue()


class TestBitBytes:
    def test_round_trip(self):
        data = bytes([0b10110010, 0b01111111, 0x00, 0xFF])
        assert bits_to_bytes(bytes_to_bits(data)) == data

    def test_partial_byte_zero_padded_like_bitwriter(self):
        writer = BitWriter()
        writer.write(0b101, 3)
        assert bits_to_bytes(np.array([1, 0, 1], dtype=np.uint8)) == writer.getvalue()


class TestPackFields:
    @pytest.mark.parametrize("width", [1, 3, 4, 7, 8, 12, 16])
    def test_matches_bitwriter(self, rng, width):
        values = rng.integers(0, 1 << width, 50)
        writer = BitWriter()
        writer.write_many(values, width)
        assert bits_to_bytes(pack_fields(values, width)) == writer.getvalue()

    def test_zero_width_empty(self):
        assert pack_fields([0, 0, 0], 0).size == 0

    def test_zero_width_nonzero_value_rejected(self):
        with pytest.raises(ValueError, match="does not fit"):
            pack_fields([1], 0)

    def test_oversized_value_rejected(self):
        with pytest.raises(ValueError, match="does not fit"):
            pack_fields([4], 2)

    def test_negative_value_rejected(self):
        with pytest.raises(ValueError, match="does not fit"):
            pack_fields([-1], 4)

    def test_negative_width_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            pack_fields([0], -1)


class TestUnpackFields:
    @pytest.mark.parametrize("width", [1, 3, 4, 7, 8, 12])
    def test_inverts_pack(self, rng, width):
        values = rng.integers(0, 1 << width, 40)
        data = bits_to_bytes(pack_fields(values, width))
        assert np.array_equal(unpack_fields(data, 0, 40, width), values)

    def test_reads_at_offset(self):
        writer = BitWriter()
        writer.write(0b101, 3)
        writer.write_many([5, 2, 7], 3)
        out = unpack_fields(writer.getvalue(), 3, 3, 3)
        assert out.tolist() == [5, 2, 7]

    def test_accepts_precomputed_bits(self):
        writer = BitWriter()
        writer.write_many([9, 4], 5)
        bits = bytes_to_bits(writer.getvalue())
        assert unpack_fields(bits, 0, 2, 5).tolist() == [9, 4]

    def test_zero_width_reads_zeros(self):
        assert unpack_fields(b"", 0, 5, 0).tolist() == [0] * 5

    def test_eof_raises(self):
        with pytest.raises(EOFError, match="exhausted"):
            unpack_fields(b"\xff", 0, 3, 4)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            unpack_fields(b"\xff", 0, -1, 4)


class TestSegments:
    @settings(max_examples=60, deadline=None)
    @given(_segments_strategy())
    def test_pack_matches_bitwriter(self, segments):
        widths = [w for w, _ in segments]
        counts = [len(vals) for _, vals in segments]
        values = [v for _, vals in segments for v in vals]
        packed = bits_to_bytes(pack_segments(values, widths, counts))
        assert packed == _write_segments(segments)

    @settings(max_examples=60, deadline=None)
    @given(_segments_strategy())
    def test_unpack_inverts_pack(self, segments):
        widths = [w for w, _ in segments]
        counts = [len(vals) for _, vals in segments]
        values = [v for _, vals in segments for v in vals]
        data = _write_segments(segments)
        out = unpack_segments(data, 0, widths, counts)
        assert out.tolist() == values

    def test_unpack_at_offset(self):
        writer = BitWriter()
        writer.write(0b11, 2)
        writer.write_many([3, 0, 5], 3)
        writer.write_many([200, 17], 8)
        out = unpack_segments(writer.getvalue(), 2, [3, 8], [3, 2])
        assert out.tolist() == [3, 0, 5, 200, 17]

    def test_count_mismatch_rejected(self):
        with pytest.raises(ValueError, match="counts sum"):
            pack_segments([1, 2, 3], [4], [2])

    def test_oversized_value_rejected(self):
        with pytest.raises(ValueError, match="does not fit"):
            pack_segments([1, 9], [3], [2])

    def test_mismatched_descriptors_rejected(self):
        with pytest.raises(ValueError, match="matching 1-D"):
            pack_segments([1], [3, 4], [1])

    def test_unpack_eof_raises(self):
        with pytest.raises(EOFError, match="exhausted"):
            unpack_segments(b"\x00", 0, [8], [2])


class TestScatterFields:
    def test_matches_sequential_layout(self, rng):
        # Scattering fields at their sequential offsets reproduces the
        # plain packed stream.
        values = rng.integers(0, 32, 20)
        width = 5
        bits = np.zeros(20 * width, dtype=np.uint8)
        scatter_fields(bits, np.arange(20) * width, values, width)
        assert np.array_equal(bits, pack_fields(values, width))

    def test_out_of_order_offsets(self):
        bits = np.zeros(8, dtype=np.uint8)
        scatter_fields(bits, [4, 0], [0b1111, 0b0001], 4)
        assert bits_to_bytes(bits) == bytes([0b00011111])

    def test_wide_fields_take_int64_path(self):
        bits = np.zeros(16, dtype=np.uint8)
        scatter_fields(bits, [0], [0xDEAD], 16)
        assert bits_to_bytes(bits) == b"\xde\xad"

    def test_zero_width_noop(self):
        bits = np.zeros(4, dtype=np.uint8)
        scatter_fields(bits, [0, 2], [0, 0], 0)
        assert bits.sum() == 0

    def test_oversized_value_rejected(self):
        bits = np.zeros(8, dtype=np.uint8)
        with pytest.raises(ValueError, match="does not fit"):
            scatter_fields(bits, [0], [9], 3)

    def test_validate_false_skips_check(self):
        bits = np.zeros(3, dtype=np.uint8)
        scatter_fields(bits, [0], [0b111], 3, validate=False)
        assert bits.tolist() == [1, 1, 1]


class TestFieldRuns:
    def test_scatter_then_gather_round_trips(self, rng):
        run_length = 16
        widths = rng.integers(0, 9, 30)
        values = np.stack(
            [rng.integers(0, 1 << w if w else 1, run_length) for w in widths]
        ).astype(np.uint8)
        starts = np.concatenate([[0], np.cumsum(widths * run_length)[:-1]])
        bits = np.zeros(int((widths * run_length).sum()), dtype=np.uint8)
        scatter_field_runs(bits, starts, widths, values, run_length)
        assert np.array_equal(gather_field_runs(bits, starts, widths, run_length), values)

    def test_matches_bitwriter_layout(self, rng):
        run_length = 4
        widths = [3, 0, 8, 1]
        values = [[5, 1, 0, 7], [0, 0, 0, 0], [255, 17, 0, 128], [1, 0, 1, 1]]
        writer = BitWriter()
        for width, run in zip(widths, values):
            writer.write_many(run, width)
        starts = np.concatenate([[0], np.cumsum(np.array(widths) * run_length)[:-1]])
        bits = np.zeros(sum(w * run_length for w in widths), dtype=np.uint8)
        scatter_field_runs(bits, starts, widths, np.array(values, dtype=np.uint8), run_length)
        assert bits_to_bytes(bits) == writer.getvalue()

    def test_gather_eof_raises(self):
        with pytest.raises(EOFError, match="exhausted"):
            gather_field_runs(np.zeros(10, dtype=np.uint8), [0], [4], 4)


class TestGatherFields:
    def test_inverts_scatter(self, rng):
        values = rng.integers(0, 256, 40).astype(np.uint8)
        starts = np.arange(40) * 8
        bits = np.zeros(320, dtype=np.uint8)
        scatter_fields(bits, starts, values, 8)
        assert np.array_equal(gather_fields(bits, starts, 8), values)

    def test_out_of_order_offsets(self):
        bits = bytes_to_bits(bytes([0xAB, 0xCD]))
        assert gather_fields(bits, [8, 0], 8).tolist() == [0xCD, 0xAB]

    def test_zero_width_reads_zeros(self):
        assert gather_fields(np.zeros(4, dtype=np.uint8), [0, 1], 0).tolist() == [0, 0]

    def test_eof_raises(self):
        with pytest.raises(EOFError, match="exhausted"):
            gather_fields(np.zeros(10, dtype=np.uint8), [4], 8)

    def test_wide_fields_rejected(self):
        with pytest.raises(ValueError, match="byte-or-narrower"):
            gather_fields(np.zeros(16, dtype=np.uint8), [0], 9)


class TestSlidingFieldValues:
    @pytest.mark.parametrize("width", [1, 4, 8, 12])
    def test_matches_bitreader_at_every_offset(self, rng, width):
        data = rng.integers(0, 256, 16, dtype=np.uint8).tobytes()
        bits = bytes_to_bits(data)
        table = sliding_field_values(bits, width)
        assert table.size == bits.size - width + 1
        for offset in range(table.size):
            reader = BitReader(data)
            reader.read(offset)  # skip to the offset
            assert int(table[offset]) == reader.read(width)

    def test_short_stream_empty(self):
        assert sliding_field_values(np.zeros(3, dtype=np.uint8), 4).size == 0

    def test_narrow_dtype_for_sub_byte_fields(self):
        bits = np.ones(16, dtype=np.uint8)
        assert sliding_field_values(bits, 4).dtype == np.uint8
        assert sliding_field_values(bits, 12).dtype == np.uint16
