"""Tests for the temporal BD extension."""

import numpy as np
import pytest

from repro.encoding.bd import bd_breakdown
from repro.encoding.bd_temporal import TemporalBDAccountant, temporal_delta_widths


def _tiles(rng, n=20, value_range=(0, 256)):
    return rng.integers(*value_range, (n, 16, 3), dtype=np.uint8)


class TestTemporalWidths:
    def test_identical_frames_zero_bits(self, rng):
        tiles = _tiles(rng)
        assert temporal_delta_widths(tiles, tiles.copy()).sum() == 0

    def test_small_change_small_width(self, rng):
        tiles = _tiles(rng, value_range=(10, 240))
        moved = (tiles.astype(np.int16) + 1).astype(np.uint8)
        widths = temporal_delta_widths(moved, tiles)
        assert widths.max() == 2  # |delta|=1 -> 1 magnitude bit + sign

    def test_sign_bit_included(self):
        current = np.full((1, 4, 3), 100, dtype=np.uint8)
        previous = np.full((1, 4, 3), 103, dtype=np.uint8)
        # |delta| = 3 -> 2 magnitude bits + 1 sign = 3.
        assert temporal_delta_widths(current, previous)[0, 0] == 3

    def test_shape_mismatch_rejected(self, rng):
        with pytest.raises(ValueError, match="must match"):
            temporal_delta_widths(_tiles(rng, 4), _tiles(rng, 5))

    def test_dtype_enforced(self):
        with pytest.raises(TypeError, match="uint8"):
            temporal_delta_widths(np.zeros((1, 4, 3)), np.zeros((1, 4, 3)))


class TestAccountant:
    def test_first_frame_is_spatial(self, rng):
        tiles = _tiles(rng)
        accountant = TemporalBDAccountant()
        breakdown = accountant.push(tiles)
        spatial = bd_breakdown(tiles)
        # Same deltas and bases as spatial BD; only the mode bits are extra.
        assert breakdown.delta_bits == spatial.delta_bits
        assert breakdown.base_bits == spatial.base_bits
        assert breakdown.metadata_bits == spatial.metadata_bits + 20 * 3

    def test_static_stream_collapses(self, rng):
        tiles = _tiles(rng)
        accountant = TemporalBDAccountant()
        first = accountant.push(tiles)
        second = accountant.push(tiles.copy())
        assert second.delta_bits == 0
        assert second.base_bits == 0  # all tiles temporal
        assert second.total_bits < first.total_bits / 4

    def test_slowly_changing_stream_beats_spatial(self, rng):
        base = _tiles(rng, value_range=(20, 230))
        accountant = TemporalBDAccountant()
        accountant.push(base)
        drifted = (base.astype(np.int16) + rng.integers(-2, 3, base.shape)).clip(0, 255).astype(np.uint8)
        temporal = accountant.push(drifted)
        spatial = bd_breakdown(drifted)
        assert temporal.total_bits < spatial.total_bits

    def test_scene_cut_falls_back_to_spatial(self, rng):
        accountant = TemporalBDAccountant()
        accountant.push(_tiles(rng))
        unrelated = _tiles(np.random.default_rng(99))
        cut = accountant.push(unrelated)
        spatial = bd_breakdown(unrelated)
        # Mode choice per tile-channel can only improve on spatial.
        assert cut.delta_bits <= spatial.delta_bits

    def test_reset_forgets_history(self, rng):
        tiles = _tiles(rng)
        accountant = TemporalBDAccountant()
        accountant.push(tiles)
        accountant.reset()
        breakdown = accountant.push(tiles.copy())
        assert breakdown.base_bits == bd_breakdown(tiles).base_bits  # spatial again

    def test_tile_size_change_rejected(self, rng):
        accountant = TemporalBDAccountant()
        accountant.push(_tiles(rng))
        with pytest.raises(ValueError, match="tile size changed"):
            accountant.push(rng.integers(0, 256, (20, 64, 3), dtype=np.uint8))

    def test_mode_choice_never_worse_than_spatial_deltas(self, rng):
        """Per-channel argmin guarantees delta bits <= spatial's."""
        accountant = TemporalBDAccountant()
        previous = _tiles(rng)
        accountant.push(previous)
        for _ in range(3):
            frame = (previous.astype(np.int16) + rng.integers(-30, 31, previous.shape)).clip(0, 255).astype(np.uint8)
            breakdown = accountant.push(frame)
            assert breakdown.delta_bits <= bd_breakdown(frame).delta_bits
            previous = frame

    def test_animated_scene_stream(self):
        """End to end with the scene generator and the perceptual
        encoder: temporal mode helps on an animated sequence."""
        from repro.core.pipeline import PerceptualEncoder
        from repro.encoding.tiling import tile_frame
        from repro.scenes.display import QUEST2_DISPLAY
        from repro.scenes.library import get_scene

        scene = get_scene("office")
        ecc = QUEST2_DISPLAY.eccentricity_map(64, 64)
        encoder = PerceptualEncoder()
        accountant = TemporalBDAccountant()
        spatial_total = 0
        temporal_total = 0
        for index in range(3):
            frame = scene.render(64, 64, frame=index, eye="left")
            adjusted = encoder.encode_frame(frame, ecc).adjusted_srgb
            tiles, grid = tile_frame(adjusted, 4)
            spatial_total += bd_breakdown(tiles, n_pixels=64 * 64).total_bits
            temporal_total += accountant.push(tiles, n_pixels=64 * 64).total_bits
        assert temporal_total < spatial_total
