"""Cross-module property tests (hypothesis-driven invariants).

These pin the library-wide contracts on randomized inputs that unit
tests only probe pointwise: the perceptual guarantee, monotonicity of
the optimizer, codec consistency, and determinism.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.color.srgb import encode_srgb8
from repro.core.adjust import adjust_tiles
from repro.core.optimizer import optimize_tiles, tile_bd_bits
from repro.core.pipeline import PerceptualEncoder
from repro.encoding.bd import bd_breakdown
from repro.perception.geometry import (
    channel_extrema,
    channel_extrema_paper,
    channel_halfwidth,
    mahalanobis,
)
from repro.perception.model import ParametricModel

MODEL = ParametricModel()


def _random_tiles(seed: int, n_tiles: int, pixels: int, ecc: float):
    rng = np.random.default_rng(seed)
    tiles = rng.uniform(0.05, 0.95, (n_tiles, pixels, 3))
    axes = MODEL.semi_axes(tiles, np.full((n_tiles, pixels), ecc))
    return tiles, axes


class TestGeometryProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.floats(min_value=0.5, max_value=55.0),
        st.integers(min_value=0, max_value=2),
    )
    def test_extrema_invariants(self, seed, ecc, axis):
        rng = np.random.default_rng(seed)
        centers = rng.uniform(0.05, 0.95, (8, 3))
        axes = MODEL.semi_axes(centers, np.full(8, ecc))
        extrema = channel_extrema(centers, axes, axis)
        # High dominates low along the chosen channel.
        assert np.all(extrema.high[:, axis] >= extrema.low[:, axis])
        # Both extrema sit exactly on the unit ellipsoid.
        assert np.allclose(mahalanobis(extrema.high, centers, axes), 1.0, atol=1e-8)
        # Displacement's own component is the half-width.
        assert np.allclose(
            extrema.displacement[:, axis], channel_halfwidth(axes, axis), atol=1e-12
        )
        # The paper's Eq. 11-13 recipe agrees.
        paper = channel_extrema_paper(centers, axes, axis)
        assert np.allclose(extrema.high, paper.high, atol=1e-8)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_halfwidth_scales_linearly_with_axes(self, seed):
        rng = np.random.default_rng(seed)
        axes = rng.uniform(1e-6, 1e-3, (5, 3))
        for channel in range(3):
            assert np.allclose(
                channel_halfwidth(axes * 3.0, channel),
                3.0 * channel_halfwidth(axes, channel),
            )


class TestAdjustmentProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=1, max_value=20),
        st.floats(min_value=1.0, max_value=50.0),
        st.integers(min_value=0, max_value=2),
    )
    def test_guarantee_and_span(self, seed, pixels, ecc, axis):
        tiles, axes = _random_tiles(seed, 4, pixels, ecc)
        result = adjust_tiles(tiles, axes, axis)
        assert mahalanobis(result.adjusted, tiles, axes).max() <= 1.0 + 1e-9
        assert result.adjusted.min() >= 0.0 and result.adjusted.max() <= 1.0
        assert np.all(result.span_after <= result.span_before + 1e-12)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_optimizer_dominates_single_axes(self, seed):
        tiles, axes = _random_tiles(seed, 6, 16, 25.0)
        best = optimize_tiles(tiles, axes, axes=(2, 0))
        for single in (2, 0):
            lone = optimize_tiles(tiles, axes, axes=(single,))
            assert np.all(best.bits <= lone.bits)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_optimizer_bits_consistent_with_accounting(self, seed):
        tiles, axes = _random_tiles(seed, 6, 16, 25.0)
        optimized = optimize_tiles(tiles, axes)
        breakdown = bd_breakdown(optimized.adjusted_srgb)
        assert optimized.bits.sum() == breakdown.total_bits - breakdown.header_bits
        assert np.array_equal(optimized.bits, tile_bd_bits(optimized.adjusted_srgb))


class TestPipelineProperties:
    @settings(max_examples=8, deadline=None)
    @given(
        st.integers(min_value=0, max_value=1000),
        st.integers(min_value=12, max_value=40),
        st.integers(min_value=12, max_value=40),
    )
    def test_arbitrary_frame_sizes(self, seed, height, width):
        rng = np.random.default_rng(seed)
        ramp = np.linspace(0.2, 0.7, height)[:, None, None]
        frame = np.clip(
            ramp + rng.normal(0, 0.01, (height, width, 3)), 0, 1
        )
        result = PerceptualEncoder().encode_frame(frame, 25.0)
        assert result.adjusted_frame.shape == (height, width, 3)
        assert result.max_mahalanobis <= 1.0 + 1e-9
        assert result.breakdown.n_pixels == height * width
        # Deterministic re-encode.
        again = PerceptualEncoder().encode_frame(frame, 25.0)
        assert np.array_equal(result.adjusted_srgb, again.adjusted_srgb)

    @settings(max_examples=8, deadline=None)
    @given(st.integers(min_value=0, max_value=1000))
    def test_srgb_quantization_error_bounded(self, seed):
        """The displayed (quantized) frame never drifts more than half a
        code beyond the analytically adjusted one."""
        rng = np.random.default_rng(seed)
        frame = np.clip(0.5 + rng.normal(0, 0.05, (24, 24, 3)), 0, 1)
        result = PerceptualEncoder().encode_frame(frame, 25.0)
        analytic_codes = encode_srgb8(result.adjusted_frame)
        assert np.array_equal(analytic_codes, result.adjusted_srgb)
