"""Tests for the PNG-file and PPM writers/readers."""

import numpy as np
import pytest

from repro.color.srgb import encode_srgb8
from repro.imageio import read_png, read_ppm, write_png, write_ppm
from repro.scenes.library import render_scene


@pytest.fixture
def scene_frame():
    return encode_srgb8(render_scene("office", 24, 32))


class TestPNGFile:
    def test_round_trip_scene(self, tmp_path, scene_frame):
        path = tmp_path / "frame.png"
        write_png(path, scene_frame)
        assert np.array_equal(read_png(path), scene_frame)

    def test_round_trip_random(self, tmp_path, rng):
        frame = rng.integers(0, 256, (17, 13, 3), dtype=np.uint8)
        path = tmp_path / "random.png"
        write_png(path, frame)
        assert np.array_equal(read_png(path), frame)

    def test_signature_written(self, tmp_path, scene_frame):
        path = tmp_path / "sig.png"
        write_png(path, scene_frame)
        assert path.read_bytes().startswith(b"\x89PNG\r\n\x1a\n")

    def test_reported_size_matches_file(self, tmp_path, scene_frame):
        path = tmp_path / "size.png"
        written = write_png(path, scene_frame)
        assert written == path.stat().st_size

    def test_rejects_bad_input(self, tmp_path):
        with pytest.raises(ValueError, match="uint8"):
            write_png(tmp_path / "bad.png", np.zeros((4, 4, 3)))

    def test_rejects_non_png_file(self, tmp_path):
        path = tmp_path / "not.png"
        path.write_bytes(b"definitely not a png")
        with pytest.raises(ValueError, match="not a PNG"):
            read_png(path)

    def test_detects_corruption(self, tmp_path, scene_frame):
        path = tmp_path / "corrupt.png"
        write_png(path, scene_frame)
        blob = bytearray(path.read_bytes())
        blob[40] ^= 0xFF  # flip a bit inside IHDR/IDAT territory
        path.write_bytes(bytes(blob))
        with pytest.raises(ValueError):
            read_png(path)

    def test_higher_level_not_larger(self, tmp_path, scene_frame):
        fast = write_png(tmp_path / "l1.png", scene_frame, level=1)
        best = write_png(tmp_path / "l9.png", scene_frame, level=9)
        assert best <= fast


class TestPPM:
    def test_round_trip(self, tmp_path, scene_frame):
        path = tmp_path / "frame.ppm"
        write_ppm(path, scene_frame)
        assert np.array_equal(read_ppm(path), scene_frame)

    def test_size_is_header_plus_raw(self, tmp_path, scene_frame):
        path = tmp_path / "frame.ppm"
        written = write_ppm(path, scene_frame)
        assert written == path.stat().st_size
        assert written > scene_frame.size  # header on top of raw bytes

    def test_rejects_bad_input(self, tmp_path):
        with pytest.raises(ValueError, match="uint8"):
            write_ppm(tmp_path / "bad.ppm", np.zeros((4, 4, 3), dtype=np.float64))

    def test_rejects_non_ppm(self, tmp_path):
        path = tmp_path / "not.ppm"
        path.write_bytes(b"P5\n1 1\n255\nx")
        with pytest.raises(ValueError, match="P6"):
            read_ppm(path)
