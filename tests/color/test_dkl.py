"""Tests for the RGB<->DKL transform (paper Eq. 2)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.color.dkl import DKL_TO_RGB, RGB_TO_DKL, dkl_to_rgb, rgb_to_dkl


class TestMatrix:
    def test_published_coefficients(self):
        expected = np.array(
            [[0.14, 0.17, 0.00], [-0.21, -0.71, -0.07], [0.21, 0.72, 0.07]]
        )
        assert np.array_equal(RGB_TO_DKL, expected)

    def test_inverse_is_exact(self):
        assert np.allclose(RGB_TO_DKL @ DKL_TO_RGB, np.eye(3), atol=1e-9)
        assert np.allclose(DKL_TO_RGB @ RGB_TO_DKL, np.eye(3), atol=1e-9)

    def test_near_singular_but_invertible(self):
        det = np.linalg.det(RGB_TO_DKL)
        assert det != 0
        assert abs(det) < 1e-3  # the documented near-singularity


class TestTransforms:
    def test_single_color_round_trip(self):
        color = np.array([0.3, 0.6, 0.1])
        assert np.allclose(dkl_to_rgb(rgb_to_dkl(color)), color, atol=1e-9)

    def test_matches_matrix_product(self):
        color = np.array([0.25, 0.5, 0.75])
        assert np.allclose(rgb_to_dkl(color), RGB_TO_DKL @ color)

    def test_batch_shapes_preserved(self):
        batch = np.zeros((4, 5, 3))
        assert rgb_to_dkl(batch).shape == (4, 5, 3)

    def test_rejects_wrong_trailing_axis(self):
        with pytest.raises(ValueError, match="last axis"):
            rgb_to_dkl(np.zeros((4, 4)))

    def test_black_maps_to_origin(self):
        assert np.allclose(rgb_to_dkl([0.0, 0.0, 0.0]), 0.0)

    def test_linearity(self):
        a = np.array([0.1, 0.2, 0.3])
        b = np.array([0.4, 0.1, 0.2])
        assert np.allclose(
            rgb_to_dkl(a) + rgb_to_dkl(b), rgb_to_dkl(a + b), atol=1e-12
        )

    @given(
        arrays(
            np.float64,
            (7, 3),
            elements=st.floats(min_value=-10, max_value=10, allow_nan=False),
        )
    )
    def test_round_trip_property(self, colors):
        recovered = dkl_to_rgb(rgb_to_dkl(colors))
        # The matrix is near-singular, so allow a generous relative
        # tolerance scaled by the inverse's conditioning.
        assert np.allclose(recovered, colors, atol=1e-6)
