"""Tests for color utilities (hex parsing, luminance, validation)."""

import numpy as np
import pytest

from repro.color.srgb import encode_srgb8
from repro.color.utils import (
    ensure_color_array,
    format_hex,
    parse_hex,
    relative_luminance,
)

#: The four perceptually identical colors of the paper's Fig. 1.
FIG1_COLORS = ("#F06077", "#F26077", "#F25E77", "#F26075")


class TestHex:
    def test_parse_black_and_white(self):
        assert np.allclose(parse_hex("#000000"), 0.0)
        assert np.allclose(parse_hex("#FFFFFF"), 1.0)

    def test_parse_without_hash(self):
        assert np.allclose(parse_hex("FF0000"), parse_hex("#FF0000"))

    def test_round_trip_through_srgb(self):
        for code in FIG1_COLORS:
            linear = parse_hex(code)
            assert format_hex(encode_srgb8(linear)) == code.upper()

    def test_fig1_colors_are_close_but_distinct(self):
        linears = np.array([parse_hex(c) for c in FIG1_COLORS])
        assert len({tuple(row) for row in np.round(linears, 9)}) == 4
        spread = linears.max(axis=0) - linears.min(axis=0)
        assert np.all(spread < 0.02)  # numerically close, as the paper shows

    def test_parse_rejects_garbage(self):
        for bad in ("#12345", "nothex", "#GG0000", ""):
            with pytest.raises(ValueError, match="hex"):
                parse_hex(bad)

    def test_format_rejects_wrong_shape(self):
        with pytest.raises(ValueError, match="triple"):
            format_hex(np.zeros((2, 3)))

    def test_format_rejects_out_of_range(self):
        with pytest.raises(ValueError, match=r"\[0, 255\]"):
            format_hex(np.array([0, 0, 300]))


class TestLuminance:
    def test_white_is_one(self):
        assert relative_luminance([1.0, 1.0, 1.0]) == pytest.approx(1.0)

    def test_black_is_zero(self):
        assert relative_luminance([0.0, 0.0, 0.0]) == 0.0

    def test_green_dominates(self):
        r = relative_luminance([1.0, 0.0, 0.0])
        g = relative_luminance([0.0, 1.0, 0.0])
        b = relative_luminance([0.0, 0.0, 1.0])
        assert g > r > b

    def test_batch_shape(self):
        frame = np.zeros((4, 4, 3))
        assert relative_luminance(frame).shape == (4, 4)


class TestEnsureColorArray:
    def test_accepts_lists(self):
        out = ensure_color_array([[0.1, 0.2, 0.3]])
        assert out.dtype == np.float64
        assert out.shape == (1, 3)

    def test_rejects_wrong_axis(self):
        with pytest.raises(ValueError, match="trailing axis"):
            ensure_color_array(np.zeros((3, 4)), "x")
